# Tier-1 verification plus the extended checks: `make check` runs build,
# vet, tests, and the race detector as one command.

GO ?= go

.PHONY: build test test-race test-chaos vet bench bench-hotpath check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-chaos runs the seeded fault-injection suites: the deterministic
# end-to-end butterfly harness plus the emunet, cloud, and controller
# resilience tests. Same seeds, same fault schedules, every run.
test-chaos:
	$(GO) test -count=1 -v -run 'TestGenerateSchedule|TestButterfly|TestSeededChaos' ./internal/chaostest/
	$(GO) test -count=1 -run 'TestFault|TestPartition|TestBurstLoss|TestCrash|TestRestart|TestFailLaunches|TestSupervisor|TestRetry|TestPush|TestPoolLaunch' \
		./internal/emunet/ ./internal/cloud/ ./internal/controller/

vet:
	$(GO) vet ./...

# bench runs the data-plane micro-benchmarks that gate hot-path changes.
bench:
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice|BenchmarkDotProduct|BenchmarkRecode|BenchmarkVNFPipeline|BenchmarkRecoderPacketProcessing|BenchmarkDecoderBatch|BenchmarkEncodeCodedInto' -benchmem \
		./internal/gf/ ./internal/rlnc/ ./internal/dataplane/
	$(GO) test -run 'XXX' -bench 'BenchmarkInverse|BenchmarkMulInto' -benchmem ./internal/matrix/

# bench-hotpath is the quick subset: GF kernels and the VNF pipeline.
bench-hotpath:
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice' -benchmem ./internal/gf/
	$(GO) test -run 'XXX' -bench 'BenchmarkVNFPipeline' -benchmem ./internal/dataplane/

check: build vet test test-race
