# Tier-1 verification plus the extended checks: `make check` runs build,
# vet, tests, and the race detector as one command.

GO ?= go

.PHONY: build test test-race vet bench bench-hotpath check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the data-plane micro-benchmarks that gate hot-path changes.
bench:
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice|BenchmarkRecode|BenchmarkVNFPipeline|BenchmarkRecoderPacketProcessing' -benchmem \
		./internal/gf/ ./internal/rlnc/ ./internal/dataplane/

# bench-hotpath is the quick subset: GF kernels and the VNF pipeline.
bench-hotpath:
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice' -benchmem ./internal/gf/
	$(GO) test -run 'XXX' -bench 'BenchmarkVNFPipeline' -benchmem ./internal/dataplane/

check: build vet test test-race
