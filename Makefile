# Tier-1 verification plus the extended checks: `make check` runs build,
# vet, nclint, tests, and the race detector as one command.

GO ?= go

NCLINT := bin/nclint
NCLINT_SRCS := $(shell find cmd/nclint internal/analysis -name '*.go' -not -path '*/testdata/*')

.PHONY: build test test-race test-chaos test-soak test-e2e test-rolling vet lint bench bench-hotpath bench-guard cover check

build:
	$(GO) build ./...

# nclint is the repo's own analyzer suite (cmd/nclint): buffer-pool
# discipline, recv-buffer aliasing, hot-path allocation bans, simulated-time
# purity, control-plane error handling, lock-acquisition order, RCU snapshot
# hygiene, raw-syscall pointer liveness, telemetry naming, and build-tag twin
# parity. See DESIGN.md ("Statically enforced invariants") for the full list
# and the suppression syntax. The -suppressions pass after the findings run
# keeps every //nolint:nc site carrying a written reason.
$(NCLINT): $(NCLINT_SRCS) go.mod
	$(GO) build -o $(NCLINT) ./cmd/nclint

lint: vet $(NCLINT)
	./$(NCLINT) ./...
	./$(NCLINT) -suppressions ./...

# test builds the linter first so a broken analyzer fails fast even when
# only the test target runs.
test: $(NCLINT)
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-chaos runs the seeded fault-injection suites: the deterministic
# end-to-end butterfly harness plus the emunet, cloud, and controller
# resilience tests. Same seeds, same fault schedules, every run.
test-chaos:
	$(GO) test -count=1 -v -run 'TestGenerateSchedule|TestButterfly|TestSeededChaos' ./internal/chaostest/
	$(GO) test -count=1 -run 'TestFault|TestPartition|TestBurstLoss|TestCrash|TestRestart|TestFailLaunches|TestSupervisor|TestRetry|TestPush|TestPoolLaunch' \
		./internal/emunet/ ./internal/cloud/ ./internal/controller/

# test-e2e runs the multi-process deployment smoke test: the butterfly as
# six real ncd processes on loopback, tables pushed via the real ncctl
# binary, sinks polled for decode completion over the admin endpoint.
# -short shrinks the stream; the same test also rides along in plain
# `go test ./...`.
test-e2e:
	$(GO) test -count=1 -short -v -run 'TestE2E' ./internal/e2e/

# test-rolling runs the zero-downtime operations tier: the six-process
# loopback butterfly carries a multicast while `ncctl rolling-restart` walks
# every relay VNF through drain → exec-handoff restart → reconfigure (zero
# dropped sessions, both sinks decode every generation); the in-process
# simclock twin then drains and hot-reloads relays under churn and fault
# injection with -race, leak checking, and pool double-put accounting on;
# finally the procnet lifecycle harness exercises /drain, SIGTERM, and the
# /restart handoff against real processes. CI runs the -short variant next
# to the e2e-linux job.
test-rolling:
	$(GO) test -count=1 -v -run 'TestRollingRestartButterfly' ./internal/e2e/
	$(GO) test -count=1 -race -v -run 'TestRollingRestartUnderTraffic|TestReloadChurnSoak' ./internal/chaostest/
	$(GO) test -count=1 -run 'TestDrainExitsProcess|TestSigtermDrainsProcess|TestRestartHandoff' ./internal/procnet/

# test-soak runs the full many-session churn soak under the race detector:
# thousands of concurrent sessions cycling through create / starve / evict /
# revive / teardown against concurrent RCU table pushes, with leak and
# double-put accounting on. CI runs the -short variant; this is the full one.
test-soak:
	$(GO) test -count=1 -race -v -run 'TestSessionChurnSoak' ./internal/chaostest/

vet:
	$(GO) vet ./...

# bench runs the data-plane micro-benchmarks that gate hot-path changes.
bench:
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice|BenchmarkDotProduct|BenchmarkRecode|BenchmarkVNFPipeline|BenchmarkRecoderPacketProcessing|BenchmarkDecoderBatch|BenchmarkEncodeCodedInto|BenchmarkXorWords|BenchmarkCombineWords|BenchmarkPackBytes|BenchmarkTableRead|BenchmarkManySessionPipeline' -benchmem \
		./internal/gf/ ./internal/rlnc/ ./internal/dataplane/
	$(GO) test -run 'XXX' -bench 'BenchmarkInverse|BenchmarkMulInto|BenchmarkRREF' -benchmem ./internal/matrix/ ./internal/bitmat/

# bench-hotpath is the quick subset: GF kernels and the VNF pipeline.
bench-hotpath:
	$(GO) test -run 'XXX' -bench 'BenchmarkVNFPipeline' -benchmem ./internal/dataplane/
	$(GO) test -run 'XXX' -bench 'BenchmarkAddMulSlice' -benchmem ./internal/gf/

# bench-guard reruns the guarded hot-path benchmarks — the telemetry-
# instrumented VNF pipeline, the GF(2) word-XOR kernels, the packed GF(2)
# batch decode, the lock-free forwarding-table read, and the many-session
# pipeline over the bounded store — and fails if the best of three runs
# regresses more than 10% against the benchguard-baseline lines in
# bench_results.txt. The real-socket benchmarks (batched UDP send, the
# loopback source->relay->receiver pipeline, the registry reverse lookup)
# run in a second invocation with a wider tolerance: kernel socket timings
# on a shared host are far noisier than pure-CPU kernels.
bench-guard:
	$(GO) build -o bin/benchguard ./cmd/benchguard
	{ $(GO) test -run 'XXX' -bench 'BenchmarkVNFPipeline|BenchmarkTableRead|BenchmarkManySessionPipeline' -benchtime 200ms -count 3 ./internal/dataplane/ && \
	  $(GO) test -run 'XXX' -bench 'BenchmarkXorWords' -benchtime 200ms -count 3 ./internal/gf/ && \
	  $(GO) test -run 'XXX' -bench 'BenchmarkDecoderBatchGF2' -benchtime 200ms -count 3 ./internal/rlnc/ ; } \
		| ./bin/benchguard -baseline bench_results.txt \
			-only '^Benchmark(VNFPipeline|TableRead|ManySessionPipeline|XorWords|DecoderBatchGF2)'
	{ $(GO) test -run 'XXX' -bench 'BenchmarkUDPSendBatch|BenchmarkRegistryReverse' -benchtime 200ms -count 3 ./internal/emunet/ && \
	  $(GO) test -run 'XXX' -bench 'BenchmarkUDPPipeline' -benchtime 200ms -count 3 ./internal/dataplane/ ; } \
		| ./bin/benchguard -baseline bench_results.txt -tolerance 0.35 \
			-only '^Benchmark(UDPSendBatch|UDPPipeline|RegistryReverse)'

# cover enforces the coverage floors: telemetry >= 90%, the GF kernel and
# bit-matrix packages >= 85%, each new concurrency/lifecycle analyzer
# package >= 80% (their golden suites must actually exercise the rules),
# repo-wide >= 70%, and per-file floors on the session-store eviction
# machinery and the batched UDP wire path.
cover:
	$(GO) build -o bin/covercheck ./cmd/covercheck
	$(GO) test -coverprofile=cover.out ./...
	./bin/covercheck -profile cover.out -total 70 -floor ncfn/internal/telemetry=90 \
		-floor ncfn/internal/gf=85 -floor ncfn/internal/bitmat=85 \
		-floor ncfn/internal/analysis/lockorder=80 \
		-floor ncfn/internal/analysis/rcucheck=80 \
		-floor ncfn/internal/analysis/syscallcheck=80 \
		-floor ncfn/internal/analysis/telemetrycheck=80 \
		-floor ncfn/internal/analysis/tagparity=80 \
		-filefloor ncfn/internal/dataplane/sessionstore.go=80 \
		-filefloor ncfn/internal/emunet/udp.go=80 \
		-filefloor ncfn/internal/emunet/udp_mmsg_linux.go=80 \
		-filefloor ncfn/internal/dataplane/txring.go=80 \
		-filefloor ncfn/internal/dataplane/drain.go=80 \
		-filefloor ncfn/internal/controller/lifecycle.go=80 \
		-filefloor ncfn/internal/controller/deployfile.go=80 \
		-filefloor ncfn/internal/controller/admin.go=80

check: build lint test test-race
