module ncfn

go 1.22
