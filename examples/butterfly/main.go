// Butterfly: the classic network coding example (Fig. 6 of the paper),
// reproduced end to end. One source multicasts to two receivers through
// four data centers whose links are each capped at 35 Mbps; network coding
// at the merge node lets both receivers decode at ~70 Mbps — the min-cut —
// while routing alone cannot.
//
//	go run ./examples/butterfly
package main

import (
	"fmt"
	"log"
	"time"

	"ncfn/internal/bench"
	"ncfn/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, src, dsts := topology.Butterfly()
	fmt.Printf("butterfly: source %s -> receivers %v through O1, C1, T, V2 (35 Mbps links)\n", src, dsts)
	fmt.Printf("theoretical multicast capacity with coding (Ford-Fulkerson min-cut): %.1f Mbps\n",
		g.MulticastCapacity(src, dsts))
	if routing, trees, err := g.RoutingMulticastCapacity(src, dsts, 0); err == nil {
		fmt.Printf("best possible without coding (packing %d Steiner trees):         %.1f Mbps\n\n", trees, routing)
	}

	duration := 2 * time.Second
	fmt.Println("running three schemes over the emulated WAN (links scaled to 20%, results rescaled)...")

	nc, err := bench.RunButterfly(bench.ButterflyOpts{Duration: duration, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("  network coding relays:  %6.1f Mbps  (O2 %.1f, C2 %.1f)\n",
		nc.GoodputMbps, nc.PerReceiver["O2"], nc.PerReceiver["C2"])

	fwd, err := bench.RunButterfly(bench.ButterflyOpts{Duration: duration, ForceForwarding: true, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("  routing-only relays:    %6.1f Mbps\n", fwd.GoodputMbps)

	tcp, err := bench.DirectTCPButterfly(0, duration, 7)
	if err != nil {
		return err
	}
	fmt.Printf("  direct TCP (no relays): %6.1f Mbps\n\n", tcp)

	if nc.GoodputMbps > fwd.GoodputMbps && fwd.GoodputMbps > tcp {
		fmt.Println("NC > routing-only > direct: the paper's Fig. 7 ordering reproduced.")
	} else {
		fmt.Println("warning: expected ordering NC > routing-only > direct did not hold this run")
	}
	return nil
}
