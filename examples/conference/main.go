// Conference: the multi-party conferencing scenario the paper cites as a
// driving application (Celerity, Airlift). Three participants each source
// their own multicast session to the other two; all three sessions share
// the same two cloud data centers, whose coding VNFs encode for multiple
// sessions at once ("We allow each VNF in the system to encode data for
// multiple sessions, up to its capacity", Sec. IV-A).
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"
	"time"

	"ncfn/internal/core"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	participants := []topology.NodeID{"alice", "bob", "carol"}
	g := topology.New()
	g.AddNode("dc-east", topology.DataCenter)
	g.AddNode("dc-west", topology.DataCenter)
	for _, p := range participants {
		// Each participant is both a source and a destination; the graph
		// models those roles as separate nodes on the same machine.
		g.AddNode(p, topology.Source)
		g.AddNode(p+".recv", topology.Destination)
		for _, dc := range []topology.NodeID{"dc-east", "dc-west"} {
			if err := g.AddLink(topology.Link{From: p, To: dc, CapacityMbps: 40, Delay: 15 * time.Millisecond}); err != nil {
				return err
			}
			if err := g.AddLink(topology.Link{From: dc, To: p + ".recv", CapacityMbps: 40, Delay: 15 * time.Millisecond}); err != nil {
				return err
			}
		}
	}
	if err := g.AddLink(topology.Link{From: "dc-east", To: "dc-west", CapacityMbps: 100, Delay: 25 * time.Millisecond}); err != nil {
		return err
	}
	if err := g.AddLink(topology.Link{From: "dc-west", To: "dc-east", CapacityMbps: 100, Delay: 25 * time.Millisecond}); err != nil {
		return err
	}

	svc, err := core.NewService(core.Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "dc-east", BinMbps: 500, BoutMbps: 500, CodeMbps: 300},
			{ID: "dc-west", BinMbps: 500, BoutMbps: 500, CodeMbps: 300},
		},
		Alpha:      2,
		Params:     rlnc.Params{GenerationBlocks: 4, BlockSize: 1460},
		Redundancy: 1,
		Seed:       5,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// One session per speaker, multicast to the other two participants.
	for i, speaker := range participants {
		var receivers []topology.NodeID
		for _, p := range participants {
			if p != speaker {
				receivers = append(receivers, p+".recv")
			}
		}
		if err := svc.AddSession(optimize.Session{
			ID:        ncproto.SessionID(i + 1),
			Source:    speaker,
			Receivers: receivers,
			MaxDelay:  120 * time.Millisecond,
			RateCap:   8, // each participant streams 8 Mbps
		}); err != nil {
			return err
		}
	}
	if err := svc.Deploy(); err != nil {
		return err
	}
	plan := svc.Plan()
	fmt.Printf("conference deployed: %d coding VNF(s) across 2 data centers\n", plan.TotalVNFs())
	for i := range participants {
		fmt.Printf("  session %d (%s speaking): %.1f Mbps\n", i+1, participants[i], plan.Rates[ncproto.SessionID(i+1)])
	}

	// Everyone speaks at once: send a burst on every session and verify
	// both listeners of each speaker receive it.
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for i, speaker := range participants {
		id := ncproto.SessionID(i + 1)
		stats, err := svc.Send(id, payload, 300*time.Millisecond)
		if err != nil {
			return fmt.Errorf("session %d (%s): %w", id, speaker, err)
		}
		fmt.Printf("%s's stream delivered to both listeners: %d generations, %.1f Mbps\n",
			speaker, stats.Generations, stats.GoodputMbps)
	}
	fmt.Println("\nthree concurrent coded multicast sessions shared two coding VNF sites.")
	return nil
}
