// Filetransfer: reliable multicast file delivery over REAL UDP sockets on
// the loopback interface — the same data-plane code the emulated
// experiments use, bound to kernel sockets instead.
//
// Topology: source → relay VNF → two receivers, each on its own UDP port.
// The file is split into generations, coded, recoded at the relay, decoded
// at both receivers, acknowledged per generation, and verified by SHA-256.
//
//	go run ./examples/filetransfer            # 2 MiB of generated data
//	go run ./examples/filetransfer -size 8388608
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/rlnc"
	"ncfn/internal/transfer"
)

func main() {
	size := flag.Int("size", 2<<20, "bytes to transfer")
	flag.Parse()
	if err := run(*size); err != nil {
		log.Fatal(err)
	}
}

func run(size int) error {
	params := rlnc.DefaultParams()
	registry := emunet.NewRegistry()

	// Open one real UDP socket per node, all on loopback.
	srcConn, err := emunet.ListenUDP("src", "127.0.0.1:0", registry)
	if err != nil {
		return err
	}
	relayConn, err := emunet.ListenUDP("relay", "127.0.0.1:0", registry)
	if err != nil {
		return err
	}
	recv1Conn, err := emunet.ListenUDP("recv1", "127.0.0.1:0", registry)
	if err != nil {
		return err
	}
	recv2Conn, err := emunet.ListenUDP("recv2", "127.0.0.1:0", registry)
	if err != nil {
		return err
	}
	fmt.Printf("UDP endpoints: src %v, relay %v, recv1 %v, recv2 %v\n",
		srcConn.UDPAddr(), relayConn.UDPAddr(), recv1Conn.UDPAddr(), recv2Conn.UDPAddr())

	// Relay: a recoding VNF with one extra coded packet per generation.
	relay := dataplane.NewVNF(relayConn, dataplane.WithSeed(3))
	if err := relay.Configure(dataplane.SessionConfig{
		ID: 1, Params: params, Role: dataplane.RoleRecoder, Redundancy: 1,
	}); err != nil {
		return err
	}
	relay.Table().Set(1, []dataplane.HopGroup{
		{Addrs: []string{"recv1"}},
		{Addrs: []string{"recv2"}},
	})
	relay.Start()
	defer relay.Close()

	src, err := dataplane.NewSource(srcConn, dataplane.SourceConfig{
		Session: 1, Params: params, Systematic: true, Redundancy: 1, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{{Addrs: []string{"relay"}}})

	recv1, err := dataplane.NewReceiver(recv1Conn, 1, params, "src", nil)
	if err != nil {
		return err
	}
	defer recv1.Close()
	recv2, err := dataplane.NewReceiver(recv2Conn, 1, params, "src", nil)
	if err != nil {
		return err
	}
	defer recv2.Close()

	// Generate and send the file.
	data := make([]byte, size)
	rand.New(rand.NewSource(99)).Read(data)
	sum := sha256.Sum256(data)
	fmt.Printf("sending %d bytes (sha256 %x...) to 2 receivers via the relay VNF\n", size, sum[:8])

	start := time.Now()
	stats, err := transfer.Multicast(src, data, transfer.MulticastConfig{
		Receivers:  []string{"recv1", "recv2"},
		AckTimeout: 300 * time.Millisecond,
		MaxRounds:  60,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// Verify both receivers byte for byte.
	for i, r := range []*dataplane.Receiver{recv1, recv2} {
		got, ok := r.Data(stats.Generations)
		if !ok {
			return fmt.Errorf("receiver %d is missing generations", i+1)
		}
		gotSum := sha256.Sum256(got[:size])
		if !bytes.Equal(gotSum[:], sum[:]) {
			return fmt.Errorf("receiver %d checksum mismatch", i+1)
		}
	}
	fmt.Printf("delivered and verified at both receivers in %v (%.1f Mbps, %d generations, %d resend rounds)\n",
		elapsed.Round(time.Millisecond), stats.GoodputMbps, stats.Generations, stats.Rounds)
	return nil
}
