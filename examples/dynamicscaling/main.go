// Dynamicscaling: the control plane reacting to churn, in fast-forward.
//
// Six multicast sessions with random endpoints across the paper's six data
// centers (EC2 California/Oregon/Virginia + Linode Texas/Georgia/New
// Jersey) join and leave over two virtual hours; receivers come and go.
// The controller solves the deployment program on every event, launches
// and recycles coding VNFs (τ-delayed shutdown), and the run prints the
// Fig. 10 time series — in well under a second of wall time, thanks to the
// virtual clock.
//
//	go run ./examples/dynamicscaling
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/flowsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Now()
	d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: 2017})
	if err != nil {
		return err
	}
	fmt.Println("six sessions prepared across", len(d.Regions), "data centers:")
	for _, s := range d.Sessions {
		fmt.Printf("  session %d: %s -> %d receiver(s), target %.0f Mbps\n",
			s.ID, s.Source, len(s.Receivers), s.RateCap)
	}
	fmt.Println()

	samples, err := flowsim.Run(d.Controller, d.Clock, d.Fig10Events(), flowsim.RunConfig{
		Duration: 120 * time.Minute,
		Interval: 10 * time.Minute,
	})
	if err != nil {
		return err
	}
	if err := flowsim.Series("total throughput and running VNFs over 120 virtual minutes", samples).WriteTable(os.Stdout); err != nil {
		return err
	}

	// Summarize the control signals the run generated.
	counts := map[controller.Signal]int{}
	for _, e := range d.Controller.Events() {
		counts[e.Signal]++
	}
	fmt.Println()
	for _, sig := range []controller.Signal{
		controller.NCStart, controller.NCSettings, controller.NCVNFStart,
		controller.NCVNFEnd, controller.NCForwardTab,
	} {
		fmt.Printf("%-16s x%d\n", sig, counts[sig])
	}
	fmt.Printf("\n120 virtual minutes simulated in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
