// Livestream: the real-time streaming use case from the paper's
// introduction (video conferencing, live video). A fixed-rate stream runs
// from one source through a coding relay to two viewers over a lossy WAN;
// generations that miss their playback deadline are skipped, so coded
// redundancy — not retransmission — protects the stream. The run compares
// NC0 (no redundancy) against NC2 (two extra coded packets per generation)
// under 20% loss.
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/rlnc"
	"ncfn/internal/transfer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("live stream: source -> coding relay -> 2 viewers, 20% loss on both last hops")
	for _, redundancy := range []int{0, 2} {
		stats, err := streamOnce(redundancy)
		if err != nil {
			return err
		}
		fmt.Printf("\nNC%d:\n", redundancy)
		for viewer, st := range stats {
			fmt.Printf("  %-8s on-time %3d/%3d (%.0f%%), late %d, lost %d, mean latency %v\n",
				viewer, st.OnTime, st.GenerationsSent, st.DeliveryRatio*100,
				st.Late, st.Missing, st.MeanLatency.Round(time.Millisecond))
		}
	}
	fmt.Println("\ncoded redundancy recovers losses without retransmission delay — the streaming case for NC1/NC2.")
	return nil
}

func streamOnce(redundancy int) (map[string]transfer.StreamStats, error) {
	n := emunet.NewNetwork()
	defer n.Close()
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 1460}

	// WAN links: 20 Mbps, 20 ms hops, 20% loss on the viewer legs.
	n.SetLink("studio", "relay", emunet.LinkConfig{RateBps: 20e6, Delay: 20 * time.Millisecond, QueuePackets: 512})
	for i, viewer := range []string{"viewer-1", "viewer-2"} {
		n.SetLink("relay", viewer, emunet.LinkConfig{
			RateBps:      20e6,
			Delay:        20 * time.Millisecond,
			Loss:         emunet.NewUniformLoss(0.2, int64(100+i+redundancy*10)),
			QueuePackets: 512,
		})
	}

	relay := dataplane.NewVNF(n.Host("relay"), dataplane.WithSeed(9))
	if err := relay.Configure(dataplane.SessionConfig{
		ID: 1, Params: params, Role: dataplane.RoleRecoder, Redundancy: redundancy,
	}); err != nil {
		return nil, err
	}
	relay.Table().Set(1, []dataplane.HopGroup{
		{Addrs: []string{"viewer-1"}},
		{Addrs: []string{"viewer-2"}},
	})
	relay.Start()
	defer relay.Close()

	src, err := dataplane.NewSource(n.Host("studio"), dataplane.SourceConfig{
		Session: 1, Params: params, Systematic: true, Redundancy: redundancy, Seed: 4,
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{{Addrs: []string{"relay"}}})

	watchers := make(map[string]*transfer.StreamReceiver, 2)
	for _, viewer := range []string{"viewer-1", "viewer-2"} {
		recv, err := dataplane.NewReceiver(n.Host(viewer), 1, params, "", nil)
		if err != nil {
			return nil, err
		}
		defer recv.Close()
		w := transfer.WatchReceiver(recv, nil)
		defer w.Close()
		watchers[viewer] = w
	}

	// A 4 Mbps stream for two seconds with a 250 ms playback budget.
	return transfer.Stream(src, watchers, transfer.StreamConfig{
		RateMbps: 4,
		Duration: 2 * time.Second,
		Deadline: 250 * time.Millisecond,
	})
}
