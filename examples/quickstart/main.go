// Quickstart: the smallest end-to-end use of the library.
//
// It builds a three-node overlay (source → relay data center → receiver),
// lets the optimizer place a coding function at the relay, deploys the data
// plane on the in-process emulated network, and reliably delivers a message
// despite 20% packet loss on the second hop.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ncfn/internal/core"
	"ncfn/internal/emunet"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the overlay: a source, one candidate data center, and a
	// receiver, with link capacities (Mbps) and delays.
	g := topology.New()
	g.AddNode("sender", topology.Source)
	g.AddNode("cloud-dc", topology.DataCenter)
	g.AddNode("viewer", topology.Destination)
	for _, l := range []topology.Link{
		{From: "sender", To: "cloud-dc", CapacityMbps: 50, Delay: 10 * time.Millisecond},
		{From: "cloud-dc", To: "viewer", CapacityMbps: 50, Delay: 10 * time.Millisecond},
	} {
		if err := g.AddLink(l); err != nil {
			return err
		}
	}

	// 2. Build the service: coding parameters, redundancy for loss
	// protection, and the data center's per-VNF resources.
	svc, err := core.NewService(core.Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "cloud-dc", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:      1,
		Params:     rlnc.Params{GenerationBlocks: 4, BlockSize: 1460},
		Redundancy: 2, // NC2: two extra coded packets per generation
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// 3. Register a session and deploy: this solves the placement/routing
	// program and spins up the coding VNF, source, and receiver.
	if err := svc.AddSession(optimize.Session{
		ID:        1,
		Source:    "sender",
		Receivers: []topology.NodeID{"viewer"},
		MaxDelay:  100 * time.Millisecond,
	}); err != nil {
		return err
	}
	if err := svc.Deploy(); err != nil {
		return err
	}
	fmt.Printf("deployed: rate %.1f Mbps, %d coding VNF(s)\n",
		svc.Plan().Rates[1], svc.Plan().TotalVNFs())

	// 4. Make the second hop lossy, then send data reliably anyway.
	svc.Network().SetLink("cloud-dc", "viewer", emunet.LinkConfig{
		RateBps: 50e6,
		Delay:   10 * time.Millisecond,
		Loss:    emunet.NewUniformLoss(0.2, 42),
	})
	message := bytes.Repeat([]byte("network coding as a virtual network function! "), 2000)
	stats, err := svc.Send(1, message, 200*time.Millisecond)
	if err != nil {
		return err
	}

	// 5. Verify the receiver got every byte.
	recv, err := svc.Receiver(1, "viewer")
	if err != nil {
		return err
	}
	got, ok := recv.Data(stats.Generations)
	if !ok || !bytes.Equal(got[:len(message)], message) {
		return fmt.Errorf("delivery mismatch")
	}
	fmt.Printf("delivered %d bytes in %d generations (%d resend rounds) at %.1f Mbps over a 20%%-lossy hop\n",
		len(message), stats.Generations, stats.Rounds, stats.GoodputMbps)
	return nil
}
