// Package probe implements the measurement tools the scaling algorithm
// depends on: a ping equivalent for link delay (Alg. 2 detects delay
// changes via periodic pings between VNFs) and an iperf3 equivalent for
// available bandwidth (Alg. 1's input). Both run over emunet.PacketConn so
// they work on the emulated network and over real UDP alike.
package probe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/simclock"
)

// Wire types (first byte of each probe datagram). 0x9C is reserved for NC
// data packets, so probes use a disjoint space.
const (
	typePingReq   = 0x70
	typePingReply = 0x71
	typeBulk      = 0x72
	typeReportReq = 0x73
	typeReport    = 0x74
)

// ErrTimeout is returned when a probe receives no answer in time.
var ErrTimeout = errors.New("probe: timeout")

// Responder answers ping requests and counts bulk bytes, playing the role
// of the iperf3 server / ping target on each VNF.
type Responder struct {
	conn emunet.PacketConn

	mu        sync.Mutex
	bulkBytes map[string]uint64 // per-peer counters

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// NewResponder starts a responder on conn.
func NewResponder(conn emunet.PacketConn) *Responder {
	r := &Responder{
		conn:      conn,
		bulkBytes: make(map[string]uint64),
		done:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	return r
}

func (r *Responder) run() {
	defer r.wg.Done()
	for {
		pkt, src, err := r.conn.Recv()
		if err != nil {
			if errors.Is(err, emunet.ErrClosed) {
				return
			}
			select {
			case <-r.done:
				return
			default:
				continue
			}
		}
		if len(pkt) == 0 {
			continue
		}
		switch pkt[0] {
		case typePingReq:
			reply := append([]byte(nil), pkt...)
			reply[0] = typePingReply
			_ = r.conn.Send(src, reply)
		case typeBulk:
			r.mu.Lock()
			r.bulkBytes[src] += uint64(len(pkt))
			r.mu.Unlock()
		case typeReportReq:
			r.mu.Lock()
			count := r.bulkBytes[src]
			r.bulkBytes[src] = 0
			r.mu.Unlock()
			reply := make([]byte, 9)
			reply[0] = typeReport
			binary.BigEndian.PutUint64(reply[1:], count)
			_ = r.conn.Send(src, reply)
		}
	}
}

// Close stops the responder.
func (r *Responder) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.done)
		err = r.conn.Close()
		r.wg.Wait()
	})
	return err
}

// Prober is the client side: it owns its conn and a single receive
// goroutine, so probes can time out without leaking readers.
type Prober struct {
	conn  emunet.PacketConn
	clock simclock.Clock
	inbox chan []byte

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// NewProber starts a prober on conn. clk defaults to the real clock.
func NewProber(conn emunet.PacketConn, clk simclock.Clock) *Prober {
	if clk == nil {
		clk = simclock.Real{}
	}
	p := &Prober{
		conn:  conn,
		clock: clk,
		inbox: make(chan []byte, 1024),
		done:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

func (p *Prober) run() {
	defer p.wg.Done()
	for {
		pkt, _, err := p.conn.Recv()
		if err != nil {
			if errors.Is(err, emunet.ErrClosed) {
				return
			}
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		select {
		case p.inbox <- pkt:
		default:
			// Consumer behind; drop like a socket buffer.
		}
	}
}

// Close stops the prober.
func (p *Prober) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		err = p.conn.Close()
		p.wg.Wait()
	})
	return err
}

// PingResult aggregates round-trip measurements like the ping tool's
// summary line (Table II reports min/max/average RTTs).
type PingResult struct {
	Sent, Received int
	Min, Max, Avg  time.Duration
}

// Ping measures the round-trip time to target with count echo requests of
// the given payload size. Lost replies are excluded from the statistics.
func (p *Prober) Ping(target string, count, size int, timeout time.Duration) (PingResult, error) {
	if size < 16 {
		size = 16
	}
	res := PingResult{Min: time.Duration(1<<62 - 1)}
	for seq := 0; seq < count; seq++ {
		pkt := make([]byte, size)
		pkt[0] = typePingReq
		binary.BigEndian.PutUint32(pkt[1:], uint32(seq))
		start := p.clock.Now()
		if err := p.conn.Send(target, pkt); err != nil {
			return res, fmt.Errorf("probe: ping send: %w", err)
		}
		res.Sent++
		rtt, ok := p.awaitPingReply(uint32(seq), timeout, start)
		if !ok {
			continue
		}
		res.Received++
		if rtt < res.Min {
			res.Min = rtt
		}
		if rtt > res.Max {
			res.Max = rtt
		}
		res.Avg += rtt
	}
	if res.Received == 0 {
		return res, ErrTimeout
	}
	res.Avg /= time.Duration(res.Received)
	return res, nil
}

// awaitPingReply waits for the matching echo reply, discarding stale or
// foreign packets.
func (p *Prober) awaitPingReply(seq uint32, timeout time.Duration, start time.Time) (time.Duration, bool) {
	deadline := p.clock.After(timeout)
	for {
		select {
		case pkt := <-p.inbox:
			if len(pkt) >= 5 && pkt[0] == typePingReply && binary.BigEndian.Uint32(pkt[1:]) == seq {
				return p.clock.Now().Sub(start), true
			}
		case <-deadline:
			return 0, false
		case <-p.done:
			return 0, false
		}
	}
}

// BandwidthResult is one iperf3-style measurement.
type BandwidthResult struct {
	Mbps     float64
	Bytes    uint64
	Duration time.Duration
}

// MeasureBandwidth floods target with pktSize datagrams for the given
// duration, then asks the responder how many bytes made it through,
// returning the delivered rate — the link's available bandwidth.
func (p *Prober) MeasureBandwidth(target string, duration time.Duration, pktSize int) (BandwidthResult, error) {
	if pktSize < 64 {
		pktSize = 64
	}
	pkt := make([]byte, pktSize)
	pkt[0] = typeBulk
	start := p.clock.Now()
	pause := duration / 500
	if pause <= 0 {
		pause = 50 * time.Microsecond
	}
	for p.clock.Now().Sub(start) < duration {
		// Bursts keep the link saturated even when the sleep below is
		// stretched by scheduler granularity; the pause lets the emulated
		// link's delivery goroutines run so we measure delivery, not how
		// fast the queue fills.
		for i := 0; i < 8; i++ {
			if err := p.conn.Send(target, pkt); err != nil {
				return BandwidthResult{}, fmt.Errorf("probe: bulk send: %w", err)
			}
		}
		p.clock.Sleep(pause)
	}
	// Let in-flight packets drain before asking for the report.
	p.clock.Sleep(100 * time.Millisecond)
	if err := p.conn.Send(target, []byte{typeReportReq}); err != nil {
		return BandwidthResult{}, fmt.Errorf("probe: report request: %w", err)
	}
	deadline := p.clock.After(5 * time.Second)
	for {
		select {
		case reply := <-p.inbox:
			if len(reply) == 9 && reply[0] == typeReport {
				n := binary.BigEndian.Uint64(reply[1:])
				elapsed := p.clock.Now().Sub(start)
				return BandwidthResult{
					Mbps:     float64(n) * 8 / elapsed.Seconds() / 1e6,
					Bytes:    n,
					Duration: elapsed,
				}, nil
			}
		case <-deadline:
			return BandwidthResult{}, ErrTimeout
		case <-p.done:
			return BandwidthResult{}, emunet.ErrClosed
		}
	}
}
