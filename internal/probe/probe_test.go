package probe

import (
	"errors"
	"testing"
	"time"

	"ncfn/internal/emunet"
)

func TestPingMeasuresRTT(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	n.SetDuplexLink("a", "b", emunet.LinkConfig{Delay: 20 * time.Millisecond})
	resp := NewResponder(n.Host("b"))
	defer resp.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()

	res, err := p.Ping("b", 5, 64, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 5 {
		t.Fatalf("received %d of 5", res.Received)
	}
	// RTT should be ~40ms (2x20ms one-way).
	if res.Avg < 35*time.Millisecond || res.Avg > 200*time.Millisecond {
		t.Fatalf("avg RTT = %v, want ~40ms", res.Avg)
	}
	if res.Min > res.Avg || res.Avg > res.Max {
		t.Fatalf("min/avg/max inconsistent: %+v", res)
	}
}

func TestPingTimeout(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	n.SetLink("a", "void", emunet.LinkConfig{}) // no responder listening
	n.Host("void")
	p := NewProber(n.Host("a"), nil)
	defer p.Close()
	_, err := p.Ping("void", 2, 64, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPingUnknownTarget(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()
	if _, err := p.Ping("ghost", 1, 64, time.Second); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestPingWithLossPartialResults(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	n.SetLink("a", "b", emunet.LinkConfig{Loss: emunet.NewUniformLoss(0.5, 3)})
	n.SetLink("b", "a", emunet.LinkConfig{})
	resp := NewResponder(n.Host("b"))
	defer resp.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()
	res, err := p.Ping("b", 20, 64, 30*time.Millisecond)
	if err != nil && res.Received == 0 {
		t.Skip("all pings lost (unlucky seed)")
	}
	if res.Received >= res.Sent {
		t.Fatalf("expected some loss: %+v", res)
	}
}

func TestMeasureBandwidthApproximatesLinkRate(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	// 8 Mbps link: the probe should measure roughly that.
	n.SetLink("a", "b", emunet.LinkConfig{RateBps: 8e6, QueuePackets: 64})
	n.SetLink("b", "a", emunet.LinkConfig{})
	resp := NewResponder(n.Host("b"))
	defer resp.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()

	res, err := p.MeasureBandwidth("b", 500*time.Millisecond, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 4 || res.Mbps > 10 {
		t.Fatalf("measured %.1f Mbps on an 8 Mbps link", res.Mbps)
	}
	if res.Bytes == 0 {
		t.Fatal("no bytes counted")
	}
}

func TestMeasureBandwidthUnknownTarget(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()
	if _, err := p.MeasureBandwidth("ghost", 10*time.Millisecond, 512); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestResponderIgnoresGarbage(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	resp := NewResponder(n.Host("b"))
	defer resp.Close()
	a := n.Host("a")
	if err := a.Send("b", []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte{0xFF, 1, 2}); err != nil {
		t.Fatal(err)
	}
	// Then a real ping must still work.
	p := NewProber(a, nil)
	defer p.Close()
	if _, err := p.Ping("b", 1, 64, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestProberCloseIdempotent(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	p := NewProber(n.Host("a"), nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewResponder(n.Host("b"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReportResetsCounter(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	resp := NewResponder(n.Host("b"))
	defer resp.Close()
	p := NewProber(n.Host("a"), nil)
	defer p.Close()
	first, err := p.MeasureBandwidth("b", 50*time.Millisecond, 512)
	if err != nil {
		t.Fatal(err)
	}
	if first.Bytes == 0 {
		t.Fatal("first measurement empty")
	}
	// A second measurement must not include the first one's bytes: with
	// the same duration, the count should be comparable, not doubled.
	second, err := p.MeasureBandwidth("b", 50*time.Millisecond, 512)
	if err != nil {
		t.Fatal(err)
	}
	if second.Bytes > 3*first.Bytes {
		t.Fatalf("second count %d suggests counter not reset (first %d)", second.Bytes, first.Bytes)
	}
}
