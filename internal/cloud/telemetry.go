package cloud

import (
	"ncfn/internal/telemetry"
)

// Telemetry instrument names.
const (
	MetricLaunches       = "cloud_launches"
	MetricLaunchFailures = "cloud_launch_failures"
	MetricCrashes        = "cloud_crashes"
	CloudFlightName      = "cloud_flight"
)

// cloudTelemetry is the provider's instrument set.
type cloudTelemetry struct {
	launches    *telemetry.Counter
	launchFails *telemetry.Counter
	crashes     *telemetry.Counter
	rec         *telemetry.Recorder
}

// AttachTelemetry mirrors the provider's launch/crash accounting into the
// given registry and traces injected faults (VM crashes, launch failures)
// in its flight recorder, timestamped by the cloud's own clock so chaos
// runs under a virtual clock replay deterministically. Safe to call once,
// before traffic; nil is ignored.
func (c *Cloud) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = &cloudTelemetry{
		launches:    reg.Counter(MetricLaunches, 1),
		launchFails: reg.Counter(MetricLaunchFailures, 1),
		crashes:     reg.Counter(MetricCrashes, 1),
		rec:         reg.Recorder(CloudFlightName, telemetry.DefaultRecorderCapacity),
	}
}

// recordFaultLocked traces one injected fault. The cloud mutex is held.
func (c *Cloud) recordFaultLocked(node string, value int64) {
	if c.tel == nil {
		return
	}
	c.tel.rec.Record(c.clock.Now().UnixNano(), telemetry.EventFault, node, 0, 0, value)
}
