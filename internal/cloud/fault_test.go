package cloud

import (
	"errors"
	"testing"
	"time"

	"ncfn/internal/simclock"
)

func chaosCloud(t *testing.T) (*Cloud, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	return New(clk, 1, Region{ID: "oregon", Provider: "ec2", BaseInMbps: 900, BaseOutMbps: 900}), clk
}

func TestCrashInstanceLifecycle(t *testing.T) {
	c, clk := chaosCloud(t)
	inst, err := c.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(DefaultLaunchDelay)
	if st, _ := c.InstanceState(inst.ID); st != StateRunning {
		t.Fatalf("state before crash = %s", st)
	}
	if err := c.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.InstanceState(inst.ID); st != StateCrashed {
		t.Fatalf("state after crash = %s", st)
	}
	if got := c.Crashes("oregon"); got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}
	// Crashing again is a no-op.
	if err := c.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	if got := c.Crashes("oregon"); got != 1 {
		t.Fatalf("Crashes after double crash = %d, want 1", got)
	}
	if err := c.CrashInstance("i-nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("crash unknown = %v", err)
	}
}

func TestRestartPaysFullLaunchDelay(t *testing.T) {
	c, clk := chaosCloud(t)
	inst, _ := c.LaunchInstance("oregon")
	clk.Advance(DefaultLaunchDelay)

	// Restarting a live instance is rejected.
	if _, err := c.RestartInstance(inst.ID); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("restart running = %v, want ErrNotCrashed", err)
	}

	if err := c.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	readyAt, err := c.RestartInstance(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(DefaultLaunchDelay); !readyAt.Equal(want) {
		t.Fatalf("readyAt = %v, want %v (the paper's 35 s relaunch)", readyAt, want)
	}
	if st, _ := c.InstanceState(inst.ID); st != StatePending {
		t.Fatalf("state right after restart = %s", st)
	}
	clk.Advance(DefaultLaunchDelay - time.Second)
	if st, _ := c.InstanceState(inst.ID); st != StatePending {
		t.Fatalf("state 1s before ready = %s", st)
	}
	clk.Advance(time.Second)
	if st, _ := c.InstanceState(inst.ID); st != StateRunning {
		t.Fatalf("state at ready = %s", st)
	}
	// The restart counts as a launch.
	if got := c.Launches("oregon"); got != 2 {
		t.Fatalf("Launches = %d, want 2", got)
	}
}

func TestFailLaunchesInjection(t *testing.T) {
	c, _ := chaosCloud(t)
	c.FailLaunches("oregon", 2)
	for i := 0; i < 2; i++ {
		if _, err := c.LaunchInstance("oregon"); !errors.Is(err, ErrLaunchFailed) {
			t.Fatalf("launch %d = %v, want ErrLaunchFailed", i, err)
		}
	}
	if _, err := c.LaunchInstance("oregon"); err != nil {
		t.Fatalf("launch after budget spent = %v", err)
	}
	if got := c.LaunchFailures("oregon"); got != 2 {
		t.Fatalf("LaunchFailures = %d, want 2", got)
	}
	if got := c.Launches("oregon"); got != 1 {
		t.Fatalf("Launches = %d, want 1 (failures must not count)", got)
	}
}

func TestCrashStopsBilling(t *testing.T) {
	c, clk := chaosCloud(t)
	inst, _ := c.LaunchInstance("oregon")
	clk.Advance(time.Hour)
	if err := c.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Hour) // dead time must not bill
	if got := c.AccruedVMHours(); got < 0.99 || got > 1.01 {
		t.Fatalf("AccruedVMHours = %.3f, want ~1.0", got)
	}
	// Restart opens a fresh billing segment.
	if _, err := c.RestartInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Minute)
	if got := c.AccruedVMHours(); got < 1.49 || got > 1.51 {
		t.Fatalf("AccruedVMHours after restart = %.3f, want ~1.5", got)
	}
}
