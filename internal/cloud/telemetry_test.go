package cloud

import (
	"testing"
	"time"

	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// TestCloudTelemetryAccounting pins the provider's instrument set: launches,
// injected launch failures, and crashes all land in the attached registry,
// and injected faults are traced in the flight recorder with virtual-clock
// timestamps.
func TestCloudTelemetryAccounting(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	c := New(clk, 1, Region{ID: "oregon", BaseInMbps: 900, BaseOutMbps: 900})
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(reg)

	inst, err := c.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(DefaultLaunchDelay)

	c.FailLaunches("oregon", 1)
	if _, err := c.LaunchInstance("oregon"); err == nil {
		t.Fatal("injected launch failure did not fail")
	}
	if err := c.CrashInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartInstance(inst.ID); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	// One initial launch plus the restart; the injected failure is counted
	// separately.
	if got := snap.Counters[MetricLaunches]; got != 2 {
		t.Fatalf("launches = %d, want 2", got)
	}
	if got := snap.Counters[MetricLaunchFailures]; got != 1 {
		t.Fatalf("launch failures = %d, want 1", got)
	}
	if got := snap.Counters[MetricCrashes]; got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}

	rec := reg.Recorder(CloudFlightName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventFault)
	if len(evs) != 2 {
		t.Fatalf("fault events = %d, want 2 (failed launch + crash)", len(evs))
	}
	for _, e := range evs {
		if e.Time < 0 || e.Node == "" {
			t.Fatalf("malformed fault event: %+v", e)
		}
	}

	// Nil registry detaches nothing and panics nowhere.
	c.AttachTelemetry(nil)
	if _, err := c.LaunchInstance("oregon"); err != nil {
		t.Fatal(err)
	}
}
