// Package cloud simulates the geo-distributed cloud substrate the paper
// deploys on: a set of data centers (three Amazon EC2 regions and three
// Linode regions in the evaluation), VM instances with realistic launch
// latency, per-VM inbound/outbound bandwidth caps that vary over time
// (Table I), and region-to-region propagation delays.
//
// The controller talks to this package the way the paper's controller talks
// to the EC2 CLI / Linode API: LaunchInstance, TerminateInstance. A
// simclock.Clock drives all timing, so the dynamic experiments run under a
// virtual clock.
package cloud

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

// Errors.
var (
	ErrUnknownRegion   = errors.New("cloud: unknown region")
	ErrUnknownInstance = errors.New("cloud: unknown instance")
	// ErrLaunchFailed is the transient provider-side launch failure injected
	// by FailLaunches (the EC2 "InsufficientInstanceCapacity" case the
	// controller must retry through).
	ErrLaunchFailed = errors.New("cloud: launch failed (injected)")
	// ErrNotCrashed is returned by RestartInstance on a live instance.
	ErrNotCrashed = errors.New("cloud: instance not crashed")
)

// DefaultLaunchDelay is the measured average time to launch a new VM
// instance (Sec. V-C5: 35 s on EC2 Oregon).
const DefaultLaunchDelay = 35 * time.Second

// DefaultVNFStartDelay is the measured time to start a network coding
// function on an already-running VM (Sec. V-C5: 376.21 ms).
const DefaultVNFStartDelay = 376 * time.Millisecond

// Region describes one data center region.
type Region struct {
	ID topology.NodeID
	// Provider is a label ("ec2", "linode").
	Provider string
	// BaseInMbps / BaseOutMbps are the nominal per-VM bandwidth caps
	// (Table I measures ~880–940 Mbps on EC2 c3.xlarge).
	BaseInMbps, BaseOutMbps float64
	// LaunchDelay overrides DefaultLaunchDelay when positive.
	LaunchDelay time.Duration
}

// InstanceState is a VM lifecycle state.
type InstanceState int

// Instance states.
const (
	StatePending InstanceState = iota + 1
	StateRunning
	StateTerminated
	// StateCrashed marks a VM killed by fault injection (CrashInstance): it
	// stops serving and billing, but unlike Terminated it can be restarted,
	// paying the full launch latency again.
	StateCrashed
)

// String names the state.
func (s InstanceState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateTerminated:
		return "terminated"
	case StateCrashed:
		return "crashed"
	default:
		return "unknown"
	}
}

// Instance is one simulated VM.
type Instance struct {
	ID       string
	Region   topology.NodeID
	state    InstanceState
	launched time.Time
	readyAt  time.Time
	// terminatedAt is set when the instance stops accruing cost.
	terminatedAt time.Time
}

// Cloud is the simulated provider.
type Cloud struct {
	clock simclock.Clock

	mu        sync.Mutex
	regions   map[topology.NodeID]*Region
	instances map[string]*Instance
	nextID    int
	rng       *rand.Rand
	// bwJitter is the ± fraction applied to bandwidth samples, modeling
	// the time variation of Table I (~±3%).
	bwJitter float64
	// bwScale lets experiments cut a region's bandwidth (Fig. 11's
	// "cut inbound/outbound bandwidth of all our own VNFs ... by half").
	bwScale map[topology.NodeID]float64
	// launches counts successful LaunchInstance calls per region.
	launches map[topology.NodeID]int
	// failLaunch injects that many launch failures per region (chaos).
	failLaunch map[topology.NodeID]int
	// launchFails counts injected launch failures delivered per region.
	launchFails map[topology.NodeID]int
	// crashes counts CrashInstance calls per region.
	crashes map[topology.NodeID]int
	// retiredHours accumulates VM-hours of terminated/crashed segments, so
	// restarts bill as fresh segments without losing history.
	retiredHours float64
	// tel mirrors launch/crash accounting into a telemetry registry when
	// attached (AttachTelemetry); nil records nothing.
	tel *cloudTelemetry
}

// New builds a cloud with the given regions.
func New(clk simclock.Clock, seed int64, regions ...Region) *Cloud {
	if clk == nil {
		clk = simclock.Real{}
	}
	c := &Cloud{
		clock:       clk,
		regions:     make(map[topology.NodeID]*Region, len(regions)),
		instances:   make(map[string]*Instance),
		rng:         rand.New(rand.NewSource(seed)),
		bwJitter:    0.03,
		bwScale:     make(map[topology.NodeID]float64),
		launches:    make(map[topology.NodeID]int),
		failLaunch:  make(map[topology.NodeID]int),
		launchFails: make(map[topology.NodeID]int),
		crashes:     make(map[topology.NodeID]int),
	}
	for i := range regions {
		r := regions[i]
		c.regions[r.ID] = &r
	}
	return c
}

// Regions returns the region IDs, sorted.
func (c *Cloud) Regions() []topology.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]topology.NodeID, 0, len(c.regions))
	for id := range c.regions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Region returns a region's static description.
func (c *Cloud) Region(id topology.NodeID) (Region, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[id]
	if !ok {
		return Region{}, false
	}
	return *r, true
}

// LaunchInstance starts a new VM in the region. The instance is Pending
// until the region's launch delay elapses (it becomes Running lazily, based
// on the clock). Launching is asynchronous, like the EC2 API.
func (c *Cloud) LaunchInstance(region topology.NodeID) (*Instance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[region]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRegion, region)
	}
	if c.failLaunch[region] > 0 {
		c.failLaunch[region]--
		c.launchFails[region]++
		if c.tel != nil {
			c.tel.launchFails.Inc(0)
		}
		c.recordFaultLocked(string(region), 1)
		return nil, fmt.Errorf("%w in %s", ErrLaunchFailed, region)
	}
	delay := r.LaunchDelay
	if delay <= 0 {
		delay = DefaultLaunchDelay
	}
	c.nextID++
	now := c.clock.Now()
	inst := &Instance{
		ID:       fmt.Sprintf("i-%s-%04d", region, c.nextID),
		Region:   region,
		state:    StatePending,
		launched: now,
		readyAt:  now.Add(delay),
	}
	c.instances[inst.ID] = inst
	c.launches[region]++
	if c.tel != nil {
		c.tel.launches.Inc(0)
	}
	return inst, nil
}

// refreshLocked updates an instance's lazy state transition.
func (c *Cloud) refreshLocked(inst *Instance) {
	if inst.state == StatePending && !c.clock.Now().Before(inst.readyAt) {
		inst.state = StateRunning
	}
}

// InstanceState returns the instance's current lifecycle state.
func (c *Cloud) InstanceState(id string) (InstanceState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	c.refreshLocked(inst)
	return inst.state, nil
}

// ReadyAt returns when the instance becomes (or became) Running.
func (c *Cloud) ReadyAt(id string) (time.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return time.Time{}, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	return inst.readyAt, nil
}

// retireLocked ends an instance's current billing segment at now.
func (c *Cloud) retireLocked(inst *Instance, now time.Time) {
	inst.terminatedAt = now
	if now.After(inst.launched) {
		c.retiredHours += now.Sub(inst.launched).Hours()
	}
}

// TerminateInstance shuts a VM down immediately.
func (c *Cloud) TerminateInstance(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if inst.state != StateTerminated && inst.state != StateCrashed {
		c.retireLocked(inst, c.clock.Now())
	}
	inst.state = StateTerminated
	return nil
}

// CrashInstance fails a VM abruptly (fault injection): the instance stops
// serving and billing, and stays visible in the Crashed state until
// restarted or terminated. Crashing an already-dead instance is a no-op.
func (c *Cloud) CrashInstance(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if inst.state == StateTerminated || inst.state == StateCrashed {
		return nil
	}
	c.retireLocked(inst, c.clock.Now())
	inst.state = StateCrashed
	c.crashes[inst.Region]++
	if c.tel != nil {
		c.tel.crashes.Inc(0)
	}
	c.recordFaultLocked(id, 2)
	return nil
}

// RestartInstance relaunches a crashed VM in place. The instance re-enters
// Pending and pays the region's full launch latency (the paper's measured
// 35 s, Sec. V-C5) before Running again; it returns the time the instance
// will be ready.
func (c *Cloud) RestartInstance(id string) (time.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return time.Time{}, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if inst.state != StateCrashed {
		return time.Time{}, fmt.Errorf("%w: %s is %s", ErrNotCrashed, id, inst.state)
	}
	delay := DefaultLaunchDelay
	if r, ok := c.regions[inst.Region]; ok && r.LaunchDelay > 0 {
		delay = r.LaunchDelay
	}
	now := c.clock.Now()
	inst.state = StatePending
	inst.launched = now
	inst.readyAt = now.Add(delay)
	inst.terminatedAt = time.Time{}
	c.launches[inst.Region]++
	if c.tel != nil {
		c.tel.launches.Inc(0)
	}
	return inst.readyAt, nil
}

// FailLaunches makes the next n LaunchInstance calls in the region fail
// with ErrLaunchFailed — transient provider capacity errors for exercising
// the controller's retry path.
func (c *Cloud) FailLaunches(region topology.NodeID, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLaunch[region] = n
}

// Crashes returns how many instances were crashed in the region.
func (c *Cloud) Crashes(region topology.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashes[region]
}

// LaunchFailures returns how many injected launch failures the region has
// delivered.
func (c *Cloud) LaunchFailures(region topology.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.launchFails[region]
}

// RunningInstances returns the Running instance count per region.
func (c *Cloud) RunningInstances() map[topology.NodeID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[topology.NodeID]int)
	for _, inst := range c.instances {
		c.refreshLocked(inst)
		if inst.state == StateRunning {
			out[inst.Region]++
		}
	}
	return out
}

// Launches returns how many instances were ever launched in the region.
func (c *Cloud) Launches(region topology.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.launches[region]
}

// SetBandwidthScale multiplies a region's per-VM bandwidth by factor (1 =
// nominal, 0.5 = Fig. 11's 50% cut).
func (c *Cloud) SetBandwidthScale(region topology.NodeID, factor float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[region]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRegion, region)
	}
	c.bwScale[region] = factor
	return nil
}

// BandwidthSample is one iperf3-style measurement.
type BandwidthSample struct {
	Region          topology.NodeID
	At              time.Time
	InMbps, OutMbps float64
}

// MeasureBandwidth returns the current per-VM in/out bandwidth of a region
// with the time-varying jitter of Table I applied.
func (c *Cloud) MeasureBandwidth(region topology.NodeID) (BandwidthSample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[region]
	if !ok {
		return BandwidthSample{}, fmt.Errorf("%w: %s", ErrUnknownRegion, region)
	}
	scale, ok := c.bwScale[region]
	if !ok {
		scale = 1
	}
	jitter := func(base float64) float64 {
		return base * scale * (1 + c.bwJitter*(2*c.rng.Float64()-1))
	}
	return BandwidthSample{
		Region:  region,
		At:      c.clock.Now(),
		InMbps:  jitter(r.BaseInMbps),
		OutMbps: jitter(r.BaseOutMbps),
	}, nil
}

// AccruedVMHours returns the total VM-hours billed so far: every instance
// accrues from launch until termination (or now, if still running) — the
// operational-cost metric that α converts into the objective of program
// (2), and the quantity the τ-reuse ablation trades against relaunch
// latency.
func (c *Cloud) AccruedVMHours() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	total := c.retiredHours
	for _, inst := range c.instances {
		if inst.state == StateTerminated || inst.state == StateCrashed {
			continue // retired segments are already in retiredHours
		}
		if now.After(inst.launched) {
			total += now.Sub(inst.launched).Hours()
		}
	}
	return total
}

// PaperRegions returns the six data centers of the evaluation (Sec. V-A):
// EC2 California, Oregon, Virginia and Linode Texas, Georgia, New Jersey.
// EC2 c3.xlarge VMs measured ~880–940 Mbps symmetric (Table I); Linode VMs
// are capped at 40 Gbps in / 125 Mbps out.
func PaperRegions() []Region {
	return []Region{
		{ID: "california", Provider: "ec2", BaseInMbps: 910, BaseOutMbps: 915},
		{ID: "oregon", Provider: "ec2", BaseInMbps: 912, BaseOutMbps: 910},
		{ID: "virginia", Provider: "ec2", BaseInMbps: 905, BaseOutMbps: 908},
		{ID: "texas", Provider: "linode", BaseInMbps: 2000, BaseOutMbps: 125},
		{ID: "georgia", Provider: "linode", BaseInMbps: 2000, BaseOutMbps: 125},
		{ID: "newjersey", Provider: "linode", BaseInMbps: 2000, BaseOutMbps: 125},
	}
}

// PaperDelays returns representative one-way delays (ms) between the six
// regions, symmetric, derived from typical North-American inter-region
// RTTs and consistent with the paper's Table II measurements.
func PaperDelays() map[[2]topology.NodeID]time.Duration {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	pairs := map[[2]topology.NodeID]time.Duration{
		{"california", "oregon"}:    ms(10),
		{"california", "virginia"}:  ms(38),
		{"california", "texas"}:     ms(22),
		{"california", "georgia"}:   ms(30),
		{"california", "newjersey"}: ms(36),
		{"oregon", "virginia"}:      ms(45),
		{"oregon", "texas"}:         ms(25),
		{"oregon", "georgia"}:       ms(35),
		{"oregon", "newjersey"}:     ms(40),
		{"virginia", "texas"}:       ms(18),
		{"virginia", "georgia"}:     ms(8),
		{"virginia", "newjersey"}:   ms(5),
		{"texas", "georgia"}:        ms(12),
		{"texas", "newjersey"}:      ms(20),
		{"georgia", "newjersey"}:    ms(10),
	}
	out := make(map[[2]topology.NodeID]time.Duration, 2*len(pairs))
	for k, v := range pairs {
		out[k] = v
		out[[2]topology.NodeID{k[1], k[0]}] = v
	}
	return out
}
