package cloud

import (
	"errors"
	"testing"
	"time"

	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

var epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

func testCloud() (*Cloud, *simclock.Virtual) {
	clk := simclock.NewVirtual(epoch)
	c := New(clk, 1, PaperRegions()...)
	return c, clk
}

// mustLaunch fails the test if a launch the scenario depends on errors out.
func mustLaunch(t *testing.T, c *Cloud, region topology.NodeID) *Instance {
	t.Helper()
	inst, err := c.LaunchInstance(region)
	if err != nil {
		t.Fatalf("LaunchInstance(%v): %v", region, err)
	}
	return inst
}

func TestRegionsSorted(t *testing.T) {
	c, _ := testCloud()
	regions := c.Regions()
	if len(regions) != 6 {
		t.Fatalf("got %d regions, want 6", len(regions))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i-1] >= regions[i] {
			t.Fatal("regions not sorted")
		}
	}
}

func TestRegionLookup(t *testing.T) {
	c, _ := testCloud()
	r, ok := c.Region("oregon")
	if !ok || r.Provider != "ec2" {
		t.Fatalf("oregon = %+v, %v", r, ok)
	}
	if _, ok := c.Region("mars"); ok {
		t.Fatal("unknown region found")
	}
}

func TestLaunchLifecycle(t *testing.T) {
	c, clk := testCloud()
	inst, err := c.LaunchInstance("oregon")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.InstanceState(inst.ID)
	if err != nil || st != StatePending {
		t.Fatalf("state = %v, %v; want pending", st, err)
	}
	clk.Advance(DefaultLaunchDelay - time.Second)
	if st, _ := c.InstanceState(inst.ID); st != StatePending {
		t.Fatal("instance ready too early")
	}
	clk.Advance(2 * time.Second)
	if st, _ := c.InstanceState(inst.ID); st != StateRunning {
		t.Fatal("instance not running after launch delay")
	}
	ready, err := c.ReadyAt(inst.ID)
	if err != nil || !ready.Equal(epoch.Add(DefaultLaunchDelay)) {
		t.Fatalf("ReadyAt = %v, %v", ready, err)
	}
}

func TestLaunchDelayMatchesPaper(t *testing.T) {
	// Sec. V-C5: launching a new instance takes ~35 s, about 100x slower
	// than starting a coding function (~376 ms).
	if DefaultLaunchDelay != 35*time.Second {
		t.Fatal("launch delay drifted from the paper's measurement")
	}
	ratio := float64(DefaultLaunchDelay) / float64(DefaultVNFStartDelay)
	if ratio < 50 || ratio > 150 {
		t.Fatalf("launch/start ratio %.0f, paper reports ~100x", ratio)
	}
}

func TestLaunchUnknownRegion(t *testing.T) {
	c, _ := testCloud()
	if _, err := c.LaunchInstance("mars"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("err = %v", err)
	}
}

func TestTerminate(t *testing.T) {
	c, clk := testCloud()
	inst, _ := c.LaunchInstance("texas")
	clk.Advance(time.Minute)
	if err := c.TerminateInstance(inst.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.InstanceState(inst.ID); st != StateTerminated {
		t.Fatal("not terminated")
	}
	if err := c.TerminateInstance("i-nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunningInstancesCount(t *testing.T) {
	c, clk := testCloud()
	mustLaunch(t, c, "oregon")
	mustLaunch(t, c, "oregon")
	mustLaunch(t, c, "texas")
	clk.Advance(time.Minute)
	counts := c.RunningInstances()
	if counts["oregon"] != 2 || counts["texas"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if c.Launches("oregon") != 2 {
		t.Fatalf("Launches = %d", c.Launches("oregon"))
	}
}

func TestInstanceStateUnknown(t *testing.T) {
	c, _ := testCloud()
	if _, err := c.InstanceState("i-x"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatal("unknown instance accepted")
	}
	if _, err := c.ReadyAt("i-x"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatal("unknown instance accepted")
	}
}

func TestMeasureBandwidthJitters(t *testing.T) {
	c, _ := testCloud()
	r, _ := c.Region("oregon")
	sawDifferent := false
	var prev float64
	for i := 0; i < 10; i++ {
		s, err := c.MeasureBandwidth("oregon")
		if err != nil {
			t.Fatal(err)
		}
		// Within ±3% of nominal (Table I's observed variation).
		if s.InMbps < r.BaseInMbps*0.96 || s.InMbps > r.BaseInMbps*1.04 {
			t.Fatalf("in sample %v outside jitter band around %v", s.InMbps, r.BaseInMbps)
		}
		if i > 0 && s.InMbps != prev {
			sawDifferent = true
		}
		prev = s.InMbps
	}
	if !sawDifferent {
		t.Fatal("bandwidth samples never varied")
	}
}

func TestMeasureBandwidthUnknown(t *testing.T) {
	c, _ := testCloud()
	if _, err := c.MeasureBandwidth("mars"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatal("unknown region accepted")
	}
}

func TestBandwidthScaleCut(t *testing.T) {
	c, _ := testCloud()
	if err := c.SetBandwidthScale("oregon", 0.5); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Region("oregon")
	s, _ := c.MeasureBandwidth("oregon")
	if s.InMbps > r.BaseInMbps*0.55 {
		t.Fatalf("bandwidth cut not applied: %v", s.InMbps)
	}
	if err := c.SetBandwidthScale("mars", 0.5); !errors.Is(err, ErrUnknownRegion) {
		t.Fatal("unknown region accepted")
	}
}

func TestInstanceStateString(t *testing.T) {
	if StatePending.String() != "pending" || StateRunning.String() != "running" ||
		StateTerminated.String() != "terminated" || InstanceState(0).String() != "unknown" {
		t.Fatal("state names wrong")
	}
}

func TestPaperDelaysSymmetric(t *testing.T) {
	d := PaperDelays()
	if len(d) != 30 { // 15 pairs x 2 directions
		t.Fatalf("got %d delay entries, want 30", len(d))
	}
	for k, v := range d {
		rev, ok := d[[2]topology.NodeID{k[1], k[0]}]
		if !ok || rev != v {
			t.Fatalf("delay %v->%v asymmetric", k[0], k[1])
		}
		if v <= 0 {
			t.Fatalf("non-positive delay %v for %v", v, k)
		}
	}
}

func TestRealClockDefault(t *testing.T) {
	c := New(nil, 1, PaperRegions()...)
	if _, err := c.MeasureBandwidth("oregon"); err != nil {
		t.Fatal(err)
	}
}

func TestAccruedVMHours(t *testing.T) {
	c, clk := testCloud()
	a, _ := c.LaunchInstance("oregon")
	clk.Advance(2 * time.Hour)
	if err := c.TerminateInstance(a.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Hour) // terminated instances stop accruing
	b, _ := c.LaunchInstance("texas")
	clk.Advance(time.Hour) // running instances accrue to now
	_ = b
	got := c.AccruedVMHours()
	if got < 2.99 || got > 3.01 {
		t.Fatalf("AccruedVMHours = %v, want ~3 (2 for the first, 1 for the second)", got)
	}
	// Double termination must not extend billing.
	if err := c.TerminateInstance(a.ID); err != nil {
		t.Fatal(err)
	}
	if again := c.AccruedVMHours(); again != got {
		t.Fatalf("re-termination changed billing: %v -> %v", got, again)
	}
}
