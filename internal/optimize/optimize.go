// Package optimize implements the coding-function deployment and multicast
// routing optimization of Sec. IV-A (program (2)) and its supporting
// machinery: conceptual-flow LP construction, integer rounding of the VNF
// counts, incremental re-solves that pin unaffected sessions (the basis of
// the dynamic scaling algorithms), and the closed-form minimum-VNF
// computation used when scaling in.
//
// Decision variables, following the paper's notation:
//
//	f^k_m(p) — conceptual flow of session m toward receiver k on path p
//	f_m(e)  — actual flow of session m on link e (max over conceptual flows)
//	λ_m     — end-to-end throughput of session m
//	x_v     — number of coding VNFs deployed in data center v
//
// Objective: maximize Σ_m λ_m − α Σ_v x_v.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"ncfn/internal/lp"
	"ncfn/internal/ncproto"
	"ncfn/internal/topology"
)

// ErrInfeasible is returned when a session has no feasible path.
var ErrInfeasible = errors.New("optimize: infeasible")

// ErrRateUnachievable is returned by SolveFixedRate when a session's
// target rate cannot be met even with unconstrained deployment.
var ErrRateUnachievable = errors.New("optimize: target rate unachievable")

// DefaultMaxPathHops bounds feasible paths to two coding relays, keeping
// the LP tractable while covering every route the paper's six-data-center
// deployment uses.
const DefaultMaxPathHops = 3

// Session describes one multicast session (unicast is the one-receiver
// special case).
type Session struct {
	ID        ncproto.SessionID
	Source    topology.NodeID
	Receivers []topology.NodeID
	// MaxDelay is L^max_m, the maximum tolerable source→receiver delay.
	MaxDelay time.Duration
	// RateCap, when positive, pins the session to a fixed target rate
	// (live-streaming mode): λ_m ≤ RateCap and the optimizer finds the
	// cheapest routing that achieves it.
	RateCap float64
}

// DataCenter describes the VNF resources purchasable in one data center.
type DataCenter struct {
	ID topology.NodeID
	// BinMbps and BoutMbps are the inbound/outbound bandwidth of a single
	// VNF (VM) in this data center, as measured by the iperf3 probes.
	BinMbps, BoutMbps float64
	// CodeMbps is C(v): the maximum rate one coding VNF can encode at.
	CodeMbps float64
	// MaxVNFs caps x_v; zero selects DefaultMaxVNFs.
	MaxVNFs int
}

// DefaultMaxVNFs bounds the per-data-center VNF count in the LP.
const DefaultMaxVNFs = 50

// Config carries everything program (2) needs besides the sessions.
type Config struct {
	// Graph holds sources, data centers, receivers, and links (with
	// delays used for feasible-path enumeration, and capacities used as
	// per-link bounds where finite).
	Graph *topology.Graph
	// DataCenters lists the candidate deployment sites (set V).
	DataCenters []DataCenter
	// Alpha is the throughput/cost conversion factor α (Mbps per VNF).
	Alpha float64
	// MaxPathHops bounds path length; zero selects DefaultMaxPathHops.
	MaxPathHops int
	// SourceOutMbps is B_out(s_m) per source; zero means unconstrained.
	SourceOutMbps map[topology.NodeID]float64
	// DestInMbps is B_in(d^k_m) per destination; zero means unconstrained.
	DestInMbps map[topology.NodeID]float64
	// BaseVNFs is the number of VNFs already running per data center.
	// The solver only pays α for VNFs beyond the base (scale-out mode);
	// pass nil for a from-scratch deployment.
	BaseVNFs map[topology.NodeID]int
	// PinnedLoad records bandwidth already consumed on links and in data
	// centers by sessions that this solve must not reroute (the paper's
	// "based on the current deployment and flows except affected ...").
	PinnedLoad *Load
}

// Load aggregates bandwidth consumption for pinning and for the
// closed-form minimum-VNF computation.
type Load struct {
	// LinkMbps is per-directed-link consumption.
	LinkMbps map[[2]topology.NodeID]float64
	// DCInMbps / DCOutMbps is per-data-center aggregate in/out traffic.
	DCInMbps  map[topology.NodeID]float64
	DCOutMbps map[topology.NodeID]float64
}

// NewLoad returns an empty load.
func NewLoad() *Load {
	return &Load{
		LinkMbps:  make(map[[2]topology.NodeID]float64),
		DCInMbps:  make(map[topology.NodeID]float64),
		DCOutMbps: make(map[topology.NodeID]float64),
	}
}

// Add accumulates o into l.
func (l *Load) Add(o *Load) {
	if o == nil {
		return
	}
	for k, v := range o.LinkMbps {
		l.LinkMbps[k] += v
	}
	for k, v := range o.DCInMbps {
		l.DCInMbps[k] += v
	}
	for k, v := range o.DCOutMbps {
		l.DCOutMbps[k] += v
	}
}

// PathFlow is one conceptual-flow assignment.
type PathFlow struct {
	Session  ncproto.SessionID
	Receiver topology.NodeID
	Path     topology.Path
	RateMbps float64
}

// Plan is the optimizer's output: deployment counts, session rates, and
// routing.
type Plan struct {
	// VNFs is x_v after integer rounding.
	VNFs map[topology.NodeID]int
	// Rates is λ_m.
	Rates map[ncproto.SessionID]float64
	// LinkFlows is f_m(e): the actual (coded) flow of each session on
	// each link it uses.
	LinkFlows map[ncproto.SessionID]map[[2]topology.NodeID]float64
	// PathFlows is f^k_m(p) for every path carrying positive rate.
	PathFlows []PathFlow
	// Objective is Σλ − αΣx at the returned (rounded) plan.
	Objective float64
	// LPObjective is the relaxation optimum before rounding.
	LPObjective float64
}

// TotalVNFs sums the deployment counts.
func (p *Plan) TotalVNFs() int {
	n := 0
	for _, x := range p.VNFs {
		n += x
	}
	return n
}

// TotalRate sums session throughputs.
func (p *Plan) TotalRate() float64 {
	r := 0.0
	for _, v := range p.Rates {
		r += v
	}
	return r
}

// LoadOf converts the plan's flows into a Load (for pinning in later
// incremental solves). Only the given sessions are included; pass nil to
// include all.
func (p *Plan) LoadOf(sessions map[ncproto.SessionID]bool, dcs map[topology.NodeID]bool) *Load {
	load := NewLoad()
	for sid, flows := range p.LinkFlows {
		if sessions != nil && !sessions[sid] {
			continue
		}
		for e, mbps := range flows {
			if mbps <= 0 {
				continue
			}
			load.LinkMbps[e] += mbps
			if dcs[e[1]] {
				load.DCInMbps[e[1]] += mbps
			}
			if dcs[e[0]] {
				load.DCOutMbps[e[0]] += mbps
			}
		}
	}
	return load
}

// varNames builds the LP variable naming scheme.
func lambdaVar(m ncproto.SessionID) string { return fmt.Sprintf("lambda[%d]", m) }
func xVar(v topology.NodeID) string        { return fmt.Sprintf("x[%s]", v) }
func pathVar(m ncproto.SessionID, k int, p topology.Path) string {
	return fmt.Sprintf("f[%d][%d][%s]", m, k, p)
}
func edgeVar(m ncproto.SessionID, e [2]topology.NodeID) string {
	return fmt.Sprintf("fe[%d][%s->%s]", m, e[0], e[1])
}

// Solve computes program (2) for the sessions: LP relaxation, ceil-rounding
// of x_v, and a second LP with x fixed to recover consistent flows.
func Solve(cfg Config, sessions []Session) (*Plan, error) {
	paths, err := enumeratePaths(cfg, sessions)
	if err != nil {
		return nil, err
	}
	// Phase 1: relaxation with x_v continuous.
	sol1, b1, err := solveLP(cfg, sessions, paths, nil)
	if err != nil {
		return nil, err
	}
	// Round x_v up so the flows of the relaxation stay feasible.
	xInt := make(map[topology.NodeID]int, len(cfg.DataCenters))
	for _, dc := range cfg.DataCenters {
		x := b1.Value(sol1, xVar(dc.ID))
		base := cfg.BaseVNFs[dc.ID]
		xInt[dc.ID] = base + int(math.Ceil(x-1e-6))
	}
	// Phase 2: re-solve flows with the integer deployment fixed, which
	// lets sessions exploit the rounded-up capacity.
	sol2, b2, err := solveLP(cfg, sessions, paths, xInt)
	if err != nil {
		return nil, err
	}
	plan := extractPlan(cfg, sessions, paths, sol2, b2, xInt)

	// Rounding repair: ceil-rounding can over-deploy when fractional VNFs
	// are cheap relative to their bandwidth (e.g. large α with fast VMs).
	// Greedily drop VNFs while the integer objective improves — this is
	// what makes the system "refuse to launch any new VNF when α = 200"
	// (Sec. V-C4). VNFs in the running base are never dropped here; scale
	// in is a separate controller decision.
	for improved := true; improved; {
		improved = false
		for _, dc := range cfg.DataCenters {
			if xInt[dc.ID] <= cfg.BaseVNFs[dc.ID] {
				continue
			}
			trial := make(map[topology.NodeID]int, len(xInt))
			for k, v := range xInt {
				trial[k] = v
			}
			trial[dc.ID]--
			solT, bT, err := solveLP(cfg, sessions, paths, trial)
			if err != nil {
				continue
			}
			cand := extractPlan(cfg, sessions, paths, solT, bT, trial)
			if cand.Objective > plan.Objective+1e-9 {
				plan = cand
				xInt = trial
				improved = true
			}
		}
	}
	plan.LPObjective = sol1.Objective + constantObjectiveOffset(cfg)
	return plan, nil
}

// constantObjectiveOffset accounts for the α cost of base VNFs, which the
// LP treats as free (they are already paid for) but plan objectives report.
func constantObjectiveOffset(cfg Config) float64 {
	off := 0.0
	for _, n := range cfg.BaseVNFs {
		off -= cfg.Alpha * float64(n)
	}
	return off
}

// enumeratePaths computes P^k_m for every session/receiver pair.
func enumeratePaths(cfg Config, sessions []Session) (map[string][]topology.Path, error) {
	maxHops := cfg.MaxPathHops
	if maxHops <= 0 {
		maxHops = DefaultMaxPathHops
	}
	out := make(map[string][]topology.Path)
	for _, s := range sessions {
		for k, dst := range s.Receivers {
			ps := cfg.Graph.FeasiblePathsMaxHops(s.Source, dst, s.MaxDelay, maxHops)
			if len(ps) == 0 {
				return nil, fmt.Errorf("%w: session %d has no path %s->%s within %v",
					ErrInfeasible, s.ID, s.Source, dst, s.MaxDelay)
			}
			out[pairKey(s.ID, k)] = ps
		}
	}
	return out, nil
}

func pairKey(m ncproto.SessionID, k int) string { return fmt.Sprintf("%d/%d", m, k) }

// solveLP assembles and solves the LP. If xFixed is non-nil, the VNF counts
// are constants (phase 2); otherwise x_v are continuous variables bounded
// by MaxVNFs (phase 1).
func solveLP(cfg Config, sessions []Session, paths map[string][]topology.Path, xFixed map[topology.NodeID]int) (*lp.Solution, *lp.Builder, error) {
	b := lp.NewBuilder()
	dcSet := make(map[topology.NodeID]*DataCenter, len(cfg.DataCenters))
	for i := range cfg.DataCenters {
		dcSet[cfg.DataCenters[i].ID] = &cfg.DataCenters[i]
	}
	pinned := cfg.PinnedLoad
	pinnedLink := func(e [2]topology.NodeID) float64 {
		if pinned == nil {
			return 0
		}
		return pinned.LinkMbps[e]
	}
	pinnedIn := func(v topology.NodeID) float64 {
		if pinned == nil {
			return 0
		}
		return pinned.DCInMbps[v]
	}
	pinnedOut := func(v topology.NodeID) float64 {
		if pinned == nil {
			return 0
		}
		return pinned.DCOutMbps[v]
	}

	// Objective: Σ λ_m − α Σ x_v (x appears only in phase 1).
	for _, s := range sessions {
		b.SetObjective(lambdaVar(s.ID), 1)
	}
	if xFixed == nil {
		for _, dc := range cfg.DataCenters {
			b.SetObjective(xVar(dc.ID), -cfg.Alpha)
			// x_v ≤ MaxVNFs − base (extra VNFs beyond the running base).
			maxV := dc.MaxVNFs
			if maxV <= 0 {
				maxV = DefaultMaxVNFs
			}
			bound := float64(maxV - cfg.BaseVNFs[dc.ID])
			if bound < 0 {
				bound = 0
			}
			b.Constraint(fmt.Sprintf("xmax[%s]", dc.ID),
				map[string]float64{xVar(dc.ID): 1}, bound)
		}
	}

	// Per-session structure.
	edgesBySession := make(map[ncproto.SessionID]map[[2]topology.NodeID]bool)
	for _, s := range sessions {
		edgesBySession[s.ID] = make(map[[2]topology.NodeID]bool)
		for k := range s.Receivers {
			key := pairKey(s.ID, k)
			coeff := map[string]float64{lambdaVar(s.ID): 1}
			for _, p := range paths[key] {
				pv := pathVar(s.ID, k, p)
				b.Var(pv)
				coeff[pv] = -1
				for _, e := range p.Edges() {
					edgesBySession[s.ID][e] = true
				}
			}
			// (2a): λ_m − Σ_p f^k_m(p) ≤ 0.
			b.Constraint(fmt.Sprintf("rate[%s]", key), coeff, 0)
		}
		// (2b): Σ_{p∋e} f^k_m(p) − f_m(e) ≤ 0 for every (k, e).
		for k := range s.Receivers {
			key := pairKey(s.ID, k)
			perEdge := make(map[[2]topology.NodeID]map[string]float64)
			for _, p := range paths[key] {
				pv := pathVar(s.ID, k, p)
				for _, e := range p.Edges() {
					if perEdge[e] == nil {
						perEdge[e] = map[string]float64{edgeVar(s.ID, e): -1}
					}
					perEdge[e][pv] = 1
				}
			}
			for e, coeffs := range perEdge {
				b.Constraint(fmt.Sprintf("conc[%s][%s->%s]", key, e[0], e[1]), coeffs, 0)
			}
		}
		// RateCap (live-streaming mode).
		if s.RateCap > 0 {
			b.Constraint(fmt.Sprintf("cap[%d]", s.ID),
				map[string]float64{lambdaVar(s.ID): 1}, s.RateCap)
		}
	}

	// Per-link capacity: Σ_m f_m(e) ≤ cap(e) − pinned(e) where finite.
	linkSessions := make(map[[2]topology.NodeID][]ncproto.SessionID)
	for sid, edges := range edgesBySession {
		for e := range edges {
			linkSessions[e] = append(linkSessions[e], sid)
		}
	}
	for e, sids := range linkSessions {
		l, ok := cfg.Graph.Link(e[0], e[1])
		if !ok {
			continue
		}
		if l.CapacityMbps <= 0 || math.IsInf(l.CapacityMbps, 1) {
			continue // unconstrained link
		}
		coeffs := make(map[string]float64, len(sids))
		for _, sid := range sids {
			coeffs[edgeVar(sid, e)] = 1
		}
		rhs := l.CapacityMbps - pinnedLink(e)
		if rhs < 0 {
			rhs = 0
		}
		b.Constraint(fmt.Sprintf("link[%s->%s]", e[0], e[1]), coeffs, rhs)
	}

	// VNF capacity constraints per data center: (2c), (2d), (2e).
	for _, dc := range cfg.DataCenters {
		inCoeffs := make(map[string]float64)
		outCoeffs := make(map[string]float64)
		for sid, edges := range edgesBySession {
			for e := range edges {
				if e[1] == dc.ID {
					inCoeffs[edgeVar(sid, e)] += 1
				}
				if e[0] == dc.ID {
					outCoeffs[edgeVar(sid, e)] += 1
				}
			}
		}
		base := float64(cfg.BaseVNFs[dc.ID])
		addCap := func(label string, coeffs map[string]float64, perVNF float64, pinnedUse float64) {
			if len(coeffs) == 0 || perVNF <= 0 {
				return
			}
			rhs := perVNF*base - pinnedUse
			if rhs < 0 {
				rhs = 0
			}
			row := make(map[string]float64, len(coeffs)+1)
			for k, v := range coeffs {
				row[k] = v
			}
			if xFixed == nil {
				row[xVar(dc.ID)] = -perVNF
			} else {
				rhs = perVNF*float64(xFixed[dc.ID]) - pinnedUse
				if rhs < 0 {
					rhs = 0
				}
			}
			b.Constraint(label, row, rhs)
		}
		// (2c): inbound bandwidth. (2e): coding capacity — both cover all
		// flow entering the data center.
		addCap(fmt.Sprintf("bin[%s]", dc.ID), inCoeffs, dc.BinMbps, pinnedIn(dc.ID))
		addCap(fmt.Sprintf("code[%s]", dc.ID), inCoeffs, dc.CodeMbps, pinnedIn(dc.ID))
		// (2d): outbound bandwidth.
		addCap(fmt.Sprintf("bout[%s]", dc.ID), outCoeffs, dc.BoutMbps, pinnedOut(dc.ID))
	}

	// (2d'): source outbound limits.
	for _, s := range sessions {
		limit, ok := cfg.SourceOutMbps[s.Source]
		if !ok || limit <= 0 {
			continue
		}
		coeffs := make(map[string]float64)
		for e := range edgesBySession[s.ID] {
			if e[0] == s.Source {
				coeffs[edgeVar(s.ID, e)] += 1
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		b.Constraint(fmt.Sprintf("srcout[%d]", s.ID), coeffs, limit)
	}
	// (2c'): destination inbound limits.
	for _, s := range sessions {
		for _, dst := range s.Receivers {
			limit, ok := cfg.DestInMbps[dst]
			if !ok || limit <= 0 {
				continue
			}
			coeffs := make(map[string]float64)
			for e := range edgesBySession[s.ID] {
				if e[1] == dst {
					coeffs[edgeVar(s.ID, e)] += 1
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			b.Constraint(fmt.Sprintf("dstin[%d][%s]", s.ID, dst), coeffs, limit)
		}
	}

	sol, err := lp.Solve(b.Build())
	if err != nil {
		return nil, nil, fmt.Errorf("optimize: %w", err)
	}
	return sol, b, nil
}

// extractPlan converts the phase-2 solution into a Plan.
func extractPlan(cfg Config, sessions []Session, paths map[string][]topology.Path, sol *lp.Solution, b *lp.Builder, xInt map[topology.NodeID]int) *Plan {
	plan := &Plan{
		VNFs:      xInt,
		Rates:     make(map[ncproto.SessionID]float64, len(sessions)),
		LinkFlows: make(map[ncproto.SessionID]map[[2]topology.NodeID]float64, len(sessions)),
	}
	for _, s := range sessions {
		plan.Rates[s.ID] = clampSmall(b.Value(sol, lambdaVar(s.ID)))
		flows := make(map[[2]topology.NodeID]float64)
		for k := range s.Receivers {
			for _, p := range paths[pairKey(s.ID, k)] {
				rate := clampSmall(b.Value(sol, pathVar(s.ID, k, p)))
				if rate <= 0 {
					continue
				}
				plan.PathFlows = append(plan.PathFlows, PathFlow{
					Session:  s.ID,
					Receiver: s.Receivers[k],
					Path:     p,
					RateMbps: rate,
				})
				for _, e := range p.Edges() {
					if ev := clampSmall(b.Value(sol, edgeVar(s.ID, e))); ev > 0 {
						flows[e] = ev
					}
				}
			}
		}
		plan.LinkFlows[s.ID] = flows
	}
	sort.Slice(plan.PathFlows, func(i, j int) bool {
		a, c := plan.PathFlows[i], plan.PathFlows[j]
		if a.Session != c.Session {
			return a.Session < c.Session
		}
		if a.Receiver != c.Receiver {
			return a.Receiver < c.Receiver
		}
		return a.Path.String() < c.Path.String()
	})
	total := 0
	for _, x := range xInt {
		total += x
	}
	plan.Objective = plan.TotalRate() - cfg.Alpha*float64(total)
	return plan
}

// clampSmall zeroes numerical noise (including the LP's anti-degeneracy
// perturbation, which can leave ~1e-4 ghosts on unused paths).
func clampSmall(v float64) float64 {
	if v < 5e-4 {
		return 0
	}
	return v
}

// MinVNFs computes, in closed form, the minimum number of VNFs per data
// center required to carry the given load: x_v = ceil(max(in/B_in, in/C,
// out/B_out)). The scaling algorithm uses it to decide which VNFs to retain
// "based on the existing flow rates" when a session or receiver departs.
func MinVNFs(dcs []DataCenter, load *Load) map[topology.NodeID]int {
	out := make(map[topology.NodeID]int, len(dcs))
	for _, dc := range dcs {
		in := load.DCInMbps[dc.ID]
		egress := load.DCOutMbps[dc.ID]
		need := 0.0
		if dc.BinMbps > 0 {
			need = math.Max(need, in/dc.BinMbps)
		}
		if dc.CodeMbps > 0 {
			need = math.Max(need, in/dc.CodeMbps)
		}
		if dc.BoutMbps > 0 {
			need = math.Max(need, egress/dc.BoutMbps)
		}
		out[dc.ID] = int(math.Ceil(need - 1e-9))
	}
	return out
}

// SolveFixedRate implements the paper's fixed-rate mode: "We can set λm to
// a given multicast rate if the rate is fixed for multicast session m
// (e.g., in case of live streaming), while focusing on finding the most
// bandwidth efficient routes of the flow to achieve the end-to-end rate
// while minimizing coding function deployment cost." Each session's RateCap
// is its target rate; the returned plan achieves every target exactly (or
// ErrRateUnachievable reports the shortfall), using as few VNFs as the
// tradeoff permits.
func SolveFixedRate(cfg Config, sessions []Session) (*Plan, error) {
	for i := range sessions {
		if sessions[i].RateCap <= 0 {
			return nil, fmt.Errorf("optimize: session %d has no target rate", sessions[i].ID)
		}
	}
	// A large rate weight makes achieving the targets lexicographically
	// dominate deployment cost, while α still discriminates among
	// deployments that achieve them.
	weighted := cfg
	if weighted.Alpha <= 0 {
		weighted.Alpha = 1
	}
	scale := 0.0
	for _, s := range sessions {
		scale += s.RateCap
	}
	weighted.Alpha = weighted.Alpha / (1000 * scale)
	plan, err := Solve(weighted, sessions)
	if err != nil {
		return nil, err
	}
	plan.Objective = plan.TotalRate() - cfg.Alpha*float64(plan.TotalVNFs())
	for _, s := range sessions {
		if plan.Rates[s.ID] < s.RateCap-1e-3 {
			return plan, fmt.Errorf("%w: session %d achieves %.2f of %.2f Mbps",
				ErrRateUnachievable, s.ID, plan.Rates[s.ID], s.RateCap)
		}
	}
	return plan, nil
}
