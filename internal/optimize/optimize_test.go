package optimize

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"ncfn/internal/ncproto"
	"ncfn/internal/topology"
)

// butterflyConfig builds the optimizer view of the paper's butterfly.
func butterflyConfig(alpha float64) (Config, []Session) {
	g, src, dsts := topology.Butterfly()
	cfg := Config{
		Graph: g,
		DataCenters: []DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:       alpha,
		MaxPathHops: 4, // the long side of the butterfly has 4 hops
	}
	sessions := []Session{{
		ID:        1,
		Source:    src,
		Receivers: dsts,
		MaxDelay:  150 * time.Millisecond,
	}}
	return cfg, sessions
}

func TestButterflyAchievesMulticastCapacity(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	// Network coding achieves the full min-cut of 70 Mbps; routing alone
	// could deliver at most 35+25... (here: less). The plan must hit 70.
	if r := plan.Rates[1]; math.Abs(r-70) > 0.5 {
		t.Fatalf("rate = %v, want ~70", r)
	}
	// All four relay DCs must host a VNF.
	for _, dc := range []topology.NodeID{"O1", "C1", "T", "V2"} {
		if plan.VNFs[dc] < 1 {
			t.Fatalf("no VNF at %s: %v", dc, plan.VNFs)
		}
	}
	// With 1000 Mbps VNFs, one VNF per DC suffices.
	if plan.TotalVNFs() != 4 {
		t.Fatalf("TotalVNFs = %d, want 4", plan.TotalVNFs())
	}
	if math.Abs(plan.Objective-(70-cfg.Alpha*4)) > 0.5 {
		t.Fatalf("objective = %v", plan.Objective)
	}
}

func TestButterflyLinkFlowsRespectCapacity(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	for sid, flows := range plan.LinkFlows {
		for e, mbps := range flows {
			l, ok := cfg.Graph.Link(e[0], e[1])
			if !ok {
				t.Fatalf("session %d routed on missing link %v", sid, e)
			}
			if mbps > l.CapacityMbps+1e-3 {
				t.Fatalf("link %v overloaded: %v > %v", e, mbps, l.CapacityMbps)
			}
		}
	}
}

func TestButterflyConceptualFlowSharing(t *testing.T) {
	// The essence of network coding: both receivers' conceptual flows use
	// the T->V2 bottleneck at 35 each, but the actual flow is max, not
	// sum. Verify T->V2 carries 35, not 70.
	cfg, sessions := butterflyConfig(0.1)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	f := plan.LinkFlows[1][[2]topology.NodeID{"T", "V2"}]
	if math.Abs(f-35) > 0.5 {
		t.Fatalf("T->V2 actual flow = %v, want ~35 (conceptual flows must share)", f)
	}
	usingTV2 := 0
	for _, pf := range plan.PathFlows {
		if pf.Path.Contains("T", "V2") && pf.RateMbps > 1 {
			usingTV2++
		}
	}
	if usingTV2 < 2 {
		t.Fatalf("expected both receivers' conceptual flows across T->V2, got %d", usingTV2)
	}
}

func TestHigherAlphaFewerVNFs(t *testing.T) {
	// Fig. 13: as α grows the optimizer trades throughput for fewer VNFs,
	// and at α large enough it deploys nothing.
	var prevVNFs = math.MaxInt32
	var prevRate = math.Inf(1)
	for _, alpha := range []float64{0, 20, 60, 200} {
		cfg, sessions := butterflyConfig(alpha)
		plan, err := Solve(cfg, sessions)
		if err != nil {
			t.Fatal(err)
		}
		if plan.TotalVNFs() > prevVNFs {
			t.Fatalf("alpha=%v: VNFs %d > previous %d", alpha, plan.TotalVNFs(), prevVNFs)
		}
		if plan.TotalRate() > prevRate+1e-3 {
			t.Fatalf("alpha=%v: rate %v > previous %v", alpha, plan.TotalRate(), prevRate)
		}
		prevVNFs = plan.TotalVNFs()
		prevRate = plan.TotalRate()
	}
	// At alpha=200 on the relay-only butterfly there is no direct path, so
	// zero VNFs means zero rate; the optimizer must prefer that to paying
	// 4*200 for 70 Mbps.
	cfg, sessions := butterflyConfig(200)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalVNFs() != 0 {
		t.Fatalf("alpha=200 should deploy no VNFs, got %d", plan.TotalVNFs())
	}
}

func TestLargerMaxDelayMoreThroughput(t *testing.T) {
	// Fig. 12: enlarging Lmax expands the feasible path set and the rate
	// grows, then plateaus.
	rates := make([]float64, 0, 3)
	for _, lmax := range []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 200 * time.Millisecond} {
		cfg, sessions := butterflyConfig(0.1)
		sessions[0].MaxDelay = lmax
		plan, err := Solve(cfg, sessions)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, plan.TotalRate())
	}
	const tol = 1e-6
	if rates[2] < rates[0]+1 {
		t.Fatalf("rates did not grow with Lmax: %v", rates)
	}
	if rates[2] < rates[1]-tol || rates[1] < rates[0]-tol {
		t.Fatalf("rates not monotone in Lmax: %v", rates)
	}
}

func TestInfeasibleNoPath(t *testing.T) {
	cfg, sessions := butterflyConfig(1)
	sessions[0].MaxDelay = time.Millisecond // nothing fits
	if _, err := Solve(cfg, sessions); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRateCapLimits(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	sessions[0].RateCap = 10
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rates[1] > 10+1e-3 {
		t.Fatalf("rate %v exceeds cap 10", plan.Rates[1])
	}
	// Capped at 10 Mbps, the cheapest deployment uses only the short
	// side(s), not all four DCs.
	if plan.TotalVNFs() >= 4 {
		t.Fatalf("capped session should not need all DCs: %v", plan.VNFs)
	}
}

func TestSourceOutboundLimit(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	cfg.SourceOutMbps = map[topology.NodeID]float64{"V1": 30}
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rates[1] > 30+1e-3 {
		t.Fatalf("rate %v exceeds source outbound 30", plan.Rates[1])
	}
}

func TestDestInboundLimit(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	cfg.DestInMbps = map[topology.NodeID]float64{"O2": 20}
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rates[1] > 20+1e-3 {
		t.Fatalf("rate %v exceeds receiver inbound 20", plan.Rates[1])
	}
}

func TestSmallVNFCapacityNeedsMoreVNFs(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	for i := range cfg.DataCenters {
		cfg.DataCenters[i].BinMbps = 20
		cfg.DataCenters[i].BoutMbps = 20
		cfg.DataCenters[i].CodeMbps = 20
	}
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	// 35 Mbps through a DC at 20 Mbps per VNF needs 2 VNFs; the middle
	// relays carry 35 too.
	for dc, x := range plan.VNFs {
		if x > 0 && x < 2 && plan.Rates[1] > 25 {
			t.Fatalf("DC %s has %d VNFs but rate %v", dc, x, plan.Rates[1])
		}
	}
	if plan.Rates[1] < 60 {
		t.Fatalf("rate %v, want near 70 with scaled-out VNFs", plan.Rates[1])
	}
}

func TestBaseVNFsNotChargedAgain(t *testing.T) {
	cfg, sessions := butterflyConfig(20)
	cfg.BaseVNFs = map[topology.NodeID]int{"O1": 1, "C1": 1, "T": 1, "V2": 1}
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	// With the deployment already paid for, the optimizer should use it:
	// rate 70 with no extra VNFs.
	if plan.Rates[1] < 69 {
		t.Fatalf("rate = %v, want ~70 using base VNFs", plan.Rates[1])
	}
	if plan.TotalVNFs() != 4 {
		t.Fatalf("TotalVNFs = %d, want the 4 base VNFs", plan.TotalVNFs())
	}
}

func TestPinnedLoadReservesCapacity(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	pin := NewLoad()
	pin.LinkMbps[[2]topology.NodeID{"V1", "O1"}] = 20 // another session holds 20 of 35
	cfg.PinnedLoad = pin
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	f := plan.LinkFlows[1][[2]topology.NodeID{"V1", "O1"}]
	if f > 15+1e-3 {
		t.Fatalf("flow %v on V1->O1 ignores pinned 20/35", f)
	}
	if plan.Rates[1] > 70 {
		t.Fatalf("rate %v impossible", plan.Rates[1])
	}
}

func TestTwoSessionsShareInfrastructure(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	s2 := sessions[0]
	s2.ID = 2
	sessions = append(sessions, s2)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical sessions compete for the same 70 Mbps of capacity.
	total := plan.TotalRate()
	if total > 70+1 {
		t.Fatalf("combined rate %v exceeds physical capacity 70", total)
	}
	if total < 60 {
		t.Fatalf("combined rate %v too low", total)
	}
}

func TestPlanHelpers(t *testing.T) {
	cfg, sessions := butterflyConfig(0.1)
	plan, err := Solve(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	dcs := map[topology.NodeID]bool{"O1": true, "C1": true, "T": true, "V2": true}
	load := plan.LoadOf(nil, dcs)
	if load.DCInMbps["T"] < 30 {
		t.Fatalf("T inbound load %v, want ~35", load.DCInMbps["T"])
	}
	// Filtering by a non-matching session set yields an empty load.
	empty := plan.LoadOf(map[ncproto.SessionID]bool{}, dcs)
	if len(empty.LinkMbps) != 0 {
		t.Fatal("filtered load should be empty")
	}
}

func TestLoadAdd(t *testing.T) {
	a := NewLoad()
	b := NewLoad()
	b.LinkMbps[[2]topology.NodeID{"x", "y"}] = 5
	b.DCInMbps["y"] = 5
	b.DCOutMbps["x"] = 5
	a.Add(b)
	a.Add(nil)
	if a.LinkMbps[[2]topology.NodeID{"x", "y"}] != 5 || a.DCInMbps["y"] != 5 || a.DCOutMbps["x"] != 5 {
		t.Fatal("Add lost values")
	}
}

func TestMinVNFs(t *testing.T) {
	dcs := []DataCenter{
		{ID: "a", BinMbps: 100, BoutMbps: 50, CodeMbps: 200},
		{ID: "b", BinMbps: 100, BoutMbps: 100, CodeMbps: 100},
	}
	load := NewLoad()
	load.DCInMbps["a"] = 150  // needs 2 by Bin
	load.DCOutMbps["a"] = 240 // needs 5 by Bout (binding)
	load.DCInMbps["b"] = 0
	got := MinVNFs(dcs, load)
	if got["a"] != 5 {
		t.Fatalf("MinVNFs[a] = %d, want 5", got["a"])
	}
	if got["b"] != 0 {
		t.Fatalf("MinVNFs[b] = %d, want 0", got["b"])
	}
}

func TestMinVNFsExactBoundary(t *testing.T) {
	dcs := []DataCenter{{ID: "a", BinMbps: 100, BoutMbps: 100, CodeMbps: 100}}
	load := NewLoad()
	load.DCInMbps["a"] = 200 // exactly 2 VNFs
	if got := MinVNFs(dcs, load); got["a"] != 2 {
		t.Fatalf("MinVNFs = %d, want 2", got["a"])
	}
}

func BenchmarkSolveButterfly(b *testing.B) {
	cfg, sessions := butterflyConfig(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cfg, sessions); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveRandomGraphInvariants(t *testing.T) {
	// On random overlays, every returned plan must satisfy the physical
	// invariants regardless of topology: rates within caps, per-link flows
	// within capacity, per-DC loads within deployed VNF capacity, and path
	// flows supporting each receiver's rate.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		g := topology.New()
		nDC := rng.Intn(3) + 2
		var dcs []DataCenter
		var dcIDs []topology.NodeID
		for i := 0; i < nDC; i++ {
			id := topology.NodeID(fmt.Sprintf("dc%d", i))
			g.AddNode(id, topology.DataCenter)
			dcIDs = append(dcIDs, id)
			dcs = append(dcs, DataCenter{
				ID:       id,
				BinMbps:  float64(rng.Intn(300) + 100),
				BoutMbps: float64(rng.Intn(300) + 100),
				CodeMbps: float64(rng.Intn(200) + 100),
			})
		}
		g.AddNode("src", topology.Source)
		nRecv := rng.Intn(3) + 1
		var receivers []topology.NodeID
		for r := 0; r < nRecv; r++ {
			id := topology.NodeID(fmt.Sprintf("recv%d", r))
			g.AddNode(id, topology.Destination)
			receivers = append(receivers, id)
		}
		ms := func(f int) time.Duration { return time.Duration(f) * time.Millisecond }
		for _, dc := range dcIDs {
			g.AddLink(topology.Link{From: "src", To: dc, CapacityMbps: float64(rng.Intn(90) + 10), Delay: ms(rng.Intn(30) + 5)})
			for _, r := range receivers {
				g.AddLink(topology.Link{From: dc, To: r, CapacityMbps: float64(rng.Intn(90) + 10), Delay: ms(rng.Intn(30) + 5)})
			}
			for _, other := range dcIDs {
				if other != dc {
					g.AddLink(topology.Link{From: dc, To: other, CapacityMbps: float64(rng.Intn(90) + 10), Delay: ms(rng.Intn(30) + 5)})
				}
			}
		}
		cfg := Config{Graph: g, DataCenters: dcs, Alpha: float64(rng.Intn(5)), MaxPathHops: 3}
		sessions := []Session{{ID: 1, Source: "src", Receivers: receivers, MaxDelay: 200 * time.Millisecond}}
		plan, err := Solve(cfg, sessions)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const tol = 1e-2
		// Link flows within capacity.
		for e, mbps := range plan.LinkFlows[1] {
			l, ok := g.Link(e[0], e[1])
			if !ok {
				t.Fatalf("trial %d: flow on missing link %v", trial, e)
			}
			if l.CapacityMbps > 0 && mbps > l.CapacityMbps+tol {
				t.Fatalf("trial %d: link %v overloaded: %v > %v", trial, e, mbps, l.CapacityMbps)
			}
		}
		// Per-DC load within deployed VNF capacity.
		for _, dc := range dcs {
			in, out := 0.0, 0.0
			for e, mbps := range plan.LinkFlows[1] {
				if e[1] == dc.ID {
					in += mbps
				}
				if e[0] == dc.ID {
					out += mbps
				}
			}
			x := float64(plan.VNFs[dc.ID])
			if in > dc.BinMbps*x+tol || in > dc.CodeMbps*x+tol {
				t.Fatalf("trial %d: DC %s inbound %v exceeds %v VNFs", trial, dc.ID, in, x)
			}
			if out > dc.BoutMbps*x+tol {
				t.Fatalf("trial %d: DC %s outbound %v exceeds %v VNFs", trial, dc.ID, out, x)
			}
		}
		// Each receiver's conceptual flow must carry the session rate.
		rate := plan.Rates[1]
		for _, r := range receivers {
			sum := 0.0
			for _, pf := range plan.PathFlows {
				if pf.Receiver == r {
					sum += pf.RateMbps
				}
			}
			if sum+tol < rate {
				t.Fatalf("trial %d: receiver %s conceptual flow %v < rate %v", trial, r, sum, rate)
			}
		}
	}
}

func TestSolveFixedRateCheapestDeployment(t *testing.T) {
	// A 30 Mbps target on the butterfly fits down the two side branches;
	// the cheapest deployment must not light up all four DCs.
	cfg, sessions := butterflyConfig(20)
	sessions[0].RateCap = 30
	plan, err := SolveFixedRate(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rates[1] < 30-1e-3 {
		t.Fatalf("target missed: %v", plan.Rates[1])
	}
	if plan.TotalVNFs() > 2 {
		t.Fatalf("fixed 30 Mbps deployed %d VNFs (%v), want <= 2", plan.TotalVNFs(), plan.VNFs)
	}
}

func TestSolveFixedRateNeedsCoding(t *testing.T) {
	// A 70 Mbps target requires the full coded butterfly: all four DCs.
	cfg, sessions := butterflyConfig(20)
	sessions[0].RateCap = 70
	plan, err := SolveFixedRate(cfg, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalVNFs() != 4 {
		t.Fatalf("70 Mbps needs all 4 DCs, got %v", plan.VNFs)
	}
}

func TestSolveFixedRateUnachievable(t *testing.T) {
	cfg, sessions := butterflyConfig(20)
	sessions[0].RateCap = 500 // far beyond the 70 Mbps min-cut
	if _, err := SolveFixedRate(cfg, sessions); !errors.Is(err, ErrRateUnachievable) {
		t.Fatalf("err = %v, want ErrRateUnachievable", err)
	}
}

func TestSolveFixedRateRequiresTarget(t *testing.T) {
	cfg, sessions := butterflyConfig(20)
	if _, err := SolveFixedRate(cfg, sessions); err == nil {
		t.Fatal("missing target accepted")
	}
}
