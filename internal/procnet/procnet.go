// Package procnet launches the repository's real binaries — ncd daemons
// and the ncctl controller CLI — as separate OS processes on loopback, so
// tests and experiments can exercise the true multi-process deployment of
// Sec. III-A: one process per network node, coded traffic on real UDP
// sockets, control messages over real TCP, telemetry over the admin HTTP
// endpoint.
//
// The harness builds the binaries with `go build` (cached by the go build
// cache, so repeated runs relink at most), starts each daemon with
// `-readyfile` and waits for the daemon to publish its kernel-assigned
// ports, and reads progress through each daemon's /stats snapshot.
package procnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"ncfn/internal/telemetry"
)

// Binaries holds the built executable paths.
type Binaries struct {
	Ncd   string
	Ncctl string
}

// ModuleRoot walks up from dir (or the working directory when dir is
// empty) to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("procnet: go.mod not found above working directory")
		}
		dir = parent
	}
}

// Build compiles ncd and ncctl into dir and returns their paths. The go
// tool must be on PATH (it is wherever the repo itself builds).
func Build(dir string) (Binaries, error) {
	root, err := ModuleRoot("")
	if err != nil {
		return Binaries{}, err
	}
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "ncfn/cmd/ncd", "ncfn/cmd/ncctl")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return Binaries{}, fmt.Errorf("procnet: go build: %v\n%s", err, out)
	}
	return Binaries{
		Ncd:   filepath.Join(dir, "ncd"),
		Ncctl: filepath.Join(dir, "ncctl"),
	}, nil
}

// readyInfo mirrors ncd's -readyfile JSON document.
type readyInfo struct {
	Data    string `json:"data"`
	Control string `json:"control"`
	Admin   string `json:"admin"`
}

// Daemon is one running ncd process with its bound addresses.
type Daemon struct {
	Name    string
	Data    string // UDP data-plane address
	Control string // TCP control address
	Admin   string // HTTP admin address

	cmd *exec.Cmd
	log *bytes.Buffer

	// waitDone closes once the process is reaped; waitErr then holds the
	// exit error. A single background reaper owns cmd.Wait so Stop,
	// WaitExit, and the readiness loop can all observe exit safely. Note an
	// ncd /restart exec handoff keeps the PID, so the reaper keeps waiting
	// across restarts and fires only on real process exit.
	waitDone chan struct{}
	waitErr  error
}

// exited reports (without blocking) whether the process has been reaped.
func (d *Daemon) exited() bool {
	select {
	case <-d.waitDone:
		return true
	default:
		return false
	}
}

// StartDaemon launches `bin -name name` with kernel-assigned loopback
// ports and batch depth batch, then waits (up to 10s) for the readyfile to
// report the bound addresses. dir holds the readyfile; batch <= 1 selects
// the portable one-syscall-per-packet path.
func StartDaemon(bin, name, dir string, batch int) (*Daemon, error) {
	ready := filepath.Join(dir, name+".ready")
	_ = os.Remove(ready)
	d := &Daemon{Name: name, log: &bytes.Buffer{}, waitDone: make(chan struct{})}
	d.cmd = exec.Command(bin,
		"-name", name,
		"-data", "127.0.0.1:0",
		"-control", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-batch", strconv.Itoa(batch),
		"-readyfile", ready,
	)
	d.cmd.Stdout = d.log
	d.cmd.Stderr = d.log
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("procnet: start %s: %w", name, err)
	}
	go func() {
		d.waitErr = d.cmd.Wait()
		close(d.waitDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := os.ReadFile(ready)
		if err == nil {
			var info readyInfo
			if err := json.Unmarshal(raw, &info); err != nil {
				d.Stop()
				return nil, fmt.Errorf("procnet: %s readyfile: %w", name, err)
			}
			d.Data, d.Control, d.Admin = info.Data, info.Control, info.Admin
			return d, nil
		}
		if d.exited() || time.Now().After(deadline) {
			out := d.Output()
			d.Stop()
			return nil, fmt.Errorf("procnet: %s never became ready\n%s", name, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Stop kills the daemon process and reaps it. Safe to call twice.
func (d *Daemon) Stop() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
	<-d.waitDone
}

// Output returns the daemon's combined stdout/stderr so far (for failure
// diagnostics).
func (d *Daemon) Output() string { return d.log.String() }

// Stats fetches and parses one daemon's /stats telemetry snapshot.
func Stats(adminAddr string) (telemetry.Snapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + adminAddr + "/stats")
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return telemetry.Snapshot{}, fmt.Errorf("procnet: stats %s: %s", adminAddr, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("procnet: stats %s: %w", adminAddr, err)
	}
	return snap, nil
}

// RunCtl invokes the ncctl binary with a deployment config: `ncctl -config
// cfgPath [flags...] <command>`, returning its combined output. Extra
// flags (e.g. "-tau", "1ms") go before the command, as ncctl's flag
// parsing requires.
func RunCtl(bin, cfgPath, command string, flags ...string) (string, error) {
	all := append(append([]string{"-config", cfgPath}, flags...), command)
	cmd := exec.Command(bin, all...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return string(out), fmt.Errorf("procnet: ncctl %s: %v\n%s", command, err, out)
	}
	return string(out), nil
}
