package procnet

import (
	"encoding/json"
	"fmt"
	"os"
)

// Deploy mirrors ncctl's deployment JSON schema (cmd/ncctl).
type Deploy struct {
	Sessions []Session         `json:"sessions"`
	Peers    map[string]string `json:"peers"`
	Daemons  map[string]string `json:"daemons"`
	Admin    map[string]string `json:"admin"`
}

// Session is one session entry of the deployment document.
type Session struct {
	ID         int                     `json:"id"`
	Blocks     int                     `json:"blocks"`
	BlockSize  int                     `json:"blockSize"`
	Redundancy int                     `json:"redundancy"`
	Field      int                     `json:"field,omitempty"`
	Roles      map[string]string       `json:"roles"`
	InPerGen   map[string]int          `json:"inPerGen,omitempty"`
	Tables     map[string][]TableGroup `json:"tables,omitempty"`
}

// TableGroup is one next-hop group of a forwarding-table entry.
type TableGroup struct {
	Addrs  []string `json:"addrs"`
	PerGen int      `json:"perGen,omitempty"`
}

// WriteDeploy marshals a deployment to path for ncctl to consume.
func WriteDeploy(path string, d Deploy) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ButterflyNodes lists the six daemon nodes of the paper's butterfly in
// the order the harness starts them: the four relays, then the two sinks.
var ButterflyNodes = []string{"O1", "C1", "T", "V2", "O2", "C2"}

// Butterfly builds the classic butterfly deployment over running daemons:
// source V1 (external to the daemon set — the caller's in-process sender)
// splits each generation across the O1 and C1 branches, relays O1/C1/T/V2
// recode, sinks O2/C2 decode. Quotas follow the conceptual-flow solution
// with every edge carrying half the session rate: round(k/2) + redundancy
// distinct packets per generation per edge, so each sink's inbound quota
// covers the generation (k even keeps the split exact).
func Butterfly(daemons map[string]*Daemon, sourceAddr string, s Session) (Deploy, error) {
	for _, n := range ButterflyNodes {
		if daemons[n] == nil {
			return Deploy{}, fmt.Errorf("procnet: butterfly: missing daemon %s", n)
		}
	}
	if s.Blocks%2 != 0 {
		return Deploy{}, fmt.Errorf("procnet: butterfly: generation size %d must be even for the 2-branch split", s.Blocks)
	}
	q := s.Blocks/2 + s.Redundancy
	s.Roles = map[string]string{
		"O1": "recoder", "C1": "recoder", "T": "recoder", "V2": "recoder",
		"O2": "decoder", "C2": "decoder",
	}
	s.InPerGen = map[string]int{"O1": q, "C1": q, "T": 2 * q, "V2": q}
	s.Tables = map[string][]TableGroup{
		"O1": {{Addrs: []string{"O2"}, PerGen: q}, {Addrs: []string{"T"}, PerGen: q}},
		"C1": {{Addrs: []string{"C2"}, PerGen: q}, {Addrs: []string{"T"}, PerGen: q}},
		"T":  {{Addrs: []string{"V2"}, PerGen: q}},
		"V2": {{Addrs: []string{"O2"}, PerGen: q}, {Addrs: []string{"C2"}, PerGen: q}},
	}
	d := Deploy{
		Sessions: []Session{s},
		Peers:    map[string]string{"V1": sourceAddr},
		Daemons:  map[string]string{},
		Admin:    map[string]string{},
	}
	for _, n := range ButterflyNodes {
		d.Peers[n] = daemons[n].Data
		d.Daemons[n] = daemons[n].Control
		d.Admin[n] = daemons[n].Admin
	}
	return d, nil
}
