package procnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ncfn/internal/dataplane"
)

// lifecycleClient bounds every admin lifecycle RPC.
var lifecycleClient = &http.Client{Timeout: 5 * time.Second}

// DrainStatus mirrors ncd's admin /drain document.
type DrainStatus struct {
	State    string `json:"state"` // running | draining | quiesced
	Draining bool   `json:"draining"`
	Version  int    `json:"version"`
}

// GetDrainStatus fetches one daemon's lifecycle position.
func GetDrainStatus(adminAddr string) (DrainStatus, error) {
	resp, err := lifecycleClient.Get("http://" + adminAddr + "/drain")
	if err != nil {
		return DrainStatus{}, err
	}
	defer resp.Body.Close()
	var st DrainStatus
	if err := decodeOK(resp, &st); err != nil {
		return DrainStatus{}, fmt.Errorf("procnet: drain status %s: %w", adminAddr, err)
	}
	return st, nil
}

// PostDrain starts a graceful drain on one daemon: it stops admitting new
// sessions and generations, flushes what is in flight, and exits at
// quiescence or after the deadline.
func PostDrain(adminAddr string, deadline time.Duration) error {
	return postLifecycle(adminAddr, "/drain", deadline)
}

// PostRestart triggers one daemon's drain-then-exec-handoff restart.
func PostRestart(adminAddr string, deadline time.Duration) error {
	return postLifecycle(adminAddr, "/restart", deadline)
}

// PostReload POSTs a deploy file to one daemon's /reload and returns the
// reload summary JSON.
func PostReload(adminAddr string, deploy []byte) ([]byte, error) {
	resp, err := lifecycleClient.Post("http://"+adminAddr+"/reload", "application/json", bytes.NewReader(deploy))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("procnet: reload %s: %s %s", adminAddr, resp.Status, bytes.TrimSpace(raw))
	}
	return raw, nil
}

func postLifecycle(adminAddr, path string, deadline time.Duration) error {
	url := "http://" + adminAddr + path + "?deadline=" + deadline.String()
	resp, err := lifecycleClient.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("procnet: %s %s: %s %s", path, adminAddr, resp.Status, bytes.TrimSpace(raw))
	}
	return nil
}

func decodeOK(resp *http.Response, v any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s", resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, v)
}

// Drain starts a graceful drain on this daemon.
func (d *Daemon) Drain(deadline time.Duration) error {
	return PostDrain(d.Admin, deadline)
}

// WaitQuiesced waits until the daemon's drained pipeline reports quiescence
// through the dataplane_drain_state gauge. A completed drain closes the
// daemon — and with it the admin endpoint — so a dead process also counts
// as quiesced; only a still-running daemon that never reaches quiescence
// times out.
func (d *Daemon) WaitQuiesced(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		if d.exited() {
			return nil
		}
		snap, err := Stats(d.Admin)
		if err == nil {
			if snap.Gauges[dataplane.MetricDrainState] == dataplane.DrainStateQuiesced {
				return nil
			}
			last = fmt.Errorf("procnet: %s drain state %d", d.Name, snap.Gauges[dataplane.MetricDrainState])
		} else {
			// Unreachable mid-drain: the daemon may be between closing its
			// listeners and process exit — keep polling until it is reaped.
			last = err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("procnet: %s never quiesced: %w", d.Name, last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// WaitExit waits for the daemon process to exit and returns its exit error
// (nil for a clean exit — e.g. a completed drain).
func (d *Daemon) WaitExit(timeout time.Duration) error {
	select {
	case <-d.waitDone:
		return d.waitErr
	case <-time.After(timeout):
		return fmt.Errorf("procnet: %s did not exit within %v\n%s", d.Name, timeout, d.Output())
	}
}

// Signal sends sig (e.g. syscall.SIGTERM to start a graceful drain) to the
// daemon process.
func (d *Daemon) Signal(sig os.Signal) error {
	return d.cmd.Process.Signal(sig)
}

// WaitHealthy polls one admin endpoint until a running (not draining)
// daemon answers — i.e. until a restarted replacement process is serving —
// or the timeout passes.
func WaitHealthy(adminAddr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		st, err := GetDrainStatus(adminAddr)
		switch {
		case err != nil:
			last = err
		case st.Draining || st.State != "running":
			last = fmt.Errorf("state %s", st.State)
		default:
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("procnet: %s never became healthy: %w", adminAddr, last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Restart drives one daemon through a drain-and-exec-handoff restart and
// waits for the replacement to come back healthy on the same (pinned)
// addresses. The PID is preserved across the handoff, so Stop/WaitExit keep
// working afterwards. The replacement starts blank: reconfigure it (ncctl
// start, or a reload) before sending traffic.
func (d *Daemon) Restart(drainDeadline, wait time.Duration) error {
	if err := PostRestart(d.Admin, drainDeadline); err != nil {
		return fmt.Errorf("procnet: restart %s: %w", d.Name, err)
	}
	if err := WaitHealthy(d.Admin, wait); err != nil {
		return fmt.Errorf("procnet: restart %s: %w", d.Name, err)
	}
	return nil
}
