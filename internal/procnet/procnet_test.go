package procnet

import (
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildOnce compiles the real binaries once per test run (the go build
// cache makes repeats cheap).
func buildOnce(t *testing.T) Binaries {
	t.Helper()
	bins, err := Build(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return bins
}

func startOne(t *testing.T, bins Binaries, name string) *Daemon {
	t.Helper()
	d, err := StartDaemon(bins.Ncd, name, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestDrainExitsProcess drives a real ncd through the admin drain path:
// POST /drain, observe the drain-state gauge, and watch the process exit
// cleanly once quiesced.
func TestDrainExitsProcess(t *testing.T) {
	bins := buildOnce(t)
	d := startOne(t, bins, "drainee")

	st, err := GetDrainStatus(d.Admin)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Draining {
		t.Fatalf("fresh daemon drain status = %+v", st)
	}
	if err := d.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitExit(10 * time.Second); err != nil {
		t.Fatalf("drained ncd exit: %v", err)
	}
}

// TestSigtermDrainsProcess sends a real SIGTERM: the daemon must drain and
// exit zero rather than dying on the default signal handler.
func TestSigtermDrainsProcess(t *testing.T) {
	bins := buildOnce(t)
	d := startOne(t, bins, "terminated")
	if err := d.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitExit(10 * time.Second); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, d.Output())
	}
	if !strings.Contains(d.Output(), "draining") {
		t.Fatalf("no drain logged on SIGTERM:\n%s", d.Output())
	}
}

// TestRestartHandoff exercises the exec-handoff restart: the replacement
// process must come back healthy on the same data/control/admin addresses
// without the harness's Wait firing.
func TestRestartHandoff(t *testing.T) {
	bins := buildOnce(t)
	d := startOne(t, bins, "phoenix")
	data, control, admin := d.Data, d.Control, d.Admin

	if err := d.Restart(5*time.Second, 30*time.Second); err != nil {
		t.Fatalf("%v\n%s", err, d.Output())
	}
	if d.exited() {
		t.Fatal("exec handoff reaped the process")
	}
	if d.Data != data || d.Control != control || d.Admin != admin {
		t.Fatal("restart changed addresses")
	}
	// The replacement serves stats on the same admin address and reports a
	// fresh (running) lifecycle.
	snap, err := Stats(d.Admin)
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 {
		t.Fatal("replacement serves an empty registry")
	}
	st, err := GetDrainStatus(d.Admin)
	if err != nil || st.State != "running" {
		t.Fatalf("replacement drain status = %+v, %v", st, err)
	}
	// A second restart proves the handoff rearms itself.
	if err := d.Restart(5*time.Second, 30*time.Second); err != nil {
		t.Fatalf("second restart: %v\n%s", err, d.Output())
	}
	// Graceful teardown still works on the twice-restarted process.
	if err := d.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitExit(10 * time.Second); err != nil {
		t.Fatalf("final exit: %v\n%s", err, d.Output())
	}
}
