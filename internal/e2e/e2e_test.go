// Package e2e runs the paper's butterfly as a real multi-process
// deployment: six ncd daemons on loopback (four recoding relays, two
// decoding sinks), configured through the real ncctl binary, fed by an
// in-process source over real UDP sockets. It is the closest the test
// suite gets to the system of Sec. III-A actually running — separate
// address spaces, kernel sockets, control TCP, admin HTTP.
//
// `make test-e2e` runs it alone; it also rides along in `go test ./...`.
package e2e

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/procnet"
	"ncfn/internal/rlnc"
)

// TestE2EButterflyProcesses deploys the butterfly as six ncd processes,
// pushes tables via ncctl, streams generations from an in-process source,
// and asserts both sinks decode everything.
func TestE2EButterflyProcesses(t *testing.T) {
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 1024}
	ngen := 16
	if testing.Short() {
		params.BlockSize = 512
		ngen = 6
	}
	const redundancy = 2
	q := params.GenerationBlocks/2 + redundancy

	dir := t.TempDir()
	bins, err := procnet.Build(dir)
	if err != nil {
		t.Fatal(err)
	}

	daemons := map[string]*procnet.Daemon{}
	for _, name := range procnet.ButterflyNodes {
		d, err := procnet.StartDaemon(bins.Ncd, name, dir, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons[name] = d
	}

	// The in-process source is node V1: its registry needs the two branch
	// heads; the daemons learn every peer (including V1) from ncctl.
	registry := emunet.NewRegistry()
	for _, branch := range []string{"O1", "C1"} {
		addr, err := net.ResolveUDPAddr("udp", daemons[branch].Data)
		if err != nil {
			t.Fatal(err)
		}
		registry.Register(branch, addr)
	}
	srcConn, err := emunet.ListenUDP("V1", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}

	deploy, err := procnet.Butterfly(daemons, srcConn.UDPAddr().String(), procnet.Session{
		ID: 1, Blocks: params.GenerationBlocks, BlockSize: params.BlockSize, Redundancy: redundancy,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "deploy.json")
	if err := procnet.WriteDeploy(cfgPath, deploy); err != nil {
		t.Fatal(err)
	}
	if out, err := procnet.RunCtl(bins.Ncctl, cfgPath, "start"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}

	src, err := dataplane.NewSource(srcConn, dataplane.SourceConfig{
		Session: 1, Params: params, Redundancy: redundancy,
		Systematic: true, Seed: 7, TxBatch: 16,
		// Paced well under loopback capacity: six daemons share the
		// machine, and UDP drops beyond the redundancy budget would force
		// the resend path below on every run.
		RateMbps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{
		{Addrs: []string{"O1"}, PerGen: q},
		{Addrs: []string{"C1"}, PerGen: q},
	})

	data := make([]byte, ngen*params.GenerationBytes())
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	if _, sent, err := src.SendData(data); err != nil || sent != ngen {
		t.Fatalf("send: %d generations, %v", sent, err)
	}

	// Poll the sinks' admin endpoints for decode completion. UDP is lossy
	// in principle even on loopback, so a stall triggers a redundant
	// resend of every generation rather than a flaky failure.
	decoded := func(name string) int {
		snap, err := procnet.Stats(daemons[name].Admin)
		if err != nil {
			t.Logf("stats %s (%s): %v", name, daemons[name].Admin, err)
			return -1
		}
		return int(snap.Counters[dataplane.MetricGenerationsDone])
	}
	genBytes := params.GenerationBytes()
	deadline := time.Now().Add(60 * time.Second)
	lastProgress := time.Now()
	best := 0
	for {
		o2, c2 := decoded("O2"), decoded("C2")
		if o2 >= ngen && c2 >= ngen {
			break
		}
		if o2+c2 > best {
			best = o2 + c2
			lastProgress = time.Now()
		}
		if time.Now().After(deadline) {
			for _, name := range procnet.ButterflyNodes {
				t.Logf("--- %s log ---\n%s", name, daemons[name].Output())
			}
			t.Fatalf("sinks decoded O2=%d C2=%d of %d generations", o2, c2, ngen)
		}
		if time.Since(lastProgress) > time.Second {
			for g := 0; g < ngen; g++ {
				chunk := data[g*genBytes : (g+1)*genBytes]
				if err := src.ResendGeneration(ncproto.GenerationID(g), chunk, 2); err != nil {
					t.Fatal(err)
				}
			}
			lastProgress = time.Now()
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The relays really recoded (not just forwarded): the merge node T
	// received both branches and emitted coded packets downstream.
	snap, err := procnet.Stats(daemons["T"].Admin)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[dataplane.MetricTxPackets] == 0 {
		t.Fatal("merge relay T emitted no packets")
	}
	// The batched wire path exported its telemetry over the real admin
	// endpoint. The syscall/packet ratio is load-dependent (idle-wakeup
	// EAGAIN probes count as syscalls), so the quantitative ≤1/8 claim is
	// the udpsweep experiment's job under saturation — here we pin that the
	// counters flow end to end and log the observed ratio.
	if emunet.HasBatchIO() {
		pkts := snap.Counters[emunet.MetricUDPTxPackets] + snap.Counters[emunet.MetricUDPRxPackets]
		sys := snap.Counters[emunet.MetricUDPSyscalls]
		if sys == 0 || pkts == 0 {
			t.Fatalf("relay T telemetry missing: syscalls=%d pkts=%d", sys, pkts)
		}
		t.Logf("relay T: %d UDP syscalls for %d packets (%.2f/pkt)", sys, pkts, float64(sys)/float64(pkts))
	}

	if out, err := procnet.RunCtl(bins.Ncctl, cfgPath, "stop", "-tau", "1ms"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}
