package e2e

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/procnet"
	"ncfn/internal/rlnc"
)

// TestRollingRestartButterfly is the zero-downtime headline tier (`make
// test-rolling`): the six-process butterfly carries a multicast while `ncctl
// rolling-restart` walks every relay VNF through drain → exec-handoff
// restart → health probe → reconfigure. Only the relays restart (the sinks
// keep their decode state, as in a real fleet upgrade); the data, control,
// and admin addresses are pinned across the handoff, so the source and the
// forwarding tables stay valid. Afterwards both sinks must decode every
// generation sent before, during, and after the walk — zero dropped
// sessions, zero decode failures — with the source's redundancy/resend path
// papering over the packets each relay had in flight when it drained.
func TestRollingRestartButterfly(t *testing.T) {
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 1024}
	ngen := 12
	if testing.Short() {
		params.BlockSize = 512
		ngen = 6
	}
	const redundancy = 2
	q := params.GenerationBlocks/2 + redundancy

	dir := t.TempDir()
	bins, err := procnet.Build(dir)
	if err != nil {
		t.Fatal(err)
	}

	daemons := map[string]*procnet.Daemon{}
	for _, name := range procnet.ButterflyNodes {
		d, err := procnet.StartDaemon(bins.Ncd, name, dir, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		daemons[name] = d
	}

	registry := emunet.NewRegistry()
	for _, branch := range []string{"O1", "C1"} {
		addr, err := net.ResolveUDPAddr("udp", daemons[branch].Data)
		if err != nil {
			t.Fatal(err)
		}
		registry.Register(branch, addr)
	}
	srcConn, err := emunet.ListenUDP("V1", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}

	deploy, err := procnet.Butterfly(daemons, srcConn.UDPAddr().String(), procnet.Session{
		ID: 1, Blocks: params.GenerationBlocks, BlockSize: params.BlockSize, Redundancy: redundancy,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "deploy.json")
	if err := procnet.WriteDeploy(cfgPath, deploy); err != nil {
		t.Fatal(err)
	}
	if out, err := procnet.RunCtl(bins.Ncctl, cfgPath, "start"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}

	src, err := dataplane.NewSource(srcConn, dataplane.SourceConfig{
		Session: 1, Params: params, Redundancy: redundancy,
		Systematic: true, Seed: 11, TxBatch: 16,
		RateMbps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{
		{Addrs: []string{"O1"}, PerGen: q},
		{Addrs: []string{"C1"}, PerGen: q},
	})

	genBytes := params.GenerationBytes()
	data := make([]byte, ngen*genBytes)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}

	// Phase 1 — traffic before the walk: the first half of the generations.
	half := ngen / 2
	if _, sent, err := src.SendData(data[:half*genBytes]); err != nil || sent != half {
		t.Fatalf("send phase 1: %d generations, %v", sent, err)
	}

	// Phase 2 — the walk: restart every relay, one at a time, while the
	// sinks keep their decode state. The command drains each relay, waits
	// for the exec-handoff replacement to come back healthy on the pinned
	// addresses, re-pushes its sessions and tables, then re-arms upstreams.
	out, err := procnet.RunCtl(bins.Ncctl, cfgPath, "rolling-restart",
		"-nodes", "O1,C1,T,V2", "-drain-deadline", "5s", "-wait", "30s")
	if err != nil {
		for _, name := range procnet.ButterflyNodes {
			t.Logf("--- %s log ---\n%s", name, daemons[name].Output())
		}
		t.Fatalf("rolling-restart: %v\n%s", err, out)
	}
	t.Logf("rolling-restart:\n%s", out)

	// Every relay must have survived the handoff: same process (the harness
	// reaper never fired), same addresses, healthy lifecycle.
	for _, name := range []string{"O1", "C1", "T", "V2"} {
		st, err := procnet.GetDrainStatus(daemons[name].Admin)
		if err != nil {
			t.Fatalf("%s after walk: %v", name, err)
		}
		if st.State != "running" || st.Draining {
			t.Fatalf("%s after walk: %+v, want running", name, st)
		}
	}

	// Phase 3 — traffic after the walk rides the reconfigured relays.
	if _, sent, err := src.SendData(data[half*genBytes:]); err != nil || sent != ngen-half {
		t.Fatalf("send phase 3: %d generations, %v", sent, err)
	}

	// Both sinks decode all generations — the ones from before the walk,
	// the ones that straddled restarts, and the ones after. Stalled
	// generations (in flight through a relay when it drained, or landed on
	// a still-blank replacement) are re-sent, exactly like loss recovery.
	decoded := func(name string) int {
		snap, err := procnet.Stats(daemons[name].Admin)
		if err != nil {
			t.Logf("stats %s (%s): %v", name, daemons[name].Admin, err)
			return -1
		}
		return int(snap.Counters[dataplane.MetricGenerationsDone])
	}
	deadline := time.Now().Add(90 * time.Second)
	lastProgress := time.Now()
	best := 0
	for {
		o2, c2 := decoded("O2"), decoded("C2")
		if o2 >= ngen && c2 >= ngen {
			break
		}
		if o2+c2 > best {
			best = o2 + c2
			lastProgress = time.Now()
		}
		if time.Now().After(deadline) {
			for _, name := range procnet.ButterflyNodes {
				t.Logf("--- %s log ---\n%s", name, daemons[name].Output())
			}
			t.Fatalf("sinks decoded O2=%d C2=%d of %d generations after rolling restart", o2, c2, ngen)
		}
		if time.Since(lastProgress) > time.Second {
			for g := 0; g < ngen; g++ {
				chunk := data[g*genBytes : (g+1)*genBytes]
				if err := src.ResendGeneration(ncproto.GenerationID(g), chunk, 2); err != nil {
					t.Fatal(err)
				}
			}
			lastProgress = time.Now()
		}
		time.Sleep(50 * time.Millisecond)
	}

	if out, err := procnet.RunCtl(bins.Ncctl, cfgPath, "stop", "-tau", "1ms"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}
