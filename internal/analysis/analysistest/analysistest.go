// Package analysistest runs an ncanalysis.Analyzer over fixture packages and
// checks its findings against // want "regexp" comments, mirroring the
// golden-test workflow of golang.org/x/tools/go/analysis/analysistest with
// no dependency outside the standard library.
//
// Fixtures live under <analyzer pkg>/testdata/src/<import path>/. The import
// path is meaningful: fixtures that fake a repo package (say
// ncfn/internal/buffer) sit at that path and are resolved from testdata
// source, so analyzers that key on real import paths see the same world as
// in the live tree. Imports that do not resolve inside testdata/src fall
// back to the toolchain's gc export data via `go list -export`.
//
// An expectation trails the offending line:
//
//	buffer.PutPacket(b) // want `already recycled`
//
// Every reported diagnostic must match a want-pattern on its exact line and
// every pattern must be matched, or the test fails. //nolint:nc directives
// are honored (the finding counts as suppressed, not missing), so fixtures
// can also pin the suppression behavior.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ncfn/internal/analysis/ncanalysis"
)

// Run loads each fixture package under testdata/src, applies the analyzer,
// and asserts findings == want-comments. It returns the combined result for
// extra assertions (e.g. suppression counts).
func Run(t *testing.T, a *ncanalysis.Analyzer, pkgPaths ...string) ncanalysis.Result {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "testdata", "src")
	im := &fixtureImporter{root: root, fset: token.NewFileSet(), srcPkgs: map[string]*types.Package{}}

	var total ncanalysis.Result
	for _, path := range pkgPaths {
		pkg, wants, err := im.load(path)
		if err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		res, err := ncanalysis.Run([]*ncanalysis.Package{pkg}, []*ncanalysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, res.Diagnostics, wants)
		total.Diagnostics = append(total.Diagnostics, res.Diagnostics...)
		total.Suppressed += res.Suppressed
		total.Directives = append(total.Directives, res.Directives...)
	}
	return total
}

// expectation is one // want pattern with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from a parsed file's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				pat, remainder, err := unquoteFirst(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: malformed want: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				rest = strings.TrimSpace(remainder)
			}
		}
	}
	return wants, nil
}

// unquoteFirst splits one leading Go string literal (quoted or backquoted)
// off s.
func unquoteFirst(s string) (pat, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquote in %q", s)
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				pat, err := strconv.Unquote(s[:i+1])
				return pat, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quote in %q", s)
	default:
		return "", "", fmt.Errorf("pattern must be a string literal, got %q", s)
	}
}

// checkWants cross-matches diagnostics against expectations.
func checkWants(t *testing.T, diags []ncanalysis.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// fixtureImporter resolves import paths from testdata/src source first and
// gc export data second.
type fixtureImporter struct {
	root    string
	fset    *token.FileSet
	srcPkgs map[string]*types.Package
	gc      types.Importer
	exports map[string]string
}

// load parses + type-checks the fixture package at path and collects its
// want-expectations.
func (im *fixtureImporter) load(path string) (*ncanalysis.Package, []*expectation, error) {
	files, err := im.parseDir(path)
	if err != nil {
		return nil, nil, err
	}
	var wants []*expectation
	for _, f := range files {
		w, err := parseWants(im.fset, f)
		if err != nil {
			return nil, nil, err
		}
		wants = append(wants, w...)
	}
	info := ncanalysis.NewInfo()
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck: %w", err)
	}
	im.srcPkgs[path] = tpkg
	return &ncanalysis.Package{
		Path:      path,
		Variant:   path,
		Fset:      im.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, wants, nil
}

func (im *fixtureImporter) parseDir(path string) ([]*ast.File, error) {
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !fileInBuild(name, f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s satisfy %s/%s build constraints", dir, runtime.GOOS, runtime.GOARCH)
	}
	return files, nil
}

// fileInBuild evaluates a fixture file's build constraints — filename
// GOOS/GOARCH suffixes and //go:build lines — against the host platform,
// so twin-file fixtures (thing_linux.go / thing_other.go) load like the
// real build would instead of colliding.
func fileInBuild(name string, f *ast.File) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	// A trailing _GOARCH and/or _GOOS token constrains the file; check the
	// last two tokens the way go/build does.
	if len(parts) > 1 {
		last := parts[len(parts)-1]
		if knownArch[last] {
			if last != runtime.GOARCH {
				return false
			}
			parts = parts[:len(parts)-1]
		}
	}
	if len(parts) > 1 {
		last := parts[len(parts)-1]
		if knownOS[last] && last != runtime.GOOS {
			return false
		}
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH
			})
		}
	}
	return true
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// Import implements types.Importer.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.srcPkgs[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(im.root, filepath.FromSlash(path))); err == nil {
		pkg, _, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if im.gc == nil {
		im.exports = map[string]string{}
		im.gc = importer.ForCompiler(im.fset, "gc", func(p string) (io.ReadCloser, error) {
			f, ok := im.exports[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(f)
		})
	}
	if _, ok := im.exports[path]; !ok && path != "unsafe" {
		if err := im.listExports(path); err != nil {
			return nil, err
		}
	}
	return im.gc.Import(path)
}

// listExports asks the go tool for export data of path and its deps.
func (im *fixtureImporter) listExports(path string) error {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			im.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}
