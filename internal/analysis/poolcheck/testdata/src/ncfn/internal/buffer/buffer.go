// Package buffer fakes the repo's pooled-packet API for poolcheck fixtures:
// the analyzer keys on the import path and function names only.
package buffer

// GetPacket hands out a pooled buffer.
func GetPacket(n int) []byte { return make([]byte, n) }

// PutPacket recycles one.
func PutPacket(b []byte) { _ = b }
