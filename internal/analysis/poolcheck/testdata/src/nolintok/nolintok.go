// Fixture package nolintok pins the suppression contract: a //nolint:nc
// directive with a reason silences a finding on its line, and the runner
// counts it as suppressed.
package nolintok

import "ncfn/internal/buffer"

func deliberateDoublePut(n int) {
	b := buffer.GetPacket(n)
	buffer.PutPacket(b)
	buffer.PutPacket(b) //nolint:nc deliberate double put to exercise pool accounting
}
