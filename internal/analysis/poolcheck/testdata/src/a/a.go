// Fixture package a exercises every poolcheck rule, flagging and
// non-flagging forms side by side.
package a

import "ncfn/internal/buffer"

var sink []byte
var ch = make(chan []byte, 1)

// ok: the canonical get/use/put cycle.
func balanced(n int) int {
	b := buffer.GetPacket(n)
	m := len(b)
	buffer.PutPacket(b)
	return m
}

// ok: deferred put covers every path.
func deferred(n int) int {
	b := buffer.GetPacket(n)
	defer buffer.PutPacket(b)
	if n > 10 {
		return 10
	}
	return len(b)
}

// ok: ownership handed off — returned to the caller.
func handoffReturn(n int) []byte {
	b := buffer.GetPacket(n)
	return b
}

// ok: ownership handed off — sent to another goroutine.
func handoffSend(n int) {
	b := buffer.GetPacket(n)
	ch <- b
}

// ok: ownership handed off — stored.
func handoffStore(n int) {
	b := buffer.GetPacket(n)
	sink = b
}

// ok: put on the error path, escape on the success path.
func branchedHandoff(n int, fail bool) {
	b := buffer.GetPacket(n)
	if fail {
		buffer.PutPacket(b)
		return
	}
	ch <- b
}

func leakEarlyReturn(n int, fail bool) int {
	b := buffer.GetPacket(n)
	if fail {
		return 0 // want `not recycled with PutPacket on this path`
	}
	m := len(b)
	buffer.PutPacket(b)
	return m
}

func leakNoPut(n int) int {
	b := buffer.GetPacket(n)
	return len(b) // want `not recycled with PutPacket on this path`
}

func doublePut(n int) {
	b := buffer.GetPacket(n)
	buffer.PutPacket(b)
	buffer.PutPacket(b) // want `double put`
}

func doublePutDefer(n int) {
	b := buffer.GetPacket(n)
	defer buffer.PutPacket(b)
	buffer.PutPacket(b) // want `deferred PutPacket`
}

func useAfterPut(n int) byte {
	b := buffer.GetPacket(n)
	buffer.PutPacket(b)
	return b[0] // want `use of buffer after PutPacket`
}

func reassignLeak(n int) {
	b := buffer.GetPacket(n)
	b = buffer.GetPacket(2 * n) // want `reassigned before PutPacket`
	buffer.PutPacket(b)
}

// ok: put on both branches merges cleanly.
func putBothBranches(n int, fast bool) {
	b := buffer.GetPacket(n)
	if fast {
		buffer.PutPacket(b)
	} else {
		buffer.PutPacket(b)
	}
}

// ok (conservative): put on one branch only is a maybe, not a definite
// violation — the second put would race only on one path.
func maybeDoubleStaysQuiet(n int, fast bool) {
	b := buffer.GetPacket(n)
	if fast {
		buffer.PutPacket(b)
		return
	}
	buffer.PutPacket(b)
}

// ok: the per-iteration cycle inside a loop balances.
func loopBalanced(n, iters int) {
	for i := 0; i < iters; i++ {
		b := buffer.GetPacket(n)
		buffer.PutPacket(b)
	}
}

func loopLeak(n, iters int) {
	for i := 0; i < iters; i++ {
		b := buffer.GetPacket(n)
		_ = len(b)
	}
} // want `not recycled with PutPacket on this path`
