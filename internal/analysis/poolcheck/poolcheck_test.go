package poolcheck_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, poolcheck.Analyzer, "a")
}

// TestNolintSuppression asserts the //nolint:nc directive both silences the
// finding (no unexpected diagnostics in the fixture) and is counted.
func TestNolintSuppression(t *testing.T) {
	res := analysistest.Run(t, poolcheck.Analyzer, "nolintok")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", res.Suppressed)
	}
}
