// Package poolcheck enforces the packet-pool ownership discipline of
// internal/buffer (PR 1): a []byte obtained from buffer.GetPacket is owned
// by the holder and must, on every path that keeps ownership, either be
// recycled with exactly one buffer.PutPacket or be handed off (returned,
// stored, sent, passed to a callee). The compiler sees none of this — a
// leaked buffer silently degrades the pool to GC churn, a double Put hands
// one buffer to two owners, and a use after Put races the next owner.
//
// The analysis is a structured abstract interpretation over the AST: each
// function body is walked in control-flow order, tracking every local bound
// to a GetPacket result through a small lattice (live → put / escaped, with
// a maybe-put join for diverging branches). It is deliberately conservative:
// a buffer that escapes in any way stops being tracked, and a Put that only
// happens on some branches downgrades to maybe-put rather than flagging the
// other branch, so every diagnostic is a hard violation on some concrete
// path.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncfn/internal/analysis/ncanalysis"
)

// poolPkg is the import path of the pooled-buffer package; fixtures fake a
// package at the same path.
const poolPkg = "ncfn/internal/buffer"

// Analyzer is the poolcheck check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "poolcheck",
	Doc: "enforce buffer.GetPacket/PutPacket pairing: no leaked pool buffers on any return path, " +
		"no double Put, no use of a buffer after it was Put",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// state is the tracking lattice for one buffer variable.
type state int

const (
	live     state = iota // obtained, not yet recycled
	put                   // definitely recycled
	maybePut              // recycled on some branches only
	escaped               // ownership handed off; no longer checked
)

// walker carries the per-function analysis.
type walker struct {
	pass *ncanalysis.Pass
	// getPos remembers where each tracked buffer was obtained, for messages.
	getPos map[types.Object]token.Pos
	// deferred marks buffers recycled by a defer'd PutPacket.
	deferred map[types.Object]bool
}

func analyzeFunc(pass *ncanalysis.Pass, body *ast.BlockStmt) {
	w := &walker{
		pass:     pass,
		getPos:   map[types.Object]token.Pos{},
		deferred: map[types.Object]bool{},
	}
	st, terminated := w.stmts(body.List, map[types.Object]state{})
	if !terminated {
		w.checkExit(st, body.End())
	}
}

// stmts walks a statement sequence, returning the resulting state and
// whether control definitely left the function (return / panic).
func (w *walker) stmts(list []ast.Stmt, st map[types.Object]state) (map[types.Object]state, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st map[types.Object]state) (map[types.Object]state, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.assign(s, st), false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.isPanic(call) {
				w.exprs(call.Args, st)
				return st, true
			}
			return w.call(call, st), false
		}
		w.expr(s.X, st)
		return st, false

	case *ast.DeferStmt:
		if obj := w.putArg(s.Call); obj != nil {
			if st[obj] == put {
				w.report(s.Call.Pos(), obj, "deferred PutPacket recycles a buffer already recycled")
			}
			w.deferred[obj] = true
			return st, false
		}
		// Any other defer: tracked vars referenced by it escape.
		w.escapeAll(s.Call, st)
		return st, false

	case *ast.GoStmt:
		w.escapeAll(s.Call, st)
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeOrUse(r, st) // returning a buffer hands it to the caller
		}
		w.checkExit(st, s.Pos())
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		thenSt, thenTerm := w.stmts(s.Body.List, clone(st))
		elseSt, elseTerm := clone(st), false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return merge(thenSt, elseSt), false
		}

	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		return w.clauses(s.Body.List, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st, _ = w.stmt(s.Assign, st)
		return w.clauses(s.Body.List, st)

	case *ast.SelectStmt:
		return w.clauses(s.Body.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodySt, _ := w.stmts(s.Body.List, clone(st))
		if s.Post != nil {
			bodySt, _ = w.stmt(s.Post, bodySt)
		}
		// The body runs zero or more times; join both possibilities.
		return merge(st, bodySt), false

	case *ast.RangeStmt:
		w.expr(s.X, st)
		bodySt, _ := w.stmts(s.Body.List, clone(st))
		return merge(st, bodySt), false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.escapeOrUse(s.Value, st)
		return st, false

	case *ast.IncDecStmt:
		w.expr(s.X, st)
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values, st)
				}
			}
		}
		return st, false

	case *ast.BranchStmt:
		// break/continue/goto: approximate as falling through. The loop
		// join already accounts for bodies that run partially.
		return st, false

	default:
		return st, false
	}
}

// clauses analyzes switch/select case bodies as diverging branches.
func (w *walker) clauses(list []ast.Stmt, st map[types.Object]state) (map[types.Object]state, bool) {
	var results []map[types.Object]state
	hasDefault := false
	allTerm := len(list) > 0
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			w.exprs(c.List, st)
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			cst := clone(st)
			if c.Comm == nil {
				hasDefault = true
			} else {
				cst, _ = w.stmt(c.Comm, cst)
			}
			bodySt, term := w.stmts(c.Body, cst)
			if !term {
				results = append(results, bodySt)
				allTerm = false
			}
			continue
		default:
			continue
		}
		bodySt, term := w.stmts(body, clone(st))
		if !term {
			results = append(results, bodySt)
			allTerm = false
		}
	}
	if !hasDefault {
		results = append(results, st)
		allTerm = false
	}
	if allTerm {
		return st, true
	}
	out := results[0]
	for _, r := range results[1:] {
		out = merge(out, r)
	}
	return out, false
}

// assign handles x := buffer.GetPacket(n) bindings, reassignment, and
// escapes through the RHS.
func (w *walker) assign(s *ast.AssignStmt, st map[types.Object]state) map[types.Object]state {
	// Evaluate RHS uses first (an escape like y := x happens before x is
	// rebound on the LHS).
	gets := map[int]bool{}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isGet(call) {
				w.exprs(call.Args, st)
				gets[i] = true
				continue
			}
			// Assigning a tracked buffer (or a slice of it) anywhere creates
			// an alias: ownership is no longer this variable's alone.
			w.escapeOrUse(rhs, st)
		}
	} else {
		for _, rhs := range s.Rhs {
			w.escapeOrUse(rhs, st)
		}
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			w.expr(lhs, st) // x[i] = ..., x.f = ...: reads of tracked vars
			continue
		}
		obj := objOfIdent(w.pass.TypesInfo, id)
		if obj == nil {
			continue
		}
		if gets[i] {
			if cur, tracked := st[obj]; tracked && cur == live && !w.deferred[obj] {
				w.report(lhs.Pos(), obj, "buffer from GetPacket reassigned before PutPacket (leaked)")
			}
			st[obj] = live
			w.getPos[obj] = s.Rhs[i].Pos()
			delete(w.deferred, obj)
			continue
		}
		if _, tracked := st[obj]; tracked {
			// Rebound to something else: stop tracking this name.
			delete(st, obj)
			delete(w.deferred, obj)
		}
	}
	return st
}

// call handles a statement-level call: PutPacket transitions, other calls
// escape their tracked arguments.
func (w *walker) call(call *ast.CallExpr, st map[types.Object]state) map[types.Object]state {
	if obj := w.putArg(call); obj != nil {
		switch st[obj] {
		case put:
			w.report(call.Pos(), obj, "PutPacket called twice on the same buffer (double put)")
		case maybePut:
			// Put on one branch, Put again here: possible double put, but
			// not certain — stay quiet, downgrade to put.
		}
		if w.deferred[obj] {
			w.report(call.Pos(), obj, "buffer recycled here is recycled again by a deferred PutPacket (double put)")
		}
		if _, tracked := st[obj]; tracked {
			st[obj] = put
		}
		return st
	}
	w.expr(call, st)
	return st
}

// expr walks an expression, classifying each tracked-variable occurrence as
// a read (use-after-put check) or an escape (hand-off of ownership).
func (w *walker) expr(e ast.Expr, st map[types.Object]state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure body is analyzed as its own function; vars it
			// captures escape from this one's perspective.
			w.escapeAll(n.Body, st)
			return false
		case *ast.CallExpr:
			if obj := w.putArg(n); obj != nil {
				// Nested Put (e.g. in a binary expr) — treat like call().
				w.call(n, st)
				return false
			}
			if w.isLenCap(n) {
				// len(x)/cap(x) read nothing the pool cares about, but a
				// use after put is still suspect — fall through to uses.
				return true
			}
			// Arguments handed to any other call escape.
			w.expr(n.Fun, st)
			for _, a := range n.Args {
				w.escapeOrUse(a, st)
			}
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					w.escapeOrUse(kv.Value, st)
					continue
				}
				w.escapeOrUse(el, st)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				w.escapeOrUse(n.X, st)
				return false
			}
		case *ast.Ident:
			w.use(n, st)
		}
		return true
	})
}

func (w *walker) exprs(es []ast.Expr, st map[types.Object]state) {
	for _, e := range es {
		w.expr(e, st)
	}
}

// escapeOrUse marks a direct tracked identifier as escaped; other
// expressions recurse normally (x[0] as a call arg passes a byte, not the
// buffer — but a slice of x aliases it, so slices escape too).
func (w *walker) escapeOrUse(e ast.Expr, st map[types.Object]state) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		w.use(x, st)
		if obj := objOfIdent(w.pass.TypesInfo, x); obj != nil {
			if _, tracked := st[obj]; tracked {
				st[obj] = escaped
				delete(w.deferred, obj)
			}
		}
	case *ast.SliceExpr:
		w.expr(x.Low, st)
		w.expr(x.High, st)
		w.expr(x.Max, st)
		w.escapeOrUse(x.X, st)
	default:
		w.expr(e, st)
	}
}

// use checks a read occurrence for use-after-put.
func (w *walker) use(id *ast.Ident, st map[types.Object]state) {
	obj := objOfIdent(w.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	if s, tracked := st[obj]; tracked && s == put {
		w.report(id.Pos(), obj, "use of buffer after PutPacket (the pool may have handed it to another owner)")
		st[obj] = escaped // one report per put is enough
	}
}

// escapeAll conservatively escapes every tracked variable referenced under n.
func (w *walker) escapeAll(n ast.Node, st map[types.Object]state) {
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objOfIdent(w.pass.TypesInfo, id); obj != nil {
			if _, tracked := st[obj]; tracked {
				st[obj] = escaped
				delete(w.deferred, obj)
			}
		}
		return true
	})
}

// checkExit reports buffers that are definitely still live when control
// leaves the function.
func (w *walker) checkExit(st map[types.Object]state, pos token.Pos) {
	for obj, s := range st {
		if s == live && !w.deferred[obj] {
			get := w.pass.Fset.Position(w.getPos[obj])
			w.pass.Reportf(pos, "buffer %q from GetPacket (%s:%d) is not recycled with PutPacket on this path and does not escape",
				obj.Name(), shortName(get.Filename), get.Line)
		}
	}
}

func (w *walker) report(pos token.Pos, obj types.Object, msg string) {
	w.pass.Reportf(pos, "%s: %s", obj.Name(), msg)
}

// isGet reports whether call is buffer.GetPacket.
func (w *walker) isGet(call *ast.CallExpr) bool {
	return ncanalysis.IsFunc(ncanalysis.CalleeOf(w.pass.TypesInfo, call), poolPkg, "GetPacket")
}

// putArg returns the tracked object recycled by a buffer.PutPacket(x) call,
// if call is one with a plain identifier argument.
func (w *walker) putArg(call *ast.CallExpr) types.Object {
	if !ncanalysis.IsFunc(ncanalysis.CalleeOf(w.pass.TypesInfo, call), poolPkg, "PutPacket") {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOfIdent(w.pass.TypesInfo, id)
}

func (w *walker) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

func (w *walker) isLenCap(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && (id.Name == "len" || id.Name == "cap")
}

func objOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func clone(st map[types.Object]state) map[types.Object]state {
	out := make(map[types.Object]state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// merge joins the states of two diverging branches.
func merge(a, b map[types.Object]state) map[types.Object]state {
	out := make(map[types.Object]state, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = join(va, vb)
		} else {
			out[k] = va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = vb
		}
	}
	return out
}

func join(a, b state) state {
	if a == b {
		return a
	}
	if a == escaped || b == escaped {
		return escaped
	}
	// Any disagreement between live/put/maybePut is a maybe.
	return maybePut
}
