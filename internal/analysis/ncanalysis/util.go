package ncanalysis

import (
	"go/ast"
	"go/types"
)

// CalleeOf resolves the static callee of a call expression, looking through
// parentheses. It returns nil for calls through function-typed values,
// built-ins, and type conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFunc reports whether fn is the named function or method of the package
// with the given import path. Methods match on their bare name regardless of
// receiver, which is what nclint's API-shaped checks want ("any AddBatch on
// an rlnc type").
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// IsBuiltin reports whether the call invokes the named built-in (append,
// make, new, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// ObjOf returns the object an identifier expression denotes, or nil when the
// expression is not a plain (possibly parenthesized) identifier.
func ObjOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
