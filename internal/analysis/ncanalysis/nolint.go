package ncanalysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. A comment of the form
//
//	//nolint:nc <reason>
//
// placed on the flagged line (trailing) or on the line immediately above it
// silences every nclint finding for that line. The reason is mandatory by
// convention — the self-check test greps for bare directives — and the
// driver counts how many findings each run suppressed so silenced debt stays
// visible.
const nolintPrefix = "nolint:nc"

// suppressions records, per file, the set of source lines a //nolint:nc
// directive covers.
type suppressions struct {
	lines map[string]map[int]bool
}

// collectNolint scans the comment groups of every file for nolint:nc
// directives. A directive covers its own line and the following line, so it
// works both trailing a statement and on its own line above one.
func collectNolint(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{lines: make(map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := text[len(nolintPrefix):]
				// Reject look-alikes such as nolint:ncfoo.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return s
}

// suppresses reports whether a finding at pos is covered by a directive.
func (s suppressions) suppresses(pos token.Position) bool {
	return s.lines[pos.Filename][pos.Line]
}
