package ncanalysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The suppression directive. A comment of the form
//
//	//nolint:nc <reason>
//
// placed on the flagged line (trailing) or on the line immediately above it
// silences every nclint finding for that line. The reason is mandatory by
// convention — the self-check test greps for bare directives and the
// `nclint -suppressions` report exits nonzero on a reasonless site — and the
// driver counts how many findings each run suppressed so silenced debt stays
// visible.
const nolintPrefix = "nolint:nc"

// Directive is one //nolint:nc site: where it is, why it is there, and
// which analyzers it actually silenced in the run that collected it.
type Directive struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
	// Analyzers lists the analyzers whose findings this directive
	// suppressed, sorted and deduplicated; empty for a directive that
	// silenced nothing in the run (stale, or guarding a platform-specific
	// finding the current build does not produce).
	Analyzers []string `json:"analyzers"`
}

// suppressions records, per file, the set of source lines a //nolint:nc
// directive covers, each line pointing back at its directive.
type suppressions struct {
	lines      map[string]map[int]*Directive
	directives []*Directive
}

// collectNolint scans the comment groups of every file for nolint:nc
// directives. A directive covers its own line and the following line, so it
// works both trailing a statement and on its own line above one.
func collectNolint(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{lines: make(map[string]map[int]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := text[len(nolintPrefix):]
				// Reject look-alikes such as nolint:ncfoo.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				rest = strings.TrimSuffix(strings.TrimSpace(rest), "*/")
				pos := fset.Position(c.Pos())
				d := &Directive{File: pos.Filename, Line: pos.Line, Reason: strings.TrimSpace(rest)}
				s.directives = append(s.directives, d)
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int]*Directive)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = d
				m[pos.Line+1] = d
			}
		}
	}
	return s
}

// suppresses returns the directive covering a finding at pos, or nil.
func (s suppressions) suppresses(pos token.Position) *Directive {
	return s.lines[pos.Filename][pos.Line]
}

// recordHit notes that d silenced a finding from the named analyzer.
func (d *Directive) recordHit(analyzer string) {
	for _, a := range d.Analyzers {
		if a == analyzer {
			return
		}
	}
	d.Analyzers = append(d.Analyzers, analyzer)
	sort.Strings(d.Analyzers)
}
