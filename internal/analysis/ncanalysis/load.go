package ncanalysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the plain import path ("ncfn/internal/rlnc"), with any
	// " [foo.test]" variant suffix stripped.
	Path string
	// Variant is the full go-list import path, which differs from Path for
	// test variants.
	Variant   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	DepOnly    bool
}

// Load type-checks the packages matched by patterns (run from dir, typically
// the module root) and returns them ready for analysis. Test variants are
// loaded in place of their plain package so _test.go files are covered; the
// synthetic ".test" main packages are skipped. Imports resolve against the
// gc export data `go list -export` reports, so the only requirement is that
// the tree builds.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,ForTest,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // exact go-list ImportPath -> export file
	targets := map[string]listPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		base := basePath(p.ImportPath)
		if p.Standard || p.DepOnly || strings.HasSuffix(base, ".test") {
			continue
		}
		// Prefer the test variant (its GoFiles include the _test.go files);
		// external _test packages have their own base path and coexist.
		if old, ok := targets[base]; !ok || (old.ForTest == "" && p.ForTest != "") {
			targets[base] = p
		}
	}

	bases := make([]string, 0, len(targets))
	for b := range targets {
		bases = append(bases, b)
	}
	sort.Strings(bases)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, base := range bases {
		t := targets[base]
		pkg, err := check(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, t listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, gf := range t.GoFiles {
		fn := gf
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(t.Dir, gf)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		files = append(files, f)
	}

	// A test variant's imports may themselves be test variants (an external
	// _test package imports the in-test build of the package under test), so
	// resolution prefers the export of "path [x.test]" when this target is
	// part of x's test build. The importer is per-target because go/types'
	// gc importer caches by plain path.
	variantSuffix := ""
	if i := strings.Index(t.ImportPath, " ["); i >= 0 {
		variantSuffix = t.ImportPath[i:]
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if variantSuffix != "" {
			if f, ok := exports[path+variantSuffix]; ok {
				return os.Open(f)
			}
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q (dep of %s)", path, t.ImportPath)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := NewInfo()
	tpkg, err := conf.Check(basePath(t.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:      basePath(t.ImportPath),
		Variant:   t.ImportPath,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// basePath strips the " [foo.test]" variant suffix go list appends to
// in-test package builds.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
