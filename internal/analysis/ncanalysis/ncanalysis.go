// Package ncanalysis is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built on the standard library
// only (the container that grows this repo cannot add modules). It provides
// the Analyzer/Pass/Diagnostic vocabulary the nclint suite is written
// against, a package loader that type-checks module source against the gc
// export data `go list -export` reports, and the //nolint:nc suppression
// directive.
//
// The framework is deliberately narrower than x/tools: analyzers receive a
// fully type-checked package (syntax + types.Info) and report diagnostics;
// there are no facts, no dependency ordering, and no SSA. The five nclint
// analyzers are AST def-use analyses, which this is enough for. If the
// toolchain ever gains x/tools as a dependency, each analyzer's Run can be
// ported mechanically.
package ncanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Name must be a valid flag name; it is
// how the driver enables/disables the check and how JSON output labels
// findings.
type Analyzer struct {
	Name string
	// Doc is a one-paragraph description: first line is a summary, the rest
	// explains the invariant the analyzer guards.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Report.
	// The returned error aborts the whole nclint run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the package's import path as the build system names it
	// (test variants keep their plain path: "ncfn/internal/chaostest", not
	// "ncfn/internal/chaostest [ncfn/internal/chaostest.test]").
	Path      string
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Result is the outcome of running a set of analyzers over a set of
// packages: the findings that survived //nolint:nc filtering, how many
// findings the directives suppressed, and every directive site encountered
// (the `nclint -suppressions` report reads these).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int
	Directives  []Directive
}

// Run applies every analyzer to every package and filters the findings
// through the packages' //nolint:nc directives.
func Run(pkgs []*Package, analyzers []*Analyzer) (Result, error) {
	var res Result
	seen := map[string]bool{} // directive file:line dedupe across packages
	for _, pkg := range pkgs {
		sup := collectNolint(pkg.Fset, pkg.Syntax)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				Path:      pkg.Path,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return res, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range diags {
			if dir := sup.suppresses(d.Pos); dir != nil {
				dir.recordHit(d.Analyzer)
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
		for _, dir := range sup.directives {
			key := fmt.Sprintf("%s:%d", dir.File, dir.Line)
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Directives = append(res.Directives, *dir)
		}
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		if res.Directives[i].File != res.Directives[j].File {
			return res.Directives[i].File < res.Directives[j].File
		}
		return res.Directives[i].Line < res.Directives[j].Line
	})
	return res, nil
}
