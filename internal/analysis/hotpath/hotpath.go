// Package hotpath enforces the allocation discipline of functions annotated
// //nc:hotpath. PR 1 and PR 2 made the shard worker loop, the recoder and
// encoder emission paths, and the GF(2^8) fused kernels allocation-free in
// steady state; the benchmarks assert 0 allocs/op. But a benchmark only
// guards the paths it exercises — an innocent fmt.Errorf on an error branch
// or an append to a fresh slice reintroduces GC pressure that surfaces as
// Fig. 4 tail latency under load, not as a test failure.
//
// A function (or method) carrying the //nc:hotpath directive in its doc
// comment may not contain:
//
//   - make, new, or &T{...} composite-literal allocations
//   - append, unless it is the self-append scratch idiom x = append(x, ...)
//     or x = append(x[:n], ...), whose growth amortizes to zero
//   - function literals (closures allocate)
//   - any call into the fmt package
//   - interface conversions of non-constant concrete values (implicit in
//     call arguments or explicit), which box and allocate
//   - range over a map (unordered, and the hidden iterator defeats the
//     flat loops the kernels are written as)
//
// The companion escape_test.go cross-checks the annotation against the real
// compiler: -gcflags=-m must report no heap escapes inside annotated
// functions.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ncfn/internal/analysis/ncanalysis"
)

// Directive marks a function as a guarded hot path.
const Directive = "//nc:hotpath"

// Analyzer is the hotpath check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //nc:hotpath may not allocate: no make/new/&T{}/closures, no growing " +
		"append (self-append scratch reuse is allowed), no fmt calls, no interface boxing, no map iteration",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsHot(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// IsHot reports whether the declaration carries the //nc:hotpath directive.
func IsHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func checkBody(pass *ncanalysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //nc:hotpath: function literal allocates a closure", name)
			return false // its body is the closure's problem, not this path's
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //nc:hotpath: &composite literal allocates", name)
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "%s is //nc:hotpath: range over map hides an iterator and randomizes order", name)
				}
			}
		case *ast.AssignStmt:
			checkAppend(pass, name, n)
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt, and interface boxing at call
// boundaries.
func checkCall(pass *ncanalysis.Pass, name string, call *ast.CallExpr) {
	switch {
	case ncanalysis.IsBuiltin(pass.TypesInfo, call, "make"):
		pass.Reportf(call.Pos(), "%s is //nc:hotpath: make allocates; use a preallocated arena or scratch field", name)
		return
	case ncanalysis.IsBuiltin(pass.TypesInfo, call, "new"):
		pass.Reportf(call.Pos(), "%s is //nc:hotpath: new allocates", name)
		return
	case ncanalysis.IsBuiltin(pass.TypesInfo, call, "append"):
		// Statement-position appends are vetted by checkAppend; an append
		// whose result is not reassigned anywhere is always suspect.
		return
	}
	if fn := ncanalysis.CalleeOf(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //nc:hotpath: fmt.%s allocates (formatting boxes its operands)", name, fn.Name())
		return
	}
	// Interface boxing: a non-constant concrete argument passed to an
	// interface-typed parameter allocates.
	sig := signatureOf(pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if len(call.Args) == params.Len() && call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // f(xs...): no boxing
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value != nil { // constants box into static data
			continue
		}
		if tv.Type == nil || types.IsInterface(tv.Type) || isUntypedNil(tv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //nc:hotpath: passing %s as interface %s boxes and may allocate",
			name, tv.Type, pt)
	}
}

// checkAppend allows only the self-append scratch idiom: the destination of
// the append must be the same lvalue the result is assigned to, optionally
// resliced (x = append(x[:0], ...)). Anything else can grow a fresh or
// foreign slice on the hot path.
func checkAppend(pass *ncanalysis.Pass, name string, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !ncanalysis.IsBuiltin(pass.TypesInfo, call, "append") || len(call.Args) == 0 {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		dst := call.Args[0]
		if se, ok := ast.Unparen(dst).(*ast.SliceExpr); ok {
			dst = se.X
		}
		if !sameLvalue(pass.TypesInfo, as.Lhs[i], dst) {
			pass.Reportf(call.Pos(), "%s is //nc:hotpath: append may grow a slice that is not the reused scratch (%s = append(%s, ...))",
				name, exprString(as.Lhs[i]), exprString(call.Args[0]))
		}
	}
}

// sameLvalue reports whether two expressions denote the same variable or
// field chain (x, s.f, s.f[i] with identical idents).
func sameLvalue(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := objOf(info, ax), objOf(info, bx)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && sameLvalue(info, ax.X, bx.X)
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		return ok && sameLvalue(info, ax.X, bx.X) && exprString(ax.Index) == exprString(bx.Index)
	}
	return false
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// exprString renders a small expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.BasicLit:
		return e.Value
	}
	return "expr"
}
