package hotpath_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "a")
}
