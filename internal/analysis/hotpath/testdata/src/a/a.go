// Fixture package a exercises hotpath: only functions annotated
// //nc:hotpath are constrained, and within them every allocating construct
// is flagged.
package a

import "fmt"

type shard struct {
	jobs  []int
	wire  []byte
	table map[string]int
}

type block struct{ payload []byte }

// kernel is a clean hot function: flat loops, self-append scratch reuse,
// constant panics.
//
//nc:hotpath
func kernel(sh *shard, src []byte) {
	if len(src) == 0 {
		panic("a: empty src")
	}
	sh.wire = append(sh.wire[:0], src...)
	sh.jobs = append(sh.jobs, len(src))
	for i := range sh.wire {
		sh.wire[i] ^= 0x1d
	}
	if n, ok := sh.table["x"]; ok { // map read is fine; only iteration is not
		_ = n
	}
}

// cold is unconstrained: everything below is legal without the annotation.
func cold(sh *shard) []byte {
	out := make([]byte, 16)
	fmt.Println(len(out))
	for k := range sh.table {
		_ = k
	}
	return out
}

//nc:hotpath
func hotAllocs(sh *shard, n int) {
	buf := make([]byte, n) // want `make allocates`
	_ = buf
	p := new(block) // want `new allocates`
	_ = p
	b := &block{} // want `&composite literal allocates`
	_ = b
}

//nc:hotpath
func hotAppendForeign(sh *shard, rows [][]byte, src []byte) [][]byte {
	rows = append(rows, src) // ok: self-append grows the caller's scratch
	var fresh []byte
	fresh = append(sh.wire, src...) // want `append may grow a slice that is not the reused scratch`
	_ = fresh
	return rows
}

//nc:hotpath
func hotFmt(n int) {
	fmt.Println(n) // want `fmt.Println allocates`
}

//nc:hotpath
func hotMapRange(sh *shard) int {
	total := 0
	for _, v := range sh.table { // want `range over map`
		total += v
	}
	return total
}

//nc:hotpath
func hotClosure(sh *shard) func() {
	return func() {} // want `function literal allocates a closure`
}

var boxSink interface{ Len() int }

type lener struct{ n int }

func (l lener) Len() int { return l.n }

func take(v interface{ Len() int }) { boxSink = v }

//nc:hotpath
func hotBoxing(l lener) {
	take(l) // want `boxes and may allocate`
}
