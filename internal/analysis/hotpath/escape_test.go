package hotpath_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ncfn/internal/analysis/hotpath"
)

// The hotpath analyzer bans the allocation *patterns* it can see in the
// AST; this test closes the loop with the compiler's own escape analysis.
// For every //nc:hotpath function in the packages below, `go build
// -gcflags=<pkg>=-m` must report no value escaping to the heap inside the
// function body. Panic messages are exempt: a constant string boxed for a
// never-taken panic is a static symbol, not a per-call allocation.
var hotPackages = []string{
	"ncfn/internal/gf",
	"ncfn/internal/rlnc",
	"ncfn/internal/dataplane",
}

type lineRange struct {
	file       string // base name, e.g. "fused.go"
	start, end int
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// hotRanges parses a package directory and returns the line span of every
// //nc:hotpath function in it.
func hotRanges(t *testing.T, dir string) []lineRange {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	var ranges []lineRange
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hotpath.IsHot(fd) {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				ranges = append(ranges, lineRange{
					file:  filepath.Base(start.Filename),
					start: start.Line,
					end:   end.Line,
				})
			}
		}
	}
	return ranges
}

// sourceLine returns line n (1-based) of a file path that may be relative
// to the module root; files are cached across calls.
var sourceCache = map[string][]string{}

func sourceLine(t *testing.T, path, root string, n int) string {
	t.Helper()
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	lines, ok := sourceCache[path]
	if !ok {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading flagged source file: %v", err)
		}
		lines = strings.Split(string(data), "\n")
		sourceCache[path] = lines
	}
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// escapeLine matches the -m diagnostics we care about, e.g.
// "internal/gf/fused.go:42:9: <subject> escapes to heap".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+?) (?:escapes to heap|moved to heap:.*)$`)

func TestHotFunctionsDoNotEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go compiler")
	}
	root := moduleRoot(t)
	for _, pkg := range hotPackages {
		dir := filepath.Join(root, strings.TrimPrefix(pkg, "ncfn/"))
		ranges := hotRanges(t, dir)
		if len(ranges) == 0 {
			t.Errorf("%s: no //nc:hotpath functions found; annotations lost?", pkg)
			continue
		}
		cmd := exec.Command("go", "build", "-gcflags="+pkg+"=-m", pkg)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go build -gcflags=%s=-m: %v\n%s", pkg, err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			m := escapeLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			file := filepath.Base(m[1])
			lineNo, _ := strconv.Atoi(m[2])
			subject := m[3]
			// Constant panic messages are boxed statically.
			if strings.HasPrefix(subject, `"`) {
				continue
			}
			// resizeBuf is the sanctioned amortized-growth primitive of
			// the emission paths: its inlined make fires only when the
			// caller-provided buffer lacks capacity, and the AllocsPerRun
			// regression tests pin the steady state at zero.
			if strings.Contains(sourceLine(t, m[1], root, lineNo), "resizeBuf(") {
				continue
			}
			for _, r := range ranges {
				if file == r.file && lineNo >= r.start && lineNo <= r.end {
					t.Errorf("%s: heap allocation inside //nc:hotpath function (%s-%d..%d): %s",
						pkg, r.file, r.start, r.end, line)
				}
			}
		}
	}
}
