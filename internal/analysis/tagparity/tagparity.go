// Package tagparity keeps build-tag twin files in lockstep. PR 8's wire
// path ships platform variants — udp_mmsg_linux.go with a portable
// udp_mmsg_other.go fallback, per-arch syscall-number files — and the
// compiler only ever sees one side of each pair. A helper added to the
// linux file but not the fallback builds green on every CI run of the
// primary platform and breaks the portable build weeks later; a constant
// renamed in the amd64 sysnum file but not the arm64 one does the same to
// the arm port.
//
// The analyzer groups a package's files by stripping GOOS/GOARCH/"other"
// filename suffixes (udp_mmsg_linux.go and udp_mmsg_other.go share the
// group "udp_mmsg") and, for each group with at least two members, parses
// the out-of-build twins straight from disk (syntax only — they cannot be
// type-checked on this platform). Every twin must declare the group's
// required symbol set: symbols that are exported, plus symbols referenced
// by in-build files outside the group. Variant-internal helpers (an
// mmsghdr struct only the linux file touches) stay free to differ.
//
// Diagnostics anchor in the in-build twin so //nolint:nc suppression
// works: a symbol the fallback lacks is reported at its declaration, a
// symbol only the fallback declares is reported at the package clause.
package tagparity

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ncfn/internal/analysis/ncanalysis"
)

// twin is one member of a build-tag twin group.
type twin struct {
	filename string
	file     *ast.File // nil for out-of-build twins until parsed
	inBuild  bool
}

// Analyzer is the tagparity check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "tagparity",
	Doc: "build-tag twin files (platform variants and their portable fallbacks) must declare " +
		"identical exported/externally-referenced symbol sets so no variant silently drifts",
	Run: run,
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// groupKey strips variant suffixes (_GOOS, _GOARCH, _other, combinations)
// from a file's base name. It returns "" when the name carries no variant
// suffix — such files have no twins.
func groupKey(name string) string {
	base := strings.TrimSuffix(name, ".go")
	if strings.HasSuffix(base, "_test") {
		return ""
	}
	stripped := false
	for i := 0; i < 2; i++ {
		idx := strings.LastIndexByte(base, '_')
		if idx <= 0 {
			break
		}
		suffix := base[idx+1:]
		if knownOS[suffix] || knownArch[suffix] || suffix == "other" {
			base = base[:idx]
			stripped = true
			continue
		}
		break
	}
	if !stripped {
		return ""
	}
	return base
}

// symbolsOf collects a file's package-level declarations, methods keyed as
// "(Recv).name".
func symbolsOf(f *ast.File) map[string]token.Pos {
	syms := map[string]token.Pos{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if name == "init" || name == "_" {
				continue
			}
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = "(" + recvTypeName(d.Recv.List[0].Type) + ")." + name
			}
			syms[name] = d.Name.Pos()
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.Name != "_" {
							syms[n.Name] = n.Pos()
						}
					}
				case *ast.TypeSpec:
					if s.Name.Name != "_" {
						syms[s.Name.Name] = s.Name.Pos()
					}
				}
			}
		}
	}
	return syms
}

// recvTypeName renders a receiver type without pointer/generic decoration.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return "?"
}

// exported reports whether a symbol key names an exported identifier
// (methods by their method name).
func exported(key string) bool {
	name := key
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		name = key[i+1:]
	}
	return name != "" && name[0] >= 'A' && name[0] <= 'Z'
}

func run(pass *ncanalysis.Pass) error {
	// Map in-build files by filename and group by variant-stripped base.
	inBuild := map[string]*ast.File{}
	var dir string
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		name := filepath.Base(pos.Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		inBuild[name] = f
		if dir == "" {
			dir = filepath.Dir(pos.Filename)
		}
	}
	if dir == "" {
		return nil
	}

	groups := map[string][]*twin{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		// Generated or cache-relative paths (no on-disk dir): nothing to
		// compare against.
		return nil
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		key := groupKey(name)
		if key == "" {
			continue
		}
		f, ok := inBuild[name]
		groups[key] = append(groups[key], &twin{filename: name, file: f, inBuild: ok})
	}

	for key, twins := range groups {
		if len(twins) < 2 {
			continue
		}
		// Only groups with an in-build anchor can report (and matter on
		// this platform).
		hasInBuild := false
		for _, tw := range twins {
			if tw.inBuild {
				hasInBuild = true
			}
		}
		if !hasInBuild {
			continue
		}
		checkGroup(pass, dir, key, twins)
	}
	return nil
}

func checkGroup(pass *ncanalysis.Pass, dir, key string, twins []*twin) {
	_ = key
	// Parse out-of-build twins from disk, syntax only.
	for _, tw := range twins {
		if tw.file != nil {
			continue
		}
		f, err := parser.ParseFile(pass.Fset, filepath.Join(dir, tw.filename), nil, parser.SkipObjectResolution)
		if err != nil {
			// Anchor the parse failure at an in-build twin.
			for _, anchor := range twins {
				if anchor.inBuild {
					pass.Reportf(anchor.file.Name.Pos(), "build-tag twin %s does not parse: %v", tw.filename, err)
					break
				}
			}
			return
		}
		tw.file = f
	}

	symsByTwin := map[*twin]map[string]token.Pos{}
	for _, tw := range twins {
		symsByTwin[tw] = symbolsOf(tw.file)
	}

	// Required symbols: exported anywhere in the group, or referenced from
	// an in-build file outside the group.
	required := map[string]bool{}
	for _, tw := range twins {
		for s := range symsByTwin[tw] {
			if exported(s) {
				required[s] = true
			}
		}
	}
	for s := range externallyReferenced(pass, twins, symsByTwin) {
		required[s] = true
	}

	// Every twin must declare every required symbol.
	var reqSorted []string
	for s := range required {
		reqSorted = append(reqSorted, s)
	}
	sort.Strings(reqSorted)
	for _, tw := range twins {
		syms := symsByTwin[tw]
		for _, s := range reqSorted {
			if _, ok := syms[s]; ok {
				continue
			}
			// Anchor at the declaring in-build twin if the symbol lives
			// there, else at an in-build package clause.
			reported := false
			for _, owner := range twins {
				if !owner.inBuild {
					continue
				}
				if pos, ok := symsByTwin[owner][s]; ok {
					pass.Reportf(pos, "build-tag twin %s does not declare %s; twin files must declare identical symbol sets",
						tw.filename, s)
					reported = true
					break
				}
			}
			if !reported {
				for _, anchor := range twins {
					if anchor.inBuild {
						pass.Reportf(anchor.file.Name.Pos(), "build-tag twin %s declares %s which %s lacks; twin files must declare identical symbol sets",
							declaringTwin(twins, symsByTwin, s), s, tw.filename)
						break
					}
				}
			}
		}
	}
}

// declaringTwin names a twin that declares s.
func declaringTwin(twins []*twin, syms map[*twin]map[string]token.Pos, s string) string {
	for _, tw := range twins {
		if _, ok := syms[tw][s]; ok {
			return tw.filename
		}
	}
	return "?"
}

// externallyReferenced finds group symbols used by in-build files outside
// the group: those are the package's real cross-variant API.
func externallyReferenced(pass *ncanalysis.Pass, twins []*twin, syms map[*twin]map[string]token.Pos) map[string]bool {
	// Spans of the group's in-build files, and decl-pos -> symbol key.
	type span struct{ lo, hi token.Pos }
	var spans []span
	declPos := map[token.Pos]string{}
	for _, tw := range twins {
		if !tw.inBuild {
			continue
		}
		tf := pass.Fset.File(tw.file.Pos())
		if tf == nil {
			continue
		}
		spans = append(spans, span{lo: token.Pos(tf.Base()), hi: token.Pos(tf.Base() + tf.Size())})
		for s, pos := range syms[tw] {
			declPos[pos] = s
		}
	}
	inGroup := func(p token.Pos) bool {
		for _, sp := range spans {
			if p >= sp.lo && p <= sp.hi {
				return true
			}
		}
		return false
	}

	out := map[string]bool{}
	for ident, obj := range pass.TypesInfo.Uses {
		if obj == nil {
			continue
		}
		s, ok := declPos[obj.Pos()]
		if !ok || inGroup(ident.Pos()) {
			continue
		}
		// References from _test.go files don't count: tests are not part
		// of the cross-platform build graph the twins serve.
		if strings.HasSuffix(pass.Fset.Position(ident.Pos()).Filename, "_test.go") {
			continue
		}
		out[s] = true
	}
	return out
}
