//go:build !linux

// The portable fallback: drifted from the linux twin on purpose — it
// lacks pump and linuxTuned and grew an exported symbol of its own.
package fix

const ringSupported = false

type Ring struct{}

func newRing() *Ring { return &Ring{} }

// OnlyInOther is exported but missing from the linux twin.
func OnlyInOther() int { return 3 }
