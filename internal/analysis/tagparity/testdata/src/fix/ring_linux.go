//go:build linux

// The linux variant of the twin pair; the golden test runs on linux, so
// this file is the in-build anchor where diagnostics (and wants) live.
package fix // want `build-tag twin ring_other.go declares OnlyInOther which ring_linux.go lacks`

const ringSupported = true

// Ring is exported, declared by both twins: fine.
type Ring struct{}

func newRing() *Ring { return &Ring{} }

func pump() int { return 1 } // want `build-tag twin ring_other.go does not declare pump`

// internalHelper is variant-internal: unexported and unreferenced outside
// the group, so the fallback is free to lack it.
func internalHelper() int { return 2 }

func linuxTuned() int { return 4 } //nolint:nc linux-only fast path; the fallback intentionally lacks it
