// use.go sits outside every twin group; its references define which
// unexported twin symbols are cross-variant API.
package fix

func Use() int {
	r := newRing()
	_ = r
	if !ringSupported {
		return 0
	}
	return pump() + linuxTuned() + sysFOO
}
