// Arch twins in lockstep: no findings regardless of host arch.
package fix

const sysFOO = 299
