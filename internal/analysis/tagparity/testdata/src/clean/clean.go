// Package clean has no variant-suffixed files; tagparity must stay
// silent, including on names that merely end in an underscore word.
package clean

func linuxStyleNameButNoSuffix() int { return 1 }
