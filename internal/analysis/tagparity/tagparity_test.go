package tagparity_test

import (
	"runtime"
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/tagparity"
)

func TestTagparity(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skipf("fixture wants assume the linux twin is in build (GOOS=%s)", runtime.GOOS)
	}
	res := analysistest.Run(t, tagparity.Analyzer, "fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd linux-only symbol)", res.Suppressed)
	}
}
