// Package telemetrycheck enforces the telemetry subsystem's naming and
// lifecycle conventions. PR 5's instruments are cheap because they are
// created once, at layer construction time, under stable snake_case names
// the admin endpoint and bench tooling grep for (`dataplane_rx_packets`,
// `emunet_udp_syscalls`, ...). A name invented ad hoc — or an instrument
// created lazily inside a packet-path function — silently fragments the
// metric namespace and puts a map lookup + mutex on the hot path.
//
// Three rules, applied outside the telemetry package itself and outside
// _test.go files (scratch names in tests are fine):
//
//   - instrument names passed to Registry.Counter/Gauge/GaugeFunc/
//     Histogram/Recorder must be compile-time string constants matching
//     `<layer>_snake_case` with a known layer prefix, or a constant such
//     prefix concatenated with a dynamic suffix (the per-link counters:
//     "emunet_link_tx:" + name)
//   - instruments are never created inside a //nc:hotpath function
//   - flight-recorder Record calls pass a declared telemetry.EventType
//     constant, not a bare number or variable
package telemetrycheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"ncfn/internal/analysis/hotpath"
	"ncfn/internal/analysis/ncanalysis"
)

// Analyzer is the telemetrycheck check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "telemetrycheck",
	Doc: "require constant layer-prefixed snake_case instrument names created outside //nc:hotpath " +
		"functions, and declared EventType constants for flight-recorder events",
	Run: run,
}

// telemetryPkg is the package whose Registry/Recorder types anchor the
// check; the package itself is exempt (it constructs scratch instruments
// in its own helpers).
const telemetryPkg = "ncfn/internal/telemetry"

// constructors are the Registry methods that create a named instrument.
var constructors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
	"Recorder":  true,
}

// nameRE is the full-name shape: layer prefix + snake_case.
var nameRE = regexp.MustCompile(`^(dataplane|emunet|cloud|controller)_[a-z0-9_]+$`)

// prefixRE is the shape of a constant prefix completed at runtime; the
// trailing colon separates the namespace from the dynamic suffix.
var prefixRE = regexp.MustCompile(`^(dataplane|emunet|cloud|controller)_[a-z0-9_]+:$`)

func run(pass *ncanalysis.Pass) error {
	if pass.Path == telemetryPkg {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := hotpath.IsHot(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, fn, call, hot)
				return true
			})
		}
	}
	return nil
}

// methodOn resolves call as a method named one of names on a type from the
// telemetry package, returning the method name.
func methodOn(info *types.Info, call *ast.CallExpr, typeName string, names map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || !names[fn.Name()] {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != telemetryPkg ||
		named.Obj().Name() != typeName {
		return "", false
	}
	return fn.Name(), true
}

func checkCall(pass *ncanalysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, hot bool) {
	info := pass.TypesInfo

	if method, ok := methodOn(info, call, "Registry", constructors); ok {
		if hot {
			pass.Reportf(call.Pos(),
				"%s creates instrument via Registry.%s inside a //nc:hotpath function; instruments are construction-time only",
				fn.Name.Name, method)
		}
		if len(call.Args) > 0 {
			checkName(pass, fn, call.Args[0], method)
		}
		return
	}

	if _, ok := methodOn(info, call, "Recorder", map[string]bool{"Record": true}); ok {
		if len(call.Args) < 2 {
			return
		}
		// The event must name a declared EventType constant — not a bare
		// conversion like EventType(3) and not a variable.
		var obj types.Object
		switch e := ast.Unparen(call.Args[1]).(type) {
		case *ast.Ident:
			obj = info.Uses[e]
		case *ast.SelectorExpr:
			obj = info.Uses[e.Sel]
		}
		c, isConst := obj.(*types.Const)
		if !isConst || !isEventType(c.Type()) {
			pass.Reportf(call.Args[1].Pos(),
				"%s records a flight-recorder event that is not a declared telemetry.EventType constant",
				fn.Name.Name)
		}
	}
}

// isEventType reports whether t is telemetry.EventType.
func isEventType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "EventType" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == telemetryPkg
}

// checkName validates the instrument-name argument: a constant string with
// a layer-prefixed snake_case value, or a constant prefix concatenation.
func checkName(pass *ncanalysis.Pass, fn *ast.FuncDecl, arg ast.Expr, method string) {
	info := pass.TypesInfo

	if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !nameRE.MatchString(name) {
			pass.Reportf(arg.Pos(),
				"%s names a %s instrument %q; instrument names are snake_case with a layer prefix (dataplane_/emunet_/cloud_/controller_)",
				fn.Name.Name, method, name)
		}
		return
	}

	// A dynamic name is only allowed as CONSTPREFIX + suffix, with the
	// prefix carrying the namespace and ending in ':'.
	if bin, ok := ast.Unparen(arg).(*ast.BinaryExpr); ok {
		if tv, ok := info.Types[bin.X]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			prefix := constant.StringVal(tv.Value)
			if !prefixRE.MatchString(prefix) {
				pass.Reportf(arg.Pos(),
					"%s builds a %s instrument name from prefix %q; dynamic names need a layer-prefixed constant prefix ending in ':'",
					fn.Name.Name, method, prefix)
			}
			return
		}
	}

	pass.Reportf(arg.Pos(),
		"%s passes a non-constant %s instrument name; names are compile-time literals (or a constant prefix + dynamic suffix)",
		fn.Name.Name, method)
}
