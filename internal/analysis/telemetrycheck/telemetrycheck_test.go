package telemetrycheck_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/telemetrycheck"
)

func TestTelemetrycheck(t *testing.T) {
	res := analysistest.Run(t, telemetrycheck.Analyzer, "fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd scratch name)", res.Suppressed)
	}
}
