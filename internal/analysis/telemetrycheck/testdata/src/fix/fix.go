// Package fix exercises telemetrycheck's naming, lifecycle, and event
// rules.
package fix

import "ncfn/internal/telemetry"

const (
	good      = "dataplane_good_counter"
	linkTx    = "emunet_link_tx:"
	badPrefix = "link_tx_"
)

func construct(reg *telemetry.Registry, name string) {
	reg.Counter(good, 1)
	reg.Histogram("emunet_batch_size")
	reg.Counter(linkTx+name, 1)
	reg.Counter("BadName", 1)       // want `construct names a Counter instrument "BadName"`
	reg.Gauge("no_layer_prefix", 1) // want `construct names a Gauge instrument "no_layer_prefix"`
	reg.Counter(badPrefix+name, 1)  // want `construct builds a Counter instrument name from prefix "link_tx_"`
	reg.Histogram(name)             // want `construct passes a non-constant Histogram instrument name`
}

//nc:hotpath
func hotCreate(reg *telemetry.Registry) {
	reg.Counter("dataplane_lazy_create", 1) // want `hotCreate creates instrument via Registry.Counter inside a //nc:hotpath function`
}

func record(rec *telemetry.Recorder, now int64, t telemetry.EventType) {
	rec.Record(now, telemetry.EventPacketDrop, "n", 0, 0, 0)
	rec.Record(now, t, "n", 0, 0, 0)                      // want `record records a flight-recorder event that is not a declared telemetry.EventType constant`
	rec.Record(now, telemetry.EventType(3), "n", 0, 0, 0) // want `record records a flight-recorder event that is not a declared telemetry.EventType constant`
}

// suppressed: a scratch name silenced with a reason.
func scratch(reg *telemetry.Registry) {
	reg.Counter("scratch", 1) //nolint:nc fixture exercises suppression accounting
}
