// Package clean touches no telemetry; the analyzer must stay silent, even
// on methods that share constructor names on unrelated types.
package clean

type registry struct{}

func (r *registry) Counter(name string, cells int) int { return cells }

func other(r *registry) int {
	return r.Counter("AnythingGoes", 1)
}
