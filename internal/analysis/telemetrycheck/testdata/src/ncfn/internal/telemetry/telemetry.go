// Package telemetry is a miniature of the real registry API, just enough
// surface for the telemetrycheck fixtures to type-check against.
package telemetry

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Recorder struct{}

func (r *Registry) Counter(name string, cells int) *Counter        { return &Counter{} }
func (r *Registry) Gauge(name string, cells int) *Gauge            { return &Gauge{} }
func (r *Registry) GaugeFunc(name string, f func() int64)          {}
func (r *Registry) Histogram(name string) *Histogram               { return &Histogram{} }
func (r *Registry) Recorder(name string, capacity int) *Recorder   { return &Recorder{} }

type EventType uint8

const (
	EventNone EventType = iota
	EventPacketDrop
)

func (r *Recorder) Record(now int64, typ EventType, node string, session, gen uint64, value int64) {
}
