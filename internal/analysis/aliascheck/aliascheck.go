// Package aliascheck guards the batch-view aliasing contract of the shard
// run (PR 1/PR 2): ncproto.DecodeInto parses a datagram in place, so the
// resulting Packet's Coeffs/Payload — and every rlnc.CodedBlock built from
// them — alias the receive buffer's wire bytes. Those views stay valid only
// until the buffer is recycled; the worker therefore holds every buffer of a
// run until the whole run (including Decoder.AddBatch, which copies rows
// into its arena) has been processed, and only then calls PutPacket.
//
// The check finds the ways that discipline breaks inside one function:
// recycling a buffer with buffer.PutPacket and afterwards touching a view
// that still aliases it — directly (the Packet), or through a derived value
// (p.Payload pulled into a local, a CodedBlock literal, a batch slice it was
// appended to). Tracking is lexical def-use with position-aware rebinding:
// re-parsing into the same Packet variable starts a fresh view, so loops
// that decode/consume/recycle per iteration stay clean.
package aliascheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncfn/internal/analysis/ncanalysis"
)

const (
	poolPkg  = "ncfn/internal/buffer"
	protoPkg = "ncfn/internal/ncproto"
)

// Analyzer is the aliascheck check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "aliascheck",
	Doc: "a DecodeInto/batch view aliases its receive buffer's wire bytes; flag any use of such a " +
		"view after the buffer was recycled with PutPacket",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// binding records that, from pos on, a variable's bytes alias the given
// receive buffers.
type binding struct {
	pos  token.Pos
	bufs map[types.Object]bool
}

// putEvent is one PutPacket(b) site.
type putEvent struct {
	pos token.Pos
	buf types.Object
	ln  int
}

type tracker struct {
	pass *ncanalysis.Pass
	// bindings, per aliasing variable, in source order.
	bindings map[types.Object][]binding
	puts     []putEvent
	reported map[token.Pos]bool
}

func analyzeFunc(pass *ncanalysis.Pass, body *ast.BlockStmt) {
	tr := &tracker{
		pass:     pass,
		bindings: map[types.Object][]binding{},
		reported: map[token.Pos]bool{},
	}
	// Pass 1 (source order): collect view bindings, derived aliases, and
	// PutPacket events.
	tr.collect(body)
	if len(tr.puts) == 0 || len(tr.bindings) == 0 {
		return
	}
	// Pass 2: every identifier use is checked against the puts that
	// happened between its current binding and the use.
	tr.checkUses(body)
}

func (tr *tracker) collect(body *ast.BlockStmt) {
	info := tr.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.CallExpr:
			fn := ncanalysis.CalleeOf(info, n)
			if ncanalysis.IsFunc(fn, protoPkg, "DecodeInto") && len(n.Args) >= 2 {
				view := lvalueObj(info, n.Args[0])
				buf := identObj(info, n.Args[1])
				if view != nil && buf != nil {
					tr.bind(view, n.Pos(), map[types.Object]bool{buf: true}, false)
				}
				return true
			}
			if ncanalysis.IsFunc(fn, poolPkg, "PutPacket") && len(n.Args) == 1 {
				if buf := identObj(info, n.Args[0]); buf != nil {
					tr.puts = append(tr.puts, putEvent{
						pos: n.Pos(),
						buf: buf,
						ln:  tr.pass.Fset.Position(n.Pos()).Line,
					})
				}
			}
		case *ast.AssignStmt:
			tr.collectAssign(n)
		}
		return true
	})
}

// collectAssign propagates aliasing through assignments: any LHS variable
// whose RHS mentions a currently-bound view (or derived alias) becomes an
// alias itself. Self-appends union with the variable's previous alias set —
// a batch slice accumulates views from the whole run.
func (tr *tracker) collectAssign(as *ast.AssignStmt) {
	info := tr.pass.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lhs := lvalueObj(info, as.Lhs[i])
		if lhs == nil {
			continue
		}
		bufs := map[types.Object]bool{}
		isAppend := false
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && ncanalysis.IsBuiltin(info, call, "append") {
			isAppend = true
		}
		ast.Inspect(rhs, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := identObjDirect(info, id)
			if obj == nil || obj == lhs {
				return true
			}
			if b := tr.bindingAt(obj, as.Pos()); b != nil {
				for buf := range b.bufs {
					bufs[buf] = true
				}
			}
			return true
		})
		if len(bufs) > 0 {
			tr.bind(lhs, as.Pos(), bufs, isAppend)
		} else if !isAppend {
			// Rebound to something unrelated: later uses are clean.
			if tr.bindingAt(lhs, as.Pos()) != nil {
				tr.bind(lhs, as.Pos(), nil, false)
			}
		}
	}
}

func (tr *tracker) bind(obj types.Object, pos token.Pos, bufs map[types.Object]bool, union bool) {
	if union {
		if prev := tr.bindingAt(obj, pos); prev != nil {
			merged := map[types.Object]bool{}
			for b := range prev.bufs {
				merged[b] = true
			}
			for b := range bufs {
				merged[b] = true
			}
			bufs = merged
		}
	}
	tr.bindings[obj] = append(tr.bindings[obj], binding{pos: pos, bufs: bufs})
}

// bindingAt returns the variable's binding in effect at pos (the last one
// established strictly before it), or nil.
func (tr *tracker) bindingAt(obj types.Object, pos token.Pos) *binding {
	bs := tr.bindings[obj]
	for i := len(bs) - 1; i >= 0; i-- {
		if bs[i].pos < pos {
			if bs[i].bufs == nil {
				return nil
			}
			return &bs[i]
		}
	}
	return nil
}

func (tr *tracker) checkUses(body *ast.BlockStmt) {
	info := tr.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObjDirect(info, id)
		if obj == nil {
			return true
		}
		b := tr.bindingAt(obj, id.Pos())
		if b == nil {
			return true
		}
		for _, put := range tr.puts {
			if put.pos <= b.pos || put.pos >= id.Pos() {
				continue
			}
			if !b.bufs[put.buf] {
				continue
			}
			if tr.reported[id.Pos()] {
				return true
			}
			tr.reported[id.Pos()] = true
			tr.pass.Reportf(id.Pos(),
				"%s still aliases receive buffer %q recycled by PutPacket (line %d); views of a buffer must not outlive its Put",
				obj.Name(), put.buf.Name(), put.ln)
			return true
		}
		return true
	})
}

// lvalueObj resolves the variable behind p or &p or a plain identifier LHS.
func lvalueObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	return identObj(info, e)
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return identObjDirect(info, id)
}

func identObjDirect(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}
