package aliascheck_test

import (
	"testing"

	"ncfn/internal/analysis/aliascheck"
	"ncfn/internal/analysis/analysistest"
)

func TestAliascheck(t *testing.T) {
	analysistest.Run(t, aliascheck.Analyzer, "a")
}
