// Package ncproto fakes the wire codec for aliascheck fixtures: DecodeInto
// parses in place, so the Packet's fields alias buf.
package ncproto

type Packet struct {
	Coeffs  []byte
	Payload []byte
}

func DecodeInto(p *Packet, buf []byte, k int) error {
	p.Coeffs = buf[:k]
	p.Payload = buf[k:]
	return nil
}
