// Package buffer fakes the pooled-packet API for aliascheck fixtures.
package buffer

func GetPacket(n int) []byte { return make([]byte, n) }

func PutPacket(b []byte) { _ = b }
