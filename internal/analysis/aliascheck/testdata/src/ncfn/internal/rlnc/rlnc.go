// Package rlnc fakes the coded-block and decoder types for aliascheck
// fixtures.
package rlnc

type CodedBlock struct {
	Coeffs  []byte
	Payload []byte
}

type Decoder struct{}

func (d *Decoder) AddBatch(blocks []CodedBlock) (int, error) { return len(blocks), nil }
