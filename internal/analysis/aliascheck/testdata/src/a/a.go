// Fixture package a exercises aliascheck: views of a receive buffer
// (Packet fields from DecodeInto, CodedBlocks built from them, batch slices
// they were appended to) must not be used after the buffer is recycled.
package a

import (
	"ncfn/internal/buffer"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// ok: parse, consume the view, then recycle.
func parseThenRecycle(dec *rlnc.Decoder, pkt []byte) {
	var p ncproto.Packet
	if err := ncproto.DecodeInto(&p, pkt, 8); err != nil {
		return
	}
	cb := rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload}
	dec.AddBatch([]rlnc.CodedBlock{cb})
	buffer.PutPacket(pkt)
}

func useViewAfterPut(pkt []byte) byte {
	var p ncproto.Packet
	if err := ncproto.DecodeInto(&p, pkt, 8); err != nil {
		return 0
	}
	buffer.PutPacket(pkt)
	return p.Payload[0] // want `still aliases receive buffer "pkt" recycled by PutPacket`
}

func useDerivedAfterPut(pkt []byte) byte {
	var p ncproto.Packet
	_ = ncproto.DecodeInto(&p, pkt, 8)
	payload := p.Payload
	buffer.PutPacket(pkt)
	return payload[0] // want `payload still aliases receive buffer "pkt"`
}

func batchAliasAfterPut(dec *rlnc.Decoder, batch []rlnc.CodedBlock, pkt []byte) {
	var p ncproto.Packet
	_ = ncproto.DecodeInto(&p, pkt, 8)
	batch = append(batch[:0], rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload})
	buffer.PutPacket(pkt)
	dec.AddBatch(batch) // want `batch still aliases receive buffer "pkt"`
}

// ok: the loop re-parses into the same Packet each iteration; the Put at
// the bottom recycles only the current buffer, and the next iteration's
// uses sit on a fresh binding.
func loopPerIteration(dec *rlnc.Decoder, pkts [][]byte) {
	var p ncproto.Packet
	for _, pkt := range pkts {
		if err := ncproto.DecodeInto(&p, pkt, 8); err != nil {
			continue
		}
		dec.AddBatch([]rlnc.CodedBlock{{Coeffs: p.Coeffs, Payload: p.Payload}})
		buffer.PutPacket(pkt)
	}
}

// ok: rebinding the view to a different buffer clears the old aliasing.
func rebindClears(pkt1, pkt2 []byte) byte {
	var p ncproto.Packet
	_ = ncproto.DecodeInto(&p, pkt1, 8)
	buffer.PutPacket(pkt1)
	_ = ncproto.DecodeInto(&p, pkt2, 8)
	return p.Payload[0]
}
