// Package fix exercises syscallcheck against miniature descriptor rings.
package fix

import (
	"runtime"
	"syscall"
	"unsafe"
)

type iovec struct {
	base *byte
	n    uint64
}

type ring struct {
	iovs []iovec
}

// locals feed the descriptor ring and nothing pins them.
func recvLeaky(fd uintptr) int {
	hdrs := make([]iovec, 4)
	bufs := make([]byte, 4*512)
	for i := range hdrs {
		slot := bufs[i*512 : (i+1)*512]
		hdrs[i].base = &slot[0] // want `recvLeaky stores &bufs into a raw-syscall descriptor but never calls runtime.KeepAlive\(bufs\)`
	}
	r, _, _ := syscall.Syscall6(0, fd, uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(r)
}

// ok: KeepAlive pins the payload until return.
func recvPinned(fd uintptr) int {
	hdrs := make([]iovec, 4)
	bufs := make([]byte, 4*512)
	defer runtime.KeepAlive(bufs)
	for i := range hdrs {
		slot := bufs[i*512 : (i+1)*512]
		hdrs[i].base = &slot[0]
	}
	r, _, _ := syscall.Syscall6(0, fd, uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(r)
}

// ok: the descriptors live in the receiver, which outlives the call and
// keeps the payload reachable through typed fields.
func (rg *ring) send(fd uintptr, pkt []byte) int {
	rg.iovs[0].base = &pkt[0]
	r, _, _ := syscall.Syscall6(1, fd, uintptr(unsafe.Pointer(&rg.iovs[0])), 1, 0, 0, 0)
	return int(r)
}

// the syscall runs in a callback literal; the ring locals still need pins.
func viaCallback(run func(func(fd uintptr) bool)) int {
	hdrs := make([]iovec, 2)
	sas := make([]int64, 2)
	for i := range hdrs {
		hdrs[i].base = (*byte)(unsafe.Pointer(&sas[i])) // want `viaCallback stores &sas into a raw-syscall descriptor but never calls runtime.KeepAlive\(sas\)`
	}
	n := 0
	run(func(fd uintptr) bool {
		r, _, _ := syscall.Syscall6(0, fd, uintptr(unsafe.Pointer(&hdrs[0])), 2, 0, 0, 0)
		n = int(r)
		return true
	})
	return n
}

// a uintptr'd pointer outside a syscall argument list outlives its pin.
func smuggle(p *int) uintptr {
	return uintptr(unsafe.Pointer(p)) // want `smuggle converts unsafe.Pointer to uintptr outside a raw syscall's arguments`
}

// suppressed: the directive silences the smuggle with a reason.
func smuggleSilenced(p *int) uintptr {
	return uintptr(unsafe.Pointer(p)) //nolint:nc fixture exercises suppression accounting
}

// ok: plain unsafe.Pointer reinterpretation without uintptr is outside
// this analyzer's scope (aliascheck owns it).
func reinterpret(p *uint16) *[2]byte {
	return (*[2]byte)(unsafe.Pointer(p))
}
