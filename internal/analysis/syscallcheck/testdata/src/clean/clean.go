// Package clean performs no raw syscalls and smuggles no pointers;
// syscallcheck must stay silent.
package clean

type msg struct {
	base *byte
}

func fill(dst []msg, payload []byte) {
	for i := range dst {
		dst[i].base = &payload[0]
	}
}
