package syscallcheck_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/syscallcheck"
)

func TestSyscallcheck(t *testing.T) {
	res := analysistest.Run(t, syscallcheck.Analyzer, "fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd smuggle)", res.Suppressed)
	}
}
