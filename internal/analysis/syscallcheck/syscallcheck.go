// Package syscallcheck guards the unsafe.Pointer liveness rules around the
// raw sendmmsg/recvmmsg path PR 8 introduced. The descriptor rings hand
// the kernel interior pointers smuggled through syscall.Msghdr fields; the
// Go GC cannot see those uintptr-shaped references, so every local whose
// address sits in a descriptor must be kept reachable by ordinary means —
// in practice an explicit runtime.KeepAlive — for as long as the kernel
// may read it. The compiler's liveness analysis is free to reclaim a local
// after its last syntactic use, which for a recycled ring is typically
// long before the last syscall touches it.
//
// Two rules, both per function (function literals are analyzed inside
// their enclosing declaration, where the locals live):
//
//   - pointer smuggling: a uintptr(unsafe.Pointer(...)) conversion is only
//     legal inside the argument list of a syscall.Syscall/Syscall6/
//     RawSyscall/RawSyscall6 call, where the compiler pins the referent
//     for the call's duration; anywhere else the uintptr outlives the
//     pin and is a stale-pointer bug waiting for a GC
//   - descriptor liveness: in a function that performs a raw syscall, a
//     local variable whose address is stored into a struct field (an
//     iovec base, an mmsghdr name/iov) must be kept alive with
//     runtime.KeepAlive(x); storing into a receiver/parameter-rooted or
//     package-level struct is exempt — those outlive the call on their
//     own, and the typed field keeps the referent reachable
package syscallcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncfn/internal/analysis/ncanalysis"
)

// Analyzer is the syscallcheck check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "syscallcheck",
	Doc: "require runtime.KeepAlive for locals whose addresses feed raw-syscall descriptor structs, " +
		"and forbid uintptr(unsafe.Pointer(...)) outside a raw syscall's argument list",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isRawSyscall reports whether call is syscall.Syscall/Syscall6/RawSyscall/
// RawSyscall6.
func isRawSyscall(info *types.Info, call *ast.CallExpr) bool {
	callee := ncanalysis.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "syscall" {
		return false
	}
	switch callee.Name() {
	case "Syscall", "Syscall6", "RawSyscall", "RawSyscall6":
		return true
	}
	return false
}

// isKeepAlive reports whether call is runtime.KeepAlive.
func isKeepAlive(info *types.Info, call *ast.CallExpr) bool {
	callee := ncanalysis.CalleeOf(info, call)
	return callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "runtime" && callee.Name() == "KeepAlive"
}

// isUintptrOfUnsafe reports whether call is the conversion
// uintptr(<unsafe.Pointer value>).
func isUintptrOfUnsafe(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	t := info.TypeOf(call)
	if b, ok := t.(*types.Basic); !ok || b.Kind() != types.Uintptr {
		return false
	}
	// Conversions have a type, not a function, as the callee.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isType := info.Uses[ident].(*types.TypeName); !isType {
			return false
		}
	} else {
		return false
	}
	at := info.TypeOf(call.Args[0])
	b, ok := at.(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

func checkFunc(pass *ncanalysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Collect the raw-syscall call spans and KeepAlive'd roots.
	var syscalls []*ast.CallExpr
	kept := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRawSyscall(info, call) {
			syscalls = append(syscalls, call)
		} else if isKeepAlive(info, call) && len(call.Args) == 1 {
			if obj := rootObj(info, call.Args[0]); obj != nil {
				kept[obj] = true
			}
		}
		return true
	})

	inSyscallArgs := func(pos token.Pos) bool {
		for _, sc := range syscalls {
			if pos > sc.Pos() && pos < sc.End() {
				return true
			}
		}
		return false
	}

	// Rule 1: pointer smuggling through uintptr outside a syscall.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isUintptrOfUnsafe(info, call) {
			return true
		}
		if !inSyscallArgs(call.Pos()) {
			pass.Reportf(call.Pos(),
				"%s converts unsafe.Pointer to uintptr outside a raw syscall's arguments; the referent is not kept alive",
				fn.Name.Name)
		}
		return true
	})

	if len(syscalls) == 0 {
		return
	}

	// Rule 2: descriptor liveness. First resolve slice-derivation chains
	// (slot := bufs[a:b] roots slot at bufs), then find address-of-local
	// stores into struct fields.
	derived := map[types.Object]types.Object{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			ident, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def := info.Defs[ident]
			if def == nil {
				continue
			}
			switch ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr, *ast.IndexExpr, *ast.Ident,
				*ast.SelectorExpr, *ast.UnaryExpr, *ast.StarExpr:
				if src := rootObj(info, as.Rhs[i]); src != nil {
					derived[def] = src
				}
			}
		}
		return true
	})
	resolve := func(obj types.Object) types.Object {
		for i := 0; i < 16; i++ {
			src, ok := derived[obj]
			if !ok {
				return obj
			}
			obj = src
		}
		return obj
	}

	isLocal := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		// Parameters, receivers, and named results declare outside the
		// body; package-level vars outside the function entirely.
		return obj.Pos() > fn.Body.Pos() && obj.Pos() < fn.Body.End()
	}

	reported := map[types.Object]bool{}
	checkAddr := func(rhs ast.Expr, target ast.Expr) {
		// The store target must be rooted at a local for the referent's
		// reachability to depend on this frame's liveness.
		troot := rootObj(info, target)
		if troot == nil || !isLocal(resolve(troot)) {
			return
		}
		ast.Inspect(rhs, func(n ast.Node) bool {
			un, ok := n.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			obj := rootObj(info, un.X)
			if obj == nil {
				return true
			}
			obj = resolve(obj)
			if !isLocal(obj) || kept[obj] || reported[obj] {
				return true
			}
			reported[obj] = true
			pass.Reportf(un.Pos(),
				"%s stores &%s into a raw-syscall descriptor but never calls runtime.KeepAlive(%s); the GC may reclaim it while the kernel still reads it",
				fn.Name.Name, obj.Name(), obj.Name())
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			// Only stores into struct fields of another value count:
			// x.f = &local, x[i].f = &local, x.f.g = &local.
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				checkAddr(as.Rhs[i], sel.X)
			}
		}
		return true
	})
}

// rootObj resolves the leftmost identifier of an expression to its object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			// A conversion like (*byte)(unsafe.Pointer(&sas[i])): look
			// through to the single argument.
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}
