// Package analysis collects the nclint analyzer suite. Each analyzer
// enforces one invariant the data or control plane relies on but the
// compiler cannot see; DESIGN.md ("Statically enforced invariants") maps
// each to the PR that introduced the invariant it guards.
package analysis

import (
	"ncfn/internal/analysis/aliascheck"
	"ncfn/internal/analysis/errcheckctl"
	"ncfn/internal/analysis/hotpath"
	"ncfn/internal/analysis/lockorder"
	"ncfn/internal/analysis/ncanalysis"
	"ncfn/internal/analysis/poolcheck"
	"ncfn/internal/analysis/rcucheck"
	"ncfn/internal/analysis/simtime"
	"ncfn/internal/analysis/syscallcheck"
	"ncfn/internal/analysis/tagparity"
	"ncfn/internal/analysis/telemetrycheck"
)

// All returns the full suite in stable order.
func All() []*ncanalysis.Analyzer {
	return []*ncanalysis.Analyzer{
		aliascheck.Analyzer,
		errcheckctl.Analyzer,
		hotpath.Analyzer,
		lockorder.Analyzer,
		poolcheck.Analyzer,
		rcucheck.Analyzer,
		simtime.Analyzer,
		syscallcheck.Analyzer,
		tagparity.Analyzer,
		telemetrycheck.Analyzer,
	}
}
