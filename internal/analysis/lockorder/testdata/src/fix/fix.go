// Package fix exercises every lockorder report kind against a miniature of
// the data plane's two-level locking scheme.
//
//nc:lockorder shard.pauseMu -> sessionState.mu -> sessionStore.mu
package fix

import "sync"

type sessionStore struct {
	mu sync.Mutex
	n  int
}

type sessionState struct {
	mu    sync.Mutex
	store *sessionStore
}

type shard struct {
	pauseMu sync.Mutex
	st      *sessionState
}

// ok: the declared nesting.
func conforming(st *sessionState) {
	st.mu.Lock()
	st.store.mu.Lock()
	st.store.n++
	st.store.mu.Unlock()
	st.mu.Unlock()
}

// inversion: the store's lock taken first.
func inverted(st *sessionState) {
	st.store.mu.Lock()
	st.mu.Lock() // want `inverted: acquiring st.mu while holding st.store.mu inverts the declared lock order sessionState.mu -> sessionStore.mu`
	st.mu.Unlock()
	st.store.mu.Unlock()
}

// inversion through the transitive closure of the declared chain.
func transitiveInverted(sh *shard) {
	sh.st.store.mu.Lock()
	sh.pauseMu.Lock() // want `acquiring sh.pauseMu while holding sh.st.store.mu inverts the declared lock order shard.pauseMu -> sessionStore.mu`
	sh.pauseMu.Unlock()
	sh.st.store.mu.Unlock()
}

// lockSt is conforming on its own; its summary says it acquires
// sessionState.mu.
func lockSt(st *sessionState) {
	st.mu.Lock()
	st.mu.Unlock()
}

// inversion hidden behind a same-package call.
func interproc(st *sessionState) {
	st.store.mu.Lock()
	lockSt(st) // want `interproc: call to lockSt acquires sessionState.mu while holding st.store.mu inverts the declared lock order sessionState.mu -> sessionStore.mu`
	st.store.mu.Unlock()
}

func doubleLock(st *sessionState) {
	st.mu.Lock()
	st.mu.Lock() // want `doubleLock locks st.mu while already holding it on this path \(double lock\)`
	st.mu.Unlock()
	st.mu.Unlock()
}

func doubleUnlock(st *sessionState) {
	st.mu.Lock()
	st.mu.Unlock()
	st.mu.Unlock() // want `doubleUnlock unlocks st.mu which this path already released \(double unlock\)`
}

// ok: lock handed to the caller (pauseAll style) — never released here.
func lockHandoff(st *sessionState) {
	st.mu.Lock()
	st.store.n++
}

// ok: caller holds the lock (resumeAll style) — never acquired here.
func unlockHandoff(st *sessionState) {
	st.store.n++
	st.mu.Unlock()
}

// released on the happy path, leaked on the early return.
func leaky(st *sessionState, err bool) int {
	st.mu.Lock() // want `leaky releases st.mu on some paths but can return with it still held`
	if err {
		return 0
	}
	st.mu.Unlock()
	return 1
}

// ok: defer covers every exit.
func deferred(st *sessionState, err bool) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err {
		return 0
	}
	return 1
}

// ok: read locks may be taken recursively.
func readers(mu *sync.RWMutex) {
	mu.RLock()
	mu.RLock()
	mu.RUnlock()
	mu.RUnlock()
}

// suppressed: the directive silences the double lock.
func silenced(st *sessionState) {
	st.mu.Lock()
	st.mu.Lock() //nolint:nc fixture exercises suppression accounting
	st.mu.Unlock()
	st.mu.Unlock()
}

// an inversion inside one switch arm is still an inversion.
func switched(st *sessionState, mode int) {
	st.store.mu.Lock()
	switch mode {
	case 0:
		st.store.n++
	case 1:
		st.mu.Lock() // want `switched: acquiring st.mu while holding st.store.mu inverts the declared lock order sessionState.mu -> sessionStore.mu`
		st.mu.Unlock()
	default:
		st.store.n--
	}
	st.store.mu.Unlock()
}

// ok: per-iteration lock/unlock over indexed shards; the loop, range,
// select, send, and type-switch forms all fall through cleanly.
func shapes(shards []shard, vals any, ch chan int, done chan struct{}) {
	for i := 0; i < len(shards); i++ {
		shards[i].pauseMu.Lock()
		shards[i].pauseMu.Unlock()
	}
	for i := range shards {
		shards[i].pauseMu.Lock()
		shards[i].pauseMu.Unlock()
	}
	switch v := vals.(type) {
	case int:
		_ = v
	case string:
	}
	select {
	case n := <-ch:
		ch <- n
	case <-done:
	default:
	}
loop:
	for {
		for range ch {
			continue loop
		}
		break
	}
}

// ok: the goroutine body does not inherit the spawner's held set, and a
// deferred call's arguments evaluate at the defer statement.
func spawns(st *sessionState, ch chan int) {
	st.mu.Lock()
	go func() { ch <- 1 }()
	defer notify(ch, len("x"))
	st.mu.Unlock()
}

func notify(ch chan int, n int) { ch <- n }
