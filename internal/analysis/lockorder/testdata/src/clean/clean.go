// Package clean has no //nc:lockorder directives: only the intra-function
// double-lock/unlock and leak checks apply, and nothing here trips them.
package clean

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) read() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}
