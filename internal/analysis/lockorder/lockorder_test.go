package lockorder_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	res := analysistest.Run(t, lockorder.Analyzer, "fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd double lock)", res.Suppressed)
	}
}
