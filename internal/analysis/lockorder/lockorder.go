// Package lockorder machine-checks the mutex discipline the data plane
// documents in prose. PR 7 introduced a two-level locking scheme — a
// session's st.mu is acquired before the store's store.mu, never the other
// way around — and PR 8's shard loop nests pauseMu outside both. Nothing
// enforced those sentences: one helper that takes the locks in the opposite
// order deadlocks only under contention, exactly the failure mode tests
// with light schedules never hit.
//
// The analyzer builds a per-package mutex-acquisition graph from AST
// def-use. A lock is identified by the struct type that owns the mutex
// field ("sessionState.mu"); declared order edges come from directives
// anywhere in the package:
//
//	//nc:lockorder sessionState.mu -> sessionStore.mu
//
// meaning sessionState.mu must be acquired before sessionStore.mu whenever
// both are held. Chains ("A -> B -> C") declare pairwise edges and the
// relation is closed transitively. On every intra-function path (branches
// explored, loop bodies walked once, bounded state fan-out) the analyzer
// tracks the held set and reports:
//
//   - inversion: acquiring a lock (directly, or anywhere inside a
//     same-package callee, via transitive call summaries) while holding a
//     lock the declared order says must come after it
//   - double lock: re-locking an lvalue already held on the same path
//   - double unlock: unlocking an lvalue this function already released on
//     the same path (unlocking a mutex the function never locked is the
//     documented callers-hold-it pattern and stays legal)
//   - inconsistent release: a lock released on some paths through the
//     function but still held at return on others (the classic missed
//     unlock on an error branch); functions that never release a lock are
//     assumed to hand it off (pauseAll/resumeAll style) and are not flagged
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"ncfn/internal/analysis/ncanalysis"
)

// Directive is the comment prefix declaring an order edge.
const Directive = "//nc:lockorder"

// maxPathStates bounds the per-function path fan-out; beyond it extra
// branch states are merged away (analysis stays sound for the states kept).
const maxPathStates = 128

// Analyzer is the lockorder check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce declared //nc:lockorder edges on the per-package mutex-acquisition graph; " +
		"flag order inversions (including through same-package calls), double lock, double unlock, " +
		"and locks released on some paths but held at return on others",
	Run: run,
}

// lockAction is one Lock/Unlock-family call resolved to a lock identity.
type lockAction struct {
	id      string // type-qualified lock identity, e.g. "sessionState.mu"
	lvalue  string // receiver expression as written, e.g. "st.mu"
	acquire bool
	rlock   bool // RLock/RUnlock (read side of an RWMutex)
}

// held is one lock currently held on a path.
type held struct {
	id       string
	lvalue   string
	pos      ast.Node // the acquiring call, for reporting
	deferred bool     // released by a defer at function exit
}

// pathState is the held stack of one explored path, plus the lvalues this
// function has already locked-and-released along it (for double-unlock).
type pathState struct {
	locks    []held
	released []string
}

func (p pathState) clone() pathState {
	cp := make([]held, len(p.locks))
	copy(cp, p.locks)
	rel := make([]string, len(p.released))
	copy(rel, p.released)
	return pathState{locks: cp, released: rel}
}

func (p pathState) holds(lvalue string) int {
	for i, h := range p.locks {
		if h.lvalue == lvalue {
			return i
		}
	}
	return -1
}

func run(pass *ncanalysis.Pass) error {
	edges := collectEdges(pass.Files)
	order := transitiveClosure(edges)
	summaries := buildSummaries(pass)

	c := &checker{pass: pass, order: order, summaries: summaries}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return nil
}

// collectEdges parses every //nc:lockorder directive in the package.
func collectEdges(files []*ast.File) map[string][]string {
	edges := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				text := strings.TrimSpace(cmt.Text)
				if !strings.HasPrefix(text, Directive) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, Directive))
				parts := strings.Split(rest, "->")
				for i := 0; i+1 < len(parts); i++ {
					a, b := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
					if a == "" || b == "" {
						continue
					}
					edges[a] = append(edges[a], b)
				}
			}
		}
	}
	return edges
}

// transitiveClosure returns before[a][b] == true when the declared order
// requires a to be acquired before b.
func transitiveClosure(edges map[string][]string) map[string]map[string]bool {
	before := map[string]map[string]bool{}
	var visit func(root, node string)
	visit = func(root, node string) {
		for _, next := range edges[node] {
			if before[root] == nil {
				before[root] = map[string]bool{}
			}
			if before[root][next] {
				continue
			}
			before[root][next] = true
			visit(root, next)
		}
	}
	for a := range edges {
		visit(a, a)
	}
	return before
}

// buildSummaries computes, for every function in the package, the set of
// lock ids it may acquire — directly or through same-package calls — to a
// fixed point.
func buildSummaries(pass *ncanalysis.Pass) map[*types.Func]map[string]bool {
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func][]*types.Func{}
	fnOf := map[*ast.FuncDecl]*types.Func{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fnOf[fd] = obj
			acquired := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if act, ok := resolveLockCall(pass.TypesInfo, call); ok {
					if act.acquire {
						acquired[act.id] = true
					}
					return true
				}
				if callee := ncanalysis.CalleeOf(pass.TypesInfo, call); callee != nil &&
					callee.Pkg() != nil && callee.Pkg().Path() == pass.Path {
					calls[obj] = append(calls[obj], callee)
				}
				return true
			})
			direct[obj] = acquired
		}
	}

	// Propagate callee acquisitions to callers until nothing changes.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				for id := range direct[callee] {
					if !direct[fn][id] {
						direct[fn][id] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// resolveLockCall recognizes a sync.Mutex/RWMutex Lock/Unlock-family call
// and resolves the lock's identity.
func resolveLockCall(info *types.Info, call *ast.CallExpr) (lockAction, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockAction{}, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockAction{}, false
	}
	var acquire, rlock bool
	switch fn.Name() {
	case "Lock", "TryLock":
		acquire = true
	case "RLock", "TryRLock":
		acquire, rlock = true, true
	case "Unlock":
	case "RUnlock":
		rlock = true
	default:
		return lockAction{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockAction{}, false
	}
	return lockAction{
		id:      lockID(info, sel.X),
		lvalue:  exprString(sel.X),
		acquire: acquire,
		rlock:   rlock,
	}, true
}

// lockID derives the type-qualified identity of a mutex expression: for a
// field access the owning named struct type plus field name
// ("sessionStore.mu"); for a bare variable its name. The identity is what
// //nc:lockorder edges refer to.
func lockID(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if base := info.TypeOf(sel.X); base != nil {
			t := base
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		return exprString(e)
	}
	// A plain identifier: a local or package-level mutex variable, or a
	// value with an embedded Mutex promoted to the top (x.Lock()).
	return exprString(e)
}

// checker walks one function's paths.
type checker struct {
	pass      *ncanalysis.Pass
	order     map[string]map[string]bool // order[a][b]: a must precede b
	summaries map[*types.Func]map[string]bool

	fname string
	// release bookkeeping for the inconsistent-release report
	releasedAnywhere map[string]bool
	exitHeld         []pathState
	reported         map[string]bool
}

func (c *checker) reportf(n ast.Node, format string, args ...any) {
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fname = fn.Name.Name
	c.releasedAnywhere = map[string]bool{}
	c.exitHeld = nil
	c.reported = map[string]bool{}

	// Pre-scan: which lvalues does this function ever release (explicitly
	// or by defer)? Locks it never releases are treated as handed off.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if act, ok := resolveLockCall(c.pass.TypesInfo, call); ok && !act.acquire {
			c.releasedAnywhere[act.lvalue] = true
		}
		return true
	})

	states := c.stmtList(fn.Body.List, []pathState{{}})
	c.exitHeld = append(c.exitHeld, states...)
	c.checkInconsistentRelease()
}

// checkInconsistentRelease fires when a lock is held at return on some
// paths and released on others.
func (c *checker) checkInconsistentRelease() {
	if len(c.exitHeld) < 2 {
		return
	}
	// Count, for each acquired lvalue, on how many exit paths it is still
	// held (ignoring deferred releases, which cover every exit).
	heldOn := map[string]int{}
	pos := map[string]ast.Node{}
	for _, st := range c.exitHeld {
		for _, h := range st.locks {
			if h.deferred {
				continue
			}
			heldOn[h.lvalue]++
			pos[h.lvalue] = h.pos
		}
	}
	for lv, n := range heldOn {
		if n == len(c.exitHeld) || !c.releasedAnywhere[lv] {
			continue // held on every path (handoff) or never released (handoff)
		}
		key := "incons:" + lv
		if c.reported[key] {
			continue
		}
		c.reported[key] = true
		c.reportf(pos[lv], "%s releases %s on some paths but can return with it still held", c.fname, lv)
	}
}

// stmtList threads the path states through a statement sequence.
func (c *checker) stmtList(list []ast.Stmt, states []pathState) []pathState {
	for _, s := range list {
		states = c.stmt(s, states)
		if len(states) == 0 {
			break // every path terminated
		}
	}
	return states
}

// stmt applies one statement to every live path state and returns the
// states that fall through to the next statement.
func (c *checker) stmt(s ast.Stmt, states []pathState) []pathState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.stmtList(s.List, states)
	case *ast.ExprStmt:
		return c.exprEffects(s.X, states)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			states = c.exprEffects(rhs, states)
		}
		return states
	case *ast.DeclStmt:
		return c.walkCalls(s, states)
	case *ast.DeferStmt:
		return c.deferEffects(s, states)
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently and does not inherit the
		// held set; its body is checked when its function is (literals are
		// skipped — they have no FuncDecl — an accepted gap).
		return states
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			states = c.exprEffects(r, states)
		}
		c.exitHeld = append(c.exitHeld, states...)
		return nil
	case *ast.BranchStmt:
		// break/continue/goto: give up on tracking this path rather than
		// modeling jump targets; no leak reporting for it.
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			states = c.stmt(s.Init, states)
		}
		states = c.exprEffects(s.Cond, states)
		thenStates := c.stmtList(s.Body.List, cloneAll(states))
		var elseStates []pathState
		if s.Else != nil {
			elseStates = c.stmt(s.Else, cloneAll(states))
		} else {
			elseStates = states
		}
		return capStates(append(thenStates, elseStates...))
	case *ast.ForStmt:
		if s.Init != nil {
			states = c.stmt(s.Init, states)
		}
		if s.Cond != nil {
			states = c.exprEffects(s.Cond, states)
		}
		body := c.stmtList(s.Body.List, cloneAll(states))
		if s.Post != nil {
			body = c.stmt(s.Post, body)
		}
		// One trip through the body plus the zero-trip fall-through.
		return capStates(append(body, states...))
	case *ast.RangeStmt:
		states = c.exprEffects(s.X, states)
		body := c.stmtList(s.Body.List, cloneAll(states))
		return capStates(append(body, states...))
	case *ast.SwitchStmt:
		if s.Init != nil {
			states = c.stmt(s.Init, states)
		}
		if s.Tag != nil {
			states = c.exprEffects(s.Tag, states)
		}
		return c.caseBodies(s.Body, states)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			states = c.stmt(s.Init, states)
		}
		return c.caseBodies(s.Body, states)
	case *ast.SelectStmt:
		return c.caseBodies(s.Body, states)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, states)
	case *ast.SendStmt:
		states = c.exprEffects(s.Chan, states)
		return c.exprEffects(s.Value, states)
	default:
		return c.walkCalls(s, states)
	}
}

// deferEffects handles a defer statement. `defer mu.Unlock()` marks the
// lock as released-at-exit on every path (it stays in the held set so
// order and double-lock checks still see it; the inconsistent-release
// check skips it). Arguments of any deferred call evaluate now; other
// deferred bodies run at exit and are not modeled.
func (c *checker) deferEffects(s *ast.DeferStmt, states []pathState) []pathState {
	for _, a := range s.Call.Args {
		states = c.exprEffects(a, states)
	}
	if act, ok := resolveLockCall(c.pass.TypesInfo, s.Call); ok && !act.acquire {
		for i := range states {
			st := &states[i]
			if idx := st.holds(act.lvalue); idx >= 0 {
				st.locks[idx].deferred = true
			}
		}
	}
	return states
}

// caseBodies explores each case clause as an independent branch.
func (c *checker) caseBodies(body *ast.BlockStmt, states []pathState) []pathState {
	var out []pathState
	hasDefault := false
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			out = append(out, c.stmtList(cl.Body, cloneAll(states))...)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			sub := cloneAll(states)
			if cl.Comm != nil {
				sub = c.stmt(cl.Comm, sub)
			}
			out = append(out, c.stmtList(cl.Body, sub)...)
		}
	}
	if !hasDefault {
		out = append(out, states...) // no case taken
	}
	return capStates(out)
}

// walkCalls applies exprEffects to every call found under an otherwise
// unmodeled statement.
func (c *checker) walkCalls(n ast.Node, states []pathState) []pathState {
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			states = c.callEffect(call, states)
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return states
}

// exprEffects applies lock effects of every call inside an expression, in
// syntactic order. Function literals are opaque: their bodies execute at
// call time, not here.
func (c *checker) exprEffects(e ast.Expr, states []pathState) []pathState {
	if e == nil {
		return states
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// Visit arguments first (inner calls evaluate before the outer
			// call fires); ast.Inspect is pre-order, so recurse manually.
			for _, a := range call.Args {
				states = c.exprEffects(a, states)
			}
			states = c.callEffect(call, states)
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return states
}

// callEffect applies one call's lock semantics to every path state.
func (c *checker) callEffect(call *ast.CallExpr, states []pathState) []pathState {
	if act, ok := resolveLockCall(c.pass.TypesInfo, call); ok {
		if act.acquire {
			return c.acquire(call, act, states)
		}
		return c.release(call, act, states)
	}
	// Same-package callee: its summary's acquisitions are checked against
	// the held set (the callee may take and release them internally; order
	// still matters while we hold ours).
	if callee := ncanalysis.CalleeOf(c.pass.TypesInfo, call); callee != nil &&
		callee.Pkg() != nil && callee.Pkg().Path() == c.pass.Path {
		if sum := c.summaries[callee]; len(sum) > 0 {
			for id := range sum {
				for _, st := range states {
					c.checkOrder(call, id, "call to "+callee.Name()+" acquires "+id, st)
				}
			}
		}
	}
	return states
}

// acquire checks order and double-lock, then pushes the lock.
func (c *checker) acquire(call *ast.CallExpr, act lockAction, states []pathState) []pathState {
	for i := range states {
		st := &states[i]
		if !act.rlock {
			if st.holds(act.lvalue) >= 0 {
				key := "dbl:" + posKey(c.pass, call)
				if !c.reported[key] {
					c.reported[key] = true
					c.reportf(call, "%s locks %s while already holding it on this path (double lock)", c.fname, act.lvalue)
				}
			}
		}
		c.checkOrder(call, act.id, "acquiring "+act.lvalue, *st)
		st.locks = append(st.locks, held{id: act.id, lvalue: act.lvalue, pos: call})
	}
	return states
}

// checkOrder reports when acquiring id while holding a lock that the
// declared order requires id to precede.
func (c *checker) checkOrder(call *ast.CallExpr, id, what string, st pathState) {
	for _, h := range st.locks {
		if h.id == id {
			continue
		}
		if c.order[id][h.id] {
			key := "ord:" + id + ":" + h.id + ":" + posKey(c.pass, call)
			if c.reported[key] {
				continue
			}
			c.reported[key] = true
			c.reportf(call, "%s: %s while holding %s inverts the declared lock order %s -> %s",
				c.fname, what, h.lvalue, id, h.id)
		}
	}
}

// release pops the lock, flagging a second release on the same path. An
// unlock of an lvalue this path never locked is the callers-hold-it
// handoff pattern and stays silent.
func (c *checker) release(call *ast.CallExpr, act lockAction, states []pathState) []pathState {
	for i := range states {
		st := &states[i]
		if idx := st.holds(act.lvalue); idx >= 0 {
			st.locks = append(st.locks[:idx], st.locks[idx+1:]...)
			st.released = append(st.released, act.lvalue)
			continue
		}
		for _, rel := range st.released {
			if rel == act.lvalue {
				key := "dblun:" + posKey(c.pass, call)
				if !c.reported[key] {
					c.reported[key] = true
					c.reportf(call, "%s unlocks %s which this path already released (double unlock)", c.fname, act.lvalue)
				}
				break
			}
		}
	}
	return states
}

// capStates merges away excess path states.
func capStates(states []pathState) []pathState {
	if len(states) > maxPathStates {
		return states[:maxPathStates]
	}
	return states
}

func cloneAll(states []pathState) []pathState {
	out := make([]pathState, len(states))
	for i, st := range states {
		out[i] = st.clone()
	}
	return out
}

func posKey(pass *ncanalysis.Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	return p.Filename + ":" + itoa(p.Line) + ":" + itoa(p.Column)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// exprString renders a small expression for identities and messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "expr"
}
