// Package errcheckctl forbids silently dropped errors in the control-plane
// packages. The data plane is allowed to shed best-effort sends — at Fig. 4
// packet rates a lost datagram is the protocol's business — but the control
// plane (controller, cloud, probe, transfer) makes decisions: a dropped
// error there turns a failed deploy, a dead VNF, or a truncated transfer
// into silent state divergence, exactly the class of bug PR 3's chaos
// harness exists to surface.
//
// The check flags statement-position calls (plain, go, defer) whose result
// set includes an error that no variable receives. Explicitly assigning the
// error to _ is allowed — it reads as a decision, is greppable, and matches
// how the stdlib's errcheck exemptions work. A small allowlist covers the
// idiomatic best-effort cases (Close on readers, bodies already drained);
// everything else needs handling or a //nolint:nc with a reason.
package errcheckctl

import (
	"go/ast"
	"go/types"
	"strings"

	"ncfn/internal/analysis/ncanalysis"
)

// guarded lists the control-plane package paths (the package itself and
// everything under it).
var guarded = []string{
	"ncfn/internal/controller",
	"ncfn/internal/cloud",
	"ncfn/internal/probe",
	"ncfn/internal/transfer",
}

// Allowlist holds method/function names whose dropped error is accepted
// best-effort everywhere in the guarded packages. Close covers the
// defer-close idiom on things whose write path is separately checked.
var Allowlist = map[string]bool{
	"Close": true,
}

// Analyzer is the errcheck-ctl check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "errcheckctl",
	Doc: "control-plane packages (controller, cloud, probe, transfer) may not discard error results; " +
		"assign to _ to accept one deliberately, or suppress best-effort sends with //nolint:nc",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := "call"
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
				kind = "go statement"
			case *ast.DeferStmt:
				call = s.Call
				kind = "deferred call"
			default:
				return true
			}
			if call == nil {
				return true
			}
			if !returnsError(pass.TypesInfo, call) {
				return true
			}
			name := calleeName(pass.TypesInfo, call)
			if Allowlist[name] {
				return true
			}
			pass.Reportf(call.Pos(), "%s discards the error returned by %s; handle it, assign to _, or //nolint:nc with a reason",
				kind, name)
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's result set includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if ncanalysis.IsErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return ncanalysis.IsErrorType(tv.Type)
	}
}

// calleeName renders the called function for the message and the allowlist.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := ncanalysis.CalleeOf(info, call); fn != nil {
		return fn.Name()
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "function value"
}

func inScope(path string) bool {
	for _, g := range guarded {
		if path == g || strings.HasPrefix(path, g+"/") {
			return true
		}
	}
	return false
}
