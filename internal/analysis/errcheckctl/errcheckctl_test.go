package errcheckctl_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/errcheckctl"
)

func TestErrcheckctl(t *testing.T) {
	res := analysistest.Run(t, errcheckctl.Analyzer, "ncfn/internal/controller/fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd best-effort send)", res.Suppressed)
	}
}
