// Fixture package fix sits under the guarded controller tree: discarded
// errors are violations unless explicitly assigned to _, allowlisted
// (Close), or suppressed.
package fix

import "errors"

type conn struct{}

func (conn) Send(b []byte) error        { return nil }
func (conn) Close() error               { return nil }
func (conn) SetDeadline(s string) error { return nil }

func launch() (int, error) { return 0, errors.New("boom") }

func report() {}

// ok: handled, blanked, allowlisted, or error-free.
func handled(c conn) error {
	if err := c.Send(nil); err != nil {
		return err
	}
	_ = c.SetDeadline("later") // explicit decision, greppable
	defer c.Close()            // allowlisted best-effort
	report()                   // no error to drop
	return nil
}

func dropped(c conn) {
	c.Send(nil) // want `call discards the error returned by Send`
	launch()    // want `call discards the error returned by launch`
}

func droppedGo(c conn) {
	go c.Send(nil) // want `go statement discards the error returned by Send`
}

func droppedDefer(c conn) {
	defer c.SetDeadline("never") // want `deferred call discards the error returned by SetDeadline`
}

func bestEffort(c conn) {
	c.Send(nil) //nolint:nc best-effort wake of a peer that may be gone
}
