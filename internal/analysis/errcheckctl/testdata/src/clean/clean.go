// Fixture package clean is outside the control-plane trees: the data plane
// may shed best-effort sends without errcheckctl's involvement.
package clean

import "errors"

func send() error { return errors.New("lost") }

func FireAndForget() {
	send()
}
