// Package simtime keeps the deterministic-replay packages deterministic.
// The chaos harness (PR 3) replays seeded fault schedules against a virtual
// clock and asserts event logs are replay-identical; flowsim drives seeded
// traffic traces. One call to time.Now, time.Sleep, or a math/rand global
// (which draws from the process-wide, randomly-seeded source) silently
// breaks that property in a way no test catches until a flake appears.
//
// Inside the guarded packages every timestamp must come from the injected
// simclock.Clock and every random draw from a rand.New(rand.NewSource(seed))
// instance. Constructing sources and rngs is allowed; the global helpers are
// not.
package simtime

import (
	"go/ast"
	"go/types"
	"strings"

	"ncfn/internal/analysis/ncanalysis"
)

// guarded lists the import-path prefixes the invariant covers. An entry
// matches the package itself and everything under it.
var guarded = []string{
	"ncfn/internal/chaostest",
	"ncfn/internal/flowsim",
}

// bannedTime are the wall-clock entry points of package time. Duration
// arithmetic and constructors of inert values (time.Duration, time.Unix)
// stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// allowedRand are the math/rand package-level functions that construct
// seeded state rather than drawing from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Analyzer is the simtime check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock (time.Now/Sleep/...) and global math/rand draws in the deterministic " +
		"replay packages (chaostest, flowsim); use the injected simclock and seeded sources",
	Run: run,
}

func run(pass *ncanalysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := ncanalysis.CalleeOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !isPackageLevel(fn) {
				return true
			}
			// Methods on *rand.Rand or on time.Time values are the
			// injected/seeded path and stay legal; only the package-level
			// globals reach here.
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s in deterministic package %s: use the injected simclock.Clock", fn.Name(), pass.Path)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s: draw from a seeded *rand.Rand", fn.Name(), pass.Path)
				}
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, g := range guarded {
		if path == g || strings.HasPrefix(path, g+"/") {
			return true
		}
	}
	return false
}

func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
