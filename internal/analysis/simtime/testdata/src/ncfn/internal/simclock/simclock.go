// Package simclock fakes the virtual clock for simtime fixtures.
package simclock

import "time"

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}
