// Fixture package fix sits under the guarded chaostest tree: wall-clock and
// global-rand calls are violations; the injected clock and seeded sources
// are the sanctioned forms.
package fix

import (
	"math/rand"
	"time"

	"ncfn/internal/simclock"
)

// ok: the injected clock and a seeded rng.
func deterministic(clk simclock.Clock, seed int64) time.Time {
	rng := rand.New(rand.NewSource(seed))
	clk.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
	return clk.Now()
}

func wallClock(clk simclock.Clock) time.Duration {
	start := time.Now()      // want `time.Now in deterministic package`
	return time.Since(start) // want `time.Since in deterministic package`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package`
}

func timers() {
	t := time.NewTimer(time.Second) // want `time.NewTimer in deterministic package`
	defer t.Stop()
	k := time.NewTicker(time.Second) // want `time.NewTicker in deterministic package`
	defer k.Stop()
}

func globalRand() int {
	return rand.Intn(6) // want `global rand.Intn in deterministic package`
}

// ok with a reason: the leak checker polls real goroutine state.
func allowedWallClock() {
	time.Sleep(time.Millisecond) //nolint:nc bounds a wait on real goroutines, not simulated time
}
