// Fixture package clean is outside the guarded trees: wall-clock use is not
// simtime's business here.
package clean

import "time"

func WallClockIsFine() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}
