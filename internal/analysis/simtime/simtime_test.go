package simtime_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	res := analysistest.Run(t, simtime.Analyzer, "ncfn/internal/chaostest/fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd wall-clock wait)", res.Suppressed)
	}
}
