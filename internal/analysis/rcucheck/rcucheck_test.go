package rcucheck_test

import (
	"testing"

	"ncfn/internal/analysis/analysistest"
	"ncfn/internal/analysis/rcucheck"
)

func TestRcucheck(t *testing.T) {
	res := analysistest.Run(t, rcucheck.Analyzer, "fix", "clean")
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the nolint'd constructor store)", res.Suppressed)
	}
}
