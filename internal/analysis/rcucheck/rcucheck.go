// Package rcucheck enforces the forwarding table's RCU read discipline.
// PR 7 made table reads lock-free: readers take one atomic snapshot
// (`atomic.Pointer.Load`) and work entirely inside it, writers publish
// whole replacement snapshots under a writer mutex. Both halves are
// conventions the type system cannot see: a reader that loads twice can
// observe two different table versions in one operation, a snapshot held
// across a blocking point goes stale while the holder sleeps, and a
// `Store` outside the writer lock can lose a concurrent copy-on-write
// update entirely.
//
// For every struct with an atomic.Pointer field the analyzer checks each
// function of the package:
//
//   - exactly-once deref: at most one snapshot-load call site per
//     operation, counting both direct `.Load()` calls and calls to the
//     type's trivial accessor (a tiny method like ForwardingTable.load
//     that just wraps the atomic load)
//   - no retention across blocking points: a variable bound from a
//     snapshot load must not be used after a channel send/receive, a
//     select, or a mutex acquisition, nor inside a loop (entered after
//     the load) that contains such a blocking point — iterating over the
//     snapshot's own data is fine, parking with it is not
//   - writer-only Store: `.Store()` on the atomic.Pointer must be
//     preceded, in the same function, by locking a mutex field on the
//     same base value — the copy-on-write serialization point
package rcucheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ncfn/internal/analysis/ncanalysis"
)

// Analyzer is the rcucheck check.
var Analyzer = &ncanalysis.Analyzer{
	Name: "rcucheck",
	Doc: "enforce single-snapshot RCU reads of atomic.Pointer tables: one deref per operation, " +
		"no snapshot retained across channel ops/locks/blocking loops, Store only under the writer mutex",
	Run: run,
}

// maxAccessorStmts is how small a method body must be to count as a
// trivial snapshot accessor rather than a full operation.
const maxAccessorStmts = 2

func run(pass *ncanalysis.Pass) error {
	accessors := findAccessors(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, isAccessor := accessors[funcObj(pass, fn)]; isAccessor {
				continue
			}
			checkFunc(pass, fn, accessors)
		}
	}
	return nil
}

func funcObj(pass *ncanalysis.Pass, fn *ast.FuncDecl) *types.Func {
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	return obj
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T].
func isAtomicPointer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			return isAtomicPointer(p.Elem())
		}
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// snapField resolves e as an access to an atomic.Pointer struct field and
// returns its identity ("ForwardingTable.snap") plus the base expression
// ("t"). ok is false for anything else (atomic.Uint64 fields, locals).
func snapField(info *types.Info, e ast.Expr) (id string, base ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	t := info.TypeOf(e)
	if t == nil || !isAtomicPointer(t) {
		return "", nil, false
	}
	owner := info.TypeOf(sel.X)
	if owner == nil {
		return "", nil, false
	}
	if p, isPtr := owner.Underlying().(*types.Pointer); isPtr {
		owner = p.Elem()
	}
	named, isNamed := owner.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, sel.X, true
}

// loadCall recognizes `<x>.<field>.Load()` on an atomic.Pointer field.
func loadCall(info *types.Info, call *ast.CallExpr) (id string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Load" {
		return "", false
	}
	id, _, ok = snapField(info, sel.X)
	return id, ok
}

// storeCall recognizes `<x>.<field>.Store(v)` on an atomic.Pointer field.
func storeCall(info *types.Info, call *ast.CallExpr) (id string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Store" {
		return "", false
	}
	id, _, ok = snapField(info, sel.X)
	return id, ok
}

// findAccessors maps each trivial snapshot accessor (a method of at most
// maxAccessorStmts statements whose body performs a direct atomic.Pointer
// Load) to the field identity it loads.
func findAccessors(pass *ncanalysis.Pass) map[*types.Func]string {
	out := map[*types.Func]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Body.List) > maxAccessorStmts {
				continue
			}
			// An accessor's only non-builtin call is the atomic load
			// itself; anything that calls other functions (or another
			// accessor) is a full operation, however short.
			var fieldID string
			onlyLoads := true
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := loadCall(pass.TypesInfo, call); ok {
					fieldID = id
					return true
				}
				if callee := ncanalysis.CalleeOf(pass.TypesInfo, call); callee != nil {
					onlyLoads = false
				}
				return true
			})
			if fieldID == "" || !onlyLoads {
				continue
			}
			if obj := funcObj(pass, fn); obj != nil {
				out[obj] = fieldID
			}
		}
	}
	return out
}

// barrier is one blocking point: a channel op, select, or mutex acquire.
type barrier struct {
	pos  token.Pos
	end  token.Pos // only meaningful for kind "blocking loop"
	kind string
}

// snapshotBinding is one `x := t.load()` / `s := t.snap.Load()` binding.
type snapshotBinding struct {
	id  string
	pos token.Pos
}

func checkFunc(pass *ncanalysis.Pass, fn *ast.FuncDecl, accessors map[*types.Func]string) {
	info := pass.TypesInfo

	// Pass 1: collect snapshot load sites (direct or through an accessor),
	// snapshot variable bindings, barriers, and Store sites.
	type loadSite struct {
		id  string
		pos token.Pos
	}
	var loads []loadSite
	var stores []*ast.CallExpr
	storeIDs := map[*ast.CallExpr]string{}
	var barriers []barrier
	bindings := map[types.Object]snapshotBinding{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := loadCall(info, n); ok {
				loads = append(loads, loadSite{id: id, pos: n.Pos()})
				break
			}
			if id, ok := storeCall(info, n); ok {
				stores = append(stores, n)
				storeIDs[n] = id
				break
			}
			if callee := ncanalysis.CalleeOf(info, n); callee != nil {
				if id, ok := accessors[callee]; ok {
					loads = append(loads, loadSite{id: id, pos: n.Pos()})
				} else if isMutexAcquire(callee) {
					barriers = append(barriers, barrier{pos: n.Pos(), kind: "mutex acquisition"})
				}
			}
		case *ast.SendStmt:
			barriers = append(barriers, barrier{pos: n.Pos(), kind: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				barriers = append(barriers, barrier{pos: n.Pos(), kind: "channel receive"})
			}
		case *ast.SelectStmt:
			barriers = append(barriers, barrier{pos: n.Pos(), kind: "select"})
		case *ast.AssignStmt:
			// x := <load> binds a snapshot variable.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !isCall {
					break
				}
				id, isLoad := loadCall(info, call)
				if !isLoad {
					if callee := ncanalysis.CalleeOf(info, call); callee != nil {
						id, isLoad = accessors[callee]
					}
				}
				if !isLoad {
					break
				}
				if ident, isIdent := n.Lhs[0].(*ast.Ident); isIdent {
					if obj := info.Defs[ident]; obj != nil {
						bindings[obj] = snapshotBinding{id: id, pos: n.Pos()}
					} else if obj := info.Uses[ident]; obj != nil {
						bindings[obj] = snapshotBinding{id: id, pos: n.Pos()}
					}
				}
			}
		}
		return true
	})

	// Exactly-once deref: two or more load sites of the same field in one
	// operation.
	seen := map[string]token.Pos{}
	for _, l := range loads {
		if first, dup := seen[l.id]; dup {
			pass.Reportf(l.pos, "%s derefs the %s snapshot again (first load at line %d); RCU operations must load exactly once and work inside that snapshot",
				fn.Name.Name, l.id, pass.Fset.Position(first).Line)
			continue
		}
		seen[l.id] = l.pos
	}

	// Store under the writer lock: a mutex must be acquired textually
	// before the Store in this function (the copy-on-write serialization
	// point; the specific mutex is not distinguished).
	for _, st := range stores {
		locked := false
		for _, b := range barriers {
			if b.kind == "mutex acquisition" && b.pos < st.Pos() {
				locked = true
				break
			}
		}
		if !locked {
			pass.Reportf(st.Pos(), "%s calls %s.Store outside the writer lock; copy-on-write publishes must hold the writer mutex",
				fn.Name.Name, storeIDs[st])
		}
	}

	// Retention: uses of a snapshot variable after a barrier, or inside a
	// barrier-containing loop entered after the binding.
	if len(bindings) > 0 {
		checkRetention(pass, fn, bindings, barriers)
	}
}

// isMutexAcquire reports whether callee is sync.Mutex/RWMutex Lock/RLock.
func isMutexAcquire(callee *types.Func) bool {
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	switch callee.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// checkRetention flags snapshot-variable uses that happen after a blocking
// point: textually after a barrier, or inside a loop that both starts
// after the binding and contains a barrier (so the use recurs across
// blocking iterations).
func checkRetention(pass *ncanalysis.Pass, fn *ast.FuncDecl, bindings map[types.Object]snapshotBinding, barriers []barrier) {
	info := pass.TypesInfo

	// Collect loops containing a barrier.
	type loopSpan struct{ pos, end token.Pos }
	var blockingLoops []loopSpan
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
			// Ranging over a channel blocks on every iteration.
			if t := info.TypeOf(l.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					blockingLoops = append(blockingLoops, loopSpan{pos: n.Pos(), end: body.End()})
					return true
				}
			}
		default:
			return true
		}
		for _, b := range barriers {
			if b.pos > body.Pos() && b.pos < body.End() {
				blockingLoops = append(blockingLoops, loopSpan{pos: n.Pos(), end: body.End()})
				break
			}
		}
		return true
	})

	reported := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[ident]
		if obj == nil {
			return true
		}
		bind, isSnap := bindings[obj]
		if !isSnap || reported[obj] || ident.Pos() <= bind.pos {
			return true
		}
		for _, b := range barriers {
			if b.pos > bind.pos && b.pos < ident.Pos() {
				reported[obj] = true
				pass.Reportf(ident.Pos(), "%s uses snapshot %s (loaded from %s) after a %s; reload the snapshot after blocking",
					fn.Name.Name, ident.Name, bind.id, b.kind)
				return true
			}
		}
		for _, l := range blockingLoops {
			if bind.pos < l.pos && ident.Pos() > l.pos && ident.Pos() < l.end {
				reported[obj] = true
				pass.Reportf(ident.Pos(), "%s retains snapshot %s (loaded from %s) across iterations of a blocking loop; reload it inside the loop",
					fn.Name.Name, ident.Name, bind.id)
				return true
			}
		}
		return true
	})
}
