// Package clean has no atomic.Pointer snapshots; rcucheck must stay
// silent on ordinary atomics and mutex use.
package clean

import (
	"sync"
	"sync/atomic"
)

type counterSet struct {
	mu sync.Mutex
	n  atomic.Uint64
}

func (c *counterSet) bump() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n.Store(c.n.Load() + 1)
	return c.n.Load()
}
