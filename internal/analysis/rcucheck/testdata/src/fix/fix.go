// Package fix exercises rcucheck against a miniature of the forwarding
// table's copy-on-write snapshot scheme.
package fix

import (
	"sync"
	"sync/atomic"
)

type snapshot struct {
	entries map[int][]string
}

type table struct {
	writeMu sync.Mutex
	snap    atomic.Pointer[snapshot]
	version atomic.Uint64
}

// load is the trivial accessor: counted as a snapshot deref at call sites,
// not flagged itself.
func (t *table) load() map[int][]string {
	if s := t.snap.Load(); s != nil {
		return s.entries
	}
	return nil
}

// ok: one deref, work stays inside the snapshot (looping over its own
// data is not retention).
func (t *table) lookup(id int) []string {
	m := t.load()
	out := make([]string, 0, len(m[id]))
	for _, a := range m[id] {
		out = append(out, a)
	}
	return out
}

// ok: non-pointer atomics are not snapshots.
func (t *table) bump() uint64 {
	t.version.Load()
	return t.version.Add(1)
}

// two derefs in one operation can observe two table versions.
func (t *table) doubleDeref(id int) int {
	n := len(t.load()[id])
	return n + len(t.snap.Load().entries[id]) // want `doubleDeref derefs the table.snap snapshot again`
}

// the snapshot goes stale while the channel op blocks.
func (t *table) retainAcrossChannel(ch chan int, id int) []string {
	m := t.load()
	ch <- id
	return m[id] // want `retainAcrossChannel uses snapshot m \(loaded from table.snap\) after a channel send`
}

// the snapshot goes stale while waiting for the lock.
func (t *table) retainAcrossLock(mu *sync.Mutex, id int) []string {
	m := t.load()
	mu.Lock()
	defer mu.Unlock()
	return m[id] // want `retainAcrossLock uses snapshot m \(loaded from table.snap\) after a mutex acquisition`
}

// one snapshot serves every iteration of a loop that blocks: each wakeup
// reads stale routes.
func (t *table) retainAcrossLoop(ch chan int) []string {
	m := t.load()
	var out []string
	for id := range ch {
		out = append(out, m[id]...) // want `retainAcrossLoop retains snapshot m \(loaded from table.snap\) across iterations of a blocking loop`
	}
	return out
}

// ok: the reload happens inside the blocking loop.
func (t *table) reloadInLoop(ch chan int) []string {
	var out []string
	for id := range ch {
		out = append(out, t.load()[id]...)
	}
	return out
}

// ok: the writer path publishes under the writer lock.
func (t *table) set(id int, addrs []string) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	old := t.load()
	m := make(map[int][]string, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[id] = addrs
	t.snap.Store(&snapshot{entries: m})
}

// publishing without the writer lock races concurrent copy-on-write.
func (t *table) unlockedStore() {
	t.snap.Store(&snapshot{entries: map[int][]string{}}) // want `unlockedStore calls table.snap.Store outside the writer lock`
}

// suppressed: constructor-style store, silenced with a reason.
func newTable() *table {
	t := &table{}
	t.snap.Store(&snapshot{entries: map[int][]string{}}) //nolint:nc fixture exercises suppression accounting
	return t
}
