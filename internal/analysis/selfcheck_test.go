package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"ncfn/internal/analysis"
	"ncfn/internal/analysis/ncanalysis"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the selfcheck finds the whole module no matter which package
// the test binary runs from.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the regression gate for the whole suite: nclint's
// analyzers must report zero findings on the repository itself. Any new
// violation either gets fixed or gets an explicit //nolint:nc with a
// reason — it cannot land silently.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package in the module")
	}
	pkgs, err := ncanalysis.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	res, err := ncanalysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d.String())
	}
	if t.Failed() {
		t.Fatalf("nclint reports %d finding(s) on the repo; fix them or suppress with //nolint:nc <reason>", len(res.Diagnostics))
	}
	if res.Suppressed == 0 {
		t.Fatal("expected at least one //nolint:nc suppression (the deliberate violations documented in DESIGN.md)")
	}
	t.Logf("nclint clean: %d packages, %d deliberate suppressions", len(pkgs), res.Suppressed)
}
