package bench

import (
	"fmt"
	"io"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/emunet"
	"ncfn/internal/flowsim"
	"ncfn/internal/metrics"
	"ncfn/internal/optimize"
	"ncfn/internal/probe"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

// Options tunes experiment runs.
type Options struct {
	// Quick reduces sweep points and durations (used by testing.B wrappers
	// and CI); the full runs match the paper's parameter grids.
	Quick bool
	// Seed fixes all randomness.
	Seed int64
}

// pointDuration returns the per-point streaming time.
func (o Options) pointDuration() time.Duration {
	if o.Quick {
		return 400 * time.Millisecond
	}
	return 1200 * time.Millisecond
}

var epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

// Table1 reproduces Table I: time-varying inbound and outbound bandwidth
// for one hour in the Oregon and California EC2 data centers, sampled every
// 10 minutes.
func Table1(w io.Writer, o Options) error {
	clk := simclock.NewVirtual(epoch)
	cl := cloud.New(clk, o.Seed, cloud.PaperRegions()...)
	s := metrics.NewSeries(
		"Table I: time-varying per-VM bandwidth (Mbps), sampled every 10 min",
		"minute", "oregon_in", "oregon_out", "california_in", "california_out")
	for minute := 0; minute <= 50; minute += 10 {
		row := make(map[string]float64, 4)
		for _, region := range []topology.NodeID{"oregon", "california"} {
			sample, err := cl.MeasureBandwidth(region)
			if err != nil {
				return err
			}
			row[string(region)+"_in"] = sample.InMbps
			row[string(region)+"_out"] = sample.OutMbps
		}
		s.Add(float64(minute), row)
		clk.Advance(10 * time.Minute)
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: Oregon 893-926 in / 881-938 out; California 876-938 in / 901-928 out")
	return nil
}

// Fig4 reproduces Fig. 4: multicast throughput on the butterfly versus the
// number of blocks per generation. The paper's curve peaks at 4 blocks and
// plunges past 16.
func Fig4(w io.Writer, o Options) error {
	blocks := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Quick {
		blocks = []int{1, 4, 32}
	}
	s := metrics.NewSeries("Fig 4: throughput vs blocks per generation (block = 1460 B)",
		"blocks", "throughput_mbps")
	for _, k := range blocks {
		res, err := RunButterfly(ButterflyOpts{
			Params:   rlnc.Params{GenerationBlocks: k, BlockSize: rlnc.DefaultBlockSize},
			Duration: o.pointDuration(),
			Seed:     o.Seed,
		})
		if err != nil {
			return fmt.Errorf("fig4 k=%d: %w", k, err)
		}
		s.Add(float64(k), map[string]float64{"throughput_mbps": res.GoodputMbps})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: peak ~68 Mbps at 4 blocks, ~45 Mbps past 64 blocks")
	return nil
}

// Fig5 reproduces Fig. 5: throughput versus VNF buffer size (in
// generations) under loss, where small buffers evict generations that
// retransmissions still need. The paper's curve saturates by 1024.
func Fig5(w io.Writer, o Options) error {
	sizes := []int{2, 4, 16, 64, 256, 1024, 1536}
	if o.Quick {
		sizes = []int{2, 64, 1024}
	}
	s := metrics.NewSeries("Fig 5: throughput vs buffer size (generations)",
		"buffer_generations", "throughput_mbps")
	for _, size := range sizes {
		res, err := RunButterfly(ButterflyOpts{
			BufferGenerations: size,
			Duration:          o.pointDuration(),
			Reliable:          true,
			LossTV2:           emunet.NewUniformLoss(0.1, o.Seed+int64(size)),
			ExtraSkew:         25 * time.Millisecond,
			Redundancy:        0,
			Seed:              o.Seed,
		})
		if err != nil {
			return fmt.Errorf("fig5 size=%d: %w", size, err)
		}
		s.Add(float64(size), map[string]float64{"throughput_mbps": res.GoodputMbps})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: rises from ~25 Mbps at tiny buffers, saturates ~70 Mbps by 1024 generations")
	return nil
}

// Fig7 reproduces Fig. 7: throughput over time for NC, routing-only
// (Non-NC), and Direct TCP on the butterfly.
func Fig7(w io.Writer, o Options) error {
	dur := o.pointDuration() * 2
	s := metrics.NewSeries("Fig 7: butterfly multicast throughput by scheme",
		"scheme_index", "throughput_mbps")
	type scheme struct {
		name string
		run  func() (float64, error)
	}
	schemes := []scheme{
		{"NC", func() (float64, error) {
			res, err := RunButterfly(ButterflyOpts{Duration: dur, Seed: o.Seed})
			return res.GoodputMbps, err
		}},
		{"Non-NC", func() (float64, error) {
			res, err := RunButterfly(ButterflyOpts{Duration: dur, ForceForwarding: true, Seed: o.Seed})
			return res.GoodputMbps, err
		}},
		{"DirectTCP", func() (float64, error) {
			return DirectTCPButterfly(0, dur, o.Seed)
		}},
	}
	g, src, dsts := topology.Butterfly()
	routingBound, _, err := g.RoutingMulticastCapacity(src, dsts, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 7: butterfly throughput by scheme (coding bound = %.1f Mbps, routing-only bound = %.1f Mbps)\n",
		g.MulticastCapacity(src, dsts), routingBound)
	fmt.Fprintln(w, "scheme\tthroughput_mbps")
	values := make(map[string]float64, len(schemes))
	for i, sc := range schemes {
		v, err := sc.run()
		if err != nil {
			return fmt.Errorf("fig7 %s: %w", sc.name, err)
		}
		values[sc.name] = v
		fmt.Fprintf(w, "%s\t%.2f\n", sc.name, v)
		s.Add(float64(i), map[string]float64{"throughput_mbps": v})
	}
	// Invariant check the harness itself enforces: NC > Non-NC > Direct.
	if !(values["NC"] > values["Non-NC"] && values["Non-NC"] > values["DirectTCP"]) {
		fmt.Fprintf(w, "# WARNING: ordering NC > Non-NC > DirectTCP not reproduced this run\n")
	}
	fmt.Fprintln(w, "# paper: NC ~68, Non-NC ~55-60, Direct TCP ~15-25 (Mbps); max 69.9")
	return nil
}

// Table2 reproduces Table II: round-trip delay of the direct path versus
// the relayed path with and without coding, to each butterfly receiver.
func Table2(w io.Writer, o Options) error {
	pings := 5
	if o.Quick {
		pings = 2
	}
	fmt.Fprintln(w, "# Table II: delay comparison (ms, RTT)")
	fmt.Fprintln(w, "path\treceiver\tmin\tmax\tavg")

	// Direct paths: standard ping over the direct links.
	n := emunet.NewNetwork()
	n.SetDuplexLink("V1", "O2", emunet.LinkConfig{Delay: 45434 * time.Microsecond})
	n.SetDuplexLink("V1", "C2", emunet.LinkConfig{Delay: 38515 * time.Microsecond})
	for _, dst := range []string{"O2", "C2"} {
		resp := probe.NewResponder(n.Host(dst))
		p := probe.NewProber(n.Host("V1-probe-"+dst), nil)
		n.SetDuplexLink("V1-probe-"+dst, dst, mustLinkConfig(n, "V1", dst))
		res, err := p.Ping(dst, pings, 1460, 5*time.Second)
		p.Close()
		resp.Close()
		if err != nil {
			n.Close()
			return fmt.Errorf("table2 direct ping %s: %w", dst, err)
		}
		fmt.Fprintf(w, "direct\t%s\t%.2f\t%.2f\t%.2f\n",
			dst, ms(res.Min), ms(res.Max), ms(res.Avg))
	}
	n.Close()

	// Relayed paths: time from first generation sent to its ACK, with and
	// without coding at the relays.
	for _, coding := range []bool{true, false} {
		label := "relayed+coding"
		if !coding {
			label = "relayed"
		}
		mins, maxs, avgs, err := relayedRTT(o, coding, pings)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", label, err)
		}
		for _, dst := range []string{"O2", "C2"} {
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
				label, dst, mins[dst], maxs[dst], avgs[dst])
		}
	}
	fmt.Fprintln(w, "# paper: direct 77.0/90.9 avg; relayed 166.5-168.8; coding adds 0.9-1.5%")
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Fig8 reproduces Fig. 8: throughput under i.i.d. uniform loss on the
// T→V2 bottleneck for NC0/NC1/NC2 and the routing-only baseline.
func Fig8(w io.Writer, o Options) error {
	rates := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	if o.Quick {
		rates = []float64{0, 0.25, 0.5}
	}
	return lossSweep(w, o, "Fig 8: throughput vs uniform loss on T->V2", "loss_pct", rates,
		func(p float64, seed int64) emunet.LossModel {
			if p == 0 {
				return nil
			}
			return emunet.NewUniformLoss(p, seed)
		}, 100)
}

// Fig9 reproduces Fig. 9: throughput under the bursty loss process
// P_n = 25%·P_{n-1} + P on T→V2.
func Fig9(w io.Writer, o Options) error {
	rates := []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
	if o.Quick {
		rates = []float64{0, 0.025, 0.05}
	}
	return lossSweep(w, o, "Fig 9: throughput vs burst loss P on T->V2", "P_pct", rates,
		func(p float64, seed int64) emunet.LossModel {
			if p == 0 {
				return nil
			}
			return emunet.NewBurstLoss(p, seed)
		}, 100)
}

// lossSweep runs the NC0/NC1/NC2/Non-NC grid over a loss parameter.
func lossSweep(w io.Writer, o Options, title, xlabel string, rates []float64,
	model func(p float64, seed int64) emunet.LossModel, xScale float64) error {
	s := metrics.NewSeries(title, xlabel, "NC0", "NC1", "NC2", "Non-NC")
	for i, p := range rates {
		row := make(map[string]float64, 4)
		for r := 0; r <= 2; r++ {
			res, err := RunButterfly(ButterflyOpts{
				Redundancy: r,
				Duration:   o.pointDuration(),
				LossTV2:    model(p, o.Seed+int64(i*10+r)),
				Seed:       o.Seed,
			})
			if err != nil {
				return fmt.Errorf("%s NC%d p=%v: %w", title, r, p, err)
			}
			row[fmt.Sprintf("NC%d", r)] = res.GoodputMbps
		}
		res, err := RunButterfly(ButterflyOpts{
			ForceForwarding: true,
			Duration:        o.pointDuration(),
			LossTV2:         model(p, o.Seed+int64(i*10+7)),
			Seed:            o.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s Non-NC p=%v: %w", title, p, err)
		}
		row["Non-NC"] = res.GoodputMbps
		s.Add(p*xScale, row)
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: NC0 collapses with loss; NC1/NC2 retain high throughput; redundancy wastes bandwidth at low loss")
	return nil
}

// Fig10 reproduces Fig. 10: total multicast throughput and number of VNFs
// over 120 minutes of session and receiver churn.
func Fig10(w io.Writer, o Options) error {
	d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: o.Seed})
	if err != nil {
		return err
	}
	samples, err := flowsim.Run(d.Controller, d.Clock, d.Fig10Events(), flowsim.RunConfig{
		Duration: 120 * time.Minute,
		Interval: 10 * time.Minute,
	})
	if err != nil {
		return err
	}
	if err := flowsim.Series("Fig 10: total throughput and #VNFs under session/receiver churn", samples).WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: throughput and VNFs rise for 30 min (3->6 sessions), fall for the next 30 (6->3), stable through receiver churn")
	return nil
}

// Fig11 reproduces Fig. 11: throughput and VNF count under bandwidth cuts.
func Fig11(w io.Writer, o Options) error {
	d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: o.Seed})
	if err != nil {
		return err
	}
	samples, err := flowsim.Run(d.Controller, d.Clock, d.Fig11Events(o.Seed+1), flowsim.RunConfig{
		Duration:   70 * time.Minute,
		Interval:   10 * time.Minute,
		Throughput: d.EffectiveThroughput(),
	})
	if err != nil {
		return err
	}
	if err := flowsim.Series("Fig 11: throughput and #VNFs under 50% bandwidth cuts every 20 min", samples).WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: throughput dips at each cut and recovers within ~10 min as the scaling algorithm launches VNFs; a cut may be left unmitigated when scaling out lowers the objective")
	return nil
}

// Fig12 reproduces Fig. 12: total throughput versus the maximum tolerable
// delay L^max (scaling disabled; one static solve per point).
func Fig12(w io.Writer, o Options) error {
	lmaxes := []time.Duration{75, 100, 125, 150, 175, 200}
	if o.Quick {
		lmaxes = []time.Duration{75, 150, 200}
	}
	d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: o.Seed})
	if err != nil {
		return err
	}
	// Stretch the overlay's propagation delays so the 75-200 ms Lmax axis
	// actually gates path choice (the paper's measured source→receiver
	// paths span up to ~170 ms RTT; our compact delay matrix tops out
	// lower, so without stretching every path fits under 75 ms).
	stretched := d.Graph.Clone()
	for _, l := range stretched.Links() {
		if err := stretched.SetDelay(l.From, l.To, time.Duration(2.8*float64(l.Delay))); err != nil {
			return err
		}
	}
	s := metrics.NewSeries("Fig 12: total throughput vs max tolerable delay", "lmax_ms", "throughput_mbps")
	for _, lm := range lmaxes {
		lmax := lm * time.Millisecond
		// Sessions whose receivers have no path at all within Lmax carry
		// zero rate; they rejoin the optimization as Lmax grows.
		var sessions []optimize.Session
		for _, sess := range d.Sessions {
			sess.MaxDelay = lmax
			feasible := true
			for _, r := range sess.Receivers {
				if len(stretched.FeasiblePathsMaxHops(sess.Source, r, lmax, 3)) == 0 {
					feasible = false
					break
				}
			}
			if feasible {
				sessions = append(sessions, sess)
			}
		}
		// "Disabling the scaling algorithm": the deployment is pinned to
		// one VNF per data center; only the feasible path set varies with
		// Lmax. Larger Lmax lets flows detour around the bandwidth-scarce
		// VNFs, raising throughput until new paths stop contributing.
		cfg := staticConfig(d)
		cfg.Graph = stretched
		cfg.BaseVNFs = map[topology.NodeID]int{}
		for i := range cfg.DataCenters {
			cfg.DataCenters[i].MaxVNFs = 1
			cfg.BaseVNFs[cfg.DataCenters[i].ID] = 1
		}
		plan, err := optimize.Solve(cfg, sessions)
		if err != nil {
			return fmt.Errorf("fig12 lmax=%v: %w", lmax, err)
		}
		s.Add(float64(lm), map[string]float64{"throughput_mbps": plan.TotalRate()})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: throughput grows with Lmax and plateaus past 150 ms (new feasible paths stop contributing)")
	return nil
}

// Fig13 reproduces Fig. 13: throughput and VNF count versus α.
func Fig13(w io.Writer, o Options) error {
	alphas := []float64{0, 20, 50, 100, 150, 200}
	if o.Quick {
		alphas = []float64{0, 100, 200}
	}
	d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: o.Seed})
	if err != nil {
		return err
	}
	s := metrics.NewSeries("Fig 13: throughput and #VNFs vs alpha", "alpha", "throughput_mbps", "vnfs")
	for _, alpha := range alphas {
		cfg := staticConfig(d)
		cfg.Alpha = alpha
		plan, err := optimize.Solve(cfg, d.Sessions)
		if err != nil {
			return fmt.Errorf("fig13 alpha=%v: %w", alpha, err)
		}
		s.Add(alpha, map[string]float64{
			"throughput_mbps": plan.TotalRate(),
			"vnfs":            float64(plan.TotalVNFs()),
		})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: throughput and VNF count decrease as alpha grows; no VNFs at alpha=200")
	return nil
}

// staticConfig extracts the optimizer configuration of a flowsim
// deployment for scaling-disabled static solves.
func staticConfig(d *flowsim.Deployment) optimize.Config {
	dcs := make([]optimize.DataCenter, 0, len(d.Regions))
	for _, region := range d.Regions {
		r, _ := d.Cloud.Region(region)
		dcs = append(dcs, optimize.DataCenter{
			ID:       region,
			BinMbps:  r.BaseInMbps,
			BoutMbps: r.BaseOutMbps,
			CodeMbps: 500,
		})
	}
	sourceOut := make(map[topology.NodeID]float64)
	destIn := make(map[topology.NodeID]float64)
	for _, sess := range d.Sessions {
		sourceOut[sess.Source] = 2 * sess.RateCap
		for _, r := range sess.Receivers {
			destIn[r] = sess.RateCap
		}
	}
	return optimize.Config{
		Graph:         d.Graph,
		DataCenters:   dcs,
		Alpha:         20,
		MaxPathHops:   3,
		SourceOutMbps: sourceOut,
		DestInMbps:    destIn,
	}
}
