package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/metrics"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

// discardConn is a PacketConn that counts and discards every send; Recv
// blocks until Close. The soak drives its VNF synchronously through
// InjectPacket, so nothing ever needs to be received.
type discardConn struct {
	sent      atomic.Uint64
	closeOnce sync.Once
	closed    chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{closed: make(chan struct{})} }

func (c *discardConn) Send(string, []byte) error {
	c.sent.Add(1)
	return nil
}

func (c *discardConn) Recv() ([]byte, string, error) {
	<-c.closed
	return nil, "", emunet.ErrClosed
}

func (c *discardConn) LocalAddr() string { return "soak" }

func (c *discardConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// soakParams keeps per-generation coding state moderate so thousands of
// sessions stress the store, not the allocator.
func soakParams() rlnc.Params {
	return rlnc.Params{GenerationBlocks: 4, BlockSize: 256}
}

// soakResult aggregates one soak run's observables.
type soakResult struct {
	throughputMbps float64
	p99DecodeUs    float64
	liveGens       int64
	peakMB         float64
	endMB          float64
	evicted        uint64
	evictedDrops   uint64
	pauseEvents    uint64
	tableSwaps     uint64
}

// runSessionSoak drives one VNF through a many-session workload: sessions
// with heavy-tailed traffic shares cycle generation after generation,
// Poisson churn kills and revives sessions mid-stream (churnPer1000 events
// per 1000 packets), and the controller pushes forwarding batches every 512
// packets through the RCU swap path. The session store bounds live coding
// state at sessions/2 generations, so eviction runs continuously. Returns
// wall-clock throughput and the store/telemetry observables.
func runSessionSoak(o Options, sessions, totalPkts, churnPer1000 int, role dataplane.Role) (soakResult, error) {
	params := soakParams()
	k := params.GenerationBlocks
	maxGens := sessions / 2
	if maxGens < 64 {
		maxGens = 64
	}

	conn := newDiscardConn()
	reg := telemetry.NewRegistry()
	v := dataplane.NewVNF(conn,
		dataplane.WithSeed(o.Seed),
		dataplane.WithTelemetry(reg),
		dataplane.WithSessionStore(dataplane.SessionStoreConfig{MaxGenerations: maxGens}))
	defer v.Close()

	hops := []dataplane.HopGroup{{Addrs: []string{"sink"}}}
	rng := rand.New(rand.NewSource(o.Seed + int64(sessions) + int64(churnPer1000)))
	templates := make([][][]byte, sessions+1)
	cursor := make([]int, sessions+1)   // next packet within the current cycle
	cycle := make([]uint32, sessions+1) // current generation id
	for s := 1; s <= sessions; s++ {
		id := ncproto.SessionID(s)
		if err := v.Configure(dataplane.SessionConfig{ID: id, Params: params, Role: role, Redundancy: 1}); err != nil {
			return soakResult{}, err
		}
		v.Table().Set(id, hops)
		data := make([]byte, params.GenerationBytes())
		rng.Read(data)
		enc, err := rlnc.NewEncoder(params, data, o.Seed+int64(s))
		if err != nil {
			return soakResult{}, err
		}
		templates[s] = make([][]byte, k+1)
		for i := range templates[s] {
			cb := enc.Coded()
			templates[s][i] = (&ncproto.Packet{
				Session: id, Coeffs: cb.Coeffs, Payload: cb.Payload,
			}).Encode(nil)
		}
	}

	// Heavy-tailed traffic shares: Pareto(alpha=1.2) weights, capped, drawn
	// per session and expanded into a weighted pick table. A few sessions
	// carry a large share of the packets; most idle between touches — the
	// distribution that makes LRU/TTL eviction meaningful.
	var pick []int
	for s := 1; s <= sessions; s++ {
		w := int(math.Pow(1-rng.Float64(), -1/1.2))
		if w > 64 {
			w = 64
		}
		for i := 0; i < w; i++ {
			pick = append(pick, s)
		}
	}

	// Poisson churn: exponential gaps between kill/revive events, measured
	// in packets.
	nextChurn := totalPkts + 1
	churnGap := func() int {
		if churnPer1000 <= 0 {
			return totalPkts + 1
		}
		return 1 + int(rng.ExpFloat64()*1000/float64(churnPer1000))
	}
	nextChurn = churnGap()

	sessBytes := reg.Gauge(dataplane.MetricSessionBytes, 1)
	var peakBytes int64
	const pushEvery = 512
	pushCursor := 0

	start := time.Now()
	for i := 0; i < totalPkts; i++ {
		s := pick[rng.Intn(len(pick))]
		tpl := templates[s][cursor[s]]
		binary.BigEndian.PutUint32(tpl[4:], cycle[s])
		v.InjectPacket(tpl)
		cursor[s]++
		if cursor[s] == len(templates[s]) {
			cursor[s] = 0
			cycle[s]++
		}

		if i >= nextChurn {
			nextChurn = i + churnGap()
			id := ncproto.SessionID(rng.Intn(sessions) + 1)
			v.EndSession(id)
			if err := v.Configure(dataplane.SessionConfig{ID: id, Params: params, Role: role, Redundancy: 1}); err != nil {
				return soakResult{}, err
			}
			v.Table().Set(id, hops)
			cursor[id] = 0
			cycle[id]++ // fresh state; skip ahead so old in-ring ids never collide
		}
		if i%pushEvery == 0 {
			entries := make(map[ncproto.SessionID][]dataplane.HopGroup, 32)
			for j := 0; j < 32; j++ {
				pushCursor = pushCursor%sessions + 1
				entries[ncproto.SessionID(pushCursor)] = hops
			}
			v.UpdateTable(entries)
		}
		if i%2048 == 0 {
			if b := sessBytes.Value(); b > peakBytes {
				peakBytes = b
			}
		}
	}
	dur := time.Since(start)

	if b := sessBytes.Value(); b > peakBytes {
		peakBytes = b
	}
	snap := reg.Snapshot()
	rec := reg.Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	res := soakResult{
		throughputMbps: float64(totalPkts) * float64(params.BlockSize) * 8 / dur.Seconds() / 1e6,
		p99DecodeUs:    float64(snap.Histograms[dataplane.MetricDecodeLatencyNs].P99) / 1e3,
		liveGens:       snap.Gauges[dataplane.MetricLiveGenerations],
		peakMB:         float64(peakBytes) / (1 << 20),
		endMB:          float64(sessBytes.Value()) / (1 << 20),
		evicted:        snap.Counters[dataplane.MetricGenerationsEvicted],
		evictedDrops:   snap.Counters[dataplane.MetricEvictedDrops],
		pauseEvents:    uint64(len(rec.EventsOf(telemetry.EventPause))),
		tableSwaps:     snap.Counters[dataplane.MetricTableSwaps],
	}
	if res.pauseEvents != 0 {
		return res, fmt.Errorf("sessionsoak: %d pause events under RCU table pushes, want 0", res.pauseEvents)
	}
	if hist := snap.Histograms[dataplane.MetricTableSwapNs]; hist.Count != 0 {
		return res, fmt.Errorf("sessionsoak: pause histogram has %d observations under RCU, want 0", hist.Count)
	}
	// Bounded-memory acceptance: the gauge must plateau at the store's cap
	// (live generations) plus at most two pooled arenas per session.
	bound := (int64(maxGens) + 2*int64(sessions)) * int64(params.StateBytes())
	if peakBytes > bound {
		return res, fmt.Errorf("sessionsoak: session bytes peaked at %d, bound %d — store failed to bound memory", peakBytes, bound)
	}
	return res, nil
}

// SessionSoak is the massive-multi-tenancy experiment (an extension beyond
// the paper's single-digit session counts): one VNF carrying hundreds to
// thousands of concurrent sessions under the bounded session store, with
// Poisson kill/revive churn and a continuous stream of RCU forwarding-table
// pushes. Two sweeps: recode throughput versus session count (does
// per-packet cost stay flat as tenancy grows?), and decode p99 latency
// versus churn rate (does lifecycle churn perturb the data path?).
func SessionSoak(w io.Writer, o Options) error {
	counts := []int{256, 512, 1024, 2048, 3072}
	pktsPerSession := 48
	churn := 8
	if o.Quick {
		counts = []int{128, 512}
		pktsPerSession = 16
	}
	s := metrics.NewSeries(
		"Session soak: throughput vs concurrent sessions (bounded store, Poisson churn, RCU table pushes)",
		"sessions", "throughput_mbps", "live_generations", "peak_state_mb", "end_state_mb",
		"evicted", "evicted_drops", "table_swaps", "pause_events")
	for _, n := range counts {
		res, err := runSessionSoak(o, n, n*pktsPerSession, churn, dataplane.RoleRecoder)
		if err != nil {
			return fmt.Errorf("sessionsoak n=%d: %w", n, err)
		}
		s.Add(float64(n), map[string]float64{
			"throughput_mbps":  res.throughputMbps,
			"live_generations": float64(res.liveGens),
			"peak_state_mb":    res.peakMB,
			"end_state_mb":     res.endMB,
			"evicted":          float64(res.evicted),
			"evicted_drops":    float64(res.evictedDrops),
			"table_swaps":      float64(res.tableSwaps),
			"pause_events":     float64(res.pauseEvents),
		})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# expectation: throughput roughly flat in session count (per-packet cost is O(1) in tenancy);")
	fmt.Fprintln(w, "# peak_state_mb plateaus at the store cap while evictions run — memory is bounded, not leaked;")
	fmt.Fprintln(w, "# pause_events stays 0: every table push went through the RCU path without stalling a shard")

	churnRates := []int{0, 4, 16, 64}
	fixed := 512
	if o.Quick {
		churnRates = []int{0, 16}
		fixed = 128
	}
	s2 := metrics.NewSeries(
		"Session soak: decode p99 vs churn rate (kill/revive events per 1000 packets)",
		"churn_per_1000", "p99_decode_us", "throughput_mbps", "evicted_drops", "pause_events")
	for _, c := range churnRates {
		res, err := runSessionSoak(o, fixed, fixed*pktsPerSession, c, dataplane.RoleDecoder)
		if err != nil {
			return fmt.Errorf("sessionsoak churn=%d: %w", c, err)
		}
		s2.Add(float64(c), map[string]float64{
			"p99_decode_us":   res.p99DecodeUs,
			"throughput_mbps": res.throughputMbps,
			"evicted_drops":   float64(res.evictedDrops),
			"pause_events":    float64(res.pauseEvents),
		})
	}
	if err := s2.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# expectation: decode p99 degrades gently with churn (evictions and revives cost table/store")
	fmt.Fprintln(w, "# bookkeeping, not coding time); late packets for killed sessions surface as evicted_drops")
	return nil
}
