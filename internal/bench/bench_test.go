package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of Sec. V must have a registered runner.
	want := []string{
		"table1", "fig4", "fig5", "fig7", "table2", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table3", "launch",
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown experiment found")
	}
	list := List()
	if len(list) < len(want) {
		t.Fatalf("List returned %d entries, want >= %d", len(list), len(want))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Order > list[i].Order {
			t.Fatal("List not ordered")
		}
	}
}

// runQuick executes an experiment in quick mode and returns its output.
func runQuick(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("quick experiment still costs seconds; skipped with -short")
	}
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	var sb strings.Builder
	if err := e.Run(&sb, Options{Quick: true, Seed: 1}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return sb.String()
}

func TestTable1Output(t *testing.T) {
	out := runQuick(t, "table1")
	if !strings.Contains(out, "oregon_in") || !strings.Contains(out, "50\t") {
		t.Fatalf("table1 output malformed:\n%s", out)
	}
}

func TestFig10Output(t *testing.T) {
	out := runQuick(t, "fig10")
	if !strings.Contains(out, "throughput_mbps") || !strings.Contains(out, "120\t") {
		t.Fatalf("fig10 output malformed:\n%s", out)
	}
}

func TestFig11Output(t *testing.T) {
	out := runQuick(t, "fig11")
	if !strings.Contains(out, "vnfs") {
		t.Fatalf("fig11 output malformed:\n%s", out)
	}
}

func TestFig12MonotoneOutput(t *testing.T) {
	out := runQuick(t, "fig12")
	if !strings.Contains(out, "lmax_ms") {
		t.Fatalf("fig12 output malformed:\n%s", out)
	}
}

func TestFig13Output(t *testing.T) {
	out := runQuick(t, "fig13")
	if !strings.Contains(out, "alpha") {
		t.Fatalf("fig13 output malformed:\n%s", out)
	}
}

func TestTable3Output(t *testing.T) {
	out := runQuick(t, "table3")
	if !strings.Contains(out, "update_pct") {
		t.Fatalf("table3 output malformed:\n%s", out)
	}
}

func TestLaunchOutput(t *testing.T) {
	out := runQuick(t, "launch")
	if !strings.Contains(out, "launch_vm\t35.00s") {
		t.Fatalf("launch output missing the 35 s VM launch:\n%s", out)
	}
	if !strings.Contains(out, "start_coding_function") {
		t.Fatalf("launch output malformed:\n%s", out)
	}
}

func TestAblationFieldOutput(t *testing.T) {
	out := runQuick(t, "ablation-field")
	if !strings.Contains(out, "avg_packets") {
		t.Fatalf("ablation-field output malformed:\n%s", out)
	}
}

func TestFieldsweepOutput(t *testing.T) {
	out := runQuick(t, "fieldsweep")
	for _, col := range []string{"gf2_mbps", "gf256_mbps", "gf2_dep_pct", "gf256_dep_pct"} {
		if !strings.Contains(out, col) {
			t.Fatalf("fieldsweep missing column %s:\n%s", col, out)
		}
	}
}

func TestSessionSoakOutput(t *testing.T) {
	out := runQuick(t, "sessionsoak")
	for _, col := range []string{"throughput_mbps", "peak_state_mb", "pause_events", "p99_decode_us", "evicted"} {
		if !strings.Contains(out, col) {
			t.Fatalf("sessionsoak missing column %s:\n%s", col, out)
		}
	}
	// The runner itself errors on any pause event or memory-bound violation,
	// so reaching here already certifies the RCU and bounded-store acceptance
	// criteria in quick mode.
}

func TestFig7Ordering(t *testing.T) {
	out := runQuick(t, "fig7")
	if strings.Contains(out, "WARNING") {
		t.Fatalf("fig7 ordering not reproduced:\n%s", out)
	}
}

func TestScaledButterflyCapacities(t *testing.T) {
	g, _, _ := scaledButterfly(0.5)
	l, ok := g.Link("V1", "O1")
	if !ok || l.CapacityMbps != 17.5 {
		t.Fatalf("scaled capacity = %v", l.CapacityMbps)
	}
}

func TestButterflyDCs(t *testing.T) {
	dcs := butterflyDCs(1)
	if len(dcs) != 4 || dcs[0].BinMbps != 1000 {
		t.Fatalf("dcs = %+v", dcs)
	}
}

func TestFig4Output(t *testing.T) {
	out := runQuick(t, "fig4")
	if !strings.Contains(out, "blocks") || !strings.Contains(out, "throughput_mbps") {
		t.Fatalf("fig4 output malformed:\n%s", out)
	}
}

func TestFig5Output(t *testing.T) {
	out := runQuick(t, "fig5")
	if !strings.Contains(out, "buffer_generations") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
}

func TestFig8Output(t *testing.T) {
	out := runQuick(t, "fig8")
	for _, col := range []string{"NC0", "NC1", "NC2", "Non-NC"} {
		if !strings.Contains(out, col) {
			t.Fatalf("fig8 missing column %s:\n%s", col, out)
		}
	}
}

func TestFig9Output(t *testing.T) {
	out := runQuick(t, "fig9")
	if !strings.Contains(out, "P_pct") {
		t.Fatalf("fig9 output malformed:\n%s", out)
	}
}

func TestTable2Output(t *testing.T) {
	out := runQuick(t, "table2")
	for _, row := range []string{"direct", "relayed+coding", "relayed"} {
		if !strings.Contains(out, row) {
			t.Fatalf("table2 missing row %s:\n%s", row, out)
		}
	}
}

func TestAblationTauOutput(t *testing.T) {
	out := runQuick(t, "ablation-tau")
	if !strings.Contains(out, "tau_10min") || strings.Contains(out, "WARNING") {
		t.Fatalf("ablation-tau output malformed:\n%s", out)
	}
}

func TestAblationPipelineOutput(t *testing.T) {
	out := runQuick(t, "ablation-pipeline")
	if !strings.Contains(out, "pipelined") {
		t.Fatalf("ablation-pipeline output malformed:\n%s", out)
	}
}

func TestDirectTCPDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long; skipped with -short")
	}
	mbps, err := DirectTCPButterfly(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mbps <= 0 || mbps > 21 {
		t.Fatalf("direct TCP %v Mbps outside (0, 21]", mbps)
	}
}
