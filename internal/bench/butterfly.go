// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Sec. V), each regenerating the corresponding
// rows or series. cmd/ncbench exposes them on the command line and the
// repository-root bench_test.go wraps them as testing.B benchmarks.
//
// Packet-level experiments run the real data plane over the emulated
// network at a scaled-down link rate (default 20% of the paper's butterfly
// capacities) so each point completes in about a second; throughput columns
// are reported scaled back to the paper's units. Control-plane experiments
// run the real controller under a virtual clock at full fidelity.
package bench

import (
	"errors"
	"fmt"
	"time"

	"ncfn/internal/core"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/topology"
	"ncfn/internal/transfer"
)

// DefaultScale shrinks butterfly link rates so packet-level points run
// quickly; reported throughputs are divided by the scale to map back to
// the paper's Mbps axis.
const DefaultScale = 0.2

// CodingBytesPerSec calibrates the VNF coding-CPU model to the paper's VM
// class: a c3.xlarge core sustains roughly 250 MB/s of GF(2^8)
// combination work, which supports the 4-block default at line speed but
// throttles large generations (Fig. 4's plunge). The harness scales it
// with the link-rate scale so the CPU/bandwidth ratio matches the paper.
const CodingBytesPerSec = 250e6

// ButterflyOpts configures one packet-level butterfly run.
type ButterflyOpts struct {
	// Params defaults to 4 blocks x 1460 bytes.
	Params rlnc.Params
	// Redundancy is the NCr configuration (0, 1, 2).
	Redundancy int
	// Scale multiplies the butterfly's link capacities (default 0.2).
	Scale float64
	// Duration is the streaming time (default 1200 ms).
	Duration time.Duration
	// ForceForwarding selects the routing-only baseline.
	ForceForwarding bool
	// LossTV2 applies a loss model to the T->V2 bottleneck link.
	LossTV2 emunet.LossModel
	// BufferGenerations overrides VNF buffer capacity.
	BufferGenerations int
	// Reliable uses ACK-driven resends (file-download mode) instead of
	// plain streaming.
	Reliable bool
	// ExtraSkew adds delay to the C1 branch to induce generation
	// interleaving at the merge node (used by the buffer-size sweep).
	ExtraSkew time.Duration
	// Seed fixes randomness.
	Seed int64
}

// ButterflyResult reports a butterfly run.
type ButterflyResult struct {
	// GoodputMbps is the session throughput: the minimum across
	// receivers, rescaled to the paper's units.
	GoodputMbps float64
	// PerReceiver holds each receiver's rescaled goodput.
	PerReceiver map[string]float64
	// PlanRateMbps is the optimizer's λ (rescaled).
	PlanRateMbps float64
	// RelayTxPackets / RelayDropped / NetDropped come from the
	// deployment's telemetry snapshot (the same counters ncd exports on
	// its admin endpoint), totalled across every VNF and link.
	RelayTxPackets uint64
	RelayDropped   uint64
	NetDropped     uint64
	// GenerationsDecoded totals receiver-side generation completions;
	// DependentGF2/DependentGF256 total the dependent (non-innovative)
	// arrivals at every recoder and receiver, split by coefficient field.
	// Together they measure the small-field dependency overhead of
	// Sec. III-B (see the fieldsweep experiment).
	GenerationsDecoded uint64
	DependentGF2       uint64
	DependentGF256     uint64
}

// scaledButterfly clones the butterfly graph with capacities multiplied.
func scaledButterfly(scale float64) (*topology.Graph, topology.NodeID, []topology.NodeID) {
	g, src, dsts := topology.Butterfly()
	for _, l := range g.Links() {
		// Ignoring the error: links trivially exist, we just listed them.
		_ = g.SetCapacity(l.From, l.To, l.CapacityMbps*scale)
	}
	return g, src, dsts
}

// butterflyDCs returns the optimizer's view of the four relay sites.
func butterflyDCs(scale float64) []optimize.DataCenter {
	mk := func(id topology.NodeID) optimize.DataCenter {
		return optimize.DataCenter{ID: id, BinMbps: 1000 * scale, BoutMbps: 1000 * scale, CodeMbps: 500 * scale}
	}
	return []optimize.DataCenter{mk("O1"), mk("C1"), mk("T"), mk("V2")}
}

// RunButterfly deploys the butterfly and streams data for the configured
// duration, returning measured goodput.
func RunButterfly(o ButterflyOpts) (ButterflyResult, error) {
	if o.Params.GenerationBlocks == 0 {
		o.Params = rlnc.DefaultParams()
	}
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.Duration <= 0 {
		o.Duration = 1200 * time.Millisecond
	}
	g, src, dsts := scaledButterfly(o.Scale)
	svc, err := core.NewService(core.Config{
		Graph:                 g,
		DataCenters:           butterflyDCs(o.Scale),
		Alpha:                 0.1,
		Params:                o.Params,
		Redundancy:            o.Redundancy,
		BufferGenerations:     o.BufferGenerations,
		ForceForwarding:       o.ForceForwarding,
		CodingCostBytesPerSec: CodingBytesPerSec * o.Scale,
		Seed:                  o.Seed,
	})
	if err != nil {
		return ButterflyResult{}, err
	}
	defer svc.Close()
	const sessionID = ncproto.SessionID(1)
	if err := svc.AddSession(optimize.Session{
		ID:        sessionID,
		Source:    src,
		Receivers: dsts,
		MaxDelay:  150 * time.Millisecond,
	}); err != nil {
		return ButterflyResult{}, err
	}
	if err := svc.Deploy(); err != nil {
		return ButterflyResult{}, err
	}
	planRate := svc.Plan().Rates[sessionID]

	// Post-deploy link impairments.
	net := svc.Network()
	if o.LossTV2 != nil {
		net.SetLink("T", "V2", emunet.LinkConfig{
			RateBps:      35 * o.Scale * 1e6,
			Delay:        12 * time.Millisecond,
			Loss:         o.LossTV2,
			QueuePackets: 512,
		})
	}
	if o.ExtraSkew > 0 {
		net.SetLink("V1", "C1", emunet.LinkConfig{
			RateBps:      35 * o.Scale * 1e6,
			Delay:        18*time.Millisecond + o.ExtraSkew,
			QueuePackets: 512,
		})
	}

	source, err := svc.Source(sessionID)
	if err != nil {
		return ButterflyResult{}, err
	}
	// Stream planRate worth of data for the duration.
	totalBytes := int(planRate * 1e6 / 8 * o.Duration.Seconds())
	genBytes := o.Params.GenerationBytes()
	nGen := totalBytes / genBytes
	if nGen < 4 {
		nGen = 4
	}
	data := make([]byte, nGen*genBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}

	start := time.Now()
	var elapsed float64
	if o.Reliable {
		recvAddrs := make([]string, len(dsts))
		for i, d := range dsts {
			recvAddrs[i] = string(d)
		}
		if _, err := transfer.Multicast(source, data, transfer.MulticastConfig{
			Receivers:  recvAddrs,
			AckTimeout: 300 * time.Millisecond,
			MaxRounds:  30,
		}); err != nil && !errors.Is(err, transfer.ErrIncomplete) {
			// Incomplete delivery still yields a throughput number; any
			// other failure aborts the experiment.
			return ButterflyResult{}, err
		}
		// Reliable mode: goodput over the full completion time, resend
		// rounds included.
		elapsed = time.Since(start).Seconds()
	} else {
		if _, _, err := source.SendData(data); err != nil {
			return ButterflyResult{}, err
		}
		// Streaming mode: goodput over the paced send window (SendData
		// returns when the last generation leaves the source); the short
		// drain below only lets in-flight packets land.
		elapsed = time.Since(start).Seconds()
		time.Sleep(250 * time.Millisecond)
	}

	snap := svc.Telemetry().Snapshot()
	res := ButterflyResult{
		PerReceiver:    make(map[string]float64, len(dsts)),
		PlanRateMbps:   planRate / o.Scale,
		RelayTxPackets: snap.Counters[dataplane.MetricTxPackets],
		RelayDropped:   snap.Counters[dataplane.MetricDroppedPackets],
		NetDropped:     snap.Counters[emunet.MetricNetDroppedPackets],

		GenerationsDecoded: snap.Counters[dataplane.MetricGenerationsDone],
		DependentGF2:       snap.Counters[dataplane.MetricDependentGF2],
		DependentGF256:     snap.Counters[dataplane.MetricDependentGF256],
	}
	minGoodput := -1.0
	for _, d := range dsts {
		recv, err := svc.Receiver(sessionID, d)
		if err != nil {
			return ButterflyResult{}, err
		}
		mbps := float64(recv.Bytes()) * 8 / elapsed / 1e6 / o.Scale
		res.PerReceiver[string(d)] = mbps
		if minGoodput < 0 || mbps < minGoodput {
			minGoodput = mbps
		}
	}
	if minGoodput < 0 {
		minGoodput = 0
	}
	res.GoodputMbps = minGoodput
	return res, nil
}

// DirectTCPButterfly measures the Fig. 7 "Direct TCP" baseline: a reliable
// transfer over the direct V1→O2 and V1→C2 Internet paths, returning the
// slower receiver's goodput (rescaled).
func DirectTCPButterfly(scale float64, duration time.Duration, seed int64) (float64, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	if duration <= 0 {
		duration = 1200 * time.Millisecond
	}
	n := emunet.NewNetwork()
	defer n.Close()
	// Direct paths: 20 Mbps, one-way delays ~45/38 ms (Table II RTTs).
	n.SetLink("V1", "O2", emunet.LinkConfig{RateBps: 20 * scale * 1e6, Delay: 45 * time.Millisecond, QueuePackets: 256})
	n.SetLink("V1", "C2", emunet.LinkConfig{RateBps: 20 * scale * 1e6, Delay: 38 * time.Millisecond, QueuePackets: 256})
	n.SetLink("O2", "V1", emunet.LinkConfig{Delay: 45 * time.Millisecond})
	n.SetLink("C2", "V1", emunet.LinkConfig{Delay: 38 * time.Millisecond})

	bytesTotal := int(20 * scale * 1e6 / 8 * duration.Seconds())
	data := make([]byte, bytesTotal)
	for i := range data {
		data[i] = byte(i * 17)
	}
	worst := -1.0
	for _, dst := range []string{"O2", "C2"} {
		sink := transfer.NewTCPSink(n.Host(dst))
		src := n.Host("V1-" + dst) // dedicated sender socket per receiver
		n.SetLink("V1-"+dst, dst, mustLinkConfig(n, "V1", dst))
		n.SetLink(dst, "V1-"+dst, emunet.LinkConfig{Delay: 40 * time.Millisecond})
		stats, err := transfer.TCPSend(src, dst, data, transfer.TCPConfig{
			MSS:      1460,
			RTO:      250 * time.Millisecond,
			Deadline: duration * 20,
		})
		sink.Close()
		if err != nil {
			return 0, fmt.Errorf("bench: direct tcp to %s: %w", dst, err)
		}
		mbps := stats.GoodputMbps / scale
		if worst < 0 || mbps < worst {
			worst = mbps
		}
	}
	return worst, nil
}

// mustLinkConfig copies an existing link's configuration.
func mustLinkConfig(n *emunet.Network, from, to string) emunet.LinkConfig {
	cfg, ok := n.LinkConfigOf(from, to)
	if !ok {
		return emunet.LinkConfig{}
	}
	return cfg
}
