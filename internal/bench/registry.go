package bench

import (
	"fmt"
	"io"
	"sort"
)

// Runner is one experiment entry point.
type Runner func(w io.Writer, o Options) error

// Experiment couples a runner with its identity.
type Experiment struct {
	Name  string
	What  string
	Run   Runner
	Order int
}

// registry lists every reproducible table and figure.
var registry = []Experiment{
	{Name: "table1", What: "Table I: time-varying per-VM bandwidth", Run: Table1, Order: 1},
	{Name: "fig4", What: "Fig 4: throughput vs generation size", Run: Fig4, Order: 2},
	{Name: "fig5", What: "Fig 5: throughput vs buffer size", Run: Fig5, Order: 3},
	{Name: "fig7", What: "Fig 7: NC vs Non-NC vs Direct TCP on the butterfly", Run: Fig7, Order: 4},
	{Name: "table2", What: "Table II: direct vs relayed delay, +/- coding", Run: Table2, Order: 5},
	{Name: "fig8", What: "Fig 8: throughput vs uniform loss", Run: Fig8, Order: 6},
	{Name: "fig9", What: "Fig 9: throughput vs burst loss", Run: Fig9, Order: 7},
	{Name: "fig10", What: "Fig 10: dynamics under session/receiver churn", Run: Fig10, Order: 8},
	{Name: "fig11", What: "Fig 11: dynamics under bandwidth cuts", Run: Fig11, Order: 9},
	{Name: "fig12", What: "Fig 12: throughput vs max tolerable delay", Run: Fig12, Order: 10},
	{Name: "fig13", What: "Fig 13: throughput and VNFs vs alpha", Run: Fig13, Order: 11},
	{Name: "table3", What: "Table III: forwarding-table update time", Run: Table3, Order: 12},
	{Name: "launch", What: "Sec V-C5: VM launch / VNF start / table update overhead", Run: Launch, Order: 13},
	{Name: "ablation-field", What: "Ablation: GF(2) vs GF(2^8)", Run: AblationFieldSize, Order: 14},
	{Name: "fieldsweep", What: "Field sweep: GF(2) vs GF(2^8) throughput and dependency overhead vs generation size", Run: Fieldsweep, Order: 15},
	{Name: "ablation-tau", What: "Ablation: tau-delayed shutdown vs immediate", Run: AblationTauReuse, Order: 16},
	{Name: "ablation-pipeline", What: "Ablation: pipelined vs store-and-recode", Run: AblationPipelined, Order: 17},
	{Name: "soak", What: "Extension: controller under Poisson churn (beyond the paper)", Run: Soak, Order: 18},
	{Name: "sessionsoak", What: "Extension: massive multi-tenancy — throughput vs sessions and decode p99 vs churn under the bounded session store", Run: SessionSoak, Order: 19},
	{Name: "udpsweep", What: "Extension: real kernel sockets — multi-process butterfly goodput and syscalls/packet, per-packet vs batched wire path", Run: UDPSweep, Order: 20},
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// List returns all experiments in presentation order.
func List() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// RunAll executes every experiment in order, separating outputs.
func RunAll(w io.Writer, o Options) error {
	for _, e := range List() {
		fmt.Fprintf(w, "\n===== %s — %s =====\n", e.Name, e.What)
		if err := e.Run(w, o); err != nil {
			return fmt.Errorf("bench: %s: %w", e.Name, err)
		}
	}
	return nil
}
