package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/controller"
	"ncfn/internal/core"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/flowsim"
	"ncfn/internal/gf"
	"ncfn/internal/metrics"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
)

// relayedRTT measures the Table II relayed-path round trip: the time from
// when the first generation is sent until its acknowledgement returns from
// each receiver, with relays either coding or plain-forwarding. The ACK
// travels back over the direct return path (Sec. V-B2: "we allow each
// receiver to send an acknowledge directly back to the source").
func relayedRTT(o Options, coding bool, trials int) (mins, maxs, avgs map[string]float64, err error) {
	g, src, dsts := scaledButterfly(1) // full-rate links: delay dominates
	svc, err := core.NewService(core.Config{
		Graph:                 g,
		DataCenters:           butterflyDCs(1),
		Alpha:                 0.1,
		Params:                rlnc.DefaultParams(),
		ForceForwarding:       !coding,
		CodingCostBytesPerSec: CodingBytesPerSec,
		Seed:                  o.Seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	defer svc.Close()
	if err := svc.AddSession(optimize.Session{
		ID: 1, Source: src, Receivers: dsts, MaxDelay: 150 * time.Millisecond,
	}); err != nil {
		return nil, nil, nil, err
	}
	if err := svc.Deploy(); err != nil {
		return nil, nil, nil, err
	}
	// Return paths carry the ACK over the direct Internet path back to
	// the source (one-way half of the direct ping RTTs).
	net := svc.Network()
	net.SetLink("O2", string(src), emunet.LinkConfig{Delay: 45434 * time.Microsecond})
	net.SetLink("C2", string(src), emunet.LinkConfig{Delay: 38515 * time.Microsecond})

	source, err := svc.Source(1)
	if err != nil {
		return nil, nil, nil, err
	}
	mins = map[string]float64{}
	maxs = map[string]float64{}
	avgs = map[string]float64{}
	counts := map[string]int{}
	genBytes := source.Params().GenerationBytes()
	payload := make([]byte, genBytes)
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		if _, err := source.SendGeneration(payload, false); err != nil {
			return nil, nil, nil, err
		}
		seen := map[string]bool{}
		deadline := time.After(5 * time.Second)
		for len(seen) < len(dsts) {
			select {
			case ack := <-source.Acks():
				if seen[ack.From] {
					continue
				}
				seen[ack.From] = true
				rtt := ms(time.Since(start))
				if counts[ack.From] == 0 || rtt < mins[ack.From] {
					mins[ack.From] = rtt
				}
				if rtt > maxs[ack.From] {
					maxs[ack.From] = rtt
				}
				avgs[ack.From] += rtt
				counts[ack.From]++
			case <-deadline:
				return nil, nil, nil, fmt.Errorf("bench: relayed RTT trial %d timed out (got %d acks)", trial, len(seen))
			}
		}
	}
	for dst, c := range counts {
		avgs[dst] /= float64(c)
	}
	return mins, maxs, avgs, nil
}

// Table3 reproduces Table III: the time to update a 10-entry forwarding
// table as a function of the fraction of entries changed. The controller
// pushes one NC_FORWARD_TAB message per changed entry over a control
// channel with realistic propagation delay; the daemon persists and reloads
// the table file (the SIGUSR1 pause-reload-resume cycle) and acknowledges.
func Table3(w io.Writer, o Options) error {
	percents := []int{20, 40, 60, 80, 100}
	if o.Quick {
		percents = []int{20, 100}
	}
	const tableEntries = 10
	// Controller→daemon propagation: the paper's controller sat in Hong
	// Kong with VNFs in Oregon (~15 ms one way within our scaled model).
	const ctrlDelay = 15 * time.Millisecond

	dir, err := os.MkdirTemp("", "ncfn-table3")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	s := metrics.NewSeries("Table III: forwarding table update time vs update percentage",
		"update_pct", "avg_ms")
	for _, pct := range percents {
		changed := tableEntries * pct / 100
		elapsed, err := measureTableUpdate(dir, changed, ctrlDelay)
		if err != nil {
			return fmt.Errorf("table3 %d%%: %w", pct, err)
		}
		s.Add(float64(pct), map[string]float64{"avg_ms": ms(elapsed)})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: 78.44 ms at 20% rising to 310.61 ms at 100% (10-entry table)")
	return nil
}

// measureTableUpdate times pushing `changed` single-entry updates over the
// control channel and applying each on the daemon.
func measureTableUpdate(dir string, changed int, delay time.Duration) (time.Duration, error) {
	n := emunet.NewNetwork()
	defer n.Close()
	n.SetDuplexLink("controller", "daemon", emunet.LinkConfig{Delay: delay})
	ctrlConn := n.Host("controller")
	daemonConn := n.Host("daemon")

	d := controller.NewDaemon(n.Host("daemon-vnf"), nil)
	defer d.Close()
	path := filepath.Join(dir, fmt.Sprintf("fwd-%d.tab", changed))

	// Daemon side: receive control messages, persist + reload the table
	// file, then acknowledge.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < changed; i++ {
			pkt, _, err := daemonConn.Recv()
			if err != nil {
				done <- err
				return
			}
			msg, err := controller.DecodeMessage(bytes.NewReader(pkt))
			if err != nil {
				done <- err
				return
			}
			if err := d.Apply(msg); err != nil {
				done <- err
				return
			}
			// Persist the updated table and reload it, as the real daemon
			// does on NC_FORWARD_TAB + SIGUSR1.
			if err := d.VNF().Table().Save(path); err != nil {
				done <- err
				return
			}
			if err := d.VNF().ReloadTableFile(path); err != nil {
				done <- err
				return
			}
			if err := daemonConn.Send("controller", []byte{0x01}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	start := time.Now()
	for i := 0; i < changed; i++ {
		msg := &controller.Message{
			Signal: controller.NCForwardTab,
			Table: map[ncproto.SessionID][]dataplane.HopGroup{
				ncproto.SessionID(i + 1): {{Addrs: []string{fmt.Sprintf("next-%d", i)}}},
			},
		}
		var buf bytes.Buffer
		if err := msg.Encode(&buf); err != nil {
			return 0, err
		}
		if err := ctrlConn.Send("daemon", buf.Bytes()); err != nil {
			return 0, err
		}
		// Wait for the per-entry acknowledgement before the next push.
		if _, _, err := ctrlConn.Recv(); err != nil {
			return 0, err
		}
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Launch reproduces the Sec. V-C5 overhead comparison: launching a new VM
// instance versus starting a coding function on a running VM versus a
// forwarding-table update.
func Launch(w io.Writer, o Options) error {
	clk := simclock.NewVirtual(epoch)
	cl := cloud.New(clk, o.Seed, cloud.PaperRegions()...)
	inst, err := cl.LaunchInstance("oregon")
	if err != nil {
		return err
	}
	ready, err := cl.ReadyAt(inst.ID)
	if err != nil {
		return err
	}
	vmLaunch := ready.Sub(clk.Now())

	// Starting a coding function on a running VM: model constant from the
	// paper plus the real in-process initialization cost.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	start := time.Now()
	v := dataplane.NewVNF(n.Host("vnf"))
	if err := v.Configure(dataplane.SessionConfig{ID: 1, Params: rlnc.DefaultParams(), Role: dataplane.RoleRecoder}); err != nil {
		return err
	}
	v.Start()
	initCost := time.Since(start)
	v.Close()
	vnfStart := cloud.DefaultVNFStartDelay + initCost

	dir, err := os.MkdirTemp("", "ncfn-launch")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	tabUpdate, err := measureTableUpdate(dir, 10, 15*time.Millisecond)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "# Launch/update overhead (Sec. V-C5)")
	fmt.Fprintln(w, "operation\ttime")
	fmt.Fprintf(w, "launch_vm\t%.2fs\n", vmLaunch.Seconds())
	fmt.Fprintf(w, "start_coding_function\t%.2fms\n", ms(vnfStart))
	fmt.Fprintf(w, "update_10_entry_table\t%.2fms\n", ms(tabUpdate))
	fmt.Fprintf(w, "# paper: 35 s, 376.21 ms, 310.61 ms — launching a VM is ~100x slower than starting a function\n")
	return nil
}

// AblationFieldSize compares GF(2^8) against GF(2): the mean number of
// coded packets a receiver needs to decode a 16-block generation. Small
// fields suffer more linear dependency (Sec. III-B's justification for
// GF(2^8)).
func AblationFieldSize(w io.Writer, o Options) error {
	trials := 200
	if o.Quick {
		trials = 30
	}
	const k = 16
	s := metrics.NewSeries("Ablation: packets needed to decode a 16-block generation by field",
		"field_bits", "avg_packets", "overhead_pct")
	for _, field := range []gf.Field{gf.GF2, gf.GF256} {
		total := 0
		for trial := 0; trial < trials; trial++ {
			p := rlnc.Params{GenerationBlocks: k, BlockSize: 8, Field: field}
			data := make([]byte, p.GenerationBytes())
			rand.New(rand.NewSource(o.Seed + int64(trial))).Read(data)
			enc, err := rlnc.NewEncoder(p, data, o.Seed+int64(trial))
			if err != nil {
				return err
			}
			dec, err := rlnc.NewDecoder(p)
			if err != nil {
				return err
			}
			n := 0
			for !dec.Complete() {
				if _, err := dec.Add(enc.Coded()); err != nil {
					return err
				}
				n++
			}
			total += n
		}
		avg := float64(total) / float64(trials)
		bits := 8.0
		if field == gf.GF2 {
			bits = 1
		}
		s.Add(bits, map[string]float64{
			"avg_packets":  avg,
			"overhead_pct": (avg - k) / k * 100,
		})
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# expectation: GF(2) needs ~1.6 extra packets; GF(2^8) overhead is negligible")
	return nil
}

// AblationTauReuse compares the τ-delayed VNF shutdown against immediate
// shutdown: total VM launches during a churn scenario. Reuse within τ
// avoids the ~35 s relaunch penalty.
func AblationTauReuse(w io.Writer, o Options) error {
	run := func(tau time.Duration) (int, float64, error) {
		d, err := flowsim.NewDeployment(flowsim.ScenarioConfig{Seed: o.Seed, Tau: tau})
		if err != nil {
			return 0, 0, err
		}
		// Churn: sessions join, all leave at minute 10, and rejoin at
		// minute 20 — inside a 10-minute τ (idle VNFs reused) but past an
		// immediate shutdown (VMs relaunched).
		var events []flowsim.Event
		for _, s := range d.Sessions[:3] {
			s := s
			events = append(events, flowsim.Event{At: 0, Name: "join", Do: func(c *controller.Controller) error {
				return c.AddSession(s)
			}})
			events = append(events, flowsim.Event{At: 10 * time.Minute, Name: "leave", Do: func(c *controller.Controller) error {
				return c.RemoveSession(s.ID)
			}})
			s2 := s
			events = append(events, flowsim.Event{At: 20 * time.Minute, Name: "rejoin", Do: func(c *controller.Controller) error {
				return c.AddSession(s2)
			}})
		}
		if _, err := flowsim.Run(d.Controller, d.Clock, events, flowsim.RunConfig{
			Duration: 30 * time.Minute,
			Interval: 5 * time.Minute,
		}); err != nil {
			return 0, 0, err
		}
		launches := 0
		for _, region := range d.Regions {
			launches += d.Cloud.Launches(region)
		}
		return launches, d.Cloud.AccruedVMHours(), nil
	}
	withTau, hoursTau, err := run(10 * time.Minute)
	if err != nil {
		return err
	}
	withoutTau, hoursNoTau, err := run(time.Millisecond) // effectively immediate shutdown
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation: tau-delayed shutdown vs immediate shutdown (30-minute churn)")
	fmt.Fprintln(w, "policy\tvm_launches\tvm_hours")
	fmt.Fprintf(w, "tau_10min\t%d\t%.2f\n", withTau, hoursTau)
	fmt.Fprintf(w, "tau_0\t%d\t%.2f\n", withoutTau, hoursNoTau)
	if withoutTau < withTau {
		fmt.Fprintln(w, "# WARNING: immediate shutdown launched fewer VMs than tau reuse this run")
	}
	fmt.Fprintln(w, "# tau reuse trades a little idle VM time for avoided 35 s relaunches")
	return nil
}

// AblationPipelined compares the pipelined recoder (emit on every arrival)
// against a store-and-recode relay that waits for the whole generation
// before emitting, measuring time-to-decode at the receiver when source
// packets trickle in. Pipelining overlaps relay transmission with source
// transmission (Sec. III-B2).
func AblationPipelined(w io.Writer, o Options) error {
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: rlnc.DefaultBlockSize}
	spacing := 20 * time.Millisecond
	trials := 5
	if o.Quick {
		trials = 2
	}
	run := func(pipelined bool) (time.Duration, error) {
		var total time.Duration
		for trial := 0; trial < trials; trial++ {
			d, err := timeToDecode(params, spacing, pipelined, o.Seed+int64(trial))
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total / time.Duration(trials), nil
	}
	pipe, err := run(true)
	if err != nil {
		return err
	}
	batch, err := run(false)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation: pipelined recoding vs store-and-recode (time to decode one generation,")
	fmt.Fprintf(w, "# source packets spaced %v apart over a rate-limited relay link)\n", spacing)
	fmt.Fprintln(w, "mode\ttime_to_decode_ms")
	fmt.Fprintf(w, "pipelined\t%.2f\n", ms(pipe))
	fmt.Fprintf(w, "store_and_recode\t%.2f\n", ms(batch))
	if batch < pipe {
		fmt.Fprintln(w, "# WARNING: batching beat pipelining this run")
	}
	return nil
}

// timeToDecode measures one generation's source-to-decode latency through
// a relay that either recodes packet-by-packet (the system's pipelined VNF)
// or buffers the full generation before emitting.
func timeToDecode(params rlnc.Params, spacing time.Duration, pipelined bool, seed int64) (time.Duration, error) {
	n := emunet.NewNetwork()
	defer n.Close()
	// Rate-limit the relay's outgoing link so that batch emission pays
	// serialization after the wait: 4 x 1460 B at 2 Mbps ≈ 23 ms.
	n.SetLink("src", "relay", emunet.LinkConfig{})
	n.SetLink("relay", "dst", emunet.LinkConfig{RateBps: 2e6, QueuePackets: 64})

	dst, err := dataplane.NewReceiver(n.Host("dst"), 1, params, "", nil)
	if err != nil {
		return 0, err
	}
	defer dst.Close()

	if pipelined {
		relay := dataplane.NewVNF(n.Host("relay"), dataplane.WithSeed(seed))
		if err := relay.Configure(dataplane.SessionConfig{ID: 1, Params: params, Role: dataplane.RoleRecoder}); err != nil {
			return 0, err
		}
		relay.Table().Set(1, []dataplane.HopGroup{{Addrs: []string{"dst"}}})
		relay.Start()
		defer relay.Close()
	} else {
		// Store-and-recode relay: buffer all k packets, then emit k
		// recoded packets at once.
		relayConn := n.Host("relay")
		go func() {
			rec, err := rlnc.NewRecoder(params, seed)
			if err != nil {
				return
			}
			for got := 0; got < params.GenerationBlocks; got++ {
				pkt, _, err := relayConn.Recv()
				if err != nil {
					return
				}
				p, err := ncproto.Decode(pkt, params.GenerationBlocks)
				if err != nil {
					continue
				}
				if err := rec.Add(rlnc.CodedBlock{Coeffs: p.Coeffs, Payload: p.Payload}); err != nil {
					continue
				}
			}
			for i := 0; i < params.GenerationBlocks+1; i++ {
				cb, ok := rec.Recode()
				if !ok {
					return
				}
				wire := (&ncproto.Packet{Session: 1, Coeffs: cb.Coeffs, Payload: cb.Payload}).Encode(nil)
				if err := relayConn.Send("dst", wire); err != nil {
					return
				}
			}
		}()
	}

	srcConn := n.Host("src")
	enc, err := rlnc.NewEncoder(params, make([]byte, params.GenerationBytes()), seed)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < params.GenerationBlocks; i++ {
		cb, ok := enc.Systematic()
		if !ok {
			cb = enc.Coded()
		}
		wire := (&ncproto.Packet{Session: 1, Coeffs: cb.Coeffs, Payload: cb.Payload}).Encode(nil)
		if err := srcConn.Send("relay", wire); err != nil {
			return 0, err
		}
		if i < params.GenerationBlocks-1 {
			time.Sleep(spacing)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for dst.Generations() == 0 {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("bench: generation never decoded (pipelined=%v)", pipelined)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start), nil
}

// Soak is an extension beyond the paper's evaluation: the controller under
// a stochastic workload — Poisson session arrivals with exponential hold
// times — rather than the scripted churn of Fig. 10. It validates that the
// scaling algorithms stay stable under sustained random load.
func Soak(w io.Writer, o Options) error {
	duration := 6 * time.Hour
	if o.Quick {
		duration = 90 * time.Minute
	}
	samples, peak, err := flowsim.Soak(
		flowsim.ScenarioConfig{Seed: o.Seed},
		flowsim.TraceConfig{
			ArrivalsPerHour: 10,
			MeanHold:        25 * time.Minute,
			Duration:        duration,
			Seed:            o.Seed + 1,
		},
		10*time.Minute,
	)
	if err != nil {
		return err
	}
	if err := flowsim.Series("Soak: Poisson churn (10 sessions/h, 25 min mean hold)", samples).WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "# peak concurrent sessions: %d; VNFs must track demand up and down without leaking\n", peak)
	return nil
}
