package bench

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/gf"
	"ncfn/internal/metrics"
	"ncfn/internal/procnet"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
)

// UDPSweep measures the real-socket wire path that the rest of the harness
// emulates: the butterfly deployed as six ncd OS processes on loopback
// (O1/C1/T/V2 recode, O2/C2 decode), fed unpaced by an in-process source,
// once with the per-packet syscall path (batch depth 1) and once with the
// batched sendmmsg/recvmmsg + tx-coalescing path (depth 16). For each
// block size it reports the delivered goodput at the slower sink, the
// batched/per-packet speedup, and the deployment-wide syscalls-per-packet
// ratio (every process's UDP syscalls over every datagram moved) — the
// number the batch path exists to shrink.
//
// This is the Fig. 4 small-block regime on kernel sockets: tiny blocks
// make the per-packet syscall cost dominate coding cost, which is where
// batching pays.
func UDPSweep(w io.Writer, o Options) error {
	blockSizes := []int{128, 256, 1024}
	ngen := 768
	if o.Quick {
		blockSizes = []int{256}
		ngen = 192
	}
	dir, err := os.MkdirTemp("", "udpsweep")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bins, err := procnet.Build(dir)
	if err != nil {
		return err
	}
	s := metrics.NewSeries(
		"UDP sweep: multi-process butterfly goodput and syscalls/packet, per-packet (b1) vs batched (b16) wire path",
		"block_bytes", "mbps_b1", "mbps_b16", "speedup", "sys_per_pkt_b1", "sys_per_pkt_b16")
	for _, bs := range blockSizes {
		row := make(map[string]float64, 5)
		for _, depth := range []int{1, 16} {
			res, err := runUDPPoint(bins, dir, bs, ngen, depth, o.Seed, 256)
			if err != nil {
				return fmt.Errorf("udpsweep: block %d depth %d: %w", bs, depth, err)
			}
			tag := fmt.Sprintf("b%d", depth)
			row["mbps_"+tag] = res.mbps
			row["sys_per_pkt_"+tag] = res.sysPerPkt
		}
		if row["mbps_b1"] > 0 {
			row["speedup"] = row["mbps_b16"] / row["mbps_b1"]
		}
		s.Add(float64(bs), row)
	}
	return s.WriteTable(w)
}

// udpPoint is one (block size, batch depth) measurement.
type udpPoint struct {
	mbps      float64
	sysPerPkt float64
}

// runUDPPoint deploys a fresh six-process butterfly at the given batch
// depth, streams ngen generations unpaced, and measures goodput over the
// window in which the sinks made progress. fieldOrder selects the
// coefficient field (2 or 256) for both the in-process source and the
// daemons' deploy config.
func runUDPPoint(bins procnet.Binaries, dir string, blockSize, ngen, depth int, seed int64, fieldOrder int) (udpPoint, error) {
	const kBlocks = 16 // generation size: per-branch quota 10 fills real batches
	const redundancy = 2
	field := gf.GF256
	if fieldOrder == 2 {
		field = gf.GF2
	}
	params := rlnc.Params{GenerationBlocks: kBlocks, BlockSize: blockSize, Field: field}
	q := kBlocks/2 + redundancy

	daemons := map[string]*procnet.Daemon{}
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()
	for _, name := range procnet.ButterflyNodes {
		d, err := procnet.StartDaemon(bins.Ncd, name, dir, depth)
		if err != nil {
			return udpPoint{}, err
		}
		daemons[name] = d
	}

	registry := emunet.NewRegistry()
	for _, branch := range []string{"O1", "C1"} {
		addr, err := net.ResolveUDPAddr("udp", daemons[branch].Data)
		if err != nil {
			return udpPoint{}, err
		}
		registry.Register(branch, addr)
	}
	srcReg := telemetry.NewRegistry()
	srcOpts := []emunet.UDPOption{emunet.WithUDPTelemetry(srcReg)}
	if depth <= 1 {
		srcOpts = append(srcOpts, emunet.WithPortableIO())
	}
	srcConn, err := emunet.ListenUDP("V1", "127.0.0.1:0", registry, srcOpts...)
	if err != nil {
		return udpPoint{}, err
	}

	deploy, err := procnet.Butterfly(daemons, srcConn.UDPAddr().String(), procnet.Session{
		ID: 1, Blocks: kBlocks, BlockSize: blockSize, Redundancy: redundancy, Field: fieldOrder,
	})
	if err != nil {
		return udpPoint{}, err
	}
	cfgPath := filepath.Join(dir, fmt.Sprintf("deploy-%d-%d.json", blockSize, depth))
	if err := procnet.WriteDeploy(cfgPath, deploy); err != nil {
		return udpPoint{}, err
	}
	if _, err := procnet.RunCtl(bins.Ncctl, cfgPath, "start"); err != nil {
		return udpPoint{}, err
	}

	src, err := dataplane.NewSource(srcConn, dataplane.SourceConfig{
		Session: 1, Params: params, Redundancy: redundancy,
		Systematic: true, Seed: seed, TxBatch: depth,
	})
	if err != nil {
		return udpPoint{}, err
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{
		{Addrs: []string{"O1"}, PerGen: q},
		{Addrs: []string{"C1"}, PerGen: q},
	})

	data := make([]byte, ngen*params.GenerationBytes())
	for i := range data {
		data[i] = byte(i*31 + int(seed))
	}
	start := time.Now()
	if _, _, err := src.SendData(data); err != nil {
		return udpPoint{}, err
	}

	// The sinks' decode counters advance while in-flight packets drain;
	// stop the clock at the last observed progress (unpaced UDP may drop
	// beyond the redundancy budget, so "all decoded" is not guaranteed).
	decoded := func(name string) int {
		snap, err := procnet.Stats(daemons[name].Admin)
		if err != nil {
			return 0
		}
		return int(snap.Counters[dataplane.MetricGenerationsDone])
	}
	best := 0
	lastProgress := time.Now()
	window := time.Since(start)
	for {
		o2, c2 := decoded("O2"), decoded("C2")
		minDone := o2
		if c2 < minDone {
			minDone = c2
		}
		if minDone > best {
			best = minDone
			lastProgress = time.Now()
			window = time.Since(start)
		}
		if best >= ngen || time.Since(lastProgress) > 600*time.Millisecond {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Deployment-wide syscall accounting: the source plus all six daemons.
	srcSnap := srcReg.Snapshot()
	sys := srcSnap.Counters[emunet.MetricUDPSyscalls]
	pkts := srcSnap.Counters[emunet.MetricUDPTxPackets] + srcSnap.Counters[emunet.MetricUDPRxPackets]
	for _, d := range daemons {
		snap, err := procnet.Stats(d.Admin)
		if err != nil {
			return udpPoint{}, err
		}
		sys += snap.Counters[emunet.MetricUDPSyscalls]
		pkts += snap.Counters[emunet.MetricUDPTxPackets] + snap.Counters[emunet.MetricUDPRxPackets]
	}

	pt := udpPoint{}
	if sec := window.Seconds(); sec > 0 {
		pt.mbps = float64(best) * float64(params.GenerationBytes()) * 8 / sec / 1e6
	}
	if pkts > 0 {
		pt.sysPerPkt = float64(sys) / float64(pkts)
	}
	return pt, nil
}
