package bench

import (
	"fmt"
	"io"

	"ncfn/internal/gf"
	"ncfn/internal/metrics"
	"ncfn/internal/rlnc"
)

// Fieldsweep runs the Fig. 4 generation-size sweep once per coefficient
// field: the full packet-level butterfly with GF(2)'s bit-packed word-wide
// codec against the GF(2^8) byte-wise codec. For each point it reports
// end-to-end goodput and the dependency overhead — dependent (non-
// innovative) arrivals at relays and receivers per usefully decoded source
// block — quantifying Sec. III-B's field-size trade live on the data plane:
// GF(2) codes ~8x cheaper per byte but draws singular combinations with
// probability ~2^-rank, so it pays a visible dependent-packet tax that
// GF(2^8) (~2^-8rank) does not.
func Fieldsweep(w io.Writer, o Options) error {
	blocks := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Quick {
		blocks = []int{4, 64}
	}
	fields := []struct {
		name  string
		field gf.Field
	}{
		{"gf2", gf.GF2},
		{"gf256", gf.GF256},
	}
	s := metrics.NewSeries("Field sweep: throughput and dependent-packet overhead vs generation size",
		"blocks", "gf2_mbps", "gf256_mbps", "gf2_dep_pct", "gf256_dep_pct")
	for _, k := range blocks {
		row := make(map[string]float64, 4)
		for _, f := range fields {
			// Reliable mode with NC1 redundancy: a dependent combination
			// then costs an ACK-driven resend round instead of silently
			// voiding the generation (plain streaming would report GF(2)
			// goodput 0 at large k — every generation loses at least one
			// packet to dependence with probability ~70%).
			res, err := RunButterfly(ButterflyOpts{
				Params:     rlnc.Params{GenerationBlocks: k, BlockSize: rlnc.DefaultBlockSize, Field: f.field},
				Redundancy: 1,
				Reliable:   true,
				Duration:   o.pointDuration(),
				Seed:       o.Seed,
			})
			if err != nil {
				return fmt.Errorf("fieldsweep %s k=%d: %w", f.name, k, err)
			}
			dep := res.DependentGF2
			if f.field == gf.GF256 {
				dep = res.DependentGF256
			}
			// Overhead: dependent arrivals per source block a receiver
			// actually recovered. GenerationsDecoded counts per-receiver
			// completions, so the denominator is total useful blocks
			// delivered across the deployment.
			pct := 0.0
			if res.GenerationsDecoded > 0 {
				pct = 100 * float64(dep) / float64(res.GenerationsDecoded*uint64(k))
			}
			row[f.name+"_mbps"] = res.GoodputMbps
			row[f.name+"_dep_pct"] = pct
		}
		s.Add(float64(k), row)
	}
	if err := s.WriteTable(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "# expectation: goodput comparable while links are the bottleneck (GF(2) coding is ~8x")
	fmt.Fprintln(w, "# cheaper per byte; see BenchmarkDecoderBatchGF2 for the codec-level gap). gf256_dep_pct")
	fmt.Fprintln(w, "# is the NC1 redundancy surplus (~1/k once rank is full); GF(2)'s excess over it is the")
	fmt.Fprintln(w, "# field tax, largest at small k and amortized as generations grow (Sec. III-B)")
	return nil
}
