package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// randBytes returns n deterministic pseudo-random bytes.
func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestPackUnpackBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1460, 1461} {
		src := randBytes(rng, n)
		words := make([]uint64, WordsForBytes(n))
		PackBytes(words, src)
		got := make([]byte, n)
		UnpackBytes(got, words)
		if !bytes.Equal(got, src) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestPackBytesZeroPadsTail(t *testing.T) {
	words := []uint64{^uint64(0)}
	PackBytes(words, []byte{0xAB, 0xCD})
	if words[0] != 0xCDAB {
		t.Fatalf("tail not zero-padded: got %#x", words[0])
	}
}

func TestPackBytesMatchesXorSemantics(t *testing.T) {
	// XOR of packed rows must equal the packed XOR of byte rows: the packed
	// payload representation is a drop-in for xorSlice on byte payloads.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 7, 64, 65, 1460} {
		a, b := randBytes(rng, n), randBytes(rng, n)
		wa := make([]uint64, WordsForBytes(n))
		wb := make([]uint64, WordsForBytes(n))
		PackBytes(wa, a)
		PackBytes(wb, b)
		XorWords(wa, wb)
		XorSlice(a, b)
		want := make([]uint64, WordsForBytes(n))
		PackBytes(want, a)
		for i := range wa {
			if wa[i] != want[i] {
				t.Fatalf("n=%d word %d: packed XOR diverges from byte XOR", n, i)
			}
		}
	}
}

func TestPackUnpackBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 7, 63, 64, 65, 128, 255} {
		coeffs := make([]byte, k)
		for i := range coeffs {
			coeffs[i] = byte(rng.Intn(2))
		}
		bits := make([]uint64, WordsForBits(k))
		PackBits(bits, coeffs)
		got := make([]byte, k)
		UnpackBits(got, bits)
		if !bytes.Equal(got, coeffs) {
			t.Fatalf("k=%d: bit round trip mismatch", k)
		}
		for i := 0; i < k; i++ {
			if Bit(bits, i) != coeffs[i] {
				t.Fatalf("k=%d: Bit(%d) = %d, want %d", k, i, Bit(bits, i), coeffs[i])
			}
		}
	}
}

func TestPackBitsKeepsOnlyLowBit(t *testing.T) {
	bits := make([]uint64, 1)
	PackBits(bits, []byte{0xFE, 0xFF, 0x02, 0x03})
	if bits[0] != 0b1010 {
		t.Fatalf("PackBits must clamp to the low bit: got %#b", bits[0])
	}
}

func TestPackBitsClearsStaleWords(t *testing.T) {
	bits := []uint64{^uint64(0), ^uint64(0)}
	PackBits(bits, make([]byte, 65))
	if bits[0] != 0 || bits[1] != 0 {
		t.Fatalf("PackBits must clear all covered words: got %#x %#x", bits[0], bits[1])
	}
}

func TestSetBit(t *testing.T) {
	bits := make([]uint64, 2)
	SetBit(bits, 0)
	SetBit(bits, 63)
	SetBit(bits, 64)
	if bits[0] != 1|1<<63 || bits[1] != 1 {
		t.Fatalf("SetBit wrong words: %#x %#x", bits[0], bits[1])
	}
}

func TestXorWordsBothKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 4, 7, 8, 183, 184} {
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64()
		}
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()
			b[i] = a[i]
		}
		xorWordsLoop(a, src)
		xorWordsUnroll(b, src)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d word %d: kernels diverge", n, i)
			}
		}
	}
}

func TestXorWordsShortSource(t *testing.T) {
	dst := []uint64{1, 2, 3}
	XorWords(dst, []uint64{1})
	if dst[0] != 0 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("short source must only touch the overlap: %v", dst)
	}
}

func TestXorWordsSourceTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	XorWords(make([]uint64, 1), make([]uint64, 2))
}

func TestXorSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	XorSlice(make([]byte, 1), make([]byte, 2))
}

func TestSetUnrolledXorOverride(t *testing.T) {
	prev := UnrolledXorSelected()
	defer SetUnrolledXor(prev)
	SetUnrolledXor(true)
	if !UnrolledXorSelected() {
		t.Fatal("SetUnrolledXor(true) not observed")
	}
	SetUnrolledXor(false)
	if UnrolledXorSelected() {
		t.Fatal("SetUnrolledXor(false) not observed")
	}
}

func TestAddMulWords(t *testing.T) {
	dst := []uint64{1, 2}
	src := []uint64{4, 8}
	AddMulWords(dst, src, 0)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("c=0 must be a no-op: %v", dst)
	}
	AddMulWords(dst, src, 1)
	if dst[0] != 5 || dst[1] != 10 {
		t.Fatalf("c=1 must XOR: %v", dst)
	}
	AddMulWords(dst, src, 2) // even byte: zero in GF(2)
	if dst[0] != 5 || dst[1] != 10 {
		t.Fatalf("even c must be a no-op: %v", dst)
	}
}

func TestXorWordsMultiMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, words := range []int{1, 8, 183, fusedStripWords + 5} {
		const rows = 9
		src := make([]uint64, words)
		for i := range src {
			src[i] = rng.Uint64()
		}
		dsts := make([][]uint64, rows)
		want := make([][]uint64, rows)
		cs := make([]byte, rows)
		for j := range dsts {
			dsts[j] = make([]uint64, words)
			want[j] = make([]uint64, words)
			for i := range dsts[j] {
				dsts[j][i] = rng.Uint64()
				want[j][i] = dsts[j][i]
			}
			cs[j] = byte(rng.Intn(4)) // includes even values (zero in GF(2))
		}
		XorWordsMulti(dsts, src, cs)
		for j := range want {
			AddMulWords(want[j], src, cs[j])
		}
		for j := range dsts {
			for i := range dsts[j] {
				if dsts[j][i] != want[j][i] {
					t.Fatalf("words=%d row %d word %d: fused diverges", words, j, i)
				}
			}
		}
	}
}

func TestCombineWordsMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, words := range []int{1, 8, 183, fusedStripWords + 5} {
		const rows = 9
		srcs := make([][]uint64, rows)
		cs := make([]byte, rows)
		for j := range srcs {
			srcs[j] = make([]uint64, words)
			for i := range srcs[j] {
				srcs[j][i] = rng.Uint64()
			}
			cs[j] = byte(rng.Intn(4))
		}
		dst := make([]uint64, words)
		for i := range dst {
			dst[i] = rng.Uint64() // stale contents must be overwritten
		}
		CombineWords(dst, srcs, cs)
		want := make([]uint64, words)
		for j := range srcs {
			AddMulWords(want, srcs[j], cs[j])
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("words=%d word %d: gather diverges", words, i)
			}
		}
	}
}

func TestCombineWordsAllZeroCoeffsZeroesDst(t *testing.T) {
	dst := []uint64{7, 7}
	srcs := [][]uint64{{1, 2}, {3, 4}}
	CombineWords(dst, srcs, []byte{0, 2})
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("all-zero coefficients must zero dst: %v", dst)
	}
}

func TestPackedKernelPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"PackBytesShortDst", func() { PackBytes(make([]uint64, 1), make([]byte, 9)) }},
		{"UnpackBytesShortSrc", func() { UnpackBytes(make([]byte, 9), make([]uint64, 1)) }},
		{"PackBitsShortDst", func() { PackBits(make([]uint64, 1), make([]byte, 65)) }},
		{"UnpackBitsShortSrc", func() { UnpackBits(make([]byte, 65), make([]uint64, 1)) }},
		{"MultiRowsMismatch", func() { XorWordsMulti(make([][]uint64, 2), make([]uint64, 1), make([]byte, 1)) }},
		{"MultiLenMismatch", func() { XorWordsMulti([][]uint64{make([]uint64, 2)}, make([]uint64, 1), make([]byte, 1)) }},
		{"CombineRowsMismatch", func() { CombineWords(make([]uint64, 1), make([][]uint64, 2), make([]byte, 1)) }},
		{"CombineLenMismatch", func() { CombineWords(make([]uint64, 1), [][]uint64{make([]uint64, 2)}, make([]byte, 1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestXorWordsZeroAlloc(t *testing.T) {
	dst := make([]uint64, WordsForBytes(1460))
	src := make([]uint64, WordsForBytes(1460))
	if n := testing.AllocsPerRun(100, func() { XorWords(dst, src) }); n != 0 {
		t.Fatalf("XorWords allocates %v times per run", n)
	}
}

func TestCombineWordsZeroAlloc(t *testing.T) {
	const rows = 8
	words := WordsForBytes(1460)
	srcs := make([][]uint64, rows)
	for j := range srcs {
		srcs[j] = make([]uint64, words)
	}
	cs := make([]byte, rows)
	for j := range cs {
		cs[j] = byte(j & 1)
	}
	dst := make([]uint64, words)
	if n := testing.AllocsPerRun(100, func() { CombineWords(dst, srcs, cs) }); n != 0 {
		t.Fatalf("CombineWords allocates %v times per run", n)
	}
}

// BenchmarkXorWords is the GF(2) kernel benchmark mirrored on
// BenchmarkAddMulSlice: one MTU-sized packed row per op, both kernel
// variants pinned explicitly. Guarded by benchguard baselines.
func BenchmarkXorWords(b *testing.B) {
	words := WordsForBytes(1460)
	dst := make([]uint64, words)
	src := make([]uint64, words)
	for i := range src {
		src[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	b.Run("loop", func(b *testing.B) {
		b.SetBytes(1460)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xorWordsLoop(dst, src)
		}
	})
	b.Run("unroll", func(b *testing.B) {
		b.SetBytes(1460)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xorWordsUnroll(dst, src)
		}
	})
	b.Run("bytes", func(b *testing.B) {
		// The unpacked byte-slice XOR, for the packed-vs-byte comparison.
		db := make([]byte, 1460)
		sb := make([]byte, 1460)
		b.SetBytes(1460)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			XorSlice(db, sb)
		}
	})
}

func BenchmarkCombineWords(b *testing.B) {
	for _, rows := range []int{4, 16, 64} {
		words := WordsForBytes(1460)
		srcs := make([][]uint64, rows)
		for j := range srcs {
			srcs[j] = make([]uint64, words)
			for i := range srcs[j] {
				srcs[j][i] = uint64(i*j + 1)
			}
		}
		cs := make([]byte, rows)
		for j := range cs {
			cs[j] = byte((j*7 + 1) & 1)
		}
		cs[0] = 1
		dst := make([]uint64, words)
		b.Run("rows="+itoa(rows), func(b *testing.B) {
			b.SetBytes(int64(rows * 1460))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				CombineWords(dst, srcs, cs)
			}
		})
	}
}

func BenchmarkPackBytes(b *testing.B) {
	src := make([]byte, 1460)
	dst := make([]uint64, WordsForBytes(1460))
	b.SetBytes(1460)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PackBytes(dst, src)
	}
}

// itoa avoids pulling strconv into the benchmark name path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
