package gf

// This file provides GF(2) (binary field) arithmetic used by the field-size
// ablation experiments. In GF(2) every coefficient is a single bit, so
// encoded packets carry 1-bit coefficients, and the probability that a
// random packet is non-innovative is much higher than over GF(2^8)
// (Sec. III-B of the paper explains why tiny generations would need a
// larger field).

// Field selects which finite field the RLNC codec draws coefficients from.
type Field int

const (
	// GF256 is GF(2^8), the paper's default field.
	GF256 Field = iota + 1
	// GF2 is the binary field, used for the ablation study only.
	GF2
)

// String returns the conventional name of the field.
func (f Field) String() string {
	switch f {
	case GF256:
		return "GF(2^8)"
	case GF2:
		return "GF(2)"
	default:
		return "GF(?)"
	}
}

// Size returns the number of elements in the field.
func (f Field) Size() int {
	switch f {
	case GF256:
		return 256
	case GF2:
		return 2
	default:
		return 0
	}
}

// ClampCoeff restricts a random byte to a valid coefficient for the field.
// For GF(2^8) it is the identity; for GF(2) it keeps only the low bit.
func (f Field) ClampCoeff(b byte) byte {
	if f == GF2 {
		return b & 1
	}
	return b
}
