package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := Add(byte(a), byte(b)), byte(a)^byte(b); got != want {
				t.Fatalf("Add(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < Order; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Errorf("Mul(%d,1) = %d, want %d", a, got, a)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Errorf("Mul(%d,0) = %d, want 0", a, got)
		}
		if got := Mul(1, byte(a)); got != byte(a) {
			t.Errorf("Mul(1,%d) = %d, want %d", a, got, a)
		}
	}
}

// slowMul is a reference implementation: carry-less multiplication followed
// by reduction modulo the field polynomial.
func slowMul(a, b byte) byte {
	var p byte
	aa, bb := int(a), int(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= byte(aa)
		}
		hi := aa & 0x80
		aa = (aa << 1) & 0xFF
		if hi != 0 {
			aa ^= Poly & 0xFF
		}
		bb >>= 1
	}
	return p
}

func TestMulMatchesReference(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < Order; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a*Inv(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	Exp(-1)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < Order; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
}

func TestExpPeriodic(t *testing.T) {
	for n := 0; n < 255; n++ {
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic at %d", n)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// The powers of the generator must enumerate all 255 nonzero elements.
	seen := make(map[byte]bool)
	for i := 0; i < Order-1; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != Order-1 {
		t.Fatalf("generator produced %d distinct elements, want %d", len(seen), Order-1)
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	dst := make([]byte, len(src))
	MulSlice(dst, src, 7)
	for i := range src {
		if dst[i] != Mul(src[i], 7) {
			t.Fatalf("MulSlice[%d] = %d, want %d", i, dst[i], Mul(src[i], 7))
		}
	}
}

func TestMulSliceZeroAndOne(t *testing.T) {
	src := []byte{9, 8, 7}
	dst := []byte{1, 2, 3}
	MulSlice(dst, src, 1)
	if !bytes.Equal(dst, src) {
		t.Fatalf("MulSlice by 1 = %v, want %v", dst, src)
	}
	MulSlice(dst, src, 0)
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Fatalf("MulSlice by 0 = %v, want zeros", dst)
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulSlice(make([]byte, 2), make([]byte, 3), 5)
}

func TestAddMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100) + 1
		c := byte(rng.Intn(256))
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ Mul(src[i], c)
		}
		AddMulSlice(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("trial %d (n=%d c=%d): AddMulSlice mismatch", trial, n, c)
		}
	}
}

func TestAddMulSliceZeroIsNoop(t *testing.T) {
	dst := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	want := append([]byte(nil), dst...)
	AddMulSlice(dst, []byte{9, 9, 9, 9, 9, 9, 9, 9, 9}, 0)
	if !bytes.Equal(dst, want) {
		t.Fatalf("AddMulSlice by 0 changed dst: %v", dst)
	}
}

func TestAddMulSliceSelfInverse(t *testing.T) {
	// Applying the same AddMul twice must cancel (characteristic 2).
	f := func(c byte, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		src := make([]byte, len(data))
		copy(src, data)
		dst := make([]byte, len(data))
		orig := append([]byte(nil), dst...)
		AddMulSlice(dst, src, c)
		AddMulSlice(dst, src, c)
		return bytes.Equal(dst, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AddMulSlice(make([]byte, 4), make([]byte, 5), 3)
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	want := Mul(1, 4) ^ Mul(2, 5) ^ Mul(3, 6)
	if got := DotProduct(a, b); got != want {
		t.Fatalf("DotProduct = %d, want %d", got, want)
	}
}

func TestDotProductMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DotProduct([]byte{1}, []byte{1, 2})
}

func TestFieldString(t *testing.T) {
	if GF256.String() != "GF(2^8)" || GF2.String() != "GF(2)" {
		t.Fatalf("unexpected names: %s %s", GF256, GF2)
	}
	if Field(0).String() != "GF(?)" {
		t.Fatalf("zero field name: %s", Field(0))
	}
}

func TestFieldSize(t *testing.T) {
	if GF256.Size() != 256 || GF2.Size() != 2 || Field(0).Size() != 0 {
		t.Fatal("unexpected field sizes")
	}
}

func TestClampCoeff(t *testing.T) {
	if GF2.ClampCoeff(0xFF) != 1 || GF2.ClampCoeff(0xFE) != 0 {
		t.Fatal("GF2 clamp incorrect")
	}
	if GF256.ClampCoeff(0xAB) != 0xAB {
		t.Fatal("GF256 clamp must be identity")
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkAddMulSlice1460(b *testing.B) {
	// 1460 bytes is the paper's block size.
	src := make([]byte, 1460)
	dst := make([]byte, 1460)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSlice(dst, src, byte(i%255)+1)
	}
}

func TestXorSliceMatchesBytewise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(70) // cover the word loop and the tail
		dst := make([]byte, n)
		src := make([]byte, n)
		rng.Read(dst)
		rng.Read(src)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddMulSlice(dst, src, 1)
		if !bytes.Equal(dst, want) {
			t.Fatalf("trial %d (n=%d): xor mismatch", trial, n)
		}
	}
}

func BenchmarkAddMulSliceXOR1460(b *testing.B) {
	src := make([]byte, 1460)
	dst := make([]byte, 1460)
	rand.New(rand.NewSource(3)).Read(src)
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSlice(dst, src, 1)
	}
}

func TestAddMulSliceWideMatchesTable(t *testing.T) {
	// The wide nibble-table kernel and the 64 KiB table kernel must agree
	// for every multiplier, across lengths covering the word loop, the
	// byte tail, and the empty slice.
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 100, 1460} {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < 256; c++ {
			dt := append([]byte(nil), base...)
			dw := append([]byte(nil), base...)
			AddMulSliceTable(dt, src, byte(c))
			AddMulSliceWide(dw, src, byte(c))
			if !bytes.Equal(dt, dw) {
				t.Fatalf("n=%d c=%d: kernels disagree", n, c)
			}
		}
	}
}

func TestAddMulSliceDispatchBothKernels(t *testing.T) {
	// Whatever calibration picked, forcing either kernel through the
	// public dispatch must give identical results.
	defer SetWideKernel(WideKernelSelected())
	src := make([]byte, 1460)
	rand.New(rand.NewSource(9)).Read(src)
	want := make([]byte, 1460)
	AddMulSliceTable(want, src, 0x5B)
	for _, wide := range []bool{false, true} {
		SetWideKernel(wide)
		dst := make([]byte, 1460)
		AddMulSlice(dst, src, 0x5B)
		if !bytes.Equal(dst, want) {
			t.Fatalf("wide=%v: dispatch result differs from table kernel", wide)
		}
	}
}

func TestAddMulSliceZeroAlloc(t *testing.T) {
	// The AXPY kernels are the innermost hot path of every recode and
	// decode; they must never touch the heap.
	src := make([]byte, 1460)
	dst := make([]byte, 1460)
	rand.New(rand.NewSource(10)).Read(src)
	for name, f := range map[string]func(){
		"dispatch": func() { AddMulSlice(dst, src, 0xA7) },
		"table":    func() { AddMulSliceTable(dst, src, 0xA7) },
		"wide":     func() { AddMulSliceWide(dst, src, 0xA7) },
		"xor":      func() { AddMulSlice(dst, src, 1) },
	} {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s kernel: %v allocs per run, want 0", name, allocs)
		}
	}
}

func BenchmarkAddMulSliceTable1460(b *testing.B) {
	src := make([]byte, 1460)
	dst := make([]byte, 1460)
	rand.New(rand.NewSource(4)).Read(src)
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSliceTable(dst, src, byte(i%255)+1)
	}
}

func BenchmarkAddMulSliceWide(b *testing.B) {
	for _, n := range []int{64, 1460} {
		b.Run(fmt.Sprintf("%dB", n), func(b *testing.B) {
			src := make([]byte, n)
			dst := make([]byte, n)
			rand.New(rand.NewSource(5)).Read(src)
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AddMulSliceWide(dst, src, byte(i%255)+1)
			}
		})
	}
}
