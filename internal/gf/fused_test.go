package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randSlice returns n pseudo-random bytes (including zeros, so the c==0 and
// b==0 fast paths are exercised).
func randSlice(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func TestAddMulSlicesMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 63, 64, 255, 1460} {
		for _, rows := range []int{1, 2, 3, 8, 17} {
			src := randSlice(rng, n)
			cs := randSlice(rng, rows)
			cs[0] = 0 // force the skip path
			if rows > 1 {
				cs[1] = 1 // force the XOR path
			}
			want := make([][]byte, rows)
			got := make([][]byte, rows)
			for j := 0; j < rows; j++ {
				row := randSlice(rng, n)
				want[j] = append([]byte(nil), row...)
				got[j] = append([]byte(nil), row...)
				AddMulSlice(want[j], src, cs[j])
			}
			AddMulSlices(got, src, cs)
			for j := 0; j < rows; j++ {
				if !bytes.Equal(got[j], want[j]) {
					t.Fatalf("n=%d rows=%d: fused row %d differs from looped AddMulSlice", n, rows, j)
				}
			}
		}
	}
}

func TestAddMulSlicesBothKernels(t *testing.T) {
	defer SetWideKernel(WideKernelSelected())
	rng := rand.New(rand.NewSource(2))
	src := randSlice(rng, 1460)
	cs := randSlice(rng, 6)
	base := make([][]byte, len(cs))
	for j := range base {
		base[j] = randSlice(rng, len(src))
	}
	run := func(wide bool) [][]byte {
		SetWideKernel(wide)
		out := make([][]byte, len(base))
		for j := range base {
			out[j] = append([]byte(nil), base[j]...)
		}
		AddMulSlices(out, src, cs)
		return out
	}
	tbl, wide := run(false), run(true)
	for j := range tbl {
		if !bytes.Equal(tbl[j], wide[j]) {
			t.Fatalf("table and wide fused kernels disagree on row %d", j)
		}
	}
}

func TestAddMulSlicesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("rows/coeffs mismatch", func() {
		AddMulSlices(make([][]byte, 2), make([]byte, 4), make([]byte, 1))
	})
	mustPanic("row length mismatch", func() {
		AddMulSlices([][]byte{make([]byte, 3)}, make([]byte, 4), []byte{5})
	})
	mustPanic("combine rows/coeffs mismatch", func() {
		CombineSlices(make([]byte, 4), make([][]byte, 2), make([]byte, 1))
	})
	mustPanic("combine length mismatch", func() {
		CombineSlices(make([]byte, 4), [][]byte{make([]byte, 3)}, []byte{5})
	})
	mustPanic("mulinto length mismatch", func() {
		MulSliceInto(make([]byte, 3), make([]byte, 4), 2)
	})
}

func TestCombineSlicesMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 255, 1460} {
		for _, rows := range []int{1, 2, 4, 16} {
			srcs := make([][]byte, rows)
			for j := range srcs {
				srcs[j] = randSlice(rng, n)
			}
			cs := randSlice(rng, rows)
			want := make([]byte, n)
			for j := range srcs {
				AddMulSlice(want, srcs[j], cs[j])
			}
			got := randSlice(rng, n) // pre-filled garbage: CombineSlices overwrites
			CombineSlices(got, srcs, cs)
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d rows=%d: CombineSlices differs from looped accumulate", n, rows)
			}
		}
	}
}

func TestCombineSlicesAllZeroCoeffsZeroesDst(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	CombineSlices(dst, [][]byte{{9, 9, 9, 9}}, []byte{0})
	for _, b := range dst {
		if b != 0 {
			t.Fatal("all-zero combine must zero the destination")
		}
	}
}

func TestMulSliceIntoMatchesMulSlice(t *testing.T) {
	defer SetWideKernel(WideKernelSelected())
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 63, 64, 1460} {
		src := randSlice(rng, n)
		for _, c := range []byte{0, 1, 2, 91, 255} {
			want := make([]byte, n)
			MulSlice(want, src, c)
			for _, wide := range []bool{false, true} {
				SetWideKernel(wide)
				got := randSlice(rng, n)
				MulSliceInto(got, src, c)
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d c=%d wide=%v: MulSliceInto mismatch", n, c, wide)
				}
			}
		}
	}
}

func TestMulSliceIntoAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randSlice(rng, 256)
	want := make([]byte, len(src))
	MulSlice(want, src, 77)
	got := append([]byte(nil), src...)
	MulSliceInto(got, got, 77) // identical slices: in-place scale
	if !bytes.Equal(got, want) {
		t.Fatal("in-place MulSliceInto mismatch")
	}
}

func TestDotProductMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 4, 64, 255} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		if n > 2 {
			a[1], b[2] = 0, 0 // exercise the zero-skip branches
		}
		if got, want := DotProduct(a, b), dotProductTable(a, b); got != want {
			t.Fatalf("n=%d: DotProduct = %d, table reference = %d", n, got, want)
		}
	}
}

// BenchmarkAddMulSlices compares the fused one-source-to-N-rows kernel with
// N independent AddMulSlice calls (the traffic the fused pass saves).
func BenchmarkAddMulSlices(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := randSlice(rng, 1460)
	for _, rows := range []int{4, 8, 32, 64} {
		dsts := make([][]byte, rows)
		for j := range dsts {
			dsts[j] = randSlice(rng, len(src))
		}
		cs := randSlice(rng, rows)
		for j := range cs {
			cs[j] = cs[j]%254 + 2 // no 0/1 fast paths in the measurement
		}
		b.Run(fmt.Sprintf("fused/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(rows * len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AddMulSlices(dsts, src, cs)
			}
		})
		b.Run(fmt.Sprintf("looped/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(rows * len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range dsts {
					AddMulSlice(dsts[j], src, cs[j])
				}
			}
		})
	}
}

// BenchmarkCombineSlices compares the fused N-sources-to-one-row gather with
// N independent AddMulSlice accumulations (the recoder's emission kernel).
func BenchmarkCombineSlices(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	dst := make([]byte, 1460)
	for _, rows := range []int{4, 8, 32, 64} {
		srcs := make([][]byte, rows)
		for j := range srcs {
			srcs[j] = randSlice(rng, len(dst))
		}
		cs := randSlice(rng, rows)
		for j := range cs {
			cs[j] = cs[j]%254 + 2
		}
		b.Run(fmt.Sprintf("fused/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(rows * len(dst)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CombineSlices(dst, srcs, cs)
			}
		})
		b.Run(fmt.Sprintf("looped/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(rows * len(dst)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range dst {
					dst[j] = 0
				}
				for j := range srcs {
					AddMulSlice(dst, srcs[j], cs[j])
				}
			}
		})
	}
}

// BenchmarkDotProduct compares the log/exp inner loop against the
// product-table loop over coefficient-vector lengths the decoder sees.
func BenchmarkDotProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{4, 16, 64, 255} {
		av, bv := randSlice(rng, n), randSlice(rng, n)
		b.Run(fmt.Sprintf("logexp/len=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink ^= DotProduct(av, bv)
			}
		})
		b.Run(fmt.Sprintf("table/len=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink ^= dotProductTable(av, bv)
			}
		})
	}
}

// sink defeats dead-code elimination in the benchmarks.
var sink byte
