package gf

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file provides the word-wide GF(2) execution path. Over the binary
// field every coefficient is one bit and addmul degenerates to a conditional
// XOR — no tables at all — so the natural unit of work is the 64-bit machine
// word, not the byte: payloads are packed into []uint64 and one XOR moves
// 64 coded bits per ALU op ("Random Linear Network Coding on Programmable
// Switches" picks GF(2) for exactly this reason). Coefficient vectors pack
// 64 coefficients per word, so eliminating a row at generation size k costs
// k/64 word ops instead of k byte ops.
//
// The layout mirrors the GF(2^8) kernels: two kernel variants behind a
// one-time micro-calibration (XorWords), fused multi-row variants
// (XorWordsMulti, CombineWords) that strip-block to keep the active rows
// L1-resident, and pack/unpack helpers that bridge the byte payloads on the
// wire to the packed words the codec state holds.

// WordBits is the number of GF(2) coefficients (or payload bits) per packed
// word.
const WordBits = 64

// WordsForBits returns the number of uint64 words needed to hold n bits.
func WordsForBits(n int) int { return (n + WordBits - 1) / WordBits }

// WordsForBytes returns the number of uint64 words needed to hold n bytes.
func WordsForBytes(n int) int { return (n + 7) / 8 }

// PackBytes packs a byte slice into little-endian uint64 words. dst must
// have at least WordsForBytes(len(src)) words; a partial trailing word is
// zero-padded so packed rows XOR cleanly regardless of payload length.
//
//nc:hotpath
func PackBytes(dst []uint64, src []byte) {
	n := len(src)
	if len(dst) < WordsForBytes(n) {
		panic("gf: PackBytes destination too short")
	}
	i, w := 0, 0
	for ; i+8 <= n; i, w = i+8, w+1 {
		dst[w] = le.Uint64(src[i:])
	}
	if i < n {
		var tail uint64
		for shift := 0; i < n; i, shift = i+1, shift+8 {
			tail |= uint64(src[i]) << shift
		}
		dst[w] = tail
	}
}

// UnpackBytes unpacks little-endian uint64 words into a byte slice, the
// inverse of PackBytes. src must have at least WordsForBytes(len(dst)) words.
//
//nc:hotpath
func UnpackBytes(dst []byte, src []uint64) {
	n := len(dst)
	if len(src) < WordsForBytes(n) {
		panic("gf: UnpackBytes source too short")
	}
	i, w := 0, 0
	for ; i+8 <= n; i, w = i+8, w+1 {
		le.PutUint64(dst[i:], src[w])
	}
	if i < n {
		tail := src[w]
		for shift := 0; i < n; i, shift = i+1, shift+8 {
			dst[i] = byte(tail >> shift)
		}
	}
}

// PackBits packs a GF(2) coefficient vector (one byte per coefficient, only
// the low bit significant) into a bitmap: coefficient i lands in bit i%64 of
// word i/64. dst must have at least WordsForBits(len(coeffs)) words; unused
// high bits of the last word are cleared.
//
//nc:hotpath
func PackBits(dst []uint64, coeffs []byte) {
	n := len(coeffs)
	words := WordsForBits(n)
	if len(dst) < words {
		panic("gf: PackBits destination too short")
	}
	for w := 0; w < words; w++ {
		dst[w] = 0
	}
	for i := 0; i < n; i++ {
		dst[i/WordBits] |= uint64(coeffs[i]&1) << (i % WordBits)
	}
}

// UnpackBits expands a coefficient bitmap back to one byte per coefficient
// (0 or 1), the inverse of PackBits. src must have at least
// WordsForBits(len(dst)) words.
//
//nc:hotpath
func UnpackBits(dst []byte, src []uint64) {
	n := len(dst)
	if len(src) < WordsForBits(n) {
		panic("gf: UnpackBits source too short")
	}
	for i := 0; i < n; i++ {
		dst[i] = byte(src[i/WordBits]>>(i%WordBits)) & 1
	}
}

// Bit returns coefficient i (0 or 1) of a packed coefficient bitmap.
//
//nc:hotpath
func Bit(bits []uint64, i int) byte {
	return byte(bits[i/WordBits]>>(i%WordBits)) & 1
}

// SetBit sets coefficient i of a packed coefficient bitmap to 1.
//
//nc:hotpath
func SetBit(bits []uint64, i int) {
	bits[i/WordBits] |= 1 << (i % WordBits)
}

// XorSlice computes dst[i] ^= src[i] over byte slices, eight bytes at a
// time — GF(2) addition on unpacked payloads (and the c==1 fast path of the
// GF(2^8) kernels). dst and src must have the same length.
//
//nc:hotpath
func XorSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: XorSlice length mismatch")
	}
	xorSlice(dst, src)
}

// XorWords computes dst[i] ^= src[i] over packed words — the GF(2) row
// operation. src may be shorter than dst (only the overlap is combined),
// which lets a short packed row fold into a longer scratch row.
//
// Two kernels back this entry point: a 4x-unrolled variant and a plain
// loop. A one-time micro-calibration on first use picks the faster one for
// this machine; SetUnrolledXor overrides the choice.
//
//nc:hotpath
func XorWords(dst, src []uint64) {
	if len(src) > len(dst) {
		panic("gf: XorWords source longer than destination")
	}
	if len(src) >= xorDispatchMinWords {
		xorCalibrateOnce.Do(calibrateXorKernel)
		if xorUnrolled.Load() {
			xorWordsUnroll(dst, src)
			return
		}
	}
	xorWordsLoop(dst, src)
}

//nc:hotpath
func xorWordsLoop(dst, src []uint64) {
	for i, s := range src {
		dst[i] ^= s
	}
}

//nc:hotpath
func xorWordsUnroll(dst, src []uint64) {
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// AddMulWords computes dst += c*src over packed GF(2) rows: a conditional
// XOR, since the only nonzero coefficient is 1. It mirrors AddMulSlice for
// the packed representation.
//
//nc:hotpath
func AddMulWords(dst, src []uint64, c byte) {
	if c&1 == 0 {
		return
	}
	XorWords(dst, src)
}

// xorDispatchMinWords is the row length (in words) below which XorWords
// always uses the plain loop: tiny rows (packed coefficient bitmaps) are
// dominated by call overhead, not kernel choice.
const xorDispatchMinWords = 8

var (
	xorCalibrateOnce sync.Once
	xorUnrolled      atomic.Bool
)

// calibrateXorKernel times both XOR kernels on an MTU-sized packed row and
// selects the faster one. Ties go to the plain loop. The measurement costs a
// few microseconds and runs once per process.
func calibrateXorKernel() {
	const reps = 64
	src := make([]uint64, WordsForBytes(1460))
	dst := make([]uint64, WordsForBytes(1460))
	for i := range src {
		src[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	time.Sleep(0) // yield once so the timing slice starts fresh
	run := func(f func(dst, src []uint64)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f(dst, src)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	loop := run(xorWordsLoop)
	unroll := run(xorWordsUnroll)
	xorUnrolled.Store(unroll < loop)
}

// SetUnrolledXor forces XorWords's kernel choice (true selects the
// 4x-unrolled kernel, false the plain loop), overriding the automatic
// calibration. Both kernels produce identical results; this only affects
// speed. Intended for benchmarks and tests.
func SetUnrolledXor(enabled bool) {
	xorCalibrateOnce.Do(func() {}) // disarm auto-calibration
	xorUnrolled.Store(enabled)
}

// UnrolledXorSelected reports whether XorWords currently dispatches long
// rows to the unrolled kernel.
func UnrolledXorSelected() bool {
	xorCalibrateOnce.Do(calibrateXorKernel)
	return xorUnrolled.Load()
}

// fusedStripWords is the column-block length (in words) of the fused packed
// kernels: 1 KiB strips, matching fusedStrip of the byte kernels.
const fusedStripWords = fusedStrip / 8

// XorWordsMulti XORs ONE packed source row into every destination row with
// an odd coefficient, in a single strip-blocked pass — the packed analogue
// of AddMulSlices. len(dsts) must equal len(cs) and every destination must
// have the source's length. Rows with an even (zero in GF(2)) coefficient
// are skipped; no destination may alias src.
//
//nc:hotpath
func XorWordsMulti(dsts [][]uint64, src []uint64, cs []byte) {
	if len(dsts) != len(cs) {
		panic("gf: XorWordsMulti rows/coeffs mismatch")
	}
	for _, d := range dsts {
		if len(d) != len(src) {
			panic("gf: XorWordsMulti length mismatch")
		}
	}
	unroll := false
	if len(src) >= xorDispatchMinWords {
		xorCalibrateOnce.Do(calibrateXorKernel)
		unroll = xorUnrolled.Load()
	}
	for off := 0; off < len(src); off += fusedStripWords {
		end := off + fusedStripWords
		if end > len(src) {
			end = len(src)
		}
		s := src[off:end]
		for j, d := range dsts {
			if cs[j]&1 == 0 {
				continue
			}
			if unroll {
				xorWordsUnroll(d[off:end:end], s)
			} else {
				xorWordsLoop(d[off:end:end], s)
			}
		}
	}
}

// CombineWords sets dst = XOR of every source row with an odd coefficient —
// N packed rows gathered into one destination in a single strip-blocked
// pass, the packed analogue of CombineSlices (and the GF(2) emission kernel
// of encoder and recoder). dst is overwritten, and zero-filled if no
// coefficient is odd; it must not alias any source. len(srcs) must equal
// len(cs) and every source must have dst's length.
//
//nc:hotpath
func CombineWords(dst []uint64, srcs [][]uint64, cs []byte) {
	if len(srcs) != len(cs) {
		panic("gf: CombineWords rows/coeffs mismatch")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf: CombineWords length mismatch")
		}
	}
	unroll := false
	if len(dst) >= xorDispatchMinWords {
		xorCalibrateOnce.Do(calibrateXorKernel)
		unroll = xorUnrolled.Load()
	}
	for off := 0; off < len(dst); off += fusedStripWords {
		end := off + fusedStripWords
		if end > len(dst) {
			end = len(dst)
		}
		d := dst[off:end:end]
		started := false
		for j, s := range srcs {
			if cs[j]&1 == 0 {
				continue
			}
			ss := s[off:end:end]
			if !started {
				copy(d, ss)
				started = true
				continue
			}
			if unroll {
				xorWordsUnroll(d, ss)
			} else {
				xorWordsLoop(d, ss)
			}
		}
		if !started {
			for i := range d {
				d[i] = 0
			}
		}
	}
}
