// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same representation used by
// practical network coding libraries (Sec. III-B of the paper follows the
// literature in choosing GF(2^8) as the coding field). Addition and
// subtraction are both XOR; multiplication and division go through
// logarithm/antilogarithm tables so that the per-byte cost is two table
// lookups and one addition.
//
// The package also provides the vectorized kernels the RLNC codec is built
// on: MulSlice (scale a block) and AddMulSlice (accumulate a scaled block),
// which together implement y += c*x over byte slices.
package gf

import (
	"encoding/binary"
	"fmt"
)

// Poly is the primitive polynomial used to construct the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x11D

// Order is the number of elements in the field.
const Order = 256

// tables bundles the precomputed lookup tables for field arithmetic.
type tables struct {
	// exp[i] = g^i where g = 2 is a generator. Doubled in length so that
	// mul can index exp[log(a)+log(b)] without a modular reduction.
	exp [2 * (Order - 1)]byte
	// log[a] = i such that g^i = a, for a != 0. log[0] is unused.
	log [Order]byte
	// inv[a] = a^-1 for a != 0. inv[0] is unused.
	inv [Order]byte
	// mul is the full 256x256 product table. It costs 64 KiB and makes the
	// hot AddMulSlice kernel a single indexed load per byte.
	mul [Order][Order]byte
}

// _tables is package-level immutable state, initialized once at startup.
// It is never written after buildTables returns.
var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := 1
	for i := 0; i < Order-1; i++ {
		t.exp[i] = byte(x)
		t.exp[i+Order-1] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
	for a := 1; a < Order; a++ {
		// a^-1 = g^(255 - log a).
		t.inv[a] = t.exp[Order-1-int(t.log[a])]
	}
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if a == 0 || b == 0 {
				continue
			}
			t.mul[a][b] = t.exp[int(t.log[a])+int(t.log[b])]
		}
	}
	return t
}

// Add returns a + b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). Subtraction equals addition (XOR).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	return _tables.mul[a][b]
}

// Div returns a / b in GF(2^8). It panics if b is zero, mirroring integer
// division semantics; callers in this repository always guard the divisor.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+Order-1-int(_tables.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return _tables.inv[a]
}

// Exp returns g^n where g = 2 is the field generator and n may be any
// non-negative integer.
func Exp(n int) byte {
	if n < 0 {
		panic(fmt.Sprintf("gf: negative exponent %d", n))
	}
	return _tables.exp[n%(Order-1)]
}

// Log returns log_g(a) for nonzero a. It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(_tables.log[a])
}

// MulSlice sets dst[i] = c * src[i] for every i. dst and src must have the
// same length; dst and src may alias.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &_tables.mul[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice computes dst[i] += c * src[i] for every i (the GF(2^8)
// equivalent of an AXPY kernel). dst and src must have the same length and
// must not alias unless they are identical slices with c == 0 or c == 1.
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		// Addition is XOR; process a machine word at a time. This is the
		// systematic-packet fast path on every recoder and decoder.
		xorSlice(dst, src)
		return
	}
	row := &_tables.mul[c]
	// Process 8 bytes per iteration to amortize bounds checks.
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
		d[4] ^= row[s[4]]
		d[5] ^= row[s[5]]
		d[6] ^= row[s[6]]
		d[7] ^= row[s[7]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// xorSlice computes dst[i] ^= src[i] eight bytes at a time.
func xorSlice(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// DotProduct returns the inner product of two coefficient vectors,
// sum_i a[i]*b[i], in GF(2^8). The vectors must have equal length.
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf: DotProduct length mismatch")
	}
	var acc byte
	for i := range a {
		acc ^= _tables.mul[a[i]][b[i]]
	}
	return acc
}
