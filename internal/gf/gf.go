// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same representation used by
// practical network coding libraries (Sec. III-B of the paper follows the
// literature in choosing GF(2^8) as the coding field). Addition and
// subtraction are both XOR; multiplication and division go through
// logarithm/antilogarithm tables so that the per-byte cost is two table
// lookups and one addition.
//
// The package also provides the vectorized kernels the RLNC codec is built
// on: MulSlice (scale a block) and AddMulSlice (accumulate a scaled block),
// which together implement y += c*x over byte slices.
package gf

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Poly is the primitive polynomial used to construct the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x11D

// Order is the number of elements in the field.
const Order = 256

// tables bundles the precomputed lookup tables for field arithmetic.
type tables struct {
	// exp[i] = g^i where g = 2 is a generator. Doubled in length so that
	// mul can index exp[log(a)+log(b)] without a modular reduction.
	exp [2 * (Order - 1)]byte
	// log[a] = i such that g^i = a, for a != 0. log[0] is unused.
	log [Order]byte
	// inv[a] = a^-1 for a != 0. inv[0] is unused.
	inv [Order]byte
	// mul is the full 256x256 product table. It costs 64 KiB and makes the
	// hot AddMulSlice kernel a single indexed load per byte.
	mul [Order][Order]byte
	// mulLo and mulHi are the split nibble tables: for a multiplier c,
	// mulLo[c][n] = c * n and mulHi[c][n] = c * (n << 4). Because field
	// multiplication is linear over GF(2), c*b = mulLo[c][b&0xF] ^
	// mulHi[c][b>>4]. Each multiplier needs just 32 bytes of table (two
	// cache lines), the pure-Go analogue of the 16-entry shuffle tables
	// SIMD RLNC kernels use; the wide kernel composes the two lookups a
	// 64-bit word at a time.
	mulLo [Order][16]byte
	mulHi [Order][16]byte
}

// _tables is package-level immutable state, initialized once at startup.
// It is never written after buildTables returns.
var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := 1
	for i := 0; i < Order-1; i++ {
		t.exp[i] = byte(x)
		t.exp[i+Order-1] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
	for a := 1; a < Order; a++ {
		// a^-1 = g^(255 - log a).
		t.inv[a] = t.exp[Order-1-int(t.log[a])]
	}
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if a == 0 || b == 0 {
				continue
			}
			t.mul[a][b] = t.exp[int(t.log[a])+int(t.log[b])]
		}
	}
	for c := 0; c < Order; c++ {
		for n := 0; n < 16; n++ {
			t.mulLo[c][n] = t.mul[c][n]
			t.mulHi[c][n] = t.mul[c][n<<4]
		}
	}
	return t
}

// Add returns a + b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). Subtraction equals addition (XOR).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	return _tables.mul[a][b]
}

// Div returns a / b in GF(2^8). It panics if b is zero, mirroring integer
// division semantics; callers in this repository always guard the divisor.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+Order-1-int(_tables.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return _tables.inv[a]
}

// Exp returns g^n where g = 2 is the field generator and n may be any
// non-negative integer.
func Exp(n int) byte {
	if n < 0 {
		panic(fmt.Sprintf("gf: negative exponent %d", n))
	}
	return _tables.exp[n%(Order-1)]
}

// Log returns log_g(a) for nonzero a. It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(_tables.log[a])
}

// MulSlice sets dst[i] = c * src[i] for every i. dst and src must have the
// same length; dst and src may alias.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &_tables.mul[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice computes dst[i] += c * src[i] for every i (the GF(2^8)
// equivalent of an AXPY kernel). dst and src must have the same length and
// must not alias unless they are identical slices with c == 0 or c == 1.
//
// Two kernels back this entry point: the 64 KiB full-table kernel
// (AddMulSliceTable) and the split nibble-table wide kernel
// (AddMulSliceWide). A one-time micro-calibration on first use picks the
// faster one for this machine; SetWideKernel overrides the choice.
//
//nc:hotpath
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		// Addition is XOR; process a machine word at a time. This is the
		// systematic-packet fast path on every recoder and decoder.
		xorSlice(dst, src)
		return
	}
	if len(dst) >= kernelDispatchMin {
		calibrateOnce.Do(calibrateKernel)
		if wideKernel.Load() {
			addMulSliceWide(dst, src, c)
			return
		}
	}
	addMulSliceTable(dst, src, c)
}

// AddMulSliceTable is the full-table kernel behind AddMulSlice: one 64 KiB
// product table, one indexed load per byte. Exposed for benchmarking the
// kernel dispatch.
func AddMulSliceTable(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	addMulSliceTable(dst, src, c)
}

//nc:hotpath
func addMulSliceTable(dst, src []byte, c byte) {
	row := &_tables.mul[c]
	// Process 8 bytes per iteration to amortize bounds checks.
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
		d[4] ^= row[s[4]]
		d[5] ^= row[s[5]]
		d[6] ^= row[s[6]]
		d[7] ^= row[s[7]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// AddMulSliceWide is the 64-bit-wide split nibble-table kernel behind
// AddMulSlice: the multiplier's two 16-entry tables (32 bytes, two cache
// lines) are composed word-at-a-time, so the whole working set of the
// multiply stays cache-resident no matter how many distinct coefficients a
// recode mixes. Exposed for benchmarking the kernel dispatch.
func AddMulSliceWide(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	addMulSliceWide(dst, src, c)
}

//nc:hotpath
func addMulSliceWide(dst, src []byte, c byte) {
	lo := &_tables.mulLo[c]
	hi := &_tables.mulHi[c]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		r := uint64(lo[s&15] ^ hi[(s>>4)&15])
		r |= uint64(lo[(s>>8)&15]^hi[(s>>12)&15]) << 8
		r |= uint64(lo[(s>>16)&15]^hi[(s>>20)&15]) << 16
		r |= uint64(lo[(s>>24)&15]^hi[(s>>28)&15]) << 24
		r |= uint64(lo[(s>>32)&15]^hi[(s>>36)&15]) << 32
		r |= uint64(lo[(s>>40)&15]^hi[(s>>44)&15]) << 40
		r |= uint64(lo[(s>>48)&15]^hi[(s>>52)&15]) << 48
		r |= uint64(lo[(s>>56)&15]^hi[(s>>60)&15]) << 56
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^r)
	}
	for ; i < n; i++ {
		b := src[i]
		dst[i] ^= lo[b&15] ^ hi[b>>4]
	}
}

// kernelDispatchMin is the slice length below which AddMulSlice always uses
// the table kernel: tiny slices (coefficient vectors) are dominated by call
// overhead, not kernel choice.
const kernelDispatchMin = 64

var (
	calibrateOnce sync.Once
	wideKernel    atomic.Bool
)

// calibrateKernel times both kernels on an MTU-sized block and selects the
// faster one. Ties go to the table kernel. The measurement costs a few
// microseconds and runs once per process.
func calibrateKernel() {
	const reps = 64
	src := make([]byte, 1460)
	dst := make([]byte, 1460)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	time.Sleep(0) // yield once so the timing slice starts fresh
	run := func(f func(dst, src []byte, c byte)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f(dst, src, byte(i%254)+2)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	table := run(addMulSliceTable)
	wide := run(addMulSliceWide)
	wideKernel.Store(wide < table)
}

// SetWideKernel forces AddMulSlice's kernel choice (true selects the split
// nibble-table wide kernel, false the 64 KiB table kernel), overriding the
// automatic calibration. Both kernels produce identical results; this only
// affects speed. Intended for benchmarks and tests.
func SetWideKernel(enabled bool) {
	calibrateOnce.Do(func() {}) // disarm auto-calibration
	wideKernel.Store(enabled)
}

// WideKernelSelected reports whether AddMulSlice currently dispatches large
// slices to the wide kernel.
func WideKernelSelected() bool {
	calibrateOnce.Do(calibrateKernel)
	return wideKernel.Load()
}

// xorSlice computes dst[i] ^= src[i] eight bytes at a time.
func xorSlice(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// DotProduct returns the inner product of two coefficient vectors,
// sum_i a[i]*b[i], in GF(2^8). The vectors must have equal length.
//
// The inner loop goes through the log/exp tables rather than the 64 KiB
// product table: with both operands varying per element, product-table
// lookups touch a different 256-byte row every iteration (a random walk over
// the full 64 KiB), while log (256 B), log, exp (510 B) stay L1-resident no
// matter what the data looks like.
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf: DotProduct length mismatch")
	}
	log := &_tables.log
	exp := &_tables.exp
	var acc byte
	for i, av := range a {
		bv := b[i]
		if av == 0 || bv == 0 {
			continue
		}
		acc ^= exp[int(log[av])+int(log[bv])]
	}
	return acc
}

// dotProductTable is the product-table reference implementation, kept for
// the differential test and the BenchmarkDotProduct comparison.
func dotProductTable(a, b []byte) byte {
	var acc byte
	for i := range a {
		acc ^= _tables.mul[a[i]][b[i]]
	}
	return acc
}
