package gf

import "encoding/binary"

// le shortens the word-at-a-time loads of the wide kernels.
var le = binary.LittleEndian

// This file provides the fused multi-row kernels the batched decode pipeline
// is built on. The single-row kernels (AddMulSlice, MulSlice) stream two rows
// of memory per combination: the source is re-read and the destination
// re-written for every (coefficient, row) pair. The fused variants amortize
// that traffic:
//
//   - AddMulSlices applies ONE source row to N destination rows with N
//     coefficients in a single pass: the source is processed in L1-resident
//     strips, so each strip is read once and reused for all N destinations
//     ((N+1) rows of traffic instead of 2N).
//   - CombineSlices accumulates N source rows into ONE destination: the
//     destination strip stays cache-resident while every source streams
//     through it once (again (N+1) rows of traffic instead of 2N).
//   - MulSliceInto is the overwrite counterpart of AddMulSlice (dst = c*src
//     with no read-modify-write of dst), used to start an accumulation
//     without zeroing the destination first.
//
// All fused kernels reuse the calibrated table/wide dispatch of AddMulSlice.

// fusedStrip is the column-block length of the fused kernels: small enough
// that one source strip plus the active lookup tables stay L1-resident while
// destination rows stream through, large enough to amortize the per-call
// dispatch.
const fusedStrip = 1024

// AddMulSlices computes dsts[j][i] += cs[j] * src[i] for every destination
// row j and column i — one source row applied to N destination rows in a
// single strip-blocked pass. len(dsts) must equal len(cs) and every
// destination must have the source's length. Rows with a zero coefficient
// are skipped; no destination may alias src.
//
//nc:hotpath
func AddMulSlices(dsts [][]byte, src []byte, cs []byte) {
	if len(dsts) != len(cs) {
		panic("gf: AddMulSlices rows/coeffs mismatch")
	}
	for _, d := range dsts {
		if len(d) != len(src) {
			panic("gf: AddMulSlices length mismatch")
		}
	}
	if len(src) == 0 {
		return
	}
	wide := false
	if len(src) >= kernelDispatchMin {
		calibrateOnce.Do(calibrateKernel)
		wide = wideKernel.Load()
	}
	for off := 0; off < len(src); off += fusedStrip {
		end := off + fusedStrip
		if end > len(src) {
			end = len(src)
		}
		s := src[off:end]
		for j, d := range dsts {
			switch c := cs[j]; c {
			case 0:
			case 1:
				xorSlice(d[off:end], s)
			default:
				if wide {
					addMulSliceWide(d[off:end], s, c)
				} else {
					addMulSliceTable(d[off:end], s, c)
				}
			}
		}
	}
}

// CombineSlices sets dst[i] = sum_j cs[j] * srcs[j][i] — N source rows
// gathered into one destination in a single strip-blocked pass (the emission
// kernel of the recoder: one fresh coded block from the whole stored span).
// dst is overwritten; it must not alias any source. len(srcs) must equal
// len(cs) and every source must have dst's length.
//
//nc:hotpath
func CombineSlices(dst []byte, srcs [][]byte, cs []byte) {
	if len(srcs) != len(cs) {
		panic("gf: CombineSlices rows/coeffs mismatch")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf: CombineSlices length mismatch")
		}
	}
	if len(dst) == 0 {
		return
	}
	wide := false
	if len(dst) >= kernelDispatchMin {
		calibrateOnce.Do(calibrateKernel)
		wide = wideKernel.Load()
	}
	for off := 0; off < len(dst); off += fusedStrip {
		end := off + fusedStrip
		if end > len(dst) {
			end = len(dst)
		}
		d := dst[off:end]
		started := false
		for j, s := range srcs {
			c := cs[j]
			if c == 0 {
				continue
			}
			ss := s[off:end]
			switch {
			case !started && c == 1:
				copy(d, ss)
			case !started:
				if wide {
					mulSliceWide(d, ss, c)
				} else {
					mulSliceTable(d, ss, c)
				}
			case c == 1:
				xorSlice(d, ss)
			default:
				if wide {
					addMulSliceWide(d, ss, c)
				} else {
					addMulSliceTable(d, ss, c)
				}
			}
			started = true
		}
		if !started {
			for i := range d {
				d[i] = 0
			}
		}
	}
}

// MulSliceInto sets dst[i] = c * src[i] — the overwrite counterpart of
// AddMulSlice, with the same calibrated table/wide kernel dispatch. dst and
// src must have the same length; they may alias only if identical slices.
//
//nc:hotpath
func MulSliceInto(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: MulSliceInto length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	if len(dst) >= kernelDispatchMin {
		calibrateOnce.Do(calibrateKernel)
		if wideKernel.Load() {
			mulSliceWide(dst, src, c)
			return
		}
	}
	mulSliceTable(dst, src, c)
}

// mulSliceTable is the full-table overwrite kernel: one indexed load per
// byte, eight bytes per iteration.
//
//nc:hotpath
func mulSliceTable(dst, src []byte, c byte) {
	row := &_tables.mul[c]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] = row[s[0]]
		d[1] = row[s[1]]
		d[2] = row[s[2]]
		d[3] = row[s[3]]
		d[4] = row[s[4]]
		d[5] = row[s[5]]
		d[6] = row[s[6]]
		d[7] = row[s[7]]
	}
	for ; i < n; i++ {
		dst[i] = row[src[i]]
	}
}

// mulSliceWide is the 64-bit-wide split nibble-table overwrite kernel.
//
//nc:hotpath
func mulSliceWide(dst, src []byte, c byte) {
	lo := &_tables.mulLo[c]
	hi := &_tables.mulHi[c]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := le.Uint64(src[i:])
		r := uint64(lo[s&15] ^ hi[(s>>4)&15])
		r |= uint64(lo[(s>>8)&15]^hi[(s>>12)&15]) << 8
		r |= uint64(lo[(s>>16)&15]^hi[(s>>20)&15]) << 16
		r |= uint64(lo[(s>>24)&15]^hi[(s>>28)&15]) << 24
		r |= uint64(lo[(s>>32)&15]^hi[(s>>36)&15]) << 32
		r |= uint64(lo[(s>>40)&15]^hi[(s>>44)&15]) << 40
		r |= uint64(lo[(s>>48)&15]^hi[(s>>52)&15]) << 48
		r |= uint64(lo[(s>>56)&15]^hi[(s>>60)&15]) << 56
		le.PutUint64(dst[i:], r)
	}
	for ; i < n; i++ {
		b := src[i]
		dst[i] = lo[b&15] ^ hi[b>>4]
	}
}
