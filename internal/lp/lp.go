// Package lp implements a dense primal simplex solver for linear programs
// of the form
//
//	maximize    c·x
//	subject to  A x ≤ b,   x ≥ 0,   b ≥ 0
//
// which is exactly the shape of the coding-deployment program (2) in
// Sec. IV-A after the integer constraint on the VNF counts is relaxed (the
// paper solves the relaxation with a stock LP solver such as glpk and
// rounds; this package is the from-scratch substitute).
//
// All right-hand sides in program (2) are non-negative (capacity bounds and
// homogeneous flow inequalities), so the all-slack basis is feasible and no
// Phase-1 is required; Problem rejects negative b for clarity. Pivoting uses
// Dantzig's rule with a Bland fallback for termination, over a RHS with a
// graded anti-degeneracy perturbation — consequently solutions may sit up
// to ~1e-4 beyond nominal bounds; callers should compare against physical
// limits with a tolerance of that order (1e-4 of a Mbps is far below any
// measurable rate).
package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Solver failure modes.
var (
	// ErrUnbounded is returned when the objective is unbounded above.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrIterationLimit is returned when the pivot limit is exceeded.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
	// ErrBadProblem is returned for malformed input.
	ErrBadProblem = errors.New("lp: malformed problem")
)

// Problem is a linear program in standard inequality form.
type Problem struct {
	// C is the objective coefficient vector (length = number of
	// variables). The solver maximizes C·x.
	C []float64
	// A is the constraint matrix, one row per constraint.
	A [][]float64
	// B is the right-hand side, one entry per constraint; all entries
	// must be non-negative.
	B []float64
	// MaxIter caps simplex pivots; zero selects a generous default.
	MaxIter int
}

// Solution is an optimal point and its objective value.
type Solution struct {
	X         []float64
	Objective float64
	// Iterations is the number of pivots performed.
	Iterations int
}

const defaultMaxIter = 200000

// eps is the numerical tolerance for pivoting decisions.
const eps = 1e-9

// Solve runs the simplex method and returns an optimal solution.
func Solve(p Problem) (*Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, fmt.Errorf("%w: %d rows but %d rhs entries", ErrBadProblem, m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadProblem, i, len(row), n)
		}
	}
	for i, b := range p.B {
		if b < 0 {
			return nil, fmt.Errorf("%w: negative rhs b[%d] = %g", ErrBadProblem, i, b)
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: non-finite rhs b[%d]", ErrBadProblem, i)
		}
	}
	if n == 0 {
		return &Solution{X: nil, Objective: 0}, nil
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}

	// Tableau layout: m rows of [A | I | b], then the objective row
	// [-c | 0 | 0]. Column j < n is variable j; column n+i is slack i.
	//
	// The right-hand side gets a graded perturbation (the classic
	// lexicographic trick): program (2) instances are massively degenerate
	// (many zero-RHS flow-coupling rows), and unperturbed pivoting can
	// stall for hundreds of thousands of iterations. The perturbation must
	// exceed the pivot tolerance eps to actually break ties; at 1e-6·row
	// it shifts capacities by at most a few millionths of their scale,
	// well below the 1e-3 tolerances used by callers.
	const perturb = 1e-6
	width := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		row := make([]float64, width)
		copy(row, p.A[i])
		row[n+i] = 1
		row[width-1] = p.B[i] + perturb*float64(i+1)
		t[i] = row
	}
	obj := make([]float64, width)
	for j, c := range p.C {
		obj[j] = -c
	}
	t[m] = obj

	// basis[i] is the variable index basic in row i.
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Pivot selection: Dantzig's rule (most negative reduced cost) is fast
	// in practice but can cycle on degenerate problems; after blandAfter
	// pivots we switch to Bland's rule, which guarantees termination.
	blandAfter := 2 * (n + m)
	if blandAfter < 1000 {
		blandAfter = 1000
	}
	iter := 0
	for {
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < n+m; j++ {
				if t[m][j] < best {
					best = t[m][j]
					enter = j
				}
			}
		} else {
			for j := 0; j < n+m; j++ {
				if t[m][j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test; Bland tie-break on smallest basic variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a <= eps {
				continue
			}
			ratio := t[i][width-1] / a
			if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return nil, ErrUnbounded
		}
		pivot(t, leave, enter)
		basis[leave] = enter
		iter++
		if iter > maxIter {
			return nil, ErrIterationLimit
		}
	}

	x := make([]float64, n)
	for i, v := range basis {
		if v < n {
			x[v] = t[i][width-1]
		}
	}
	objective := 0.0
	for j, c := range p.C {
		objective += c * x[j]
	}
	return &Solution{X: x, Objective: objective, Iterations: iter}, nil
}

// pivot performs a Gauss–Jordan pivot on t[row][col].
func pivot(t [][]float64, row, col int) {
	width := len(t[row])
	p := t[row][col]
	inv := 1 / p
	for j := 0; j < width; j++ {
		t[row][j] *= inv
	}
	t[row][col] = 1 // kill residual rounding
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		ri, rp := t[i], t[row]
		for j := 0; j < width; j++ {
			ri[j] -= f * rp[j]
		}
		ri[col] = 0
	}
}

// Builder incrementally assembles a Problem from named variables and sparse
// constraint rows, which keeps the optimizer code readable.
type Builder struct {
	names  []string
	index  map[string]int
	obj    map[int]float64
	rows   []map[int]float64
	rhs    []float64
	labels []string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int), obj: make(map[int]float64)}
}

// Var returns the index of the named variable, creating it on first use.
func (b *Builder) Var(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// HasVar reports whether the named variable exists.
func (b *Builder) HasVar(name string) bool {
	_, ok := b.index[name]
	return ok
}

// NumVars returns the number of variables declared so far.
func (b *Builder) NumVars() int { return len(b.names) }

// Name returns the name of variable i.
func (b *Builder) Name(i int) string { return b.names[i] }

// SetObjective adds coeff to the objective coefficient of the variable.
func (b *Builder) SetObjective(name string, coeff float64) {
	b.obj[b.Var(name)] += coeff
}

// Constraint adds the row  Σ coeffs[name]·x_name ≤ rhs, tagged with a
// human-readable label for debugging.
func (b *Builder) Constraint(label string, coeffs map[string]float64, rhs float64) {
	row := make(map[int]float64, len(coeffs))
	for name, c := range coeffs {
		row[b.Var(name)] += c
	}
	b.rows = append(b.rows, row)
	b.rhs = append(b.rhs, rhs)
	b.labels = append(b.labels, label)
}

// NumConstraints returns the number of rows added.
func (b *Builder) NumConstraints() int { return len(b.rows) }

// Build materializes the dense Problem in canonical form: variables are
// reordered by name and rows by label. Callers assemble problems by ranging
// over Go maps, so without this the matrix layout — and, on degenerate
// optima, the exact vertex the simplex returns — varies run to run. The
// builder's own indices are permuted to match, so Name and Value stay valid
// after Build.
func (b *Builder) Build() Problem {
	b.canonicalize()
	n := len(b.names)
	c := make([]float64, n)
	for i, v := range b.obj {
		c[i] = v
	}
	a := make([][]float64, len(b.rows))
	for i, row := range b.rows {
		dense := make([]float64, n)
		for j, v := range row {
			dense[j] = v
		}
		a[i] = dense
	}
	return Problem{C: c, A: a, B: append([]float64(nil), b.rhs...)}
}

// canonicalize sorts variables by name and rows by label (stable, so rows
// sharing a label keep their insertion order), rewriting every index the
// builder holds. Idempotent.
func (b *Builder) canonicalize() {
	perm := make([]int, len(b.names))
	sorted := append([]string(nil), b.names...)
	sort.Strings(sorted)
	for newIdx, name := range sorted {
		perm[b.index[name]] = newIdx
	}
	b.names = sorted
	for name, old := range b.index {
		b.index[name] = perm[old]
	}
	obj := make(map[int]float64, len(b.obj))
	for i, v := range b.obj {
		obj[perm[i]] = v
	}
	b.obj = obj
	for r, row := range b.rows {
		remapped := make(map[int]float64, len(row))
		for i, v := range row {
			remapped[perm[i]] = v
		}
		b.rows[r] = remapped
	}

	order := make([]int, len(b.rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return b.labels[order[x]] < b.labels[order[y]] })
	rows := make([]map[int]float64, len(b.rows))
	rhs := make([]float64, len(b.rhs))
	labels := make([]string, len(b.labels))
	for newIdx, old := range order {
		rows[newIdx] = b.rows[old]
		rhs[newIdx] = b.rhs[old]
		labels[newIdx] = b.labels[old]
	}
	b.rows, b.rhs, b.labels = rows, rhs, labels
}

// Value extracts a named variable from a solution produced by solving a
// Build()-t problem; absent variables read as zero.
func (b *Builder) Value(s *Solution, name string) float64 {
	i, ok := b.index[name]
	if !ok || i >= len(s.X) {
		return 0
	}
	return s.X[i]
}
