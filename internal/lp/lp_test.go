package lp

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// approx tolerates the solver's anti-degeneracy perturbation (documented
// in the package comment: up to ~1e-4 of absolute slack).
func approx(a, b float64) bool { return math.Abs(a-b) < 1e-3 }

func TestSimple2D(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
	s, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 12) || !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Fatalf("got %+v", s)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// maximize x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
	s, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{2, 1}, {1, 2}},
		B: []float64{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 8.0/3) {
		t.Fatalf("objective = %v, want 8/3", s.Objective)
	}
	if !approx(s.X[0], 4.0/3) || !approx(s.X[1], 4.0/3) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestUnbounded(t *testing.T) {
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{1},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestZeroVariables(t *testing.T) {
	s, err := Solve(Problem{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Objective != 0 {
		t.Fatal("empty problem objective nonzero")
	}
}

func TestTrivialBound(t *testing.T) {
	// maximize x s.t. x <= 7.
	s, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.X[0], 7) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestNegativeRHSRejected(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}})
	if !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

func TestRaggedRowRejected(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1, 2}, A: [][]float64{{1}}, B: []float64{1}})
	if !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

func TestRHSLengthMismatch(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}})
	if !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

func TestNonFiniteRHSRejected(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.Inf(1)}})
	if !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

func TestIterationLimit(t *testing.T) {
	_, err := Solve(Problem{
		C:       []float64{1, 1, 1},
		A:       [][]float64{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}},
		B:       []float64{1, 1, 1},
		MaxIter: 1,
	})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
}

func TestDegenerateTermination(t *testing.T) {
	// A classic degenerate instance (Beale's cycling example shape);
	// Bland's rule must terminate.
	s, err := Solve(Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 0.05) {
		t.Fatalf("objective = %v, want 0.05", s.Objective)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Butterfly-like max-flow expressed as path LP: two edge-disjoint
	// paths of capacity 35 each -> 70.
	// Variables: f1 (path A), f2 (path B), shared bottleneck of 100.
	s, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{
			{1, 0}, // path A capacity
			{0, 1}, // path B capacity
			{1, 1}, // shared constraint
		},
		B: []float64{35, 35, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 70) {
		t.Fatalf("objective = %v, want 70", s.Objective)
	}
}

func TestRandomProblemsFeasibleOptimal(t *testing.T) {
	// For random problems with b >= 0, the solution must satisfy all
	// constraints and be at least as good as any random feasible point.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(5) + 2
		m := rng.Intn(6) + 2
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.Float64() * 2
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64() // non-negative => bounded
			}
			p.B[i] = rng.Float64() * 10
		}
		// Ensure boundedness: add sum(x) <= 100.
		ones := make([]float64, n)
		for j := range ones {
			ones[j] = 1
		}
		p.A = append(p.A, ones)
		p.B = append(p.B, 100)

		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, row := range p.A {
			lhs := 0.0
			for j, a := range row {
				lhs += a * s.X[j]
			}
			if lhs > p.B[i]+1e-3 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, p.B[i])
			}
		}
		for j, x := range s.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, x)
			}
		}
		// Compare against random feasible candidates (scaled to satisfy).
		for probe := 0; probe < 20; probe++ {
			cand := make([]float64, n)
			for j := range cand {
				cand[j] = rng.Float64()
			}
			// Scale down until feasible.
			for i, row := range p.A {
				lhs := 0.0
				for j, a := range row {
					lhs += a * cand[j]
				}
				if lhs > p.B[i] && lhs > 0 {
					f := p.B[i] / lhs
					for j := range cand {
						cand[j] *= f
					}
				}
			}
			val := 0.0
			for j, c := range p.C {
				val += c * cand[j]
			}
			if val > s.Objective+1e-3 {
				t.Fatalf("trial %d: found better feasible point %v > %v", trial, val, s.Objective)
			}
		}
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.SetObjective("x", 3)
	b.SetObjective("y", 2)
	b.Constraint("cap", map[string]float64{"x": 1, "y": 1}, 4)
	b.Constraint("mix", map[string]float64{"x": 1, "y": 3}, 6)
	if b.NumVars() != 2 || b.NumConstraints() != 2 {
		t.Fatalf("builder sizes %d, %d", b.NumVars(), b.NumConstraints())
	}
	if !b.HasVar("x") || b.HasVar("z") {
		t.Fatal("HasVar wrong")
	}
	if b.Name(b.Var("x")) != "x" {
		t.Fatal("Name round trip failed")
	}
	s, err := Solve(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Value(s, "x"), 4) || !approx(b.Value(s, "y"), 0) {
		t.Fatalf("x=%v y=%v", b.Value(s, "x"), b.Value(s, "y"))
	}
	if b.Value(s, "missing") != 0 {
		t.Fatal("missing variable should read zero")
	}
}

func TestBuildCanonicalOrder(t *testing.T) {
	// Callers assemble constraints by ranging over Go maps, so Build must
	// produce the same matrix no matter the declaration order: variables
	// sorted by name, rows sorted by label, indices rewritten to match.
	b := NewBuilder()
	b.Constraint("z-row", map[string]float64{"beta": 1, "alpha": 2}, 5)
	b.Constraint("a-row", map[string]float64{"gamma": 1}, 3)
	b.SetObjective("beta", 1)
	p := b.Build()
	for i, want := range []string{"alpha", "beta", "gamma"} {
		if b.Name(i) != want {
			t.Fatalf("Name(%d) = %q, want %q", i, b.Name(i), want)
		}
	}
	if p.B[0] != 3 || p.A[0][2] != 1 {
		t.Fatalf("row 0 not a-row: A=%v B=%v", p.A[0], p.B[0])
	}
	if p.B[1] != 5 || p.A[1][0] != 2 || p.A[1][1] != 1 {
		t.Fatalf("row 1 not z-row: A=%v B=%v", p.A[1], p.B[1])
	}
	if p.C[0] != 0 || p.C[1] != 1 {
		t.Fatalf("objective not permuted: %v", p.C)
	}
	// Value must follow the permuted indices.
	s := &Solution{X: []float64{10, 20, 30}}
	if b.Value(s, "beta") != 20 || b.Value(s, "gamma") != 30 {
		t.Fatalf("Value broken after canonicalize: beta=%v gamma=%v",
			b.Value(s, "beta"), b.Value(s, "gamma"))
	}
	// Idempotent: a second Build yields the identical problem.
	q := b.Build()
	if !reflect.DeepEqual(p, q) {
		t.Fatal("Build is not idempotent")
	}
}

func TestBuilderAccumulatesObjective(t *testing.T) {
	b := NewBuilder()
	b.SetObjective("x", 1)
	b.SetObjective("x", 2)
	b.Constraint("cap", map[string]float64{"x": 1}, 5)
	s, err := Solve(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 15) {
		t.Fatalf("objective = %v, want 15", s.Objective)
	}
}

func TestBuilderAccumulatesCoeffs(t *testing.T) {
	b := NewBuilder()
	b.SetObjective("x", 1)
	b.Constraint("double", map[string]float64{"x": 1}, 10)
	// Same variable twice in a row map is impossible with map literals,
	// but Constraint must tolerate later rows introducing new vars.
	b.Constraint("other", map[string]float64{"y": 1, "x": 1}, 3)
	s, err := Solve(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Value(s, "x"), 3) {
		t.Fatalf("x = %v, want 3", b.Value(s, "x"))
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, m := 50, 40
	p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	for j := range p.C {
		p.C[j] = rng.Float64()
	}
	for i := range p.A {
		p.A[i] = make([]float64, n)
		for j := range p.A[i] {
			p.A[i][j] = rng.Float64()
		}
		p.B[i] = 10 * rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
