package topology

import (
	"math"
	"time"
)

// MaxFlow computes the maximum s→t flow using the Ford–Fulkerson method
// with BFS augmenting paths (Edmonds–Karp), over the graph's link
// capacities in Mbps. The paper uses Ford–Fulkerson to obtain the
// theoretical maximum of 69.9 Mbps on the butterfly (Sec. V-B1).
func (g *Graph) MaxFlow(src, dst NodeID) float64 {
	if src == dst {
		return math.Inf(1)
	}
	// Residual capacities.
	res := make(map[[2]NodeID]float64, 2*len(g.links))
	adj := make(map[NodeID][]NodeID)
	addEdge := func(a, b NodeID) {
		for _, x := range adj[a] {
			if x == b {
				return
			}
		}
		adj[a] = append(adj[a], b)
	}
	for key, l := range g.links {
		res[key] += l.CapacityMbps
		addEdge(key[0], key[1])
		addEdge(key[1], key[0]) // reverse residual edge
	}

	total := 0.0
	for {
		// BFS for an augmenting path.
		parent := map[NodeID]NodeID{src: src}
		queue := []NodeID{src}
		for len(queue) > 0 && parent[dst] == "" {
			at := queue[0]
			queue = queue[1:]
			for _, nb := range adj[at] {
				if _, seen := parent[nb]; seen {
					continue
				}
				if res[[2]NodeID{at, nb}] <= 1e-12 {
					continue
				}
				parent[nb] = at
				if nb == dst {
					break
				}
				queue = append(queue, nb)
			}
		}
		if _, ok := parent[dst]; !ok {
			break
		}
		// Find bottleneck.
		bottleneck := math.Inf(1)
		for at := dst; at != src; at = parent[at] {
			c := res[[2]NodeID{parent[at], at}]
			if c < bottleneck {
				bottleneck = c
			}
		}
		// Apply.
		for at := dst; at != src; at = parent[at] {
			res[[2]NodeID{parent[at], at}] -= bottleneck
			res[[2]NodeID{at, parent[at]}] += bottleneck
		}
		total += bottleneck
	}
	return total
}

// MulticastCapacity returns the maximum multicast rate achievable with
// network coding from src to every destination: the minimum over
// destinations of the s→t max-flow (Ahlswede et al., the main theorem of
// network coding).
func (g *Graph) MulticastCapacity(src NodeID, dsts []NodeID) float64 {
	if len(dsts) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, d := range dsts {
		f := g.MaxFlow(src, d)
		if f < min {
			min = f
		}
	}
	return min
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// capacity (ties broken by lower delay), or false if dst is unreachable.
// This is the routing-only baseline's path selection: relay through data
// centers but never code.
func (g *Graph) WidestPath(src, dst NodeID) (Path, bool) {
	type state struct {
		width float64
		delay float64 // tie-break, in seconds
		prev  NodeID
		done  bool
	}
	states := map[NodeID]*state{src: {width: math.Inf(1)}}
	for {
		// Pick the undone node with the largest width.
		var at NodeID
		best := -1.0
		for id, st := range states {
			if !st.done && st.width > best {
				best = st.width
				at = id
			}
		}
		if best < 0 {
			break
		}
		st := states[at]
		st.done = true
		if at == dst {
			break
		}
		// Interior relays must be data centers (or the source itself).
		if at != src {
			if n, ok := g.nodes[at]; !ok || n.Kind != DataCenter {
				continue
			}
		}
		for _, l := range g.adj[at] {
			w := math.Min(st.width, l.CapacityMbps)
			d := st.delay + l.Delay.Seconds()
			nb, ok := states[l.To]
			if !ok {
				states[l.To] = &state{width: w, delay: d, prev: at}
				continue
			}
			if nb.done {
				continue
			}
			if w > nb.width || (w == nb.width && d < nb.delay) {
				nb.width, nb.delay, nb.prev = w, d, at
			}
		}
	}
	if _, ok := states[dst]; !ok {
		return Path{}, false
	}
	// Reconstruct.
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = states[at].prev
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, true
}

// Butterfly builds the paper's evaluation topology (Fig. 6): source V1 in
// Virginia, relays O1, C1 (Oregon, California), middle relays T (Texas) and
// V2 (Virginia), and receivers O2 (Oregon) and C2 (California), with the
// link capacities (Mbps) labelled in the figure. The T→V2 link is the
// bottleneck that network coding circumvents.
//
// Link capacities follow the classic butterfly structure scaled so the
// multicast capacity (min of the two max-flows) is ~69.9 Mbps as measured
// in the paper: each "side" link carries ~35 Mbps and the middle link
// carries ~35 Mbps.
func Butterfly() (*Graph, NodeID, []NodeID) {
	g := New()
	g.AddNode("V1", Source)
	g.AddNode("O1", DataCenter)
	g.AddNode("C1", DataCenter)
	g.AddNode("T", DataCenter)
	g.AddNode("V2", DataCenter)
	g.AddNode("O2", Destination)
	g.AddNode("C2", Destination)

	// Delays modeled on the paper's Table II ping measurements: V1→O2
	// direct ~90.9 ms RTT, V1→C2 ~77.0 ms RTT; relay hops sum to ~168 ms
	// RTT. One-way delays are half the RTT.
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	links := []Link{
		{From: "V1", To: "O1", CapacityMbps: 35, Delay: ms(18)},
		{From: "V1", To: "C1", CapacityMbps: 35, Delay: ms(18)},
		{From: "O1", To: "O2", CapacityMbps: 35, Delay: ms(15)},
		{From: "O1", To: "T", CapacityMbps: 35, Delay: ms(12)},
		{From: "C1", To: "C2", CapacityMbps: 35, Delay: ms(15)},
		{From: "C1", To: "T", CapacityMbps: 35, Delay: ms(12)},
		{From: "T", To: "V2", CapacityMbps: 35, Delay: ms(12)},
		{From: "V2", To: "O2", CapacityMbps: 35, Delay: ms(15)},
		{From: "V2", To: "C2", CapacityMbps: 35, Delay: ms(15)},
	}
	for _, l := range links {
		if err := g.AddLink(l); err != nil {
			// Nodes were just added; an error here is a programming bug.
			panic(err)
		}
	}
	return g, "V1", []NodeID{"O2", "C2"}
}

// AddButterflyDirectLinks adds the direct source→receiver Internet paths
// used by the "Direct TCP" baseline of Fig. 7: longer one-way delay
// (half the direct ping RTTs of Table II: 90.9 ms and 77.0 ms) and modest
// bandwidth — the case where "direct connections do not provide good
// bandwidth" (Sec. V-B1).
func AddButterflyDirectLinks(g *Graph) {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	for _, l := range []Link{
		{From: "V1", To: "O2", CapacityMbps: 20, Delay: ms(45.4)},
		{From: "V1", To: "C2", CapacityMbps: 20, Delay: ms(38.5)},
	} {
		if err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
}

// ShortestDelayPath returns the minimum-total-delay path from src to dst
// (Dijkstra), with interior hops restricted to data centers, or false if
// dst is unreachable. The controller uses it to seed delay estimates and
// the examples use it to report best-case latency.
func (g *Graph) ShortestDelayPath(src, dst NodeID) (Path, time.Duration, bool) {
	type state struct {
		delay time.Duration
		prev  NodeID
		done  bool
	}
	const inf = time.Duration(1<<62 - 1)
	states := map[NodeID]*state{src: {}}
	for {
		var at NodeID
		best := inf
		for id, st := range states {
			if !st.done && st.delay < best {
				best = st.delay
				at = id
			}
		}
		if best == inf {
			break
		}
		st := states[at]
		st.done = true
		if at == dst {
			break
		}
		if at != src {
			if n, ok := g.nodes[at]; !ok || n.Kind != DataCenter {
				continue
			}
		}
		for _, l := range g.adj[at] {
			d := st.delay + l.Delay
			nb, ok := states[l.To]
			if !ok {
				states[l.To] = &state{delay: d, prev: at}
				continue
			}
			if nb.done {
				continue
			}
			if d < nb.delay {
				nb.delay, nb.prev = d, at
			}
		}
	}
	st, ok := states[dst]
	if !ok {
		return Path{}, 0, false
	}
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = states[at].prev
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, st.delay, true
}
