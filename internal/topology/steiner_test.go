package topology

import (
	"math"
	"testing"
)

func TestMulticastTreesButterfly(t *testing.T) {
	g, src, dsts := Butterfly()
	trees := g.MulticastTrees(src, dsts, 0)
	if len(trees) == 0 {
		t.Fatal("no multicast trees on the butterfly")
	}
	// Every tree must reach both receivers from the source over existing
	// links.
	for _, tree := range trees {
		parent := map[NodeID]NodeID{}
		for _, e := range tree.Edges {
			if _, ok := g.Link(e[0], e[1]); !ok {
				t.Fatalf("tree uses missing link %v", e)
			}
			if _, dup := parent[e[1]]; dup {
				t.Fatalf("node %s has two parents", e[1])
			}
			parent[e[1]] = e[0]
		}
		for _, d := range dsts {
			at := d
			for steps := 0; at != src; steps++ {
				if steps > len(tree.Edges) {
					t.Fatalf("receiver %s not connected to source in %v", d, tree.Edges)
				}
				at = parent[at]
			}
		}
	}
}

func TestMulticastTreesNoDuplicates(t *testing.T) {
	g, src, dsts := Butterfly()
	trees := g.MulticastTrees(src, dsts, 0)
	seen := map[string]bool{}
	for _, tree := range trees {
		key := ""
		for _, e := range tree.Edges {
			key += string(e[0]) + ">" + string(e[1]) + ";"
		}
		if seen[key] {
			t.Fatalf("duplicate tree: %s", key)
		}
		seen[key] = true
	}
}

func TestMulticastTreesLimit(t *testing.T) {
	g, src, dsts := Butterfly()
	trees := g.MulticastTrees(src, dsts, 3)
	if len(trees) > 3 {
		t.Fatalf("limit ignored: %d trees", len(trees))
	}
}

func TestRoutingMulticastCapacityButterfly(t *testing.T) {
	// The classic result: routing-only multicast on the butterfly packs
	// 1.5 trees of capacity 35 = 52.5 Mbps, versus coding's 70.
	g, src, dsts := Butterfly()
	rate, trees, err := g.RoutingMulticastCapacity(src, dsts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trees == 0 {
		t.Fatal("no trees considered")
	}
	if math.Abs(rate-52.5) > 0.1 {
		t.Fatalf("routing capacity = %v, want 52.5", rate)
	}
	if coding := g.MulticastCapacity(src, dsts); rate >= coding {
		t.Fatalf("routing %v should be strictly below coding %v", rate, coding)
	}
}

func TestRoutingMulticastCapacityUnicast(t *testing.T) {
	// With a single receiver, routing equals the max-flow (trees = paths).
	g, src, _ := Butterfly()
	rate, _, err := g.RoutingMulticastCapacity(src, []NodeID{"O2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-70) > 0.1 {
		t.Fatalf("unicast routing capacity = %v, want 70 (max-flow)", rate)
	}
}

func TestRoutingMulticastCapacityDisconnected(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("d", Destination)
	rate, trees, err := g.RoutingMulticastCapacity("s", []NodeID{"d"}, 0)
	if err != nil || rate != 0 || trees != 0 {
		t.Fatalf("disconnected: %v %v %v", rate, trees, err)
	}
}

func BenchmarkRoutingCapacityButterfly(b *testing.B) {
	g, src, dsts := Butterfly()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.RoutingMulticastCapacity(src, dsts, 0); err != nil {
			b.Fatal(err)
		}
	}
}
