package topology

import (
	"math"
	"testing"
	"time"
)

func ms(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

func TestAddNodeAndLink(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	if err := g.AddLink(Link{From: "a", To: "b", CapacityMbps: 10, Delay: ms(5)}); err != nil {
		t.Fatal(err)
	}
	l, ok := g.Link("a", "b")
	if !ok || l.CapacityMbps != 10 {
		t.Fatalf("Link = %+v, %v", l, ok)
	}
	if _, ok := g.Link("b", "a"); ok {
		t.Fatal("reverse link should not exist")
	}
}

func TestAddLinkUnknownNode(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	if err := g.AddLink(Link{From: "a", To: "nope"}); err == nil {
		t.Fatal("link to unknown node accepted")
	}
	if err := g.AddLink(Link{From: "nope", To: "a"}); err == nil {
		t.Fatal("link from unknown node accepted")
	}
}

func TestAddLinkReplaces(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	g.AddLink(Link{From: "a", To: "b", CapacityMbps: 10})
	g.AddLink(Link{From: "a", To: "b", CapacityMbps: 99})
	l, _ := g.Link("a", "b")
	if l.CapacityMbps != 99 {
		t.Fatal("AddLink did not replace")
	}
	if len(g.OutLinks("a")) != 1 {
		t.Fatal("duplicate adjacency entry")
	}
}

func TestNodesSortedAndKinds(t *testing.T) {
	g := New()
	g.AddNode("z", Destination)
	g.AddNode("a", Source)
	g.AddNode("m", DataCenter)
	nodes := g.Nodes()
	if nodes[0].ID != "a" || nodes[2].ID != "z" {
		t.Fatal("Nodes not sorted")
	}
	if len(g.NodesOfKind(DataCenter)) != 1 {
		t.Fatal("NodesOfKind wrong")
	}
}

func TestNodeKindString(t *testing.T) {
	if Source.String() != "source" || DataCenter.String() != "datacenter" ||
		Destination.String() != "destination" || NodeKind(0).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestSetCapacityAndDelay(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	g.AddLink(Link{From: "a", To: "b", CapacityMbps: 10, Delay: ms(1)})
	if err := g.SetCapacity("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDelay("a", "b", ms(9)); err != nil {
		t.Fatal(err)
	}
	l, _ := g.Link("a", "b")
	if l.CapacityMbps != 5 || l.Delay != ms(9) {
		t.Fatalf("updates lost: %+v", l)
	}
	if err := g.SetCapacity("x", "y", 1); err == nil {
		t.Fatal("missing link accepted")
	}
	if err := g.SetDelay("x", "y", 0); err == nil {
		t.Fatal("missing link accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _, _ := Butterfly()
	c := g.Clone()
	c.SetCapacity("V1", "O1", 1)
	l, _ := g.Link("V1", "O1")
	if l.CapacityMbps == 1 {
		t.Fatal("Clone shares link storage")
	}
	if len(c.Nodes()) != len(g.Nodes()) || len(c.Links()) != len(g.Links()) {
		t.Fatal("Clone incomplete")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{Nodes: []NodeID{"a", "b", "c"}}
	if p.String() != "a->b->c" {
		t.Fatalf("String = %s", p)
	}
	if p.Hops() != 2 {
		t.Fatalf("Hops = %d", p.Hops())
	}
	if !p.Contains("a", "b") || p.Contains("b", "a") || p.Contains("a", "c") {
		t.Fatal("Contains wrong")
	}
	if (Path{}).Hops() != 0 {
		t.Fatal("empty path hops")
	}
	edges := p.Edges()
	if len(edges) != 2 || edges[0] != [2]NodeID{"a", "b"} {
		t.Fatal("Edges wrong")
	}
}

func TestPathDelayAndBottleneck(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", DataCenter)
	g.AddNode("c", Destination)
	g.AddLink(Link{From: "a", To: "b", CapacityMbps: 10, Delay: ms(5)})
	g.AddLink(Link{From: "b", To: "c", CapacityMbps: 4, Delay: ms(7)})
	p := Path{Nodes: []NodeID{"a", "b", "c"}}
	d, err := p.Delay(g)
	if err != nil || d != ms(12) {
		t.Fatalf("Delay = %v, %v", d, err)
	}
	bw, err := p.Bottleneck(g)
	if err != nil || bw != 4 {
		t.Fatalf("Bottleneck = %v, %v", bw, err)
	}
	bad := Path{Nodes: []NodeID{"a", "c"}}
	if _, err := bad.Delay(g); err == nil {
		t.Fatal("missing link not reported")
	}
	if _, err := bad.Bottleneck(g); err == nil {
		t.Fatal("missing link not reported")
	}
}

func TestFeasiblePathsButterfly(t *testing.T) {
	g, src, dsts := Butterfly()
	paths := g.FeasiblePaths(src, dsts[0], 150*time.Millisecond)
	if len(paths) == 0 {
		t.Fatal("no feasible paths on butterfly")
	}
	// Expected routes to O2: V1-O1-O2 and V1-C1-T-V2-O2 (plus no others
	// within the butterfly given interior-DC restriction).
	want := map[string]bool{
		"V1->O1->O2":        false,
		"V1->C1->T->V2->O2": false,
	}
	for _, p := range paths {
		if _, ok := want[p.String()]; ok {
			want[p.String()] = true
		}
		// Validate delay bound and acyclicity.
		d, err := p.Delay(g)
		if err != nil {
			t.Fatal(err)
		}
		if d > 150*time.Millisecond {
			t.Fatalf("path %s exceeds delay bound: %v", p, d)
		}
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("path %s has a cycle", p)
			}
			seen[n] = true
		}
	}
	for k, found := range want {
		if !found {
			t.Fatalf("expected path %s not enumerated (got %v)", k, paths)
		}
	}
}

func TestFeasiblePathsRespectDelayBound(t *testing.T) {
	g, src, dsts := Butterfly()
	// The 5-hop path has delay 18+12+12+15 = 57ms; bound below that.
	paths := g.FeasiblePaths(src, dsts[0], 40*time.Millisecond)
	for _, p := range paths {
		if p.Hops() > 2 {
			t.Fatalf("long path %s survived a 40ms bound", p)
		}
	}
}

func TestFeasiblePathsIncludeDirect(t *testing.T) {
	g, src, dsts := Butterfly()
	AddButterflyDirectLinks(g)
	paths := g.FeasiblePaths(src, dsts[0], 150*time.Millisecond)
	foundDirect := false
	for _, p := range paths {
		if p.Hops() == 1 {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Fatal("direct path missing from feasible set")
	}
}

func TestFeasiblePathsSortedByDelay(t *testing.T) {
	g, src, dsts := Butterfly()
	paths := g.FeasiblePaths(src, dsts[0], time.Second)
	var prev time.Duration = -1
	for _, p := range paths {
		d, _ := p.Delay(g)
		if d < prev {
			t.Fatal("paths not sorted by delay")
		}
		prev = d
	}
}

func TestFeasiblePathsInteriorMustBeDataCenter(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("r1", Destination)
	g.AddNode("r2", Destination)
	g.AddLink(Link{From: "s", To: "r1", Delay: ms(1)})
	g.AddLink(Link{From: "r1", To: "r2", Delay: ms(1)})
	// r1 is a destination, not a DC: s->r1->r2 must be rejected.
	if paths := g.FeasiblePaths("s", "r2", time.Second); len(paths) != 0 {
		t.Fatalf("path through destination allowed: %v", paths)
	}
}

func TestMaxFlowButterfly(t *testing.T) {
	g, src, dsts := Butterfly()
	for _, d := range dsts {
		f := g.MaxFlow(src, NodeID(d))
		if math.Abs(f-70) > 1e-9 {
			t.Fatalf("MaxFlow(%s->%s) = %v, want 70", src, d, f)
		}
	}
}

func TestMulticastCapacityButterfly(t *testing.T) {
	g, src, dsts := Butterfly()
	// The paper's theoretical maximum is 69.9 Mbps on their measured
	// butterfly; our idealized capacities give exactly 70.
	if c := g.MulticastCapacity(src, dsts); math.Abs(c-70) > 1e-9 {
		t.Fatalf("MulticastCapacity = %v, want 70", c)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	if f := g.MaxFlow("a", "b"); f != 0 {
		t.Fatalf("MaxFlow disconnected = %v", f)
	}
}

func TestMaxFlowSelf(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	if !math.IsInf(g.MaxFlow("a", "a"), 1) {
		t.Fatal("self max-flow should be infinite")
	}
}

func TestMaxFlowSimpleChain(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", DataCenter)
	g.AddNode("c", Destination)
	g.AddLink(Link{From: "a", To: "b", CapacityMbps: 10})
	g.AddLink(Link{From: "b", To: "c", CapacityMbps: 3})
	if f := g.MaxFlow("a", "c"); math.Abs(f-3) > 1e-9 {
		t.Fatalf("chain MaxFlow = %v, want 3", f)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("x", DataCenter)
	g.AddNode("y", DataCenter)
	g.AddNode("t", Destination)
	g.AddLink(Link{From: "s", To: "x", CapacityMbps: 5})
	g.AddLink(Link{From: "s", To: "y", CapacityMbps: 7})
	g.AddLink(Link{From: "x", To: "t", CapacityMbps: 4})
	g.AddLink(Link{From: "y", To: "t", CapacityMbps: 9})
	if f := g.MaxFlow("s", "t"); math.Abs(f-11) > 1e-9 {
		t.Fatalf("parallel MaxFlow = %v, want 11", f)
	}
}

func TestMulticastCapacityEmpty(t *testing.T) {
	g, src, _ := Butterfly()
	if c := g.MulticastCapacity(src, nil); c != 0 {
		t.Fatalf("capacity with no receivers = %v", c)
	}
}

func TestWidestPathButterfly(t *testing.T) {
	g, src, dsts := Butterfly()
	p, ok := g.WidestPath(src, dsts[0])
	if !ok {
		t.Fatal("no widest path")
	}
	bw, _ := p.Bottleneck(g)
	if bw != 35 {
		t.Fatalf("widest path bottleneck = %v, want 35 (%s)", bw, p)
	}
	// With equal widths the shorter-delay route must win.
	if p.String() != "V1->O1->O2" {
		t.Fatalf("widest path = %s, want V1->O1->O2", p)
	}
}

func TestWidestPathPrefersCapacity(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("m", DataCenter)
	g.AddNode("t", Destination)
	g.AddLink(Link{From: "s", To: "t", CapacityMbps: 5, Delay: ms(1)})
	g.AddLink(Link{From: "s", To: "m", CapacityMbps: 50, Delay: ms(10)})
	g.AddLink(Link{From: "m", To: "t", CapacityMbps: 50, Delay: ms(10)})
	p, ok := g.WidestPath("s", "t")
	if !ok || p.String() != "s->m->t" {
		t.Fatalf("widest = %v %v, want s->m->t", p, ok)
	}
}

func TestWidestPathUnreachable(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	if _, ok := g.WidestPath("a", "b"); ok {
		t.Fatal("unreachable destination found")
	}
}

func TestWidestPathAvoidsNonDCRelay(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("r", Destination)
	g.AddNode("t", Destination)
	g.AddLink(Link{From: "s", To: "r", CapacityMbps: 100, Delay: ms(1)})
	g.AddLink(Link{From: "r", To: "t", CapacityMbps: 100, Delay: ms(1)})
	g.AddLink(Link{From: "s", To: "t", CapacityMbps: 1, Delay: ms(1)})
	p, ok := g.WidestPath("s", "t")
	if !ok {
		t.Fatal("no path")
	}
	if p.String() != "s->t" {
		t.Fatalf("relay through destination used: %s", p)
	}
}

func TestButterflyStructure(t *testing.T) {
	g, src, dsts := Butterfly()
	if src != "V1" || len(dsts) != 2 {
		t.Fatal("unexpected butterfly endpoints")
	}
	if len(g.Nodes()) != 7 {
		t.Fatalf("butterfly has %d nodes, want 7", len(g.Nodes()))
	}
	if len(g.Links()) != 9 {
		t.Fatalf("butterfly has %d links, want 9", len(g.Links()))
	}
	if n, _ := g.Node("T"); n.Kind != DataCenter {
		t.Fatal("T should be a data center")
	}
}

func BenchmarkFeasiblePathsButterfly(b *testing.B) {
	g, src, dsts := Butterfly()
	AddButterflyDirectLinks(g)
	for i := 0; i < b.N; i++ {
		g.FeasiblePaths(src, dsts[0], 150*time.Millisecond)
	}
}

func BenchmarkMaxFlowButterfly(b *testing.B) {
	g, src, dsts := Butterfly()
	for i := 0; i < b.N; i++ {
		g.MaxFlow(src, dsts[0])
	}
}

func TestShortestDelayPathButterfly(t *testing.T) {
	g, src, _ := Butterfly()
	p, d, ok := g.ShortestDelayPath(src, "O2")
	if !ok {
		t.Fatal("no path")
	}
	if p.String() != "V1->O1->O2" {
		t.Fatalf("shortest = %s", p)
	}
	if d != 33*time.Millisecond {
		t.Fatalf("delay = %v, want 33ms", d)
	}
	// Consistency with Path.Delay.
	pd, err := p.Delay(g)
	if err != nil || pd != d {
		t.Fatalf("Path.Delay = %v, %v", pd, err)
	}
}

func TestShortestDelayPathUnreachable(t *testing.T) {
	g := New()
	g.AddNode("a", Source)
	g.AddNode("b", Destination)
	if _, _, ok := g.ShortestDelayPath("a", "b"); ok {
		t.Fatal("unreachable found")
	}
}

func TestShortestDelayPathAvoidsNonDCRelay(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("r", Destination)
	g.AddNode("t", Destination)
	g.AddLink(Link{From: "s", To: "r", Delay: ms(1)})
	g.AddLink(Link{From: "r", To: "t", Delay: ms(1)})
	g.AddLink(Link{From: "s", To: "t", Delay: ms(50)})
	p, _, ok := g.ShortestDelayPath("s", "t")
	if !ok || p.String() != "s->t" {
		t.Fatalf("path through destination allowed: %v %v", p, ok)
	}
}

func TestShortestDelayPrefersFasterRelay(t *testing.T) {
	g := New()
	g.AddNode("s", Source)
	g.AddNode("m", DataCenter)
	g.AddNode("t", Destination)
	g.AddLink(Link{From: "s", To: "t", Delay: ms(50)})
	g.AddLink(Link{From: "s", To: "m", Delay: ms(10)})
	g.AddLink(Link{From: "m", To: "t", Delay: ms(10)})
	p, d, ok := g.ShortestDelayPath("s", "t")
	if !ok || p.String() != "s->m->t" || d != ms(20) {
		t.Fatalf("shortest = %v (%v)", p, d)
	}
}
