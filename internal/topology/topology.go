// Package topology models the overlay graph of Sec. IV-A: sources,
// candidate data centers, and destinations, joined by directed links with
// capacity (Mbps) and delay. It provides the primitives the optimizer and
// baselines need:
//
//   - delay-bounded feasible-path enumeration via the paper's modified DFS
//     ("the DFS continues to search for paths ... as long as the path
//     currently obtained has a delay smaller than Lmax and has no cycles"),
//   - Ford–Fulkerson max-flow, used to compute the theoretical maximum
//     multicast rate (the min over receivers of the s→t max-flow equals the
//     multicast capacity with network coding),
//   - Dijkstra shortest/widest paths for the routing-only baseline.
package topology

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// NodeKind classifies graph nodes.
type NodeKind int

// Node kinds.
const (
	Source NodeKind = iota + 1
	DataCenter
	Destination
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case Source:
		return "source"
	case DataCenter:
		return "datacenter"
	case Destination:
		return "destination"
	default:
		return "unknown"
	}
}

// NodeID names a node ("V1", "oregon", "recv-2", ...).
type NodeID string

// Node is a vertex of the overlay graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
}

// Link is a directed edge with capacity and propagation delay.
type Link struct {
	From, To NodeID
	// CapacityMbps is the link's available bandwidth in Mbps.
	CapacityMbps float64
	// Delay is the one-way latency.
	Delay time.Duration
}

// Key returns the (from,to) pair identifying the link.
func (l Link) Key() [2]NodeID { return [2]NodeID{l.From, l.To} }

// Graph is a directed overlay graph. The zero value is unusable; call New.
type Graph struct {
	nodes map[NodeID]Node
	links map[[2]NodeID]*Link
	// adj caches out-edges per node for traversal.
	adj map[NodeID][]*Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]Node),
		links: make(map[[2]NodeID]*Link),
		adj:   make(map[NodeID][]*Link),
	}
}

// AddNode inserts (or overwrites) a node.
func (g *Graph) AddNode(id NodeID, kind NodeKind) {
	g.nodes[id] = Node{ID: id, Kind: kind}
}

// AddLink inserts or replaces a directed link.
func (g *Graph) AddLink(l Link) error {
	if _, ok := g.nodes[l.From]; !ok {
		return fmt.Errorf("topology: unknown node %q", l.From)
	}
	if _, ok := g.nodes[l.To]; !ok {
		return fmt.Errorf("topology: unknown node %q", l.To)
	}
	key := l.Key()
	if old, ok := g.links[key]; ok {
		*old = l
		return nil
	}
	lp := &l
	g.links[key] = lp
	g.adj[l.From] = append(g.adj[l.From], lp)
	return nil
}

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes, sorted by ID for determinism.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOfKind returns the sorted nodes of one kind.
func (g *Graph) NodesOfKind(kind NodeKind) []Node {
	var out []Node
	for _, n := range g.Nodes() {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// Link returns the directed link from→to.
func (g *Graph) Link(from, to NodeID) (Link, bool) {
	l, ok := g.links[[2]NodeID{from, to}]
	if !ok {
		return Link{}, false
	}
	return *l, true
}

// Links returns all links, sorted for determinism.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// OutLinks returns the out-edges of a node (shared order with insertion).
func (g *Graph) OutLinks(id NodeID) []Link {
	ls := g.adj[id]
	out := make([]Link, len(ls))
	for i, l := range ls {
		out[i] = *l
	}
	return out
}

// SetCapacity updates a link's capacity in place (bandwidth variation).
func (g *Graph) SetCapacity(from, to NodeID, mbps float64) error {
	l, ok := g.links[[2]NodeID{from, to}]
	if !ok {
		return fmt.Errorf("topology: no link %s->%s", from, to)
	}
	l.CapacityMbps = mbps
	return nil
}

// SetDelay updates a link's delay in place (delay variation).
func (g *Graph) SetDelay(from, to NodeID, d time.Duration) error {
	l, ok := g.links[[2]NodeID{from, to}]
	if !ok {
		return fmt.Errorf("topology: no link %s->%s", from, to)
	}
	l.Delay = d
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, n := range g.nodes {
		c.nodes[id] = n
	}
	for _, l := range g.links {
		cp := *l
		c.links[cp.Key()] = &cp
		c.adj[cp.From] = append(c.adj[cp.From], &cp)
	}
	return c
}

// Path is a loop-free node sequence from a source to a destination.
type Path struct {
	Nodes []NodeID
}

// String renders "a->b->c".
func (p Path) String() string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += "->"
		}
		s += string(n)
	}
	return s
}

// Hops returns the number of links on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Edges returns the (from,to) pairs along the path.
func (p Path) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, p.Hops())
	for i := 0; i+1 < len(p.Nodes); i++ {
		out = append(out, [2]NodeID{p.Nodes[i], p.Nodes[i+1]})
	}
	return out
}

// Contains reports whether the path traverses the directed edge.
func (p Path) Contains(from, to NodeID) bool {
	for i := 0; i+1 < len(p.Nodes); i++ {
		if p.Nodes[i] == from && p.Nodes[i+1] == to {
			return true
		}
	}
	return false
}

// Delay sums the link delays along the path in g. It returns an error if a
// link is missing.
func (p Path) Delay(g *Graph) (time.Duration, error) {
	var total time.Duration
	for _, e := range p.Edges() {
		l, ok := g.Link(e[0], e[1])
		if !ok {
			return 0, fmt.Errorf("topology: path uses missing link %s->%s", e[0], e[1])
		}
		total += l.Delay
	}
	return total, nil
}

// Bottleneck returns the minimum link capacity along the path.
func (p Path) Bottleneck(g *Graph) (float64, error) {
	min := math.Inf(1)
	for _, e := range p.Edges() {
		l, ok := g.Link(e[0], e[1])
		if !ok {
			return 0, fmt.Errorf("topology: path uses missing link %s->%s", e[0], e[1])
		}
		if l.CapacityMbps < min {
			min = l.CapacityMbps
		}
	}
	if math.IsInf(min, 1) {
		return 0, nil
	}
	return min, nil
}

// FeasiblePaths enumerates all cycle-free paths from src to dst whose total
// delay is at most maxDelay, using the paper's modified DFS. Interior nodes
// are restricted to data centers (flows are only relayed through coding
// VNFs). Paths are returned sorted by delay then lexicographically. The
// direct src→dst link, when present and within the delay bound, is included.
func (g *Graph) FeasiblePaths(src, dst NodeID, maxDelay time.Duration) []Path {
	return g.FeasiblePathsMaxHops(src, dst, maxDelay, len(g.nodes))
}

// FeasiblePathsMaxHops is FeasiblePaths with an additional bound on the
// number of links per path, which keeps the conceptual-flow LP tractable in
// dense topologies (the optimizer's default is 3 hops = 2 coding relays).
func (g *Graph) FeasiblePathsMaxHops(src, dst NodeID, maxDelay time.Duration, maxHops int) []Path {
	var out []Path
	visited := map[NodeID]bool{src: true}
	stack := []NodeID{src}

	var dfs func(at NodeID, delay time.Duration)
	dfs = func(at NodeID, delay time.Duration) {
		if len(stack) > maxHops {
			return
		}
		for _, l := range g.adj[at] {
			next := l.To
			nd := delay + l.Delay
			if nd > maxDelay || visited[next] {
				continue
			}
			if next == dst {
				path := make([]NodeID, len(stack)+1)
				copy(path, stack)
				path[len(stack)] = dst
				out = append(out, Path{Nodes: path})
				continue
			}
			// Interior hops must be data centers hosting coding VNFs.
			if n, ok := g.nodes[next]; !ok || n.Kind != DataCenter {
				continue
			}
			visited[next] = true
			stack = append(stack, next)
			dfs(next, nd)
			stack = stack[:len(stack)-1]
			visited[next] = false
		}
	}
	dfs(src, 0)

	sort.Slice(out, func(i, j int) bool {
		di, _ := out[i].Delay(g)
		dj, _ := out[j].Delay(g)
		if di != dj {
			return di < dj
		}
		return out[i].String() < out[j].String()
	})
	return out
}
