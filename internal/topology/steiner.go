package topology

import (
	"fmt"
	"sort"

	"ncfn/internal/lp"
)

// This file implements the routing-only multicast bound: fractional
// packing of multicast (Steiner) trees. Without network coding, a multicast
// session's maximum rate equals the maximum fractional tree packing, which
// on the classic butterfly is 1.5·c versus coding's 2·c (52.5 vs 70 Mbps at
// 35 Mbps links) — the gap Fig. 7 demonstrates. The enumeration is
// exponential and intended for small overlays (the evaluation topologies);
// MaxTrees caps the work.

// Tree is one multicast tree: an arborescence rooted at the source whose
// leaves are terminals.
type Tree struct {
	Edges [][2]NodeID
}

// contains reports whether the tree uses the directed edge.
func (t Tree) contains(e [2]NodeID) bool {
	for _, have := range t.Edges {
		if have == e {
			return true
		}
	}
	return false
}

// MulticastTrees enumerates multicast trees from src covering every node in
// dsts. Interior nodes are restricted to data centers. Every included data
// center must have at least one child (no dangling relays), which also
// makes the enumeration duplicate-free: each tree is produced exactly once,
// from the relay subset it actually uses. Enumeration stops after maxTrees
// trees (0 = no cap).
func (g *Graph) MulticastTrees(src NodeID, dsts []NodeID, maxTrees int) []Tree {
	dcs := g.NodesOfKind(DataCenter)
	var trees []Tree

	// Iterate over subsets of data centers to include as relays.
	nDC := len(dcs)
	for mask := 0; mask < 1<<nDC; mask++ {
		if maxTrees > 0 && len(trees) >= maxTrees {
			break
		}
		nodes := []NodeID{}
		for i, dc := range dcs {
			if mask&(1<<i) != 0 {
				nodes = append(nodes, dc.ID)
			}
		}
		nodes = append(nodes, dsts...)
		inSet := map[NodeID]bool{src: true}
		for _, n := range nodes {
			inSet[n] = true
		}
		// Candidate parents per node: in-neighbors within the set.
		parents := make([][]NodeID, len(nodes))
		feasible := true
		for i, n := range nodes {
			for _, l := range g.Links() {
				if l.To == n && inSet[l.From] && l.From != n {
					parents[i] = append(parents[i], l.From)
				}
			}
			if len(parents[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		// Enumerate parent assignments.
		choice := make([]int, len(nodes))
		var rec func(i int)
		rec = func(i int) {
			if maxTrees > 0 && len(trees) >= maxTrees {
				return
			}
			if i == len(nodes) {
				if t, ok := g.buildTree(src, nodes, parents, choice, mask, dcs, dsts); ok {
					trees = append(trees, t)
				}
				return
			}
			for c := range parents[i] {
				choice[i] = c
				rec(i + 1)
			}
		}
		rec(0)
	}
	return trees
}

// buildTree validates one parent assignment: connected to src (hence
// acyclic), and every selected relay has a child.
func (g *Graph) buildTree(src NodeID, nodes []NodeID, parents [][]NodeID, choice []int, mask int, dcs []Node, dsts []NodeID) (Tree, bool) {
	parentOf := make(map[NodeID]NodeID, len(nodes))
	for i, n := range nodes {
		parentOf[n] = parents[i][choice[i]]
	}
	// Reachability: walk each node's parent chain to src, detecting loops.
	for _, n := range nodes {
		seen := map[NodeID]bool{}
		at := n
		for at != src {
			if seen[at] {
				return Tree{}, false // cycle
			}
			seen[at] = true
			p, ok := parentOf[at]
			if !ok {
				return Tree{}, false
			}
			at = p
		}
	}
	// Every selected relay must have a child.
	childCount := map[NodeID]int{}
	for _, n := range nodes {
		childCount[parentOf[n]]++
	}
	for i, dc := range dcs {
		if mask&(1<<i) != 0 && childCount[dc.ID] == 0 {
			return Tree{}, false
		}
	}
	t := Tree{Edges: make([][2]NodeID, 0, len(nodes))}
	for _, n := range nodes {
		t.Edges = append(t.Edges, [2]NodeID{parentOf[n], n})
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i][0] != t.Edges[j][0] {
			return t.Edges[i][0] < t.Edges[j][0]
		}
		return t.Edges[i][1] < t.Edges[j][1]
	})
	_ = dsts
	return t, true
}

// RoutingMulticastCapacity returns the maximum multicast rate achievable by
// store-and-forward routing alone (no coding): the optimal fractional
// packing of multicast trees subject to link capacities. maxTrees caps the
// enumeration (0 = no cap). It returns the rate and the number of trees
// considered.
func (g *Graph) RoutingMulticastCapacity(src NodeID, dsts []NodeID, maxTrees int) (float64, int, error) {
	trees := g.MulticastTrees(src, dsts, maxTrees)
	if len(trees) == 0 {
		return 0, 0, nil
	}
	b := lp.NewBuilder()
	for i := range trees {
		b.SetObjective(fmt.Sprintf("x[%d]", i), 1)
	}
	for _, l := range g.Links() {
		if l.CapacityMbps <= 0 {
			continue // unconstrained
		}
		coeffs := map[string]float64{}
		e := [2]NodeID{l.From, l.To}
		for i, t := range trees {
			if t.contains(e) {
				coeffs[fmt.Sprintf("x[%d]", i)] = 1
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		b.Constraint(fmt.Sprintf("cap[%s->%s]", l.From, l.To), coeffs, l.CapacityMbps)
	}
	sol, err := lp.Solve(b.Build())
	if err != nil {
		return 0, len(trees), fmt.Errorf("topology: tree packing: %w", err)
	}
	return sol.Objective, len(trees), nil
}
