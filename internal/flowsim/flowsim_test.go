package flowsim

import (
	"strings"
	"testing"
	"time"

	"ncfn/internal/controller"
)

func TestNewDeploymentDefaults(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sessions) != 6 {
		t.Fatalf("sessions = %d, want 6", len(d.Sessions))
	}
	if len(d.Regions) != 6 {
		t.Fatalf("regions = %d, want 6", len(d.Regions))
	}
	for _, s := range d.Sessions {
		if len(s.Receivers) < 1 || len(s.Receivers) > 4 {
			t.Fatalf("session %d has %d receivers, want [1,4]", s.ID, len(s.Receivers))
		}
		if s.RateCap != 250 {
			t.Fatalf("rate cap = %v", s.RateCap)
		}
	}
}

func TestFig10TimelineShape(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Run(d.Controller, d.Clock, d.Fig10Events(), RunConfig{
		Duration: 120 * time.Minute,
		Interval: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 13 {
		t.Fatalf("samples = %d, want 13", len(samples))
	}
	byMinute := make(map[float64]Sample, len(samples))
	for _, s := range samples {
		byMinute[s.At.Minutes()] = s
	}
	// Throughput grows over the first 30 minutes as sessions join...
	if !(byMinute[30].Throughput > byMinute[0].Throughput) {
		t.Fatalf("throughput did not grow: t0=%v t30=%v", byMinute[0].Throughput, byMinute[30].Throughput)
	}
	// ...and shrinks after sessions leave (minute 60 has 3 sessions).
	if !(byMinute[60].Throughput < byMinute[30].Throughput) {
		t.Fatalf("throughput did not shrink: t30=%v t60=%v", byMinute[30].Throughput, byMinute[60].Throughput)
	}
	// VNF count follows the same rise and fall.
	if !(byMinute[30].VNFs >= byMinute[0].VNFs) {
		t.Fatalf("VNFs did not grow: %v -> %v", byMinute[0].VNFs, byMinute[30].VNFs)
	}
	// After the tail (sessions stable), VNFs must be below the peak.
	peak := 0
	for _, s := range samples {
		if s.VNFs > peak {
			peak = s.VNFs
		}
	}
	if byMinute[120].VNFs > peak {
		t.Fatal("final VNF count above peak")
	}
	// Positive throughput throughout (three sessions always active).
	for _, s := range samples {
		if s.Throughput <= 0 {
			t.Fatalf("zero throughput at %v", s.At)
		}
	}
}

func TestFig11BandwidthCutsRecover(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Run(d.Controller, d.Clock, d.Fig11Events(3), RunConfig{
		Duration: 70 * time.Minute,
		Interval: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("samples = %d", len(samples))
	}
	base := samples[0].Throughput
	if base <= 0 {
		t.Fatal("no initial throughput")
	}
	// Throughput must stay within a sane band (cuts can reduce it, the
	// controller recovers it), and VNFs must never be zero while six
	// sessions are active.
	for _, s := range samples {
		if s.Throughput < 0 || s.Throughput > base*1.5 {
			t.Fatalf("throughput %v out of band at %v", s.Throughput, s.At)
		}
		if s.VNFs == 0 {
			t.Fatalf("zero VNFs at %v", s.At)
		}
	}
}

func TestRunEventErrorPropagates(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{{
		At:   0,
		Name: "boom",
		Do:   func(*controller.Controller) error { return errBoom{} },
	}}
	if _, err := Run(d.Controller, d.Clock, events, RunConfig{Duration: 10 * time.Minute, Interval: 10 * time.Minute}); err == nil {
		t.Fatal("event error swallowed")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestSeriesRendering(t *testing.T) {
	samples := []Sample{
		{At: 0, Throughput: 100, VNFs: 3},
		{At: 10 * time.Minute, Throughput: 200, VNFs: 5},
	}
	s := Series("Fig 10", samples)
	var sb strings.Builder
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 10") || !strings.Contains(out, "200") {
		t.Fatalf("series table: %q", out)
	}
}

func TestDeterministicScenario(t *testing.T) {
	a, err := NewDeployment(ScenarioConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDeployment(ScenarioConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sessions {
		if a.Sessions[i].Source != b.Sessions[i].Source {
			t.Fatal("scenario not deterministic")
		}
		if len(a.Sessions[i].Receivers) != len(b.Sessions[i].Receivers) {
			t.Fatal("scenario not deterministic")
		}
	}
}

func TestDelayEventsForceRerouting(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Run(d.Controller, d.Clock, d.DelayEvents(), RunConfig{
		Duration: 40 * time.Minute,
		Interval: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Six sessions stay admitted throughout; the delay shift may reroute
	// or reduce rates but must never take the system down.
	for _, s := range samples {
		if s.Throughput <= 0 {
			t.Fatalf("zero throughput at %v", s.At)
		}
	}
	// The controller must have reacted to the confirmed delay change with
	// at least one forwarding-table push after minute 20.
	reacted := false
	for _, e := range d.Controller.Events() {
		if e.Signal == controller.NCForwardTab && e.At.Sub(epoch) >= 20*time.Minute {
			reacted = true
		}
	}
	if !reacted {
		t.Fatal("no forwarding-table reaction to the confirmed delay change")
	}
}
