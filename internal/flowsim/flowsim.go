// Package flowsim drives the controller through the paper's dynamic
// scenarios (Sec. V-C) under a virtual clock: timelines of session and
// receiver churn (Fig. 10), bandwidth cuts (Fig. 11), and parameter sweeps
// (Figs. 12 and 13). A 120-minute experiment completes in milliseconds
// while exercising exactly the control-plane code a real deployment runs.
package flowsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/controller"
	"ncfn/internal/metrics"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/simclock"
	"ncfn/internal/topology"
)

// Event is one scheduled control-plane action.
type Event struct {
	At   time.Duration
	Name string
	Do   func(c *controller.Controller) error
}

// RunConfig configures a timeline run.
type RunConfig struct {
	Duration time.Duration
	// Interval is the sampling (and measurement-collection) period; the
	// paper uses 10 minutes.
	Interval time.Duration
	// Throughput overrides the sampled throughput metric; the default is
	// the controller's planned total rate. Fig. 11 samples the *effective*
	// rate instead, which dips when a bandwidth cut has not yet been
	// confirmed by the scaling algorithm.
	Throughput func(c *controller.Controller) float64
}

// Sample is one measurement row of a dynamic experiment.
type Sample struct {
	At         time.Duration
	Throughput float64
	VNFs       int // running VNFs (active + idle within τ)
}

// Run replays the events against the controller, sampling total throughput
// and VNF count every interval. Events fire at their scheduled times in
// order; samples are taken after the events of each tick are applied.
func Run(ctrl *controller.Controller, clk *simclock.Virtual, events []Event, cfg RunConfig) ([]Sample, error) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	var samples []Sample
	next := 0
	start := clk.Now()
	for at := time.Duration(0); at <= cfg.Duration; at += cfg.Interval {
		// Advance the clock to this tick.
		target := start.Add(at)
		if d := target.Sub(clk.Now()); d > 0 {
			clk.Advance(d)
		}
		// Fire due events.
		for next < len(events) && events[next].At <= at {
			if err := events[next].Do(ctrl); err != nil {
				return samples, fmt.Errorf("flowsim: event %q at %v: %w", events[next].Name, events[next].At, err)
			}
			next++
		}
		ctrl.Tick()
		active, idle := ctrl.VNFCounts()
		throughput := ctrl.TotalThroughput()
		if cfg.Throughput != nil {
			throughput = cfg.Throughput(ctrl)
		}
		samples = append(samples, Sample{
			At:         at,
			Throughput: throughput,
			VNFs:       active + idle,
		})
	}
	return samples, nil
}

// Series converts samples to a printable metrics series.
func Series(title string, samples []Sample) *metrics.Series {
	s := metrics.NewSeries(title, "minute", "throughput_mbps", "vnfs")
	for _, sm := range samples {
		s.Add(sm.At.Minutes(), map[string]float64{
			"throughput_mbps": sm.Throughput,
			"vnfs":            float64(sm.VNFs),
		})
	}
	return s
}

// Deployment bundles everything a dynamic scenario needs.
type Deployment struct {
	Controller *controller.Controller
	Clock      *simclock.Virtual
	Cloud      *cloud.Cloud
	Graph      *topology.Graph
	Regions    []topology.NodeID
	// Sessions are the scenario's prepared sessions (some join later).
	Sessions []optimize.Session
}

// ScenarioConfig tunes the six-data-center deployment of Sec. V-C.
type ScenarioConfig struct {
	Seed int64
	// Alpha is the conversion factor (default 20, Sec. V-C).
	Alpha float64
	// MaxDelay is L^max for every session (default 150 ms).
	MaxDelay time.Duration
	// Sessions is how many sessions to prepare (default 6).
	Sessions int
	// RatePerSession caps each session (models the application's target
	// rate; keeps per-session demand in the paper's a-few-hundred-Mbps
	// range).
	RatePerSession float64
	// Tau is the VNF idle shutdown delay (default 10 min).
	Tau time.Duration
}

// epoch anchors virtual time.
var epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

// NewDeployment builds the six-region geo-distributed deployment: EC2
// California/Oregon/Virginia + Linode Texas/Georgia/New Jersey, sources and
// receivers distributed uniformly at random across the regions (Sec. V-C:
// "The sources and receivers are distributed uniformly randomly across the
// six data centers in North America").
func NewDeployment(cfg ScenarioConfig) (*Deployment, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 20
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 150 * time.Millisecond
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 6
	}
	if cfg.RatePerSession <= 0 {
		cfg.RatePerSession = 250
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	clk := simclock.NewVirtual(epoch)

	regions := cloud.PaperRegions()
	for i := range regions {
		regions[i].LaunchDelay = cloud.DefaultLaunchDelay
	}
	cl := cloud.New(clk, cfg.Seed, regions...)
	delays := cloud.PaperDelays()

	g := topology.New()
	var regionIDs []topology.NodeID
	for _, r := range regions {
		g.AddNode(r.ID, topology.DataCenter)
		regionIDs = append(regionIDs, r.ID)
	}
	// Full mesh between data centers; capacity unconstrained at the link
	// level (the per-VNF bandwidth caps of program (2) bind instead).
	for _, a := range regionIDs {
		for _, b := range regionIDs {
			if a == b {
				continue
			}
			if err := g.AddLink(topology.Link{From: a, To: b, Delay: delays[[2]topology.NodeID{a, b}]}); err != nil {
				return nil, err
			}
		}
	}

	dcs := make([]optimize.DataCenter, 0, len(regions))
	for _, r := range regions {
		dcs = append(dcs, optimize.DataCenter{
			ID:       r.ID,
			BinMbps:  r.BaseInMbps,
			BoutMbps: r.BaseOutMbps,
			CodeMbps: 500, // one VNF encodes at up to 500 Mbps
		})
	}

	// Prepare sessions with random endpoints.
	sourceOut := make(map[topology.NodeID]float64)
	destIn := make(map[topology.NodeID]float64)
	sessions := make([]optimize.Session, 0, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		id := ncproto.SessionID(i + 1)
		srcRegion := regionIDs[rng.Intn(len(regionIDs))]
		srcNode := topology.NodeID(fmt.Sprintf("src%d@%s", id, srcRegion))
		g.AddNode(srcNode, topology.Source)
		nRecv := rng.Intn(4) + 1 // "uniformly random number of receivers in the range [1, 4]"
		var receivers []topology.NodeID
		for r := 0; r < nRecv; r++ {
			recvRegion := regionIDs[rng.Intn(len(regionIDs))]
			recvNode := topology.NodeID(fmt.Sprintf("recv%d.%d@%s", id, r, recvRegion))
			g.AddNode(recvNode, topology.Destination)
			receivers = append(receivers, recvNode)
			// Access links: receiver reachable from every DC (it pulls
			// the flow from whichever DC the optimizer picks) and
			// directly from the source's region. Per-link jitter models
			// VM-placement and last-mile variance.
			for _, dc := range regionIDs {
				d := delays[[2]topology.NodeID{dc, recvRegion}]
				if dc == recvRegion {
					d = 2 * time.Millisecond
				}
				d = time.Duration(float64(d) * (0.8 + 0.6*rng.Float64()))
				if err := g.AddLink(topology.Link{From: dc, To: recvNode, Delay: d}); err != nil {
					return nil, err
				}
			}
			destIn[recvNode] = cfg.RatePerSession
		}
		// Source connects into every DC, with the same jitter model.
		for _, dc := range regionIDs {
			d := delays[[2]topology.NodeID{srcRegion, dc}]
			if dc == srcRegion {
				d = 2 * time.Millisecond
			}
			d = time.Duration(float64(d) * (0.8 + 0.6*rng.Float64()))
			if err := g.AddLink(topology.Link{From: srcNode, To: dc, Delay: d}); err != nil {
				return nil, err
			}
		}
		sourceOut[srcNode] = 2 * cfg.RatePerSession
		sessions = append(sessions, optimize.Session{
			ID:        id,
			Source:    srcNode,
			Receivers: receivers,
			MaxDelay:  cfg.MaxDelay,
			RateCap:   cfg.RatePerSession,
		})
	}

	ctrl := controller.New(controller.Config{
		Optimize: optimize.Config{
			Graph:       g,
			DataCenters: dcs,
			Alpha:       cfg.Alpha,
			// One coding relay per path: with six fully-meshed regions,
			// two-relay paths multiply the conceptual-flow LP by ~6x per
			// receiver while adding no capacity the dynamics use, and the
			// joint re-solves after departures become minutes-slow.
			MaxPathHops:   2,
			SourceOutMbps: sourceOut,
			DestInMbps:    destIn,
		},
		Cloud: cl,
		Clock: clk,
		Tau:   cfg.Tau,
		Tau1:  10 * time.Minute,
		Tau2:  10 * time.Minute,
		Rho1:  0.05,
		Rho2:  0.05,
	})
	return &Deployment{
		Controller: ctrl,
		Clock:      clk,
		Cloud:      cl,
		Graph:      g,
		Regions:    regionIDs,
		Sessions:   sessions,
	}, nil
}

// Fig10Events builds the Sec. V-C1 timeline: start with 3 sessions, one
// more joins every 10 minutes up to 6, then one leaves every 10 minutes
// down to 3; a receiver joins one session at minutes 70/80/90 and leaves at
// 100/110/120.
func (d *Deployment) Fig10Events() []Event {
	min := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	var events []Event
	join := func(at time.Duration, s optimize.Session) {
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("session %d joins", s.ID),
			Do:   func(c *controller.Controller) error { return c.AddSession(s) },
		})
	}
	leave := func(at time.Duration, id ncproto.SessionID) {
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("session %d leaves", id),
			Do:   func(c *controller.Controller) error { return c.RemoveSession(id) },
		})
	}
	// Initial three sessions at t=0, then one every 10 minutes.
	join(0, d.Sessions[0])
	join(0, d.Sessions[1])
	join(0, d.Sessions[2])
	join(min(10), d.Sessions[3])
	join(min(20), d.Sessions[4])
	join(min(30), d.Sessions[5])
	leave(min(40), d.Sessions[0].ID)
	leave(min(50), d.Sessions[1].ID)
	leave(min(60), d.Sessions[2].ID)

	// Receiver churn on a surviving session (session 4).
	target := d.Sessions[3]
	extra := make([]topology.NodeID, 3)
	for i := range extra {
		// Reuse existing receiver nodes of other sessions as joiners:
		// they are already wired into the graph.
		extra[i] = d.Sessions[(4+i)%6].Receivers[0]
	}
	for i, at := range []time.Duration{min(70), min(80), min(90)} {
		r := extra[i]
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("receiver %s joins session %d", r, target.ID),
			Do:   func(c *controller.Controller) error { return c.AddReceiver(target.ID, r) },
		})
	}
	for i, at := range []time.Duration{min(100), min(110), min(120)} {
		r := extra[i]
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("receiver %s leaves session %d", r, target.ID),
			Do:   func(c *controller.Controller) error { return c.RemoveReceiver(target.ID, r) },
		})
	}
	return events
}

// EffectiveThroughput returns a RunConfig.Throughput function that
// throttles sessions by the cloud's actual (possibly cut) per-VNF
// bandwidth — what a receiver-side measurement would observe.
func (d *Deployment) EffectiveThroughput() func(c *controller.Controller) float64 {
	return func(c *controller.Controller) float64 {
		return c.EffectiveThroughput(func(dc topology.NodeID) (float64, float64) {
			sample, err := d.Cloud.MeasureBandwidth(dc)
			if err != nil {
				return 0, 0
			}
			return sample.InMbps, sample.OutMbps
		})
	}
}

// DelayEvents builds a delay-variation timeline exercising Alg. 2: all six
// sessions start at t=0; at minute 9 the delay of every link touching the
// most-loaded data center quadruples (a backbone routing shift), and the
// controller's periodic ping probes observe the new delays. The change is
// confirmed after ρ2/τ2, invalidating paths and forcing re-solves.
func (d *Deployment) DelayEvents() []Event {
	min := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	var events []Event
	for _, s := range d.Sessions {
		s := s
		events = append(events, Event{
			At:   0,
			Name: fmt.Sprintf("session %d joins", s.ID),
			Do:   func(c *controller.Controller) error { return c.AddSession(s) },
		})
	}
	var affected topology.NodeID
	events = append(events, Event{
		At:   min(9),
		Name: "backbone delay shift",
		Do: func(c *controller.Controller) error {
			in, out := c.LoadPerDC()
			affected = d.Regions[0]
			for _, region := range d.Regions {
				if in[region]+out[region] > in[affected]+out[affected] {
					affected = region
				}
			}
			return nil
		},
	})
	// Ping probes every 10 minutes report the (possibly shifted) delays
	// of every inter-DC link.
	for m := 10; m <= 40; m += 10 {
		events = append(events, Event{
			At:   min(m),
			Name: fmt.Sprintf("delay probes at minute %d", m),
			Do: func(c *controller.Controller) error {
				for _, a := range d.Regions {
					for _, b := range d.Regions {
						if a == b {
							continue
						}
						l, ok := d.Graph.Link(a, b)
						if !ok {
							continue
						}
						observed := l.Delay
						if b == affected || a == affected {
							observed = 4 * l.Delay
						}
						if err := c.ObserveDelay(a, b, observed); err != nil {
							return err
						}
					}
				}
				return nil
			},
		})
	}
	return events
}

// Fig11Events builds the Sec. V-C2 timeline: all six sessions start at
// t=0; every 20 minutes (starting at minute 10) a random in-use region's
// per-VNF bandwidth is cut in half, and the controller's periodic
// bandwidth probes observe it.
func (d *Deployment) Fig11Events(seed int64) []Event {
	_ = seed // the cut choice is load-driven; seed kept for API stability
	min := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	var events []Event
	for _, s := range d.Sessions {
		s := s
		events = append(events, Event{
			At:   0,
			Name: fmt.Sprintf("session %d joins", s.ID),
			Do:   func(c *controller.Controller) error { return c.AddSession(s) },
		})
	}
	// Bandwidth observation every 10 minutes for every region: the
	// controller reads the cloud's current (possibly cut) bandwidth.
	for m := 10; m <= 70; m += 10 {
		at := min(m)
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("bandwidth probes at minute %d", m),
			Do: func(c *controller.Controller) error {
				for _, region := range d.Regions {
					sample, err := d.Cloud.MeasureBandwidth(region)
					if err != nil {
						return err
					}
					if err := c.ObserveBandwidth(region, sample.InMbps, sample.OutMbps); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	// Cuts at minutes 10, 30, 50. The paper cuts "a randomly selected
	// (currently used) data center"; we weight the choice toward loaded
	// regions so every cut actually hits traffic.
	cutAlready := make(map[topology.NodeID]bool)
	for _, m := range []int{10, 30, 50} {
		at := min(m) - time.Minute // cut lands just before the probe
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("bandwidth cut #%d", m),
			Do: func(c *controller.Controller) error {
				in, out := c.LoadPerDC()
				var candidates []topology.NodeID
				for _, region := range d.Regions {
					if !cutAlready[region] && in[region]+out[region] > 0 {
						candidates = append(candidates, region)
					}
				}
				if len(candidates) == 0 {
					candidates = d.Regions
				}
				// Pick the most-loaded candidate, breaking ties randomly.
				best := candidates[0]
				for _, region := range candidates[1:] {
					if in[region]+out[region] > in[best]+out[best] {
						best = region
					}
				}
				cutAlready[best] = true
				return d.Cloud.SetBandwidthScale(best, 0.5)
			},
		})
	}
	return events
}
