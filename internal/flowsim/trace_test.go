package flowsim

import (
	"testing"
	"time"
)

func TestPoissonEventsValidation(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []TraceConfig{
		{ArrivalsPerHour: 0, MeanHold: time.Minute, Duration: time.Hour},
		{ArrivalsPerHour: 1, MeanHold: 0, Duration: time.Hour},
		{ArrivalsPerHour: 1, MeanHold: time.Minute, Duration: 0},
	}
	for i, cfg := range bad {
		if _, err := d.PoissonEvents(cfg); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestPoissonEventsStatistics(t *testing.T) {
	d, err := NewDeployment(ScenarioConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	events, err := d.PoissonEvents(TraceConfig{
		ArrivalsPerHour: 12,
		MeanHold:        20 * time.Minute,
		Duration:        10 * time.Hour,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	joins, leaves := 0, 0
	for _, e := range events {
		if e.At < 0 || e.At > 10*time.Hour {
			t.Fatalf("event outside horizon: %v", e.At)
		}
		switch e.Name[:12] {
		case "poisson join":
			joins++
		default:
			leaves++
		}
	}
	// λ = 12/h over 10 h → ~120 arrivals; allow ±40%.
	if joins < 72 || joins > 168 {
		t.Fatalf("joins = %d, want ~120", joins)
	}
	if leaves > joins {
		t.Fatalf("more leaves (%d) than joins (%d)", leaves, joins)
	}
	if leaves == 0 {
		t.Fatal("no departures in a 10-hour trace with 20-minute holds")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	d, _ := NewDeployment(ScenarioConfig{Seed: 2})
	a, err := d.PoissonEvents(TraceConfig{ArrivalsPerHour: 6, MeanHold: 10 * time.Minute, Duration: time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDeployment(ScenarioConfig{Seed: 2})
	b, err := d2.PoissonEvents(TraceConfig{ArrivalsPerHour: 6, MeanHold: 10 * time.Minute, Duration: time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Name != b[i].Name {
			t.Fatalf("event %d differs: %v vs %v", i, a[i].Name, b[i].Name)
		}
	}
}

func TestActiveSessionsAt(t *testing.T) {
	d, _ := NewDeployment(ScenarioConfig{Seed: 2})
	events, err := d.PoissonEvents(TraceConfig{ArrivalsPerHour: 30, MeanHold: 30 * time.Minute, Duration: 2 * time.Hour, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n := ActiveSessionsAt(events, 0); n != 0 {
		t.Fatalf("active at t=0: %d", n)
	}
	if n := ActiveSessionsAt(events, time.Hour); n < 0 {
		t.Fatalf("negative active count: %d", n)
	}
}

func TestSoakControllerSurvivesChurn(t *testing.T) {
	samples, peak, err := Soak(
		ScenarioConfig{Seed: 4},
		TraceConfig{ArrivalsPerHour: 8, MeanHold: 25 * time.Minute, Duration: 2 * time.Hour, Seed: 6},
		10*time.Minute,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 13 {
		t.Fatalf("samples = %d", len(samples))
	}
	if peak == 0 {
		t.Fatal("trace admitted no sessions")
	}
	// Whenever sessions are active the controller must report throughput
	// and VNFs; when none are active both must be able to drain to zero.
	for _, s := range samples {
		if s.Throughput < 0 {
			t.Fatalf("negative throughput at %v", s.At)
		}
	}
}
