package flowsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/ncproto"
)

// This file generalizes the paper's hand-scripted churn (Fig. 10) into a
// stochastic workload generator: sessions arrive as a Poisson process and
// hold for exponentially distributed durations, the standard teletraffic
// model for service arrivals. It lets the controller be soaked under
// arbitrary load levels rather than the single scripted timeline.

// TraceConfig parameterizes a generated churn trace.
type TraceConfig struct {
	// ArrivalsPerHour is the Poisson arrival rate λ.
	ArrivalsPerHour float64
	// MeanHold is the mean session lifetime (exponential).
	MeanHold time.Duration
	// Duration is the trace horizon; arrivals after it are dropped.
	Duration time.Duration
	// Seed fixes the randomness.
	Seed int64
}

// PoissonEvents generates join/leave events for the deployment's prepared
// sessions under the trace configuration. Each arrival activates the next
// inactive prepared session (IDs are remapped so a session can recur);
// departures follow after the exponential hold time.
func (d *Deployment) PoissonEvents(cfg TraceConfig) ([]Event, error) {
	if cfg.ArrivalsPerHour <= 0 {
		return nil, fmt.Errorf("flowsim: arrival rate must be positive")
	}
	if cfg.MeanHold <= 0 {
		return nil, fmt.Errorf("flowsim: mean hold must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("flowsim: trace duration must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	exp := func(mean float64) float64 {
		// Inverse-CDF sampling of an exponential.
		return -mean * math.Log(1-rng.Float64())
	}

	var events []Event
	at := time.Duration(0)
	meanGap := float64(time.Hour) / cfg.ArrivalsPerHour
	nextID := ncproto.SessionID(1000) // remapped IDs, clear of the prepared ones
	slot := 0
	for {
		at += time.Duration(exp(meanGap))
		if at > cfg.Duration {
			break
		}
		// Clone the next prepared session under a fresh ID so repeats of
		// the same endpoints are distinct controller sessions.
		template := d.Sessions[slot%len(d.Sessions)]
		slot++
		session := template
		session.ID = nextID
		nextID++
		hold := time.Duration(exp(float64(cfg.MeanHold)))
		depart := at + hold

		s := session
		events = append(events, Event{
			At:   at,
			Name: fmt.Sprintf("poisson join %d (%s)", s.ID, s.Source),
			Do:   func(c *controller.Controller) error { return c.AddSession(s) },
		})
		if depart <= cfg.Duration {
			id := s.ID
			events = append(events, Event{
				At:   depart,
				Name: fmt.Sprintf("poisson leave %d", id),
				Do:   func(c *controller.Controller) error { return c.RemoveSession(id) },
			})
		}
	}
	return events, nil
}

// ActiveSessionsAt replays a trace's joins/leaves arithmetically, returning
// the number of concurrently active sessions at the given instant (used by
// tests to validate samples against the trace).
func ActiveSessionsAt(events []Event, at time.Duration) int {
	n := 0
	for _, e := range events {
		if e.At > at {
			continue
		}
		switch {
		case len(e.Name) >= 12 && e.Name[:12] == "poisson join":
			n++
		case len(e.Name) >= 13 && e.Name[:13] == "poisson leave":
			n--
		}
	}
	return n
}

// Soak runs a Poisson trace against a fresh deployment and returns the
// samples plus the peak concurrent session count — a convenience for load
// tests and capacity studies.
func Soak(scenario ScenarioConfig, trace TraceConfig, interval time.Duration) ([]Sample, int, error) {
	d, err := NewDeployment(scenario)
	if err != nil {
		return nil, 0, err
	}
	events, err := d.PoissonEvents(trace)
	if err != nil {
		return nil, 0, err
	}
	samples, err := Run(d.Controller, d.Clock, events, RunConfig{
		Duration: trace.Duration,
		Interval: interval,
	})
	if err != nil {
		return samples, 0, err
	}
	peak := 0
	for at := time.Duration(0); at <= trace.Duration; at += interval {
		if n := ActiveSessionsAt(events, at); n > peak {
			peak = n
		}
	}
	return samples, peak, nil
}
