// Package transfer is the application layer above the coding data plane:
// the file-transmission application that drives the paper's evaluation
// ("A file transmission application is built upon the system", Sec. V-A).
//
// It provides reliable multicast file delivery — generations are
// acknowledged by each receiver, and unacknowledged generations are
// re-encoded and resent — plus the "Direct TCP" baseline of Fig. 7: a
// reliable unicast transfer with a TCP-like AIMD congestion window running
// over the same datagram substrate.
package transfer

import (
	"errors"
	"fmt"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
)

// ErrIncomplete is returned when reliability gives up before every
// receiver has every generation.
var ErrIncomplete = errors.New("transfer: incomplete delivery")

// MulticastConfig tunes reliable multicast delivery.
type MulticastConfig struct {
	// Receivers lists the addresses expected to acknowledge each
	// generation.
	Receivers []string
	// AckTimeout is how long to wait for outstanding ACKs before
	// resending (default 500 ms).
	AckTimeout time.Duration
	// MaxRounds bounds resend rounds (default 50).
	MaxRounds int
	// ResendExtra is how many fresh coded packets to emit per missing
	// generation and hop group per round (default: generation size).
	ResendExtra int
	// Clock defaults to the real clock.
	Clock simclock.Clock
}

// MulticastStats reports a completed transfer.
type MulticastStats struct {
	Generations int
	Rounds      int
	Resent      int
	Elapsed     time.Duration
	// GoodputMbps is payload bits delivered (to the slowest receiver)
	// over the elapsed time.
	GoodputMbps float64
}

// Multicast reliably delivers data to every receiver of the source's
// session. The source's hops must be configured; receivers must ACK to the
// source's address.
func Multicast(src *dataplane.Source, data []byte, cfg MulticastConfig) (MulticastStats, error) {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 500 * time.Millisecond
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 50
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if len(cfg.Receivers) == 0 {
		return MulticastStats{}, errors.New("transfer: no receivers")
	}

	gens := rlnc.SplitGenerations(src.Params(), data)
	if cfg.ResendExtra <= 0 {
		cfg.ResendExtra = src.Params().GenerationBlocks
	}
	start := cfg.Clock.Now()
	first, n, err := src.SendData(data)
	if err != nil {
		return MulticastStats{}, fmt.Errorf("transfer: initial send: %w", err)
	}
	stats := MulticastStats{Generations: n}
	if n == 0 {
		return stats, nil
	}

	// acked[gid][receiver]
	acked := make(map[ncproto.GenerationID]map[string]bool, n)
	want := make(map[string]bool, len(cfg.Receivers))
	for _, r := range cfg.Receivers {
		want[r] = true
	}
	remaining := n * len(cfg.Receivers)
	drain := func(deadline <-chan time.Time) bool {
		for {
			select {
			case ack := <-src.Acks():
				gid := ack.Generation
				if gid < first || gid >= first+ncproto.GenerationID(n) || !want[ack.From] {
					continue
				}
				if acked[gid] == nil {
					acked[gid] = make(map[string]bool, len(cfg.Receivers))
				}
				if !acked[gid][ack.From] {
					acked[gid][ack.From] = true
					remaining--
					if remaining == 0 {
						return true
					}
				}
			case <-deadline:
				return remaining == 0
			}
		}
	}

	for round := 0; round <= cfg.MaxRounds; round++ {
		if drain(cfg.Clock.After(cfg.AckTimeout)) {
			stats.Rounds = round
			stats.Elapsed = cfg.Clock.Now().Sub(start)
			if secs := stats.Elapsed.Seconds(); secs > 0 {
				stats.GoodputMbps = float64(len(data)) * 8 / secs / 1e6
			}
			return stats, nil
		}
		if round == cfg.MaxRounds {
			break
		}
		// Resend every generation missing at least one receiver.
		for i := 0; i < n; i++ {
			gid := first + ncproto.GenerationID(i)
			if len(acked[gid]) == len(cfg.Receivers) {
				continue
			}
			if err := src.ResendGeneration(gid, gens[i], cfg.ResendExtra); err != nil {
				return stats, fmt.Errorf("transfer: resend generation %d: %w", gid, err)
			}
			stats.Resent++
		}
	}
	stats.Elapsed = cfg.Clock.Now().Sub(start)
	return stats, fmt.Errorf("%w: %d generation-receiver pairs outstanding", ErrIncomplete, remaining)
}
