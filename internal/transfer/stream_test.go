package transfer

import (
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
)

// streamEnv wires src -> relay -> receiver with optional loss, returning
// the source and a watched receiver.
func streamEnv(t *testing.T, loss float64, redundancy int) (*dataplane.Source, *StreamReceiver) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	params := smallParams()
	if loss > 0 {
		n.SetLink("relay", "r1", emunet.LinkConfig{Loss: emunet.NewUniformLoss(loss, 13), QueuePackets: 4096})
	}
	relay := dataplane.NewVNF(n.Host("relay"), dataplane.WithSeed(5))
	if err := relay.Configure(dataplane.SessionConfig{ID: 1, Params: params, Role: dataplane.RoleRecoder, Redundancy: redundancy}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(1, []dataplane.HopGroup{{Addrs: []string{"r1"}}})
	relay.Start()
	t.Cleanup(func() { relay.Close() })

	src, err := dataplane.NewSource(n.Host("src"), dataplane.SourceConfig{
		Session: 1, Params: params, Systematic: true, Redundancy: redundancy, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	src.SetHops([]dataplane.HopGroup{{Addrs: []string{"relay"}}})

	recv, err := dataplane.NewReceiver(n.Host("r1"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	w := WatchReceiver(recv, nil)
	t.Cleanup(w.Close)
	return src, w
}

func TestStreamCleanDeliversOnTime(t *testing.T) {
	src, w := streamEnv(t, 0, 0)
	stats, err := Stream(src, map[string]*StreamReceiver{"r1": w}, StreamConfig{
		RateMbps: 2,
		Duration: 300 * time.Millisecond,
		Deadline: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stats["r1"]
	if st.GenerationsSent == 0 {
		t.Fatal("nothing streamed")
	}
	if st.DeliveryRatio < 0.95 {
		t.Fatalf("clean stream delivery ratio %.2f: %+v", st.DeliveryRatio, st)
	}
	if st.MeanLatency <= 0 || st.MeanLatency > 200*time.Millisecond {
		t.Fatalf("mean latency %v", st.MeanLatency)
	}
}

func TestStreamLossHurtsNC0MoreThanNC2(t *testing.T) {
	run := func(redundancy int) float64 {
		src, w := streamEnv(t, 0.25, redundancy)
		stats, err := Stream(src, map[string]*StreamReceiver{"r1": w}, StreamConfig{
			RateMbps: 2,
			Duration: 400 * time.Millisecond,
			Deadline: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats["r1"].DeliveryRatio
	}
	nc0 := run(0)
	nc2 := run(2)
	if nc2 <= nc0 {
		t.Fatalf("NC2 delivery %.2f should beat NC0 %.2f under 25%% loss", nc2, nc0)
	}
}

func TestStreamValidation(t *testing.T) {
	src, w := streamEnv(t, 0, 0)
	if _, err := Stream(src, nil, StreamConfig{RateMbps: 1, Duration: time.Second}); err == nil {
		t.Fatal("no receivers accepted")
	}
	ws := map[string]*StreamReceiver{"r1": w}
	if _, err := Stream(src, ws, StreamConfig{Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Stream(src, ws, StreamConfig{RateMbps: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestStreamMissingCounted(t *testing.T) {
	// Receiver behind a fully-dead link: everything missing.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	n.SetLink("src", "void-relay", emunet.LinkConfig{Loss: emunet.NewUniformLoss(1.0, 1)})
	n.Host("void-relay")
	src, err := dataplane.NewSource(n.Host("src"), dataplane.SourceConfig{
		Session: 1, Params: params, Systematic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]dataplane.HopGroup{{Addrs: []string{"void-relay"}}})
	recv, err := dataplane.NewReceiver(n.Host("r1"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	w := WatchReceiver(recv, nil)
	defer w.Close()
	stats, err := Stream(src, map[string]*StreamReceiver{"r1": w}, StreamConfig{
		RateMbps: 2, Duration: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stats["r1"]
	if st.Missing != st.GenerationsSent || st.OnTime != 0 {
		t.Fatalf("dead link stats: %+v", st)
	}
}

func TestWatchReceiverCloseIdempotent(t *testing.T) {
	_, w := streamEnv(t, 0, 0)
	w.Close()
	w.Close()
}
