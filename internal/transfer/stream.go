package transfer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/ncproto"
	"ncfn/internal/simclock"
)

// This file implements the live-streaming mode the paper's introduction
// motivates (video conferencing, live video): the source emits generations
// at a fixed target rate and receivers play them against a deadline.
// Unlike the file-transfer mode there are no retransmissions — a generation
// that cannot be decoded by its playback deadline is skipped (this is why
// the redundancy configurations NC1/NC2 matter for streaming).

// StreamConfig tunes a live streaming run.
type StreamConfig struct {
	// RateMbps is the stream's target payload rate.
	RateMbps float64
	// Duration is how long to stream.
	Duration time.Duration
	// Deadline is the per-generation playback budget measured from when
	// the generation is sent; generations decoded later are counted as
	// late (default 400 ms).
	Deadline time.Duration
	// Clock defaults to the real clock.
	Clock simclock.Clock
}

// StreamStats reports a finished streaming session for one receiver.
type StreamStats struct {
	GenerationsSent int
	OnTime          int
	Late            int
	Missing         int
	// DeliveryRatio is OnTime / GenerationsSent.
	DeliveryRatio float64
	// MeanLatency is the average send→decode latency of delivered
	// generations.
	MeanLatency time.Duration
}

// StreamReceiver tracks per-generation decode times for one receiver.
type StreamReceiver struct {
	recv  *dataplane.Receiver
	clock simclock.Clock

	mu      sync.Mutex
	decoded map[ncproto.GenerationID]time.Time

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// WatchReceiver wraps a dataplane receiver and records when each
// generation becomes playable.
func WatchReceiver(recv *dataplane.Receiver, clk simclock.Clock) *StreamReceiver {
	if clk == nil {
		clk = simclock.Real{}
	}
	s := &StreamReceiver{
		recv:    recv,
		clock:   clk,
		decoded: make(map[ncproto.GenerationID]time.Time),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.watch()
	return s
}

func (s *StreamReceiver) watch() {
	defer s.wg.Done()
	ticker := 2 * time.Millisecond
	seen := 0
	for {
		select {
		case <-s.done:
			return
		default:
		}
		n := s.recv.Generations()
		if n > seen {
			now := s.clock.Now()
			s.mu.Lock()
			// Record decode times for newly completed generations; the
			// receiver API exposes counts, so scan the window.
			for g := 0; g < n+64; g++ {
				gid := ncproto.GenerationID(g)
				if _, ok := s.decoded[gid]; ok {
					continue
				}
				if _, ok := s.recv.GenerationData(gid); ok {
					s.decoded[gid] = now
				}
			}
			seen = n
			s.mu.Unlock()
		}
		s.clock.Sleep(ticker)
	}
}

// DecodeTime returns when a generation became playable.
func (s *StreamReceiver) DecodeTime(g ncproto.GenerationID) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.decoded[g]
	return at, ok
}

// Close stops the watcher (the underlying receiver stays open).
func (s *StreamReceiver) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// ErrNoReceivers is returned when Stream is invoked without receivers.
var ErrNoReceivers = errors.New("transfer: no stream receivers")

// Stream runs a fixed-rate live session from src and scores each watched
// receiver against the playback deadline. The returned map is keyed by the
// receiver's network address.
func Stream(src *dataplane.Source, watchers map[string]*StreamReceiver, cfg StreamConfig) (map[string]StreamStats, error) {
	if len(watchers) == 0 {
		return nil, ErrNoReceivers
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 400 * time.Millisecond
	}
	if cfg.RateMbps <= 0 {
		return nil, errors.New("transfer: stream needs a positive rate")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("transfer: stream needs a positive duration")
	}

	params := src.Params()
	genBytes := params.GenerationBytes()
	interval := time.Duration(float64(genBytes) * 8 / (cfg.RateMbps * 1e6) * float64(time.Second))
	if interval <= 0 {
		return nil, fmt.Errorf("transfer: stream interval underflow (rate %v Mbps)", cfg.RateMbps)
	}
	total := int(cfg.Duration / interval)
	if total < 1 {
		total = 1
	}

	// Emit the stream: one generation per interval, content synthesized
	// per generation (a live encoder's output).
	sentAt := make([]time.Time, 0, total)
	payload := make([]byte, genBytes)
	start := cfg.Clock.Now()
	var firstGen ncproto.GenerationID
	for i := 0; i < total; i++ {
		for j := range payload {
			payload[j] = byte(i + j)
		}
		gid, err := src.SendGeneration(payload, i == total-1)
		if err != nil {
			return nil, fmt.Errorf("transfer: stream generation %d: %w", i, err)
		}
		if i == 0 {
			firstGen = gid
		}
		sentAt = append(sentAt, cfg.Clock.Now())
		next := start.Add(time.Duration(i+1) * interval)
		if d := next.Sub(cfg.Clock.Now()); d > 0 {
			cfg.Clock.Sleep(d)
		}
	}
	// Let the tail of the stream arrive and decode.
	cfg.Clock.Sleep(cfg.Deadline)

	out := make(map[string]StreamStats, len(watchers))
	for addr, w := range watchers {
		st := StreamStats{GenerationsSent: total}
		var latencySum time.Duration
		delivered := 0
		for i := 0; i < total; i++ {
			gid := firstGen + ncproto.GenerationID(i)
			at, ok := w.DecodeTime(gid)
			if !ok {
				st.Missing++
				continue
			}
			latency := at.Sub(sentAt[i])
			delivered++
			latencySum += latency
			if latency <= cfg.Deadline {
				st.OnTime++
			} else {
				st.Late++
			}
		}
		if delivered > 0 {
			st.MeanLatency = latencySum / time.Duration(delivered)
		}
		st.DeliveryRatio = float64(st.OnTime) / float64(total)
		out[addr] = st
	}
	return out, nil
}
