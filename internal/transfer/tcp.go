package transfer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/simclock"
)

// This file implements the "Direct TCP" baseline of Fig. 7: a reliable
// unicast byte transfer with TCP-flavored congestion control (slow start,
// AIMD, go-back-N retransmission on timeout) over the same datagram
// substrate the coding system uses. It is intentionally a simplified TCP —
// enough to exhibit the qualitative behavior the figure contrasts against:
// throughput bounded by the direct path and degraded by loss-triggered
// window collapses.

// Wire types for the mini-TCP (disjoint from NC 0x9C and probe 0x7x).
const (
	typeData = 0x60
	typeAck  = 0x61
)

// TCPConfig tunes the baseline sender.
type TCPConfig struct {
	// MSS is the segment payload size (default 1460, matching the NC
	// block size so both systems move equal payload per packet).
	MSS int
	// RTO is the retransmission timeout (default 200 ms).
	RTO time.Duration
	// MaxWindow caps the congestion window in segments (default 256).
	MaxWindow int
	// Clock defaults to the real clock.
	Clock simclock.Clock
	// Deadline bounds the whole transfer (default 60 s).
	Deadline time.Duration
}

// TCPStats reports a completed transfer.
type TCPStats struct {
	Bytes       int
	Elapsed     time.Duration
	Retransmits int
	GoodputMbps float64
}

// ErrDeadline is returned when a TCP transfer exceeds its deadline.
var ErrDeadline = errors.New("transfer: tcp deadline exceeded")

// TCPSink receives a mini-TCP stream: it acknowledges segments
// cumulatively and accumulates the payload. Close it to stop.
type TCPSink struct {
	conn emunet.PacketConn

	mu      sync.Mutex
	nextSeq uint32
	data    []byte

	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// NewTCPSink starts a sink on conn.
func NewTCPSink(conn emunet.PacketConn) *TCPSink {
	s := &TCPSink{conn: conn, done: make(chan struct{})}
	s.wg.Add(1)
	go s.run()
	return s
}

func (s *TCPSink) run() {
	defer s.wg.Done()
	for {
		pkt, src, err := s.conn.Recv()
		if err != nil {
			if errors.Is(err, emunet.ErrClosed) {
				return
			}
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if len(pkt) < 5 || pkt[0] != typeData {
			continue
		}
		seq := binary.BigEndian.Uint32(pkt[1:5])
		payload := pkt[5:]
		s.mu.Lock()
		if seq == s.nextSeq {
			s.data = append(s.data, payload...)
			s.nextSeq++
		}
		next := s.nextSeq
		s.mu.Unlock()
		// Cumulative ACK of the next expected segment.
		ack := make([]byte, 5)
		ack[0] = typeAck
		binary.BigEndian.PutUint32(ack[1:], next)
		_ = s.conn.Send(src, ack)
	}
}

// Bytes returns the contiguous bytes received so far.
func (s *TCPSink) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Data returns a copy of the received stream.
func (s *TCPSink) Data() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.data...)
}

// Close stops the sink.
func (s *TCPSink) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

// TCPSend transfers data to peer reliably and returns throughput stats.
// It owns conn's receive side for the duration of the call.
func TCPSend(conn emunet.PacketConn, peer string, data []byte, cfg TCPConfig) (TCPStats, error) {
	if cfg.MSS <= 0 {
		cfg.MSS = 1460
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 200 * time.Millisecond
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 60 * time.Second
	}

	// Segment the data.
	var segments [][]byte
	for off := 0; off < len(data); off += cfg.MSS {
		end := off + cfg.MSS
		if end > len(data) {
			end = len(data)
		}
		segments = append(segments, data[off:end])
	}
	total := len(segments)
	start := cfg.Clock.Now()
	stats := TCPStats{Bytes: len(data)}
	if total == 0 {
		return stats, nil
	}

	// ACK receiver goroutine.
	acks := make(chan uint32, 1024)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			pkt, _, err := conn.Recv()
			if err != nil {
				return
			}
			if len(pkt) == 5 && pkt[0] == typeAck {
				select {
				case acks <- binary.BigEndian.Uint32(pkt[1:]):
				default:
				}
			}
		}
	}()

	send := func(seq int) error {
		pkt := make([]byte, 5+len(segments[seq]))
		pkt[0] = typeData
		binary.BigEndian.PutUint32(pkt[1:], uint32(seq))
		copy(pkt[5:], segments[seq])
		return conn.Send(peer, pkt)
	}

	base := 0        // lowest unacked segment
	nextToSend := 0  // next never-sent segment
	cwnd := 1.0      // congestion window in segments
	ssthresh := 64.0 // slow start threshold
	deadline := cfg.Clock.Now().Add(cfg.Deadline)

	for base < total {
		if cfg.Clock.Now().After(deadline) {
			return stats, fmt.Errorf("%w: %d/%d segments delivered", ErrDeadline, base, total)
		}
		// Fill the window.
		for nextToSend < total && nextToSend < base+int(cwnd) && nextToSend < base+cfg.MaxWindow {
			if err := send(nextToSend); err != nil {
				return stats, fmt.Errorf("transfer: tcp send: %w", err)
			}
			nextToSend++
		}
		// Wait for an ACK or a timeout.
		select {
		case a := <-acks:
			if int(a) > base {
				delta := int(a) - base
				base = int(a)
				// Slow start doubles per RTT (≈ +1 per ACK); congestion
				// avoidance grows ~1/cwnd per ACK.
				for i := 0; i < delta; i++ {
					if cwnd < ssthresh {
						cwnd++
					} else {
						cwnd += 1 / cwnd
					}
				}
				if cwnd > float64(cfg.MaxWindow) {
					cwnd = float64(cfg.MaxWindow)
				}
			}
		case <-cfg.Clock.After(cfg.RTO):
			// Timeout: multiplicative decrease and go-back-N.
			ssthresh = cwnd / 2
			if ssthresh < 2 {
				ssthresh = 2
			}
			cwnd = 1
			nextToSend = base
			stats.Retransmits++
		}
	}
	stats.Elapsed = cfg.Clock.Now().Sub(start)
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.GoodputMbps = float64(len(data)) * 8 / secs / 1e6
	}
	// Stop the ACK reader by closing the conn; the caller owns the conn
	// lifecycle, so we just drain: the goroutine exits when conn closes.
	return stats, nil
}
