package transfer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/rlnc"
)

func randomBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	_, _ = rand.New(rand.NewSource(seed)).Read(b) // never fails
	return b
}

func smallParams() rlnc.Params {
	return rlnc.Params{GenerationBlocks: 4, BlockSize: 64}
}

// multicastEnv wires src -> relay -> {r1, r2} over the emulated network.
func multicastEnv(t *testing.T, lossy bool) (*dataplane.Source, []*dataplane.Receiver) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	params := smallParams()
	if lossy {
		n.SetLink("src", "relay", emunet.LinkConfig{Loss: emunet.NewUniformLoss(0.3, 11), QueuePackets: 10000})
	}

	relay := dataplane.NewVNF(n.Host("relay"), dataplane.WithSeed(5))
	if err := relay.Configure(dataplane.SessionConfig{ID: 1, Params: params, Role: dataplane.RoleRecoder, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(1, []dataplane.HopGroup{
		{Addrs: []string{"r1"}},
		{Addrs: []string{"r2"}},
	})
	relay.Start()
	t.Cleanup(func() { relay.Close() })

	src, err := dataplane.NewSource(n.Host("src"), dataplane.SourceConfig{
		Session: 1, Params: params, Systematic: true, Seed: 3, Redundancy: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	src.SetHops([]dataplane.HopGroup{{Addrs: []string{"relay"}}})

	var recvs []*dataplane.Receiver
	for _, name := range []string{"r1", "r2"} {
		r, err := dataplane.NewReceiver(n.Host(name), 1, params, "src", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		recvs = append(recvs, r)
	}
	return src, recvs
}

func TestMulticastReliableDelivery(t *testing.T) {
	src, recvs := multicastEnv(t, false)
	data := randomBytes(1, 10*smallParams().GenerationBytes())
	stats, err := Multicast(src, data, MulticastConfig{
		Receivers:  []string{"r1", "r2"},
		AckTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generations != 10 {
		t.Fatalf("generations = %d", stats.Generations)
	}
	for _, r := range recvs {
		got, ok := r.Data(10)
		if !ok || !bytes.Equal(got, data) {
			t.Fatal("receiver data mismatch")
		}
	}
	if stats.GoodputMbps <= 0 {
		t.Fatalf("goodput = %v", stats.GoodputMbps)
	}
}

func TestMulticastSurvivesLoss(t *testing.T) {
	src, recvs := multicastEnv(t, true)
	data := randomBytes(2, 8*smallParams().GenerationBytes())
	stats, err := Multicast(src, data, MulticastConfig{
		Receivers:  []string{"r1", "r2"},
		AckTimeout: 150 * time.Millisecond,
		MaxRounds:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resent == 0 {
		t.Log("warning: no resends despite 30% loss (lucky run)")
	}
	for _, r := range recvs {
		got, ok := r.Data(8)
		if !ok || !bytes.Equal(got, data) {
			t.Fatal("receiver data mismatch under loss")
		}
	}
}

func TestMulticastEmptyData(t *testing.T) {
	src, _ := multicastEnv(t, false)
	stats, err := Multicast(src, nil, MulticastConfig{Receivers: []string{"r1", "r2"}})
	if err != nil || stats.Generations != 0 {
		t.Fatalf("empty transfer: %+v, %v", stats, err)
	}
}

func TestMulticastNoReceivers(t *testing.T) {
	src, _ := multicastEnv(t, false)
	if _, err := Multicast(src, []byte{1}, MulticastConfig{}); err == nil {
		t.Fatal("no receivers accepted")
	}
}

func TestMulticastGivesUp(t *testing.T) {
	src, _ := multicastEnv(t, false)
	data := randomBytes(3, smallParams().GenerationBytes())
	// Expect an ACK from a receiver that does not exist.
	_, err := Multicast(src, data, MulticastConfig{
		Receivers:  []string{"r1", "r2", "ghost"},
		AckTimeout: 30 * time.Millisecond,
		MaxRounds:  2,
	})
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestTCPTransferClean(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	sink := NewTCPSink(n.Host("dst"))
	defer sink.Close()
	src := n.Host("src")
	defer src.Close()
	data := randomBytes(4, 100_000)
	stats, err := TCPSend(src, "dst", data, TCPConfig{MSS: 1000, RTO: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Data(), data) {
		t.Fatal("tcp data mismatch")
	}
	if stats.GoodputMbps <= 0 {
		t.Fatalf("goodput = %v", stats.GoodputMbps)
	}
}

func TestTCPTransferRateLimited(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	// 8 Mbps bottleneck: 100 KB should take ~100 ms; throughput must be
	// near the link rate, not the CPU rate.
	n.SetLink("src", "dst", emunet.LinkConfig{RateBps: 8e6, QueuePackets: 64})
	n.SetLink("dst", "src", emunet.LinkConfig{})
	sink := NewTCPSink(n.Host("dst"))
	defer sink.Close()
	src := n.Host("src")
	data := randomBytes(5, 100_000)
	stats, err := TCPSend(src, "dst", data, TCPConfig{MSS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Data(), data) {
		t.Fatal("tcp data mismatch")
	}
	if stats.GoodputMbps > 9 {
		t.Fatalf("goodput %v exceeds an 8 Mbps link", stats.GoodputMbps)
	}
}

func TestTCPTransferUnderLossRetransmits(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	n.SetLink("src", "dst", emunet.LinkConfig{Loss: emunet.NewUniformLoss(0.1, 6), QueuePackets: 10000})
	n.SetLink("dst", "src", emunet.LinkConfig{})
	sink := NewTCPSink(n.Host("dst"))
	defer sink.Close()
	src := n.Host("src")
	data := randomBytes(6, 60_000)
	stats, err := TCPSend(src, "dst", data, TCPConfig{MSS: 1000, RTO: 30 * time.Millisecond, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Data(), data) {
		t.Fatal("tcp data mismatch under loss")
	}
	if stats.Retransmits == 0 {
		t.Fatal("no retransmits despite 10% loss")
	}
}

func TestTCPLossyIsSlowerThanClean(t *testing.T) {
	run := func(loss float64) float64 {
		n := emunet.NewNetwork()
		defer n.Close()
		cfg := emunet.LinkConfig{RateBps: 20e6, QueuePackets: 256}
		if loss > 0 {
			cfg.Loss = emunet.NewUniformLoss(loss, 9)
		}
		n.SetLink("src", "dst", cfg)
		n.SetLink("dst", "src", emunet.LinkConfig{})
		sink := NewTCPSink(n.Host("dst"))
		defer sink.Close()
		stats, err := TCPSend(n.Host("src"), "dst", randomBytes(7, 200_000), TCPConfig{
			MSS: 1000, RTO: 50 * time.Millisecond, Deadline: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.GoodputMbps
	}
	clean := run(0)
	lossy := run(0.05)
	if lossy >= clean {
		t.Fatalf("lossy TCP (%.1f Mbps) not slower than clean (%.1f Mbps)", lossy, clean)
	}
}

func TestTCPDeadline(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	// Black hole: data flows in, no ACKs come back.
	n.SetLink("src", "dst", emunet.LinkConfig{})
	n.Host("dst") // no sink running
	src := n.Host("src")
	_, err := TCPSend(src, "dst", randomBytes(8, 10_000), TCPConfig{
		MSS: 1000, RTO: 20 * time.Millisecond, Deadline: 200 * time.Millisecond,
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestTCPEmptyData(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	sink := NewTCPSink(n.Host("dst"))
	defer sink.Close()
	stats, err := TCPSend(n.Host("src"), "dst", nil, TCPConfig{})
	if err != nil || stats.Bytes != 0 {
		t.Fatalf("empty: %+v, %v", stats, err)
	}
}

func TestTCPSinkIgnoresGarbage(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	sink := NewTCPSink(n.Host("dst"))
	defer sink.Close()
	src := n.Host("src")
	if err := src.Send("dst", []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := src.Send("dst", []byte{}); err != nil {
		t.Fatal(err)
	}
	data := randomBytes(9, 5000)
	if _, err := TCPSend(src, "dst", data, TCPConfig{MSS: 1000}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Data(), data) {
		t.Fatal("garbage disturbed the stream")
	}
}

func TestTCPSinkCloseIdempotent(t *testing.T) {
	n := emunet.NewNetwork()
	defer n.Close()
	sink := NewTCPSink(n.Host("dst"))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}
