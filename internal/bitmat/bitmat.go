// Package bitmat provides dense matrices over GF(2) with bit-packed rows:
// one uint64 word holds 64 coefficients, so every row operation of Gaussian
// elimination is a word-wide XOR (k/64 word ops per row instead of the k
// byte ops the GF(2^8) matrices in internal/matrix pay). It backs the RLNC
// codec's packed GF(2) fast path: coefficient-vector rank gates, bitwise
// RREF, and the one-shot inverse of the deferred decode engine.
//
// The API mirrors internal/matrix where the decoder needs it (New, FromRows,
// At/Set/Row, Rank, RREF, Inverse); elimination is blocked through the fused
// gf.XorWordsMulti kernel so a pivot row streams once per strip across every
// row it eliminates.
package bitmat

import (
	"errors"
	"fmt"

	"ncfn/internal/gf"
)

// ErrSingular is returned when a matrix has no inverse.
var ErrSingular = errors.New("bitmat: singular")

// Matrix is a dense rows x cols matrix over GF(2) with bit-packed rows.
// Bit j of row i (bit j%64 of word j/64) is the coefficient at column j.
// The zero value is an empty matrix; use New to allocate one.
type Matrix struct {
	rows, cols, words int
	data              [][]uint64
}

// New returns a zero-filled rows x cols matrix backed by one arena.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmat: invalid dimensions %dx%d", rows, cols))
	}
	words := gf.WordsForBits(cols)
	data := make([][]uint64, rows)
	backing := make([]uint64, rows*words)
	for i := range data {
		data[i], backing = backing[:words:words], backing[words:]
	}
	return &Matrix{rows: rows, cols: cols, words: words, data: data}
}

// FromRows builds a matrix that shares storage with the given packed row
// slices. Every row must have exactly gf.WordsForBits(cols) words, and bits
// at or beyond cols must be zero (PackBits guarantees this).
func FromRows(rows [][]uint64, cols int) (*Matrix, error) {
	words := gf.WordsForBits(cols)
	for i, r := range rows {
		if len(r) != words {
			return nil, fmt.Errorf("bitmat: row %d has %d words, want %d", i, len(r), words)
		}
	}
	return &Matrix{rows: len(rows), cols: cols, words: words, data: rows}, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		gf.SetBit(m.data[i], i)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element (0 or 1) at row i, column j.
func (m *Matrix) At(i, j int) byte {
	m.check(i, j)
	return gf.Bit(m.data[i], j)
}

// Set assigns the element at row i, column j; any odd value is 1.
func (m *Matrix) Set(i, j int, v byte) {
	m.check(i, j)
	mask := uint64(1) << (j % 64)
	if v&1 == 1 {
		m.data[i][j/64] |= mask
	} else {
		m.data[i][j/64] &^= mask
	}
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns packed row i. The returned slice shares storage with the
// matrix.
func (m *Matrix) Row(i int) []uint64 { return m.data[i] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	for i := range m.data {
		copy(c.data[i], m.data[i])
	}
	return c
}

// Equal reports whether m and o have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		for w := range m.data[i] {
			if m.data[i][w] != o.data[i][w] {
				return false
			}
		}
	}
	return true
}

// Rank returns the rank of the matrix. m is not modified.
func (m *Matrix) Rank() int {
	return m.Clone().RREF()
}

// RREF reduces the matrix to reduced row-echelon form in place and returns
// its rank. Elimination is blocked: for each pivot, every row with the pivot
// bit set is cleared in one fused strip-blocked pass over the pivot row
// (gf.XorWordsMulti), so the pivot row's memory streams once per strip no
// matter how many rows it eliminates.
func (m *Matrix) RREF() int {
	if m.rows == 0 {
		return 0
	}
	dsts := make([][]uint64, 0, m.rows)
	ones := make([]byte, m.rows)
	for i := range ones {
		ones[i] = 1
	}
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		w, mask := col/64, uint64(1)<<(col%64)
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r][w]&mask != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.data[rank], m.data[pivot] = m.data[pivot], m.data[rank]
		// Collect every other row with bit col set and clear them all in one
		// fused pass. No normalization step exists in GF(2): the pivot is 1.
		dsts = dsts[:0]
		for r := 0; r < m.rows; r++ {
			if r == rank || m.data[r][w]&mask == 0 {
				continue
			}
			dsts = append(dsts, m.data[r])
		}
		if len(dsts) > 0 {
			gf.XorWordsMulti(dsts, m.data[rank], ones[:len(dsts)])
		}
		rank++
	}
	return rank
}

// Inverse returns the inverse of a square matrix, or ErrSingular. Instead of
// packing an augmented [m|I] (whose right half would straddle word
// boundaries whenever cols%64 != 0), the Gauss-Jordan runs on a copy of m
// and mirrors every row operation onto an identity matrix, which therefore
// finishes as the inverse.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("bitmat: cannot invert %dx%d: %w", m.rows, m.cols, ErrSingular)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	dstsA := make([][]uint64, 0, n)
	dstsI := make([][]uint64, 0, n)
	ones := make([]byte, n)
	for i := range ones {
		ones[i] = 1
	}
	rank := 0
	for col := 0; col < n; col++ {
		w, mask := col/64, uint64(1)<<(col%64)
		pivot := -1
		for r := rank; r < n; r++ {
			if a.data[r][w]&mask != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		a.data[rank], a.data[pivot] = a.data[pivot], a.data[rank]
		inv.data[rank], inv.data[pivot] = inv.data[pivot], inv.data[rank]
		dstsA, dstsI = dstsA[:0], dstsI[:0]
		for r := 0; r < n; r++ {
			if r == rank || a.data[r][w]&mask == 0 {
				continue
			}
			dstsA = append(dstsA, a.data[r])
			dstsI = append(dstsI, inv.data[r])
		}
		if len(dstsA) > 0 {
			gf.XorWordsMulti(dstsA, a.data[rank], ones[:len(dstsA)])
			gf.XorWordsMulti(dstsI, inv.data[rank], ones[:len(dstsI)])
		}
		rank++
	}
	return inv, nil
}

// Mul returns the matrix product m * o over GF(2).
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("bitmat: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			if gf.Bit(m.data[i], k) == 1 {
				gf.XorWords(out.data[i], o.data[k])
			}
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%d", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
