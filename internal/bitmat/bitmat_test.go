package bitmat

import (
	"math/rand"
	"strconv"
	"testing"

	"ncfn/internal/gf"
	"ncfn/internal/matrix"
)

// randPair builds the same random GF(2) matrix twice: bit-packed and as a
// byte matrix, so every bitmat operation can be checked against the
// internal/matrix reference (GF(2) is a subfield of GF(2^8): 0/1 arithmetic
// agrees between the two).
func randPair(rng *rand.Rand, rows, cols int) (*Matrix, *matrix.Matrix) {
	bm := New(rows, cols)
	ref := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := byte(rng.Intn(2))
			bm.Set(i, j, v)
			ref.Set(i, j, v)
		}
	}
	return bm, ref
}

// sizes deliberately straddle the 64-bit word boundary.
var sizes = []int{1, 2, 7, 63, 64, 65, 100}

func TestNewAndSetAt(t *testing.T) {
	m := New(3, 70)
	if m.Rows() != 3 || m.Cols() != 70 {
		t.Fatalf("dims: %dx%d", m.Rows(), m.Cols())
	}
	m.Set(2, 69, 1)
	if m.At(2, 69) != 1 {
		t.Fatal("Set/At across word boundary failed")
	}
	m.Set(2, 69, 0)
	if m.At(2, 69) != 0 {
		t.Fatal("Set to 0 failed")
	}
	m.Set(1, 3, 0xFF) // any odd value is 1
	if m.At(1, 3) != 1 {
		t.Fatal("odd value must set the bit")
	}
}

func TestFromRowsSharesStorage(t *testing.T) {
	rows := [][]uint64{make([]uint64, 2), make([]uint64, 2)}
	m, err := FromRows(rows, 65)
	if err != nil {
		t.Fatal(err)
	}
	rows[1][1] = 1
	if m.At(1, 64) != 1 {
		t.Fatal("FromRows must share storage")
	}
	if _, err := FromRows([][]uint64{make([]uint64, 1)}, 65); err == nil {
		t.Fatal("short row must be rejected")
	}
}

func TestRankMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		for trial := 0; trial < 5; trial++ {
			bm, ref := randPair(rng, n, n)
			if got, want := bm.Rank(), ref.Rank(); got != want {
				t.Fatalf("n=%d trial %d: rank %d, want %d", n, trial, got, want)
			}
		}
	}
}

func TestRREFMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range sizes {
		rows := n/2 + 1
		bm, ref := randPair(rng, rows, n)
		rank := bm.RREF()
		refRank := ref.RREF()
		if rank != refRank {
			t.Fatalf("n=%d: RREF rank %d, want %d", n, rank, refRank)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				if bm.At(i, j) != ref.At(i, j) {
					t.Fatalf("n=%d: RREF differs at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestInverseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range sizes {
		// Draw until the matrix is invertible (probability ~0.289 for large n).
		var bm *Matrix
		var ref *matrix.Matrix
		for {
			bm, ref = randPair(rng, n, n)
			if ref.Rank() == n {
				break
			}
		}
		inv, err := bm.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		refInv, err := ref.Inverse()
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if inv.At(i, j) != refInv.At(i, j) {
					t.Fatalf("n=%d: inverse differs at (%d,%d)", n, i, j)
				}
			}
		}
		// And the algebraic check: m * inv = I.
		prod, err := bm.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(n)) {
			t.Fatalf("n=%d: m * m^-1 != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 0, 1) // duplicate row
	if _, err := m.Inverse(); err == nil {
		t.Fatal("singular matrix must not invert")
	}
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Fatal("non-square matrix must not invert")
	}
}

func TestCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := randPair(rng, 5, 70)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone must equal original")
	}
	c.Set(0, 69, 1-c.At(0, 69))
	if m.Equal(c) {
		t.Fatal("mutated clone must differ")
	}
	if m.Equal(New(5, 71)) || m.Equal(New(4, 70)) {
		t.Fatal("dimension mismatch must not be equal")
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	id := Identity(65)
	if id.Rank() != 65 {
		t.Fatal("identity must have full rank")
	}
	inv, err := id.Inverse()
	if err != nil || !inv.Equal(id) {
		t.Fatal("identity must be its own inverse")
	}
}

func TestRowIsPacked(t *testing.T) {
	m := New(1, 65)
	m.Set(0, 64, 1)
	row := m.Row(0)
	if len(row) != gf.WordsForBits(65) || row[1] != 1 {
		t.Fatalf("Row packing wrong: %v", row)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

// BenchmarkInverseBits compares the packed GF(2) inverse against the byte
// GF(2^8) blocked inverse on the same 0/1 matrices — the end-of-generation
// cost of the deferred decode engines.
func BenchmarkInverseBits(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 64, 128} {
		var bm *Matrix
		var ref *matrix.Matrix
		for {
			bm, ref = randPair(rng, n, n)
			if ref.Rank() == n {
				break
			}
		}
		b.Run("packed/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bm.Inverse(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("bytes/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ref.InverseBlocked(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRREFBits(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{64, 128} {
		bm, _ := randPair(rng, n, n)
		scratch := bm.Clone()
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := range scratch.data {
					copy(scratch.data[r], bm.data[r])
				}
				scratch.RREF()
			}
		})
	}
}
