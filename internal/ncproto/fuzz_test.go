package ncproto

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the wire parser against arbitrary datagrams: Decode
// must never panic, and anything it accepts must re-encode to the same
// bytes (parse/serialize round trip).
func FuzzDecode(f *testing.F) {
	p := &Packet{
		Flags:      FlagSystematic,
		Session:    7,
		Generation: 1234,
		Coeffs:     []byte{1, 2, 3, 4},
		Payload:    []byte("payload"),
	}
	f.Add(p.Encode(nil), 4)
	f.Add([]byte{Magic}, 0)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 2)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 0 || k > 255 {
			return
		}
		got, err := Decode(data, k)
		if err != nil {
			return
		}
		// Accepted packets must survive a round trip.
		re := got.Encode(nil)
		if !bytes.Equal(re, data[:got.WireLen()]) {
			t.Fatalf("round trip mismatch:\n in:  %x\n out: %x", data[:got.WireLen()], re)
		}
	})
}

// FuzzDecodeAck covers the ACK path.
func FuzzDecodeAck(f *testing.F) {
	f.Add(EncodeAck(Ack{Session: 3, Generation: 9}))
	f.Add([]byte{Magic, FlagControl})
	f.Fuzz(func(t *testing.T, data []byte) {
		ack, err := DecodeAck(data)
		if err != nil {
			return
		}
		re := EncodeAck(ack)
		if got, err := DecodeAck(re); err != nil || got != ack {
			t.Fatalf("ack round trip: %+v -> %+v (%v)", ack, got, err)
		}
	})
}
