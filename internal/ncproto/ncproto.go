// Package ncproto defines the network coding wire format of Sec. III-B.
//
// The network coding layer sits between the transport layer (UDP) and the
// application layer. Every NC packet starts with a header that carries the
// information the coding scheme needs — session ID, generation ID, and the
// encoding coefficient vector — "a total of 8 bytes plus the length of
// coefficients". With the paper's default of 4 blocks per generation the
// header is 12 bytes, and 12 + 8 (UDP) + 20 (IP) + 1460 (block) = 1500,
// the NIC MTU, so NC packets are never fragmented.
//
// Layout (big endian):
//
//	offset 0: Magic (1 byte, 0xNC = 0x9C)
//	offset 1: Flags (1 byte)
//	offset 2: SessionID (2 bytes)
//	offset 4: GenerationID (4 bytes)
//	offset 8: Coefficients (BlockCount bytes)
//	offset 8+n: payload (one coded block)
package ncproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies NC packets; VNFs check it to decide whether a received
// UDP datagram carries the network coding protocol header.
const Magic = 0x9C

// FixedHeaderLen is the length of the header before the coefficient vector.
const FixedHeaderLen = 8

// Flag bits.
const (
	// FlagSystematic marks an uncoded source block (identity coefficient
	// row). The data plane forwards the first packet of a generation
	// without recoding; systematic packets make that explicit.
	FlagSystematic = 1 << 0
	// FlagEndOfSession marks the final generation of a session so
	// receivers can tear down decoder state.
	FlagEndOfSession = 1 << 1
	// FlagControl marks in-band control packets (e.g. generation ACKs
	// flowing back from receivers to the source).
	FlagControl = 1 << 2
)

// Errors returned by Decode.
var (
	ErrTooShort = errors.New("ncproto: packet too short")
	ErrBadMagic = errors.New("ncproto: bad magic byte")
)

// SessionID identifies a multicast session; assigned by the controller.
type SessionID uint16

// GenerationID numbers generations within a session.
type GenerationID uint32

// Packet is a parsed NC packet.
type Packet struct {
	Flags      byte
	Session    SessionID
	Generation GenerationID
	// Coeffs is the encoding coefficient vector (one byte per block in the
	// generation).
	Coeffs []byte
	// Payload is the coded block.
	Payload []byte
}

// Systematic reports whether the packet carries an uncoded source block.
func (p *Packet) Systematic() bool { return p.Flags&FlagSystematic != 0 }

// EndOfSession reports whether the packet closes its session.
func (p *Packet) EndOfSession() bool { return p.Flags&FlagEndOfSession != 0 }

// Control reports whether the packet is in-band control traffic.
func (p *Packet) Control() bool { return p.Flags&FlagControl != 0 }

// WireLen returns the encoded length of the packet.
func (p *Packet) WireLen() int { return FixedHeaderLen + len(p.Coeffs) + len(p.Payload) }

// HeaderLen returns the NC header length for a generation of k blocks.
func HeaderLen(k int) int { return FixedHeaderLen + k }

// Encode serializes the packet into buf, which must have capacity for
// WireLen bytes, and returns the encoded slice. Passing a nil buf allocates.
func (p *Packet) Encode(buf []byte) []byte {
	n := p.WireLen()
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = Magic
	buf[1] = p.Flags
	binary.BigEndian.PutUint16(buf[2:], uint16(p.Session))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Generation))
	copy(buf[FixedHeaderLen:], p.Coeffs)
	copy(buf[FixedHeaderLen+len(p.Coeffs):], p.Payload)
	return buf
}

// Decode parses an NC packet with a k-coefficient header. The returned
// packet's Coeffs and Payload alias buf; callers that retain the packet
// beyond the lifetime of buf must Clone it.
func Decode(buf []byte, k int) (*Packet, error) {
	p := new(Packet)
	if err := DecodeInto(p, buf, k); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto parses an NC packet with a k-coefficient header into p,
// overwriting its fields. It performs no allocation: p's Coeffs and Payload
// are rebound to alias buf, so the data plane can reuse one Packet per
// worker. Callers that retain p beyond the lifetime of buf must Clone it.
func DecodeInto(p *Packet, buf []byte, k int) error {
	if len(buf) < FixedHeaderLen+k {
		return fmt.Errorf("%w: %d bytes, need at least %d", ErrTooShort, len(buf), FixedHeaderLen+k)
	}
	if buf[0] != Magic {
		return fmt.Errorf("%w: 0x%02X", ErrBadMagic, buf[0])
	}
	p.Flags = buf[1]
	p.Session = SessionID(binary.BigEndian.Uint16(buf[2:]))
	p.Generation = GenerationID(binary.BigEndian.Uint32(buf[4:]))
	p.Coeffs = buf[FixedHeaderLen : FixedHeaderLen+k : FixedHeaderLen+k]
	p.Payload = buf[FixedHeaderLen+k:]
	return nil
}

// Header is the fixed 8-byte NC header, parsed without touching the
// coefficient vector or payload. It is the value the data plane's receive
// goroutine needs to classify and dispatch a datagram (control vs data,
// which session shard) before any full parse.
type Header struct {
	Flags      byte
	Session    SessionID
	Generation GenerationID
}

// Systematic reports whether the packet carries an uncoded source block.
func (h Header) Systematic() bool { return h.Flags&FlagSystematic != 0 }

// EndOfSession reports whether the packet closes its session.
func (h Header) EndOfSession() bool { return h.Flags&FlagEndOfSession != 0 }

// Control reports whether the packet is in-band control traffic.
func (h Header) Control() bool { return h.Flags&FlagControl != 0 }

// PeekHeader parses the fixed header of an NC packet without allocating.
// It returns the bare sentinel errors (ErrTooShort, ErrBadMagic) unwrapped
// so the malformed-packet path is allocation-free too.
func PeekHeader(buf []byte) (Header, error) {
	if len(buf) < FixedHeaderLen {
		return Header{}, ErrTooShort
	}
	if buf[0] != Magic {
		return Header{}, ErrBadMagic
	}
	return Header{
		Flags:      buf[1],
		Session:    SessionID(binary.BigEndian.Uint16(buf[2:])),
		Generation: GenerationID(binary.BigEndian.Uint32(buf[4:])),
	}, nil
}

// IsNC reports whether buf plausibly starts with an NC header, used by VNFs
// to separate coded traffic from other datagrams arriving on the same port.
func IsNC(buf []byte) bool {
	return len(buf) >= FixedHeaderLen && buf[0] == Magic
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	return &Packet{
		Flags:      p.Flags,
		Session:    p.Session,
		Generation: p.Generation,
		Coeffs:     append([]byte(nil), p.Coeffs...),
		Payload:    append([]byte(nil), p.Payload...),
	}
}

// Ack is the in-band acknowledgement a receiver returns to the source once
// it has decoded a generation; the file-transfer application uses it for
// reliable delivery and the delay experiments (Table II) time it.
type Ack struct {
	Session    SessionID
	Generation GenerationID
}

// EncodeAck serializes an ACK as a control packet with no payload.
func EncodeAck(a Ack) []byte {
	p := Packet{Flags: FlagControl, Session: a.Session, Generation: a.Generation}
	return p.Encode(nil)
}

// ErrNotControl is returned by DecodeAck for well-formed non-control
// packets.
var ErrNotControl = errors.New("ncproto: not a control packet")

// DecodeAck parses a control packet produced by EncodeAck. It does not
// allocate.
func DecodeAck(buf []byte) (Ack, error) {
	h, err := PeekHeader(buf)
	if err != nil {
		return Ack{}, err
	}
	if !h.Control() {
		return Ack{}, ErrNotControl
	}
	return Ack{Session: h.Session, Generation: h.Generation}, nil
}
