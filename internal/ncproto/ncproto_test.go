package ncproto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestHeaderLenMatchesPaper(t *testing.T) {
	// "a total of 8 bytes plus the length of coefficients ... the NC
	// header (12 bytes, with 4 blocks in each generation)".
	if got := HeaderLen(4); got != 12 {
		t.Fatalf("HeaderLen(4) = %d, want 12", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Flags:      FlagSystematic,
		Session:    0xBEEF,
		Generation: 0xDEADBEEF,
		Coeffs:     []byte{1, 0, 0, 0},
		Payload:    []byte("hello world"),
	}
	buf := p.Encode(nil)
	if len(buf) != p.WireLen() {
		t.Fatalf("encoded %d bytes, want %d", len(buf), p.WireLen())
	}
	got, err := Decode(buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != p.Flags || got.Session != p.Session || got.Generation != p.Generation {
		t.Fatalf("header mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Coeffs, p.Coeffs) || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("body mismatch")
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	p := &Packet{Coeffs: []byte{1, 2}, Payload: []byte{3}}
	buf := make([]byte, 0, 64)
	out := p.Encode(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("Encode did not reuse provided buffer")
	}
}

func TestEncodeAllocatesWhenSmall(t *testing.T) {
	p := &Packet{Coeffs: []byte{1, 2, 3, 4}, Payload: make([]byte, 100)}
	out := p.Encode(make([]byte, 0, 4))
	if len(out) != p.WireLen() {
		t.Fatal("Encode with small buffer returned wrong length")
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, err := Decode([]byte{Magic, 0, 0}, 4); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	buf := make([]byte, 20)
	buf[0] = 0x42
	if _, err := Decode(buf, 4); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeAliasesInput(t *testing.T) {
	p := &Packet{Coeffs: []byte{9, 8}, Payload: []byte{7, 6, 5}}
	buf := p.Encode(nil)
	got, _ := Decode(buf, 2)
	buf[FixedHeaderLen] = 0xFF
	if got.Coeffs[0] != 0xFF {
		t.Fatal("Decode should alias the input buffer")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := &Packet{Coeffs: []byte{1}, Payload: []byte{2}}
	c := p.Clone()
	c.Coeffs[0] = 9
	c.Payload[0] = 9
	if p.Coeffs[0] != 1 || p.Payload[0] != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestFlags(t *testing.T) {
	p := &Packet{Flags: FlagSystematic | FlagEndOfSession | FlagControl}
	if !p.Systematic() || !p.EndOfSession() || !p.Control() {
		t.Fatal("flag accessors wrong")
	}
	q := &Packet{}
	if q.Systematic() || q.EndOfSession() || q.Control() {
		t.Fatal("zero flags should all be false")
	}
}

func TestIsNC(t *testing.T) {
	p := &Packet{Coeffs: []byte{1, 2, 3, 4}, Payload: []byte{5}}
	if !IsNC(p.Encode(nil)) {
		t.Fatal("IsNC false for valid packet")
	}
	if IsNC([]byte{0x00, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatal("IsNC true for wrong magic")
	}
	if IsNC([]byte{Magic}) {
		t.Fatal("IsNC true for truncated packet")
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := Ack{Session: 7, Generation: 1234567}
	buf := EncodeAck(a)
	got, err := DecodeAck(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("ack round trip: got %+v want %+v", got, a)
	}
}

func TestDecodeAckRejectsData(t *testing.T) {
	p := &Packet{Session: 1}
	if _, err := DecodeAck(p.Encode(nil)); err == nil {
		t.Fatal("non-control packet accepted as ack")
	}
}

func TestDecodeAckRejectsGarbage(t *testing.T) {
	if _, err := DecodeAck([]byte{1, 2}); err == nil {
		t.Fatal("garbage accepted as ack")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(flags byte, sess uint16, gen uint32, coeffs, payload []byte) bool {
		if len(coeffs) > 255 {
			coeffs = coeffs[:255]
		}
		p := &Packet{
			Flags:      flags,
			Session:    SessionID(sess),
			Generation: GenerationID(gen),
			Coeffs:     coeffs,
			Payload:    payload,
		}
		got, err := Decode(p.Encode(nil), len(coeffs))
		if err != nil {
			return false
		}
		return got.Flags == p.Flags &&
			got.Session == p.Session &&
			got.Generation == p.Generation &&
			bytes.Equal(got.Coeffs, coeffs) &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := &Packet{Coeffs: make([]byte, 4), Payload: make([]byte, 1460)}
	buf := make([]byte, 0, p.WireLen())
	b.SetBytes(int64(p.WireLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Encode(buf)
	}
}

func BenchmarkDecode(b *testing.B) {
	p := &Packet{Coeffs: make([]byte, 4), Payload: make([]byte, 1460)}
	buf := p.Encode(nil)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekHeaderMatchesDecode(t *testing.T) {
	p := &Packet{
		Flags:      FlagSystematic | FlagEndOfSession,
		Session:    0xBEEF,
		Generation: 0x01020304,
		Coeffs:     []byte{1, 2, 3, 4},
		Payload:    []byte{9, 8, 7},
	}
	buf := p.Encode(nil)
	h, err := PeekHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags != p.Flags || h.Session != p.Session || h.Generation != p.Generation {
		t.Fatalf("header = %+v, want fields of %+v", h, p)
	}
	if h.Control() || !h.Systematic() || !h.EndOfSession() {
		t.Fatal("header flag accessors wrong")
	}
	if _, err := PeekHeader([]byte{Magic, 0}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short peek: %v", err)
	}
	if _, err := PeekHeader([]byte{0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic peek: %v", err)
	}
}

func TestDecodeIntoReusesPacket(t *testing.T) {
	var p Packet
	a := (&Packet{Session: 1, Generation: 2, Coeffs: []byte{1, 2}, Payload: []byte{3}}).Encode(nil)
	b := (&Packet{Session: 9, Generation: 8, Coeffs: []byte{7, 6}, Payload: []byte{5}}).Encode(nil)
	if err := DecodeInto(&p, a, 2); err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(&p, b, 2); err != nil {
		t.Fatal(err)
	}
	if p.Session != 9 || p.Generation != 8 || p.Coeffs[0] != 7 || p.Payload[0] != 5 {
		t.Fatalf("reused packet holds stale fields: %+v", p)
	}
	if &p.Coeffs[0] != &b[FixedHeaderLen] {
		t.Fatal("DecodeInto did not alias the packet buffer")
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	// The steady-state packet path encodes into a reused buffer, peeks
	// the fixed header, and decodes in place — none of it may allocate.
	p := &Packet{Session: 3, Generation: 4, Coeffs: []byte{1, 2, 3, 4}, Payload: make([]byte, 1460)}
	wire := p.Encode(nil)
	scratch := make([]byte, 0, p.WireLen())
	var parsed Packet
	cases := map[string]func(){
		"Encode":     func() { p.Encode(scratch) },
		"PeekHeader": func() { _, _ = PeekHeader(wire) },
		"DecodeInto": func() { _ = DecodeInto(&parsed, wire, 4) },
		"DecodeAck":  func() { _, _ = DecodeAck(wire) },
		"PeekBad":    func() { _, _ = PeekHeader(wire[:3]) },
	}
	for name, f := range cases {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", name, allocs)
		}
	}
}
