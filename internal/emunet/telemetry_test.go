package emunet

import (
	"testing"

	"ncfn/internal/telemetry"
)

// TestLinkTelemetryCountsTraffic pins per-link utilization accounting: every
// admitted packet bumps the directed link's counter and the network-wide
// aggregate, and the queue-depth gauge is published.
func TestLinkTelemetryCountsTraffic(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := NewNetwork(WithTelemetry(reg))
	defer n.Close()
	a := n.Host("a")
	n.Host("b")
	n.SetLink("a", "b", LinkConfig{})

	const sends = 7
	for i := 0; i < sends; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricNetTxPackets]; got != sends {
		t.Fatalf("net tx = %d, want %d", got, sends)
	}
	if got := snap.Counters[MetricLinkTxPrefix+"a->b"]; got != sends {
		t.Fatalf("link tx = %d, want %d", got, sends)
	}
	if _, ok := snap.Gauges[MetricLinkQueuedPrefix+"a->b"]; !ok {
		t.Fatal("queue-depth gauge missing")
	}
	if snap.Counters[MetricNetDroppedPackets] != 0 {
		t.Fatal("perfect link counted drops")
	}
}

// TestLinkTelemetryCountsDrops pins drop accounting: queue overflow on a
// slow link lands in both the per-link and network-wide drop counters, and
// the link's own LinkStats agree with the telemetry view.
func TestLinkTelemetryCountsDrops(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := NewNetwork(WithTelemetry(reg))
	defer n.Close()
	a := n.Host("a")
	n.Host("b")
	n.SetLink("a", "b", LinkConfig{RateBps: 1e3, QueuePackets: 4})

	pkt := make([]byte, 1000)
	for i := 0; i < 50; i++ {
		if err := a.Send("b", pkt); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := n.LinkStats("a", "b")
	if !ok || st.Dropped == 0 {
		t.Fatalf("link stats = %+v", st)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricLinkDropPrefix+"a->b"]; got != uint64(st.Dropped) {
		t.Fatalf("telemetry link drops = %d, LinkStats = %d", got, st.Dropped)
	}
	if got := snap.Counters[MetricNetDroppedPackets]; got != uint64(st.Dropped) {
		t.Fatalf("net drops = %d, LinkStats = %d", got, st.Dropped)
	}
	if got := snap.Counters[MetricLinkTxPrefix+"a->b"]; got != uint64(st.Sent) {
		t.Fatalf("telemetry link tx = %d, LinkStats sent = %d", got, st.Sent)
	}
}

// TestFaultInjectionTraced pins the fault flight recorder: partitions count
// as injections (value 1), heals are traced with value 0 and do not bump
// the injection counter.
func TestFaultInjectionTraced(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := NewNetwork(WithTelemetry(reg), AllowDefault())
	defer n.Close()
	n.Host("a")
	n.Host("b")

	n.PartitionLink("a", "b")
	n.HealLink("a", "b")
	n.PartitionHost("b")
	n.HealAll()

	snap := reg.Snapshot()
	if got := snap.Counters[MetricNetFaults]; got != 2 {
		t.Fatalf("fault injections = %d, want 2 (one link, one host)", got)
	}
	rec := reg.Recorder(NetFlightName, telemetry.DefaultRecorderCapacity)
	evs := rec.EventsOf(telemetry.EventFault)
	if len(evs) != 4 {
		t.Fatalf("fault events = %d, want 4 (2 injections + 2 heals)", len(evs))
	}
	var injected, healed int
	for _, e := range evs {
		switch e.Value {
		case 1:
			injected++
		case 0:
			healed++
		default:
			t.Fatalf("fault event value = %d", e.Value)
		}
		if e.Node == "" {
			t.Fatal("fault event missing victim label")
		}
	}
	if injected != 2 || healed != 2 {
		t.Fatalf("injected/healed = %d/%d, want 2/2", injected, healed)
	}
}

// TestTelemetryOptionalByDefault pins the zero-cost default: a network
// without WithTelemetry moves packets without touching any registry.
func TestTelemetryOptionalByDefault(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	a := n.Host("a")
	n.Host("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.PartitionHost("b")
	n.HealAll()
}
