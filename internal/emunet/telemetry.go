package emunet

import (
	"ncfn/internal/telemetry"
)

// Telemetry instrument names. Per-link instruments append the directed link
// name ("src->dst") after the colon.
const (
	MetricNetTxPackets      = "emunet_tx_packets"
	MetricNetDroppedPackets = "emunet_dropped_packets"
	MetricNetFaults         = "emunet_fault_injections"
	MetricLinkTxPrefix      = "emunet_link_tx:"
	MetricLinkDropPrefix    = "emunet_link_drop:"
	MetricLinkQueuedPrefix  = "emunet_link_queued:"
	NetFlightName           = "emunet_flight"
)

// UDP transport instrument names (udp.go). Counters are striped two ways:
// cell 0 accumulates rx-side events, cell 1 tx-side.
const (
	MetricUDPSyscalls  = "emunet_udp_syscalls"
	MetricUDPTxPackets = "emunet_udp_tx_packets"
	MetricUDPRxPackets = "emunet_udp_rx_packets"
	MetricUDPRxDropped = "emunet_udp_rx_dropped"
	MetricUDPReadErrs  = "emunet_udp_read_errors"
	MetricUDPBatchSize = "emunet_udp_batch_size"
	UDPFlightName      = "emunet_udp_flight"
)

// Counter cells for the UDP instruments.
const (
	udpRxCell = 0
	udpTxCell = 1
)

// udpTelemetry is one UDP socket's instrument set. Every UDPConn has one
// (on a private registry unless WithUDPTelemetry shares it), so the hot
// paths never nil-check.
type udpTelemetry struct {
	// syscalls counts datagram I/O syscalls, including EAGAIN retries; the
	// headline efficiency ratio is syscalls / (rxPkts + txPkts).
	syscalls *telemetry.Counter
	txPkts   *telemetry.Counter
	rxPkts   *telemetry.Counter
	// rxDropped counts packets discarded because the inbox was full — the
	// userspace analogue of an SO_RCVBUF overflow.
	rxDropped *telemetry.Counter
	readErrs  *telemetry.Counter
	// batch observes datagrams moved per successful I/O syscall; a mass at
	// 1 means batching is not engaging.
	batch *telemetry.Histogram
	rec   *telemetry.Recorder
}

// newUDPTelemetry resolves the socket instrument set from reg. Instruments
// are named (not per-socket), so sockets sharing a registry aggregate.
func newUDPTelemetry(reg *telemetry.Registry) udpTelemetry {
	return udpTelemetry{
		syscalls:  reg.Counter(MetricUDPSyscalls, 2),
		txPkts:    reg.Counter(MetricUDPTxPackets, 2),
		rxPkts:    reg.Counter(MetricUDPRxPackets, 2),
		rxDropped: reg.Counter(MetricUDPRxDropped, 2),
		readErrs:  reg.Counter(MetricUDPReadErrs, 2),
		batch:     reg.Histogram(MetricUDPBatchSize),
		rec:       reg.Recorder(UDPFlightName, telemetry.DefaultRecorderCapacity),
	}
}

// netTelemetry is the network-wide instrument set; individual links carry
// their own linkTel handles resolved from the same registry.
type netTelemetry struct {
	reg    *telemetry.Registry
	tx     *telemetry.Counter
	drops  *telemetry.Counter
	faults *telemetry.Counter
	rec    *telemetry.Recorder
}

// linkTel is one directed link's counter handles. The link updates them
// alongside its mutex-guarded counters, so registry snapshots see live
// per-link utilization without touching link locks. netSent/netDropped are
// the network-wide aggregates, bumped in lockstep.
type linkTel struct {
	sent       *telemetry.Counter
	dropped    *telemetry.Counter
	netSent    *telemetry.Counter
	netDropped *telemetry.Counter
}

// WithTelemetry attaches the network's instruments — aggregate tx/drop
// counters, per-link utilization, and a fault-injection flight recorder —
// to the given registry. Without this option the network records nothing.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(n *Network) {
		if reg == nil {
			return
		}
		n.tel = &netTelemetry{
			reg:    reg,
			tx:     reg.Counter(MetricNetTxPackets, 1),
			drops:  reg.Counter(MetricNetDroppedPackets, 1),
			faults: reg.Counter(MetricNetFaults, 1),
			rec:    reg.Recorder(NetFlightName, telemetry.DefaultRecorderCapacity),
		}
	}
}

// instrumentLinkLocked resolves a fresh link's telemetry handles and
// publishes its queue-depth gauge. Callers hold the network mutex.
func (n *Network) instrumentLinkLocked(src, dst string, l *link) {
	if n.tel == nil {
		return
	}
	name := src + "->" + dst
	l.tel = &linkTel{
		sent:       n.tel.reg.Counter(MetricLinkTxPrefix+name, 1),
		dropped:    n.tel.reg.Counter(MetricLinkDropPrefix+name, 1),
		netSent:    n.tel.tx,
		netDropped: n.tel.drops,
	}
	n.tel.reg.GaugeFunc(MetricLinkQueuedPrefix+name, func() int64 {
		return int64(l.stats().Queued)
	})
}

// recordFault traces one fault injection or heal. Value is 1 for an
// injected fault and 0 for a heal; node names the victim ("addr" for host
// faults, "src->dst" for link faults).
func (n *Network) recordFault(now int64, node string, injected bool) {
	if n.tel == nil {
		return
	}
	v := int64(0)
	if injected {
		v = 1
		n.tel.faults.Inc(0)
	}
	n.tel.rec.Record(now, telemetry.EventFault, node, 0, 0, v)
}
