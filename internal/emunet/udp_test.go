package emunet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/telemetry"
)

// udpPair opens two conns on loopback sharing a registry and returns them
// with their (private) telemetry registries.
func udpPair(t *testing.T, opts ...UDPOption) (*UDPConn, *UDPConn, *telemetry.Registry, *telemetry.Registry) {
	t.Helper()
	reg := NewRegistry()
	ta, tb := telemetry.NewRegistry(), telemetry.NewRegistry()
	a, err := ListenUDP("a", "127.0.0.1:0", reg, append([]UDPOption{WithUDPTelemetry(ta)}, opts...)...)
	if err != nil {
		t.Fatalf("listen a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenUDP("b", "127.0.0.1:0", reg, append([]UDPOption{WithUDPTelemetry(tb)}, opts...)...)
	if err != nil {
		t.Fatalf("listen b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b, ta, tb
}

func recvDeadline(t *testing.T, c *UDPConn) ([]byte, string) {
	t.Helper()
	type res struct {
		pkt []byte
		src string
		err error
	}
	ch := make(chan res, 1)
	go func() {
		pkt, src, err := c.Recv()
		ch <- res{pkt, src, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.pkt, r.src
	case <-time.After(5 * time.Second):
		t.Fatalf("recv: timeout")
		return nil, ""
	}
}

func TestUDPSendRecv(t *testing.T) {
	a, b, _, _ := udpPair(t)
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	pkt, src := recvDeadline(t, b)
	if src != "a" || string(pkt) != "hello" {
		t.Fatalf("got %q from %q, want \"hello\" from \"a\"", pkt, src)
	}
	buffer.PutPacket(pkt)
}

func TestUDPBatchRoundTrip(t *testing.T) {
	a, b, ta, _ := udpPair(t)
	const n = 48
	batch := make([]Datagram, n)
	for i := range batch {
		batch[i] = Datagram{Peer: "b", Pkt: []byte(fmt.Sprintf("pkt-%03d", i))}
	}
	sent, err := a.SendBatch(batch)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if sent != n {
		t.Fatalf("SendBatch sent %d, want %d", sent, n)
	}
	// Collect all n, via RecvBatch, preserving order.
	got := make([]Datagram, 0, n)
	buf := make([]Datagram, 16)
	for len(got) < n {
		k, err := b.RecvBatch(buf)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		got = append(got, buf[:k]...)
	}
	for i, d := range got {
		if d.Peer != "a" {
			t.Fatalf("packet %d from %q, want \"a\"", i, d.Peer)
		}
		if want := fmt.Sprintf("pkt-%03d", i); string(d.Pkt) != want {
			t.Fatalf("packet %d = %q, want %q (reordered?)", i, d.Pkt, want)
		}
		buffer.PutPacket(d.Pkt)
	}
	// The headline acceptance ratio: at batch depth >=16 the tx side must
	// spend well under one syscall per 8 packets. Only meaningful when the
	// platform batches; the portable path is 1:1 by construction.
	if batchIOSupported {
		snap := counterValue(ta, MetricUDPSyscalls)
		if snap > n/8 {
			t.Fatalf("tx syscalls = %d for %d packets, want <= %d", snap, n, n/8)
		}
	}
}

func counterValue(reg *telemetry.Registry, name string) int {
	return int(reg.Snapshot().Counters[name])
}

// TestUDPBatchMixedRoutes pins SendBatch's skip-and-continue contract:
// unroutable entries are reported but do not block the rest of the batch.
func TestUDPBatchMixedRoutes(t *testing.T) {
	a, b, _, _ := udpPair(t)
	batch := []Datagram{
		{Peer: "b", Pkt: []byte("one")},
		{Peer: "nowhere", Pkt: []byte("lost")},
		{Peer: "b", Pkt: []byte("two")},
	}
	sent, err := a.SendBatch(batch)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("SendBatch err = %v, want ErrNoRoute", err)
	}
	if sent != 2 {
		t.Fatalf("SendBatch sent %d, want 2", sent)
	}
	for _, want := range []string{"one", "two"} {
		pkt, _ := recvDeadline(t, b)
		if string(pkt) != want {
			t.Fatalf("got %q, want %q", pkt, want)
		}
		buffer.PutPacket(pkt)
	}
}

// TestUDPDifferentialPortable pins the portable fallback byte-identical to
// the platform-batched path: the same logical sequence sent through both
// kinds of conn arrives with the same payloads in the same order.
func TestUDPDifferentialPortable(t *testing.T) {
	sizes := []int{1, 13, 256, 1024, 2048, 9000}
	mkBatch := func() []Datagram {
		var batch []Datagram
		seq := 0
		for _, sz := range sizes {
			pkt := make([]byte, sz)
			for i := range pkt {
				pkt[i] = byte(seq + i)
			}
			seq++
			batch = append(batch, Datagram{Peer: "sink", Pkt: pkt})
		}
		return batch
	}
	run := func(t *testing.T, senderOpts, sinkOpts []UDPOption) [][]byte {
		reg := NewRegistry()
		sink, err := ListenUDP("sink", "127.0.0.1:0", reg, sinkOpts...)
		if err != nil {
			t.Fatalf("listen sink: %v", err)
		}
		defer sink.Close()
		src, err := ListenUDP("src", "127.0.0.1:0", reg, senderOpts...)
		if err != nil {
			t.Fatalf("listen src: %v", err)
		}
		defer src.Close()
		batch := mkBatch()
		if sent, err := src.SendBatch(batch); err != nil || sent != len(batch) {
			t.Fatalf("SendBatch: sent %d err %v", sent, err)
		}
		var got [][]byte
		for range batch {
			pkt, from := recvDeadline(t, sink)
			if from != "src" {
				t.Fatalf("from %q, want \"src\"", from)
			}
			got = append(got, append([]byte(nil), pkt...))
			buffer.PutPacket(pkt)
		}
		return got
	}
	batched := run(t, nil, nil)
	portable := run(t, []UDPOption{WithPortableIO()}, []UDPOption{WithPortableIO()})
	if len(batched) != len(portable) {
		t.Fatalf("batched delivered %d, portable %d", len(batched), len(portable))
	}
	for i := range batched {
		if string(batched[i]) != string(portable[i]) {
			t.Fatalf("packet %d differs between batched and portable paths (len %d vs %d)",
				i, len(batched[i]), len(portable[i]))
		}
	}
}

// TestUDPRxOverflowDrop overflows a slow consumer and checks the drops are
// accounted — the satellite fix for the formerly silent default: branch.
func TestUDPRxOverflowDrop(t *testing.T) {
	reg := NewRegistry()
	sinkTel := telemetry.NewRegistry()
	// A 4-packet inbox and a consumer that never reads: everything past
	// the inbox + kernel buffer must be counted as dropped.
	sink, err := ListenUDP("sink", "127.0.0.1:0", reg,
		WithUDPTelemetry(sinkTel), WithUDPInbox(4))
	if err != nil {
		t.Fatalf("listen sink: %v", err)
	}
	defer sink.Close()
	src, err := ListenUDP("src", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("listen src: %v", err)
	}
	defer src.Close()

	pkt := make([]byte, 1024)
	const total = 512
	for i := 0; i < total; i++ {
		if err := src.Send("sink", pkt); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(sinkTel, MetricUDPRxDropped) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rx drops accounted after %d sends into a 4-packet inbox", total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	dropped := counterValue(sinkTel, MetricUDPRxDropped)
	// The flight recorder must carry matching drop events.
	foundDrop := false
	for _, e := range sinkTel.Snapshot().Events {
		if e.Type == telemetry.EventPacketDrop && e.Node == "sink" {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Fatalf("counted %d drops but flight recorder has no drop event", dropped)
	}
}

// TestUDPReadLoopExitsOnDeadSocket kills the socket underneath a live conn
// and checks the read loop exits instead of spinning hot on EBADF, and
// that reopening on the same port restores traffic.
func TestUDPReadLoopExitsOnDeadSocket(t *testing.T) {
	reg := NewRegistry()
	tel := telemetry.NewRegistry()
	c, err := ListenUDP("victim", "127.0.0.1:0", reg, WithUDPTelemetry(tel))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := c.UDPAddr()
	// Close the socket directly (not via Close), as a runtime fault would.
	c.conn.Close()
	exited := make(chan struct{})
	go func() {
		c.readerWG.Wait()
		close(exited)
	}()
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatalf("read loop still running 5s after socket death (hot spin?)")
	}
	if err := c.Close(); err == nil {
		t.Log("close after socket death returned nil")
	}
	// Reopen on the same port: the name rebinds and traffic flows again.
	c2, err := ListenUDP("victim", addr.String(), reg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	src, err := ListenUDP("src", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("listen src: %v", err)
	}
	defer src.Close()
	if err := src.Send("victim", []byte("back")); err != nil {
		t.Fatalf("send after reopen: %v", err)
	}
	pkt, _ := recvDeadline(t, c2)
	if string(pkt) != "back" {
		t.Fatalf("got %q after reopen, want \"back\"", pkt)
	}
	buffer.PutPacket(pkt)
}

// TestUDPReadErrBackoff unit-tests the backoff classifier: transient
// errors sleep with exponential growth up to the cap; close and dead-
// socket errors exit.
func TestUDPReadErrBackoff(t *testing.T) {
	reg := NewRegistry()
	tel := telemetry.NewRegistry()
	c, err := ListenUDP("x", "127.0.0.1:0", reg, WithUDPTelemetry(tel))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer c.Close()

	transient := errors.New("transient socket error")
	var backoff time.Duration
	start := time.Now()
	for i := 0; i < 4; i++ {
		if !c.readErr(&backoff, transient) {
			t.Fatalf("readErr(transient) = false on attempt %d, want retry", i)
		}
	}
	// 1+2+4+8 ms of backoff, minus scheduler slop.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("4 transient errors backed off only %v, want >= ~15ms", elapsed)
	}
	if backoff != 8*readBackoffMin {
		t.Fatalf("backoff = %v after 4 errors, want %v", backoff, 8*readBackoffMin)
	}
	for i := 0; i < 20; i++ {
		c.readErr(&backoff, transient)
		if backoff > readBackoffMax {
			t.Fatalf("backoff %v exceeded cap %v", backoff, readBackoffMax)
		}
	}
	if backoff != readBackoffMax {
		t.Fatalf("backoff = %v after many errors, want cap %v", backoff, readBackoffMax)
	}
	if got := counterValue(tel, MetricUDPReadErrs); got < 24 {
		t.Fatalf("read-error counter = %d, want >= 24", got)
	}
	// A dead socket exits without waiting out the (capped) backoff.
	if c.readErr(&backoff, net.ErrClosed) {
		t.Fatal("readErr(net.ErrClosed) = true, want exit")
	}
	// After Close, any error exits immediately.
	c.Close()
	if c.readErr(&backoff, transient) {
		t.Fatal("readErr after Close = true, want exit")
	}
}

func TestRegistryReverse(t *testing.T) {
	reg := NewRegistry()
	a1 := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 7001}
	a2 := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 7002}
	reg.Register("n1", a1)
	if got := reg.reverse(a1); got != "n1" {
		t.Fatalf("reverse = %q, want n1", got)
	}
	// Unknown addresses fall back to formatting.
	if got := reg.reverse(a2); got != a2.String() {
		t.Fatalf("reverse(unknown) = %q, want %q", got, a2.String())
	}
	// Re-registering moves the binding and retires the stale reverse entry.
	reg.Register("n1", a2)
	if got := reg.reverse(a2); got != "n1" {
		t.Fatalf("reverse after move = %q, want n1", got)
	}
	if got := reg.reverse(a1); got != a1.String() {
		t.Fatalf("stale reverse entry survived: %q", got)
	}
	// v4 and v4-in-v6 forms of the same address resolve identically.
	reg.Register("n2", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 2).To4(), Port: 9000})
	mapped := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 2).To16(), Port: 9000}
	if got := reg.reverse(mapped); got != "n2" {
		t.Fatalf("reverse(v4-mapped) = %q, want n2", got)
	}
}

// TestRegistryReverseZeroAlloc pins the rx-path lookup allocation-free.
func TestRegistryReverseZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	addrs := make([]*net.UDPAddr, 256)
	for i := range addrs {
		addrs[i] = &net.UDPAddr{IP: net.IPv4(10, 0, byte(i/256), byte(i%256)), Port: 9000 + i}
		reg.Register(fmt.Sprintf("node-%d", i), addrs[i])
	}
	target := addrs[137]
	if n := testing.AllocsPerRun(100, func() {
		if reg.reverse(target) != "node-137" {
			t.Fatal("wrong reverse result")
		}
	}); n != 0 {
		t.Fatalf("reverse allocates %v per op, want 0", n)
	}
}

// BenchmarkRegistryReverse shows the reverse lookup is O(1): the same cost
// at 16 and 4096 registered peers.
func BenchmarkRegistryReverse(b *testing.B) {
	for _, size := range []int{16, 4096} {
		b.Run(fmt.Sprintf("peers=%d", size), func(b *testing.B) {
			reg := NewRegistry()
			var target *net.UDPAddr
			for i := 0; i < size; i++ {
				a := &net.UDPAddr{IP: net.IPv4(10, byte(i>>16), byte(i>>8), byte(i)), Port: 1024 + i%60000}
				reg.Register(fmt.Sprintf("node-%d", i), a)
				if i == size/2 {
					target = a
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if reg.reverse(target) == "" {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkUDPSendBatch compares the per-packet send path against the
// batched path at depth 16 over a real loopback socket, at a small
// (syscall-dominated) and a large (copy-dominated) payload. The receiver
// drains continuously so the kernel buffer never pushes back.
func BenchmarkUDPSendBatch(b *testing.B) {
	const depth = 16
	for _, tc := range []struct {
		mode    string
		payload int
	}{
		{"single", 128}, {"batch16", 128},
		{"single", 1024}, {"batch16", 1024},
	} {
		mode, payload := tc.mode, tc.payload
		b.Run(fmt.Sprintf("%s-%dB", mode, payload), func(b *testing.B) {
			reg := NewRegistry()
			sink, err := ListenUDP("sink", "127.0.0.1:0", reg)
			if err != nil {
				b.Fatalf("listen sink: %v", err)
			}
			defer sink.Close()
			src, err := ListenUDP("src", "127.0.0.1:0", reg)
			if err != nil {
				b.Fatalf("listen src: %v", err)
			}
			defer src.Close()
			go func() {
				for {
					pkt, _, err := sink.Recv()
					if err != nil {
						return
					}
					buffer.PutPacket(pkt)
				}
			}()
			pkt := make([]byte, payload)
			batch := make([]Datagram, depth)
			for i := range batch {
				batch[i] = Datagram{Peer: "sink", Pkt: pkt}
			}
			b.SetBytes(int64(depth * payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "single" {
					for j := 0; j < depth; j++ {
						if err := src.Send("sink", pkt); err != nil {
							b.Fatalf("send: %v", err)
						}
					}
				} else {
					if _, err := src.SendBatch(batch); err != nil {
						b.Fatalf("SendBatch: %v", err)
					}
				}
			}
		})
	}
}

// TestUDPDualStackBatch exercises the v6-socket descriptor paths: a
// dual-stack sender reaches a plain v4 sink via v4-mapped sockaddrs and a
// v6 sink natively, including a zero-length datagram, and the v6 sink's
// recvmmsg loop resolves a registered v6 peer without allocating.
func TestUDPDualStackBatch(t *testing.T) {
	reg := NewRegistry()
	sink4, err := ListenUDP("sink4", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("listen sink4: %v", err)
	}
	defer sink4.Close()
	src, err := ListenUDP("src", "[::]:0", reg)
	if err != nil {
		t.Skipf("no dual-stack v6 socket on this host: %v", err)
	}
	defer src.Close()
	sink6, err := ListenUDP("sink6", "[::1]:0", reg)
	if err != nil {
		t.Skipf("no v6 loopback on this host: %v", err)
	}
	defer sink6.Close()

	// v4-mapped destination plus an empty payload through the same batch.
	if n, err := src.SendBatch([]Datagram{
		{Peer: "sink4", Pkt: []byte("mapped")},
		{Peer: "sink4", Pkt: nil},
	}); err != nil || n != 2 {
		t.Fatalf("SendBatch to v4 sink: n=%d err=%v", n, err)
	}
	pkt, from := recvDeadline(t, sink4)
	if string(pkt) != "mapped" {
		t.Fatalf("v4 sink got %q", pkt)
	}
	// The sender is registered at the wildcard address, so the sink cannot
	// reverse-map it: the portable-style host:port fallback applies.
	if from == "" || from == "src" {
		t.Fatalf("expected fallback source name, got %q", from)
	}
	if pkt, _ := recvDeadline(t, sink4); len(pkt) != 0 {
		t.Fatalf("zero-length datagram arrived with %d bytes", len(pkt))
	}

	// Native v6 destination; the sink learns the sender's real v6 source
	// address once it is registered under a name.
	srcPort := src.UDPAddr().Port
	reg.Register("peer6", &net.UDPAddr{IP: net.ParseIP("::1"), Port: srcPort})
	if n, err := src.SendBatch([]Datagram{{Peer: "sink6", Pkt: []byte("native6")}}); err != nil || n != 1 {
		t.Fatalf("SendBatch to v6 sink: n=%d err=%v", n, err)
	}
	pkt, from = recvDeadline(t, sink6)
	if string(pkt) != "native6" || from != "peer6" {
		t.Fatalf("v6 sink got %q from %q, want native6 from peer6", pkt, from)
	}
}

// TestUDPFamilyMismatchSkipped pins the sendBatch contract for a v4 socket
// asked to reach a v6 peer: the entry is skipped with an error while the
// rest of the batch still goes out.
func TestUDPFamilyMismatchSkipped(t *testing.T) {
	a, b, _, _ := udpPair(t)
	a.registry.Register("v6peer", &net.UDPAddr{IP: net.ParseIP("2001:db8::1"), Port: 9})
	n, err := a.SendBatch([]Datagram{
		{Peer: "v6peer", Pkt: []byte("unreachable")},
		{Peer: "b", Pkt: []byte("ok")},
	})
	if !HasBatchIO() {
		// Portable path: per-packet Send cannot even resolve the family
		// until the kernel rejects it; only the count contract holds.
		if n != 1 {
			t.Fatalf("portable batch sent %d, want 1", n)
		}
		return
	}
	if n != 1 || err == nil {
		t.Fatalf("family mismatch: n=%d err=%v, want 1 sent plus an error", n, err)
	}
	if pkt, _ := recvDeadline(t, b); string(pkt) != "ok" {
		t.Fatalf("surviving entry got %q", pkt)
	}
}

// TestUDPBatchChunking sends more datagrams than one sendmmsg call can
// carry, forcing the chunking loop, and counts arrivals.
func TestUDPBatchChunking(t *testing.T) {
	a, b, _, _ := udpPair(t)
	const total = 150 // > 2 x maxMsgsPerCall
	batch := make([]Datagram, total)
	for i := range batch {
		batch[i] = Datagram{Peer: "b", Pkt: []byte{byte(i)}}
	}
	if n, err := a.SendBatch(batch); err != nil || n != total {
		t.Fatalf("SendBatch: n=%d err=%v", n, err)
	}
	for i := 0; i < total; i++ {
		pkt, _ := recvDeadline(t, b)
		if len(pkt) != 1 || pkt[0] != byte(i) {
			t.Fatalf("packet %d corrupted or reordered: %v", i, pkt)
		}
		buffer.PutPacket(pkt)
	}
}
