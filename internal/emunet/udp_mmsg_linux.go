//go:build linux && (amd64 || arm64)

// Batched UDP syscalls: sendmmsg/recvmmsg via raw syscall numbers, stdlib
// only. The build tag restricts this file to 64-bit linux, where
// syscall.Msghdr's Iovlen/Controllen are uint64 and the mmsghdr layout
// below (msghdr + uint32 length + 4 pad bytes) matches the kernel ABI.
//
// All descriptor arrays — mmsghdr, iovec, sockaddr storage — are allocated
// once per sender/receiver and recycled across calls, so the steady state
// moves packets with zero descriptor allocation. Payload buffers on the
// receive path are permanent 64 KiB slots; received bytes are copied into
// right-sized pool buffers (internal/buffer) before delivery, which keeps
// the inbox from pinning a 64 KiB slot behind every 1 KiB packet.
//
// Syscalls run inside syscall.RawConn Read/Write callbacks: returning
// false on EAGAIN re-parks the goroutine on the runtime poller, so the
// socket stays in non-blocking mode and blocking semantics are preserved
// without spinning.

package emunet

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"
	"unsafe"

	"ncfn/internal/buffer"
)

// batchIOSupported reports that this platform has the syscall-batched
// receive loop.
const batchIOSupported = true

// maxMsgsPerCall caps how many messages one sendmmsg call carries; larger
// batches are chunked. 64 descriptors keep the preallocated arrays small
// (a few KiB) while amortizing the syscall far past the point of
// diminishing returns.
const maxMsgsPerCall = 64

// mmsghdr mirrors struct mmsghdr: the kernel writes the per-message byte
// count into n on return. The trailing pad keeps the 64-bit struct size
// (sizeof(struct msghdr) == 56, +4 length, +4 pad = 64 bytes).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// putPort stores a port into a raw sockaddr's network-byte-order field.
func putPort(field *uint16, port int) {
	p := (*[2]byte)(unsafe.Pointer(field))
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

// rawPort reads a raw sockaddr's network-byte-order port field.
func rawPort(field *uint16) int {
	p := (*[2]byte)(unsafe.Pointer(field))
	return int(p[0])<<8 | int(p[1])
}

// mmsgSender batches transmits through sendmmsg. One exists per UDPConn;
// mu serializes callers so the descriptor arrays can be recycled.
type mmsgSender struct {
	mu sync.Mutex
	rc syscall.RawConn
	// v6 records the socket family: an AF_INET6 socket needs v4
	// destinations in v4-mapped form, an AF_INET socket needs plain
	// sockaddr_in and cannot reach v6 peers (same as WriteToUDP).
	v6   bool
	hdrs []mmsghdr
	iovs []syscall.Iovec
	// sas is sockaddr storage: RawSockaddrInet6 is the larger of the two
	// families, so a v4 sockaddr is laid over the same slot.
	sas  []syscall.RawSockaddrInet6
	zero [1]byte // iovec base for zero-length packets
}

// newBatchSender builds the sendmmsg-backed sender for conn, or nil when
// the raw descriptor is unavailable (the conn then falls back to the
// portable loop).
func newBatchSender(conn *net.UDPConn) batchSender {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	la, _ := conn.LocalAddr().(*net.UDPAddr)
	return &mmsgSender{
		rc:   rc,
		v6:   la != nil && la.IP.To4() == nil,
		hdrs: make([]mmsghdr, maxMsgsPerCall),
		iovs: make([]syscall.Iovec, maxMsgsPerCall),
		sas:  make([]syscall.RawSockaddrInet6, maxMsgsPerCall),
	}
}

// fillSlot populates descriptor slot i for one datagram. It reports false
// when the destination family is unreachable from this socket.
func (s *mmsgSender) fillSlot(i int, addr *net.UDPAddr, pkt []byte) bool {
	sa := &s.sas[i]
	*sa = syscall.RawSockaddrInet6{}
	var salen uint32
	if s.v6 {
		sa.Family = syscall.AF_INET6
		if ip4 := addr.IP.To4(); ip4 != nil {
			sa.Addr[10], sa.Addr[11] = 0xff, 0xff // v4-mapped ::ffff:a.b.c.d
			copy(sa.Addr[12:], ip4)
		} else if len(addr.IP) == net.IPv6len {
			copy(sa.Addr[:], addr.IP)
		} else {
			return false
		}
		putPort(&sa.Port, addr.Port)
		salen = syscall.SizeofSockaddrInet6
	} else {
		ip4 := addr.IP.To4()
		if ip4 == nil {
			return false
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		copy(sa4.Addr[:], ip4)
		putPort(&sa4.Port, addr.Port)
		salen = syscall.SizeofSockaddrInet4
	}
	iov := &s.iovs[i]
	if len(pkt) > 0 {
		iov.Base = &pkt[0]
	} else {
		iov.Base = &s.zero[0]
	}
	iov.SetLen(len(pkt))
	h := &s.hdrs[i]
	h.hdr = syscall.Msghdr{Name: (*byte)(unsafe.Pointer(sa)), Namelen: salen, Iov: iov, Iovlen: 1}
	h.n = 0
	return true
}

// sendBatch implements batchSender: chunk, fill descriptors, flush.
func (s *mmsgSender) sendBatch(u *UDPConn, batch []Datagram) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sent := 0
	var firstErr error
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > maxMsgsPerCall {
			chunk = chunk[:maxMsgsPerCall]
		}
		batch = batch[len(chunk):]
		n := 0
		for _, d := range chunk {
			addr, ok := u.registry.Lookup(d.Peer)
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: %q", ErrNoRoute, d.Peer)
				}
				continue
			}
			if !s.fillSlot(n, addr, d.Pkt) {
				if firstErr == nil {
					firstErr = fmt.Errorf("emunet: send to %q: address family mismatch", d.Peer)
				}
				continue
			}
			n++
		}
		if n == 0 {
			continue
		}
		done, err := s.flush(u, n)
		// Payload bytes reach the kernel via s.iovs[i].Base; those are
		// typed *byte fields on the live receiver, but the chunk is the
		// only reference the compiler can see from this frame — pin it
		// until the flush has fully copied the datagrams out.
		runtime.KeepAlive(chunk)
		sent += done
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sent, firstErr
}

// flush pushes descriptor slots [0,n) to the kernel, resuming after
// partial sends and skipping a message whose head send fails so the rest
// of the batch still goes out.
func (s *mmsgSender) flush(u *UDPConn, n int) (int, error) {
	sent := 0
	var firstErr error
	for off := 0; off < n; {
		var sysN int
		var sysErr syscall.Errno
		werr := s.rc.Write(func(fd uintptr) bool {
			r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&s.hdrs[off])), uintptr(n-off), 0, 0, 0)
			u.tel.syscalls.Inc(udpTxCell)
			if e == syscall.EAGAIN {
				return false // re-park on the poller, retry when writable
			}
			sysN, sysErr = int(r), e
			return true
		})
		if werr != nil {
			// The conn itself is gone (closed under us); nothing further
			// can be sent.
			if firstErr == nil {
				firstErr = fmt.Errorf("emunet: sendmmsg: %w", werr)
			}
			return sent, firstErr
		}
		if sysErr != 0 {
			// sendmmsg fails wholesale only when message [off] fails; skip
			// it and keep the rest of the batch moving.
			if firstErr == nil {
				firstErr = fmt.Errorf("emunet: sendmmsg: %w", sysErr)
			}
			off++
			continue
		}
		if sysN <= 0 {
			break
		}
		u.tel.batch.Observe(int64(sysN))
		u.tel.txPkts.Add(udpTxCell, uint64(sysN))
		sent += sysN
		off += sysN
	}
	return sent, firstErr
}

// readLoopBatched is the recvmmsg receive loop: up to depth datagrams per
// syscall into permanent slots, each copied into a right-sized pool buffer
// and delivered. It reports false only when ring setup fails (the caller
// then falls back to the portable loop); once running it owns the socket
// until close and returns true.
func (u *UDPConn) readLoopBatched(depth int) bool {
	rc, err := u.conn.SyscallConn()
	if err != nil {
		return false
	}
	hdrs := make([]mmsghdr, depth)
	iovs := make([]syscall.Iovec, depth)
	sas := make([]syscall.RawSockaddrInet6, depth)
	bufs := make([]byte, depth*65536)
	// hdrs reaches the kernel through uintptr(unsafe.Pointer(&hdrs[0]))
	// inside the Syscall6 argument list, which pins it for the call; the
	// arrays it points at (iovs, sas, bufs) are only reachable through
	// those stored raw pointers, invisible to the GC. Keep them live for
	// the loop's whole lifetime or the kernel scribbles into freed memory.
	defer runtime.KeepAlive(iovs)
	defer runtime.KeepAlive(sas)
	defer runtime.KeepAlive(bufs)
	for i := range hdrs {
		slot := bufs[i*65536 : (i+1)*65536]
		iovs[i].Base = &slot[0]
		iovs[i].SetLen(len(slot))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&sas[i]))
	}
	var backoff time.Duration
	for {
		var sysN int
		var sysErr syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			for i := range hdrs {
				// The kernel shrinks Namelen to the written sockaddr size;
				// restore capacity before reuse.
				hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
				hdrs[i].n = 0
			}
			r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), uintptr(depth), 0, 0, 0)
			u.tel.syscalls.Inc(udpRxCell)
			if e == syscall.EAGAIN {
				return false // nothing queued; park until readable
			}
			sysN, sysErr = int(r), e
			return true
		})
		if rerr != nil {
			if !u.readErr(&backoff, rerr) {
				return true
			}
			continue
		}
		if sysErr != 0 {
			if !u.readErr(&backoff, sysErr) {
				return true
			}
			continue
		}
		backoff = 0
		u.tel.batch.Observe(int64(sysN))
		for i := 0; i < sysN; i++ {
			ln := int(hdrs[i].n)
			pkt := buffer.GetPacket(ln)
			copy(pkt, bufs[i*65536:i*65536+ln])
			u.deliver(pkt, u.rawSrcName(&sas[i]))
		}
	}
}

// rawSrcName resolves a received raw sockaddr to its logical name without
// allocating: the sockaddr is folded straight into the registry's reverse
// key (v4 addresses in v4-mapped form, matching keyOf). Unregistered
// senders format like the portable path would.
func (u *UDPConn) rawSrcName(sa *syscall.RawSockaddrInet6) string {
	var k addrKey
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		k.ip[10], k.ip[11] = 0xff, 0xff
		copy(k.ip[12:], sa4.Addr[:])
		k.port = rawPort(&sa4.Port)
	case syscall.AF_INET6:
		copy(k.ip[:], sa.Addr[:])
		k.port = rawPort(&sa.Port)
	default:
		return "?"
	}
	if name, ok := u.registry.reverseKey(k); ok {
		return name
	}
	ua := net.UDPAddr{IP: net.IP(k.ip[:]), Port: k.port}
	if ip4 := ua.IP.To4(); ip4 != nil && sa.Family == syscall.AF_INET {
		ua.IP = ip4
	}
	return ua.String()
}
