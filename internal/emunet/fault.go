package emunet

import "time"

// Runtime fault injection. The chaos harness (internal/chaostest) flips
// these faults mid-run to emulate the failures the paper's wide-area
// deployment would see: a BGP blackhole between two regions (link
// partition), a crashed or rebooting VM (host partition), and the netem
// impairments already expressed per link (loss, jitter, duplication,
// reordering — see LinkConfig). Partition faults drop packets silently, the
// way the Internet does: the sender gets no error, traffic simply stops
// arriving until the fault is healed.

// PartitionLink blackholes the directed link from src to dst: every packet
// sent over it is dropped (and counted against the link's drop counter)
// until HealLink. The link's configuration is untouched, so healing
// restores the previous rate/delay/loss behavior.
func (n *Network) PartitionLink(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partLinks[[2]string{src, dst}] = true
	n.recordFault(time.Now().UnixNano(), src+"->"+dst, true)
}

// HealLink removes a link partition.
func (n *Network) HealLink(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partLinks, [2]string{src, dst})
	n.recordFault(time.Now().UnixNano(), src+"->"+dst, false)
}

// PartitionBoth blackholes both directions between a and b.
func (n *Network) PartitionBoth(a, b string) {
	n.PartitionLink(a, b)
	n.PartitionLink(b, a)
}

// HealBoth removes both directions of a partition between a and b.
func (n *Network) HealBoth(a, b string) {
	n.HealLink(a, b)
	n.HealLink(b, a)
}

// PartitionHost isolates a host: every packet it sends, and every packet
// addressed to it, is dropped until HealHost — the network-level view of a
// crashed or unreachable VM.
func (n *Network) PartitionHost(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partHosts[addr] = true
	n.recordFault(time.Now().UnixNano(), addr, true)
}

// HealHost reconnects a partitioned host.
func (n *Network) HealHost(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partHosts, addr)
	n.recordFault(time.Now().UnixNano(), addr, false)
}

// Partitioned reports whether a packet from src to dst would currently be
// dropped by a partition fault (either endpoint isolated, or the directed
// link blackholed).
func (n *Network) Partitioned(src, dst string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitionedLocked(src, dst)
}

func (n *Network) partitionedLocked(src, dst string) bool {
	return n.partHosts[src] || n.partHosts[dst] || n.partLinks[[2]string{src, dst}]
}

// HealAll removes every partition fault at once (the "network recovers"
// step of a chaos schedule).
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	clear(n.partHosts)
	clear(n.partLinks)
	n.recordFault(time.Now().UnixNano(), "all", false)
}
