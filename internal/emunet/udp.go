package emunet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/telemetry"
)

// UDPConn adapts a real UDP socket to the PacketConn interface, so the same
// data-plane code that runs on the emulated network can be deployed over
// the loopback interface or a real network. Addresses are logical names
// resolved through a shared registry (the deployment's "forwarding table of
// IP addresses" in paper terms).
//
// The receive path mimics the paper's DPDK poll-mode design as closely as a
// kernel socket allows: a dedicated goroutine blocks in the receive syscall
// in a tight loop and hands packets to the consumer over a buffered
// channel, keeping the socket drained. On linux the loop pulls up to the
// configured rx batch depth per recvmmsg syscall (WithRxBatch); elsewhere —
// or under WithPortableIO — it falls back to one ReadFromUDP per packet.
//
// UDPConn also implements BatchPacketConn: SendBatch moves many datagrams
// per sendmmsg syscall on linux and degrades to a per-packet loop on other
// platforms, with identical bytes on the wire either way.
type UDPConn struct {
	name     string
	conn     *net.UDPConn
	registry *Registry
	inbox    chan datagram

	// tx is the platform batch sender (nil when unavailable or disabled by
	// WithPortableIO); rxBatch > 1 selects the recvmmsg read loop.
	tx      batchSender
	rxBatch int

	tel udpTelemetry

	closeOnce sync.Once
	done      chan struct{}
	readerWG  sync.WaitGroup
}

var (
	_ PacketConn      = (*UDPConn)(nil)
	_ BatchPacketConn = (*UDPConn)(nil)
)

// addrKey is a UDP address in comparable form: the 16-byte IPv6(-mapped)
// representation plus the port. It keys the registry's reverse index, so
// the receive path resolves a sender to its logical name with one map
// lookup and zero allocations regardless of registry size.
type addrKey struct {
	ip   [16]byte
	port int
}

// keyOf converts a UDP address to its reverse-index key. The second result
// is false for addresses with no usable IP (nothing to index).
func keyOf(addr *net.UDPAddr) (addrKey, bool) {
	ip := addr.IP.To16()
	if ip == nil {
		return addrKey{}, false
	}
	var k addrKey
	copy(k.ip[:], ip)
	k.port = addr.Port
	return k, true
}

// Registry maps logical node names to UDP addresses. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	addrs map[string]*net.UDPAddr
	// rev is the reverse index maintained by Register: address key to
	// logical name. The rx path does one RLock + map hit per packet instead
	// of a linear scan.
	rev map[addrKey]string
}

// NewRegistry returns an empty name registry.
func NewRegistry() *Registry {
	return &Registry{
		addrs: make(map[string]*net.UDPAddr),
		rev:   make(map[addrKey]string),
	}
}

// Register associates a logical name with a UDP address. Re-registering a
// name replaces its binding (and moves the reverse index with it).
func (r *Registry) Register(name string, addr *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.addrs[name]; ok {
		if k, ok := keyOf(old); ok && r.rev[k] == name {
			delete(r.rev, k)
		}
	}
	r.addrs[name] = addr
	if k, ok := keyOf(addr); ok {
		r.rev[k] = name
	}
}

// Lookup resolves a logical name.
func (r *Registry) Lookup(name string) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.addrs[name]
	return a, ok
}

// reverse finds the logical name for a UDP address via the reverse index
// (O(1), allocation-free on the hit path). Unregistered addresses format
// themselves, so traffic from unknown peers still carries a usable source.
func (r *Registry) reverse(addr *net.UDPAddr) string {
	if k, ok := keyOf(addr); ok {
		if name, ok := r.reverseKey(k); ok {
			return name
		}
	}
	return addr.String()
}

// reverseKey resolves an address key to its logical name.
func (r *Registry) reverseKey(k addrKey) (string, bool) {
	r.mu.RLock()
	name, ok := r.rev[k]
	r.mu.RUnlock()
	return name, ok
}

// udpConfig collects ListenUDP's options.
type udpConfig struct {
	reg      *telemetry.Registry
	rxBatch  int
	inbox    int
	portable bool
}

// UDPOption configures ListenUDP.
type UDPOption func(*udpConfig)

// WithUDPTelemetry attaches the socket's instruments — syscall and packet
// counters, the per-syscall batch-size histogram, the rx-overflow drop
// counter, and the drop flight recorder — to the given registry instead of
// a private one, so a daemon serves one merged snapshot.
func WithUDPTelemetry(reg *telemetry.Registry) UDPOption {
	return func(c *udpConfig) {
		if reg != nil {
			c.reg = reg
		}
	}
}

// WithRxBatch sets the receive ring depth: how many datagrams one recvmmsg
// syscall may pull on linux. Values <= 1 (and every non-linux platform)
// select the portable one-ReadFromUDP-per-packet loop. The default is
// DefaultRxBatch.
func WithRxBatch(n int) UDPOption {
	return func(c *udpConfig) { c.rxBatch = n }
}

// WithUDPInbox overrides the receive inbox capacity in packets (default
// 4096). Tests use small inboxes to exercise the overflow-drop path.
func WithUDPInbox(n int) UDPOption {
	return func(c *udpConfig) {
		if n > 0 {
			c.inbox = n
		}
	}
}

// WithPortableIO forces the portable single-packet syscall path even where
// the batched sendmmsg/recvmmsg path is available. The two paths are
// byte-identical on the wire (the differential test pins them); this knob
// exists for that pinning and for diagnosing platform-specific behavior.
func WithPortableIO() UDPOption {
	return func(c *udpConfig) { c.portable = true }
}

// DefaultRxBatch is the default receive ring depth on platforms with
// recvmmsg: deep enough that a loaded socket amortizes the syscall across
// a full tx ring's worth of arrivals, small enough to keep the ring's
// preallocated buffers (depth x 64 KiB) modest.
const DefaultRxBatch = 16

// ListenUDP opens a UDP socket on addr (e.g. "127.0.0.1:0"), registers it
// under name, and returns the PacketConn.
func ListenUDP(name, addr string, registry *Registry, opts ...UDPOption) (*UDPConn, error) {
	cfg := udpConfig{rxBatch: DefaultRxBatch, inbox: 4096}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = telemetry.NewRegistry()
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emunet: listen %q: %w", addr, err)
	}
	local, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("emunet: unexpected local address type %T", conn.LocalAddr())
	}
	// A batched sender can legally put a whole coalesced burst on loopback
	// in one syscall; the default rx buffer (a couple hundred KB) then
	// drops the tail whenever the receiver is briefly descheduled. Size
	// the kernel buffers for burst absorption — best effort, silently
	// capped by the kernel when unprivileged.
	setSocketBuffers(conn)
	registry.Register(name, local)
	u := &UDPConn{
		name:     name,
		conn:     conn,
		registry: registry,
		inbox:    make(chan datagram, cfg.inbox),
		done:     make(chan struct{}),
		tel:      newUDPTelemetry(cfg.reg),
	}
	if !cfg.portable {
		// Platform hook: nil on non-linux builds, so every caller falls
		// back to the portable loop without build tags of its own.
		u.tx = newBatchSender(conn)
		if cfg.rxBatch > 1 && batchIOSupported {
			u.rxBatch = cfg.rxBatch
		}
	}
	u.readerWG.Add(1)
	go u.readLoop()
	return u, nil
}

// Read-loop error handling: transient socket errors back off exponentially
// (bounded) instead of spinning hot; permanent errors (a closed or
// unrecoverable socket) exit the loop.
const (
	readBackoffMin = time.Millisecond
	readBackoffMax = 100 * time.Millisecond
)

// readErr classifies a receive error and applies backoff. It reports
// whether the read loop should keep polling: false means exit (conn closed
// via Close, socket permanently dead), true means a bounded backoff was
// taken and the loop may retry.
func (u *UDPConn) readErr(backoff *time.Duration, err error) bool {
	select {
	case <-u.done:
		return false
	default:
	}
	if errors.Is(err, net.ErrClosed) {
		// The socket died underneath a live conn (not via Close): nothing
		// will ever arrive again, so exit instead of spinning on EBADF.
		return false
	}
	u.tel.readErrs.Inc(udpRxCell)
	if *backoff < readBackoffMin {
		*backoff = readBackoffMin
	} else if *backoff *= 2; *backoff > readBackoffMax {
		*backoff = readBackoffMax
	}
	timer := time.NewTimer(*backoff)
	defer timer.Stop()
	select {
	case <-u.done:
		return false
	case <-timer.C:
		return true
	}
}

// readLoop is the poll-mode receive goroutine.
func (u *UDPConn) readLoop() {
	defer u.readerWG.Done()
	if u.rxBatch > 1 {
		if u.readLoopBatched(u.rxBatch) {
			return
		}
		// Ring setup failed (exotic socket state); fall through to the
		// portable loop rather than dropping the conn.
	}
	u.readLoopPortable()
}

// readLoopPortable receives one datagram per syscall — the reference
// behavior every platform shares.
func (u *UDPConn) readLoopPortable() {
	buf := make([]byte, 65536)
	var backoff time.Duration
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			if !u.readErr(&backoff, err) {
				return
			}
			continue
		}
		backoff = 0
		u.tel.syscalls.Inc(udpRxCell)
		u.tel.batch.Observe(1)
		pkt := buffer.GetPacket(n)
		copy(pkt, buf[:n])
		u.deliver(pkt, u.registry.reverse(from))
	}
}

// deliver hands one received packet to the consumer, dropping (with
// accounting) when the inbox is full — the userspace twin of a kernel
// socket-buffer overflow.
func (u *UDPConn) deliver(pkt []byte, src string) {
	select {
	case u.inbox <- datagram{src: src, pkt: pkt}:
		u.tel.rxPkts.Inc(udpRxCell)
		return
	case <-u.done:
		buffer.PutPacket(pkt)
		return
	default:
	}
	// Consumer too slow: drop, as a kernel buffer would — but never
	// silently. The counter feeds emunet_udp_rx_dropped and the flight
	// recorder keeps the when.
	u.tel.rxDropped.Inc(udpRxCell)
	u.tel.rec.Record(time.Now().UnixNano(), telemetry.EventPacketDrop, u.name, 0, 0, 1)
	buffer.PutPacket(pkt)
}

// LocalAddr implements PacketConn.
func (u *UDPConn) LocalAddr() string { return u.name }

// UDPAddr returns the socket's bound address.
func (u *UDPConn) UDPAddr() *net.UDPAddr {
	a, _ := u.conn.LocalAddr().(*net.UDPAddr)
	return a
}

// Send implements PacketConn.
func (u *UDPConn) Send(dst string, pkt []byte) error {
	addr, ok := u.registry.Lookup(dst)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoute, dst)
	}
	if _, err := u.conn.WriteToUDP(pkt, addr); err != nil {
		return fmt.Errorf("emunet: send to %q: %w", dst, err)
	}
	u.tel.syscalls.Inc(udpTxCell)
	u.tel.txPkts.Inc(udpTxCell)
	return nil
}

// SendBatch implements BatchPacketConn: on linux the batch goes out in
// sendmmsg calls of up to the batch length; elsewhere (or under
// WithPortableIO) it loops the single-packet path. Unroutable destinations
// are skipped (counted in the returned error) and do not block the rest of
// the batch.
func (u *UDPConn) SendBatch(batch []Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	if u.tx != nil {
		return u.tx.sendBatch(u, batch)
	}
	return u.sendBatchPortable(batch)
}

// sendBatchPortable is the fallback SendBatch: the single-packet path in a
// loop, byte-identical on the wire to the syscall-batched path.
func (u *UDPConn) sendBatchPortable(batch []Datagram) (int, error) {
	sent := 0
	var firstErr error
	for _, d := range batch {
		if err := u.Send(d.Peer, d.Pkt); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// RecvBatch implements BatchPacketConn: it blocks for the first datagram,
// then drains whatever else is already queued, up to len(buf).
func (u *UDPConn) RecvBatch(buf []Datagram) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	pkt, src, err := u.Recv()
	if err != nil {
		return 0, err
	}
	buf[0] = Datagram{Peer: src, Pkt: pkt}
	n := 1
	for n < len(buf) {
		select {
		case d := <-u.inbox:
			buf[n] = Datagram{Peer: d.src, Pkt: d.pkt}
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Recv implements PacketConn.
func (u *UDPConn) Recv() ([]byte, string, error) {
	select {
	case <-u.done:
		select {
		case d := <-u.inbox:
			return d.pkt, d.src, nil
		default:
			return nil, "", ErrClosed
		}
	case d := <-u.inbox:
		return d.pkt, d.src, nil
	}
}

// Close implements PacketConn. It joins the reader goroutine.
func (u *UDPConn) Close() error {
	var err error
	u.closeOnce.Do(func() {
		close(u.done)
		err = u.conn.Close()
		u.readerWG.Wait()
	})
	return err
}
