package emunet

import (
	"fmt"
	"net"
	"sync"

	"ncfn/internal/buffer"
)

// UDPConn adapts a real UDP socket to the PacketConn interface, so the same
// data-plane code that runs on the emulated network can be deployed over
// the loopback interface or a real network. Addresses are logical names
// resolved through a shared registry (the deployment's "forwarding table of
// IP addresses" in paper terms).
//
// The receive path mimics the paper's DPDK poll-mode design as closely as a
// kernel socket allows: a dedicated goroutine blocks in ReadFromUDP in a
// tight loop and hands packets to the consumer over a buffered channel,
// keeping the socket drained.
type UDPConn struct {
	name     string
	conn     *net.UDPConn
	registry *Registry
	inbox    chan datagram

	closeOnce sync.Once
	done      chan struct{}
	readerWG  sync.WaitGroup
}

var _ PacketConn = (*UDPConn)(nil)

// Registry maps logical node names to UDP addresses. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	addrs map[string]*net.UDPAddr
}

// NewRegistry returns an empty name registry.
func NewRegistry() *Registry {
	return &Registry{addrs: make(map[string]*net.UDPAddr)}
}

// Register associates a logical name with a UDP address.
func (r *Registry) Register(name string, addr *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[name] = addr
}

// Lookup resolves a logical name.
func (r *Registry) Lookup(name string) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.addrs[name]
	return a, ok
}

// reverse finds the logical name for a UDP address (linear scan; registry
// sizes are small — one entry per node).
func (r *Registry) reverse(addr *net.UDPAddr) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, a := range r.addrs {
		if a.IP.Equal(addr.IP) && a.Port == addr.Port {
			return name
		}
	}
	return addr.String()
}

// ListenUDP opens a UDP socket on addr (e.g. "127.0.0.1:0"), registers it
// under name, and returns the PacketConn.
func ListenUDP(name, addr string, registry *Registry) (*UDPConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emunet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emunet: listen %q: %w", addr, err)
	}
	local, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("emunet: unexpected local address type %T", conn.LocalAddr())
	}
	registry.Register(name, local)
	u := &UDPConn{
		name:     name,
		conn:     conn,
		registry: registry,
		inbox:    make(chan datagram, 4096),
		done:     make(chan struct{}),
	}
	u.readerWG.Add(1)
	go u.readLoop()
	return u, nil
}

// readLoop is the poll-mode receive goroutine.
func (u *UDPConn) readLoop() {
	defer u.readerWG.Done()
	buf := make([]byte, 65536)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-u.done:
				return
			default:
			}
			// Transient error on a live socket: keep polling.
			continue
		}
		pkt := buffer.GetPacket(n)
		copy(pkt, buf[:n])
		select {
		case u.inbox <- datagram{src: u.registry.reverse(from), pkt: pkt}:
		case <-u.done:
			buffer.PutPacket(pkt)
			return
		default:
			// Consumer too slow; drop, as a kernel buffer would.
			buffer.PutPacket(pkt)
		}
	}
}

// LocalAddr implements PacketConn.
func (u *UDPConn) LocalAddr() string { return u.name }

// UDPAddr returns the socket's bound address.
func (u *UDPConn) UDPAddr() *net.UDPAddr {
	a, _ := u.conn.LocalAddr().(*net.UDPAddr)
	return a
}

// Send implements PacketConn.
func (u *UDPConn) Send(dst string, pkt []byte) error {
	addr, ok := u.registry.Lookup(dst)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoute, dst)
	}
	if _, err := u.conn.WriteToUDP(pkt, addr); err != nil {
		return fmt.Errorf("emunet: send to %q: %w", dst, err)
	}
	return nil
}

// Recv implements PacketConn.
func (u *UDPConn) Recv() ([]byte, string, error) {
	select {
	case <-u.done:
		select {
		case d := <-u.inbox:
			return d.pkt, d.src, nil
		default:
			return nil, "", ErrClosed
		}
	case d := <-u.inbox:
		return d.pkt, d.src, nil
	}
}

// Close implements PacketConn. It joins the reader goroutine.
func (u *UDPConn) Close() error {
	var err error
	u.closeOnce.Do(func() {
		close(u.done)
		err = u.conn.Close()
		u.readerWG.Wait()
	})
	return err
}
