// Package emunet is the in-process network substrate that stands in for the
// paper's EC2/Linode deployment plus netem. It emulates point-to-point links
// with configurable rate (token-bucket serialization), propagation delay,
// bounded queues (tail drop), and the two loss models the paper evaluates:
// i.i.d. uniform loss (Fig. 8) and the bursty process P_n = 25%·P_{n-1} + P
// (Fig. 9).
//
// Hosts exchange datagrams through PacketConn, the same interface the data
// plane uses over real UDP sockets (see package udp counterpart in this
// package), so the identical VNF code runs on both substrates.
package emunet

import (
	"math/rand"
	"sync"
	"time"
)

// LossModel decides the fate of each transmitted packet. Implementations
// are driven from a single goroutine per link and need not be thread-safe.
type LossModel interface {
	// Drop reports whether the next packet is lost.
	Drop() bool
}

// NoLoss is a LossModel that never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop() bool { return false }

// UniformLoss drops each packet independently with probability P.
type UniformLoss struct {
	P   float64
	rng *rand.Rand
	mu  sync.Mutex
}

// NewUniformLoss returns an i.i.d. loss model with drop probability p.
func NewUniformLoss(p float64, seed int64) *UniformLoss {
	return &UniformLoss{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Drop implements LossModel.
func (u *UniformLoss) Drop() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.rng.Float64() < u.P
}

// BurstLoss implements the paper's bursty loss process for Fig. 9: "the
// loss rate of the n-th packet is P_n = 25% × P_{n−1} + P, P_0 = 0". We
// follow the standard (netem-style) reading in which the correlation term
// feeds back the realized outcome of the previous packet: after a loss the
// next packet is dropped with probability 0.25 + P, after a delivery with
// probability P, producing loss bursts whose stationary rate is
// P / (1 − 0.25) for small P.
type BurstLoss struct {
	// P is the base loss probability added each step.
	P float64
	// Corr is the contribution of a realized previous loss (0.25 in the
	// paper).
	Corr float64

	mu       sync.Mutex
	rng      *rand.Rand
	prevLost bool
}

// NewBurstLoss returns the paper's burst model with correlation 0.25.
func NewBurstLoss(p float64, seed int64) *BurstLoss {
	return &BurstLoss{P: p, Corr: 0.25, rng: rand.New(rand.NewSource(seed))}
}

// Drop implements LossModel.
func (b *BurstLoss) Drop() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.P
	if b.prevLost {
		p += b.Corr
	}
	if p > 1 {
		p = 1
	}
	lost := b.rng.Float64() < p
	b.prevLost = lost
	return lost
}

// LinkConfig describes one directed link.
type LinkConfig struct {
	// RateBps is the serialization rate in bits per second; zero means
	// unconstrained.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per packet
	// (netem's delay variance). Nonzero jitter reorders packets — which
	// RLNC absorbs, since any sufficient set of coded packets decodes
	// regardless of arrival order.
	Jitter time.Duration
	// Loss is the loss process; nil means no loss.
	Loss LossModel
	// DuplicateProb duplicates each delivered packet with this probability
	// (netem's duplication impairment). RLNC receivers absorb duplicates:
	// a repeated coded packet is simply not innovative.
	DuplicateProb float64
	// ReorderProb holds back each delivered packet with this probability by
	// an extra ReorderDelay (netem's reorder impairment), letting packets
	// sent later overtake it. RLNC absorbs reordering: any sufficient set
	// of coded packets decodes regardless of arrival order.
	ReorderProb float64
	// ReorderDelay is the extra hold-back applied to reordered packets;
	// zero with a nonzero ReorderProb selects DefaultReorderDelay.
	ReorderDelay time.Duration
	// QueuePackets bounds the sender-side queue; packets arriving at a
	// full queue are tail-dropped. Zero selects DefaultQueuePackets.
	QueuePackets int
}

// DefaultQueuePackets is the default per-link queue bound, roughly a
// bandwidth-delay product of a fast WAN path at MTU packets.
const DefaultQueuePackets = 256

// DefaultReorderDelay is the hold-back applied to reordered packets when
// ReorderProb is set without an explicit ReorderDelay.
const DefaultReorderDelay = 2 * time.Millisecond

// link is the runtime state of one directed link.
type link struct {
	mu        sync.Mutex
	cfg       LinkConfig
	nextTx    time.Time // when the serializer is next free
	queued    int       // packets accepted but not yet delivered
	dropped   uint64    // tail drops + loss-model drops + partition drops
	sent      uint64
	reordered uint64
	jrng      *rand.Rand
	// tel mirrors sent/dropped into the network's telemetry registry when
	// one is attached (see WithTelemetry); nil otherwise.
	tel *linkTel
}

// setConfig atomically replaces the link configuration (used by the
// bandwidth-variation experiments to cut a link's rate at runtime).
func (l *link) setConfig(cfg LinkConfig) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cfg = cfg
}

func (l *link) config() LinkConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg
}

// queueLimit returns the effective queue bound.
func (c LinkConfig) queueLimit() int {
	if c.QueuePackets > 0 {
		return c.QueuePackets
	}
	return DefaultQueuePackets
}

// admit runs the link's ingress decision for a packet of n bytes at time
// now. It returns the arrival time at the far end and true, or false if the
// packet is dropped (queue overflow or loss process).
func (l *link) admit(now time.Time, n int) (time.Time, bool) {
	l.mu.Lock()
	cfg := l.cfg
	if l.queued >= cfg.queueLimit() {
		l.dropped++
		l.mu.Unlock()
		l.countDrop()
		return time.Time{}, false
	}
	var depart time.Time
	if cfg.RateBps > 0 {
		txDur := time.Duration(float64(n*8) / cfg.RateBps * float64(time.Second))
		if l.nextTx.Before(now) {
			l.nextTx = now
		}
		depart = l.nextTx.Add(txDur)
		l.nextTx = depart
	} else {
		depart = now
	}
	l.queued++
	l.mu.Unlock()

	// The loss process applies after serialization (a corrupted packet
	// still consumed the link). Loss models are internally synchronized.
	if cfg.Loss != nil && cfg.Loss.Drop() {
		l.mu.Lock()
		l.queued--
		l.dropped++
		l.mu.Unlock()
		l.countDrop()
		return time.Time{}, false
	}
	l.mu.Lock()
	l.sent++
	extra := time.Duration(0)
	if cfg.Jitter > 0 || cfg.DuplicateProb > 0 || cfg.ReorderProb > 0 {
		if l.jrng == nil {
			l.jrng = rand.New(rand.NewSource(int64(l.sent) + 12345))
		}
	}
	if cfg.Jitter > 0 {
		extra = time.Duration(l.jrng.Int63n(int64(cfg.Jitter)))
	}
	if cfg.ReorderProb > 0 && l.jrng.Float64() < cfg.ReorderProb {
		hold := cfg.ReorderDelay
		if hold <= 0 {
			hold = DefaultReorderDelay
		}
		extra += hold
		l.reordered++
	}
	l.mu.Unlock()
	if l.tel != nil {
		l.tel.sent.Inc(0)
		l.tel.netSent.Inc(0)
	}
	return depart.Add(cfg.Delay + extra), true
}

// countDrop mirrors one drop into the telemetry registry.
func (l *link) countDrop() {
	if l.tel != nil {
		l.tel.dropped.Inc(0)
		l.tel.netDropped.Inc(0)
	}
}

// duplicate reports whether the just-admitted packet should also be
// delivered a second time.
func (l *link) duplicate() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.DuplicateProb <= 0 {
		return false
	}
	if l.jrng == nil {
		l.jrng = rand.New(rand.NewSource(int64(l.sent) + 12345))
	}
	return l.jrng.Float64() < l.cfg.DuplicateProb
}

// release is called when a packet departs the queue (delivered).
func (l *link) release() {
	l.mu.Lock()
	l.queued--
	l.mu.Unlock()
}

// drop counts one packet lost outside admit's own accounting (partition
// faults charge their drops to the link they would have traversed).
func (l *link) drop() {
	l.mu.Lock()
	l.dropped++
	l.mu.Unlock()
	l.countDrop()
}

// Stats reports cumulative link counters.
type Stats struct {
	Sent      uint64
	Dropped   uint64
	Reordered uint64
	Queued    int
}

func (l *link) stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Sent: l.sent, Dropped: l.dropped, Reordered: l.reordered, Queued: l.queued}
}
