//go:build linux && arm64

package emunet

// Syscall numbers for the batched datagram calls on the arm64 table.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
