package emunet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ncfn/internal/buffer"
)

// Common errors.
var (
	// ErrClosed is returned by operations on a closed conn or network.
	ErrClosed = errors.New("emunet: closed")
	// ErrNoRoute is returned when sending to an address with no host.
	ErrNoRoute = errors.New("emunet: no such host")
)

// PacketConn is the datagram interface the data plane runs on. It is
// implemented both by emulated hosts (this package) and by UDP sockets
// (ncfn/internal/emunet UDPConn), so the VNF code is substrate-agnostic.
type PacketConn interface {
	// Send transmits one datagram to dst. It never blocks on the network;
	// packets the link cannot accept are dropped, like UDP.
	Send(dst string, pkt []byte) error
	// Recv blocks until a datagram arrives and returns it with the
	// sender's address. It returns ErrClosed after Close. The returned
	// buffer is owned by the caller; callers on the hot path should return
	// it with buffer.PutPacket once parsed (not doing so merely falls back
	// to GC).
	Recv() ([]byte, string, error)
	// LocalAddr returns this endpoint's address.
	LocalAddr() string
	// Close releases the endpoint and unblocks pending Recv calls.
	Close() error
}

// Network is an in-process datagram network. Hosts are identified by
// string addresses; directed links between hosts carry the impairments of
// their LinkConfig. A link must be configured (SetLink) before traffic can
// flow between two hosts unless AllowDefault is set.
type Network struct {
	mu    sync.Mutex
	hosts map[string]*Host
	links map[[2]string]*link
	// partHosts and partLinks are the active partition faults (fault.go):
	// isolated hosts and blackholed directed links.
	partHosts map[string]bool
	partLinks map[[2]string]bool
	// allowDefault, when true, lets unconfigured pairs communicate over a
	// perfect link. Tests use it; experiments configure links explicitly.
	allowDefault bool
	closed       bool
	wg           sync.WaitGroup
	timers       map[*time.Timer]struct{}
	// tel is the attached instrument set (WithTelemetry); nil records
	// nothing.
	tel *netTelemetry
}

// Option configures a Network.
type Option func(*Network)

// AllowDefault lets hosts without an explicit link exchange packets over a
// perfect (infinite-rate, zero-delay, lossless) link.
func AllowDefault() Option {
	return func(n *Network) { n.allowDefault = true }
}

// NewNetwork returns an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		hosts:     make(map[string]*Host),
		links:     make(map[[2]string]*link),
		partHosts: make(map[string]bool),
		partLinks: make(map[[2]string]bool),
		timers:    make(map[*time.Timer]struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Host registers (or returns the existing) host with the given address.
func (n *Network) Host(addr string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[addr]; ok {
		return h
	}
	h := &Host{
		net:   n,
		addr:  addr,
		inbox: make(chan datagram, 4096),
		done:  make(chan struct{}),
	}
	n.hosts[addr] = h
	return h
}

// SetLink installs or replaces the directed link from src to dst.
func (n *Network) SetLink(src, dst string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]string{src, dst}
	if l, ok := n.links[key]; ok {
		l.setConfig(cfg)
		return
	}
	l := &link{cfg: cfg}
	n.instrumentLinkLocked(src, dst, l)
	n.links[key] = l
}

// SetDuplexLink installs the same configuration in both directions. Loss
// models are stateful, so each direction gets its own copy only if the
// caller passes a fresh model; for stateless configs this is safe to share.
func (n *Network) SetDuplexLink(a, b string, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

// LinkStats returns counters for the directed link, or false if none.
func (n *Network) LinkStats(src, dst string) (Stats, bool) {
	n.mu.Lock()
	l, ok := n.links[[2]string{src, dst}]
	n.mu.Unlock()
	if !ok {
		return Stats{}, false
	}
	return l.stats(), true
}

// LinkConfigOf returns the directed link's configuration, or false.
func (n *Network) LinkConfigOf(src, dst string) (LinkConfig, bool) {
	n.mu.Lock()
	l, ok := n.links[[2]string{src, dst}]
	n.mu.Unlock()
	if !ok {
		return LinkConfig{}, false
	}
	return l.config(), true
}

// Close shuts the network down: all hosts' Recv calls unblock and pending
// deliveries are cancelled. Close blocks until in-flight delivery timers
// have been reaped.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	timers := make([]*time.Timer, 0, len(n.timers))
	for t := range n.timers {
		timers = append(timers, t)
	}
	n.mu.Unlock()
	for _, t := range timers {
		if t.Stop() {
			// The delivery callback will never run; settle its wg slot.
			n.wg.Done()
		}
	}
	for _, h := range hosts {
		h.Close()
	}
	n.wg.Wait()
	return nil
}

type datagram struct {
	src string
	pkt []byte
}

// Host is one endpoint of the emulated network.
type Host struct {
	net   *Network
	addr  string
	inbox chan datagram

	closeOnce sync.Once
	done      chan struct{}
}

var _ PacketConn = (*Host)(nil)

// LocalAddr implements PacketConn.
func (h *Host) LocalAddr() string { return h.addr }

// Send implements PacketConn. The packet is copied; the caller may reuse
// the buffer immediately.
func (h *Host) Send(dst string, pkt []byte) error {
	n := h.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	peer, ok := n.hosts[dst]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRoute, dst)
	}
	l, ok := n.links[[2]string{h.addr, dst}]
	if !ok {
		if !n.allowDefault {
			n.mu.Unlock()
			return fmt.Errorf("%w: no link %s->%s", ErrNoRoute, h.addr, dst)
		}
		l = &link{}
		n.instrumentLinkLocked(h.addr, dst, l)
		n.links[[2]string{h.addr, dst}] = l
	}
	if n.partitionedLocked(h.addr, dst) {
		n.mu.Unlock()
		l.drop()
		return nil // blackholed, like UDP into a partition: no error
	}
	n.mu.Unlock()

	now := time.Now()
	arrival, ok := l.admit(now, len(pkt))
	if !ok {
		return nil // dropped, like UDP: no error to the sender
	}
	copies := 1
	if l.duplicate() {
		copies = 2
	}
	// Each delivery gets its own pooled copy: the receiver owns the buffer
	// it is handed (and may recycle it via buffer.PutPacket), so duplicated
	// packets must not share backing storage.
	var bufs [2][]byte
	for c := 0; c < copies; c++ {
		b := buffer.GetPacket(len(pkt))
		copy(b, pkt)
		bufs[c] = b
	}
	wait := arrival.Sub(now)
	if wait <= 0 {
		l.release()
		for c := 0; c < copies; c++ {
			peer.deliver(datagram{src: h.addr, pkt: bufs[c]})
		}
		return nil
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.release()
		for c := 0; c < copies; c++ {
			buffer.PutPacket(bufs[c])
		}
		return ErrClosed
	}
	n.wg.Add(1)
	var timer *time.Timer
	timer = time.AfterFunc(wait, func() {
		defer n.wg.Done()
		l.release()
		for c := 0; c < copies; c++ {
			peer.deliver(datagram{src: h.addr, pkt: bufs[c]})
		}
		n.mu.Lock()
		delete(n.timers, timer)
		n.mu.Unlock()
	})
	n.timers[timer] = struct{}{}
	n.mu.Unlock()
	return nil
}

// deliver places a datagram in the host's inbox, dropping it if the inbox
// is full (receiver-side buffer overflow) or the host is closed. Dropped
// datagrams return their buffers to the packet pool.
func (h *Host) deliver(d datagram) {
	select {
	case h.inbox <- d:
	default:
		select {
		case <-h.done:
		default:
			// Inbox full: receiver too slow; drop like a kernel socket
			// buffer.
		}
		buffer.PutPacket(d.pkt)
	}
}

// Recv implements PacketConn.
func (h *Host) Recv() ([]byte, string, error) {
	select {
	case <-h.done:
		// Drain packets already queued before reporting closure.
		select {
		case d := <-h.inbox:
			return d.pkt, d.src, nil
		default:
			return nil, "", ErrClosed
		}
	case d := <-h.inbox:
		return d.pkt, d.src, nil
	}
}

// Close implements PacketConn.
func (h *Host) Close() error {
	h.closeOnce.Do(func() { close(h.done) })
	return nil
}
