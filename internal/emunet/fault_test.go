package emunet

import (
	"encoding/binary"
	"testing"
	"time"
)

// sendSeq sends count sequence-numbered packets from src to dst.
func sendSeq(t *testing.T, src *Host, dst string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		pkt := make([]byte, 8)
		binary.BigEndian.PutUint64(pkt, uint64(i))
		if err := src.Send(dst, pkt); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

// recvSeq receives exactly count packets at h and returns their sequence
// numbers in arrival order, failing the test on timeout.
func recvSeq(t *testing.T, h *Host, count int, timeout time.Duration) []uint64 {
	t.Helper()
	seqs := make([]uint64, 0, count)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seqs) < count {
			pkt, _, err := h.Recv()
			if err != nil {
				return
			}
			seqs = append(seqs, binary.BigEndian.Uint64(pkt))
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("received %d/%d packets before timeout", len(seqs), count)
	}
	return seqs
}

// inversions counts adjacent pairs delivered out of send order.
func inversions(seqs []uint64) int {
	n := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			n++
		}
	}
	return n
}

// multisetOfRange checks that seqs is exactly {0..count-1} with the given
// multiplicity bounds (minCopies ≤ copies ≤ maxCopies per sequence number).
func multisetOfRange(t *testing.T, seqs []uint64, count, minCopies, maxCopies int) {
	t.Helper()
	got := make(map[uint64]int)
	for _, s := range seqs {
		if s >= uint64(count) {
			t.Fatalf("unknown sequence number %d", s)
		}
		got[s]++
	}
	for i := 0; i < count; i++ {
		c := got[uint64(i)]
		if c < minCopies || c > maxCopies {
			t.Fatalf("sequence %d delivered %d times, want %d..%d", i, c, minCopies, maxCopies)
		}
	}
}

// TestFaultModes drives each netem-style impairment through a fixed-seed
// link and asserts its observable signature: reordering and jitter permute
// but never lose or corrupt, duplication only adds identical copies, and
// partitions blackhole silently.
func TestFaultModes(t *testing.T) {
	const count = 400
	cases := []struct {
		name string
		cfg  LinkConfig
		// check inspects the arrival order and link stats.
		check func(t *testing.T, seqs []uint64, st Stats)
	}{
		{
			name: "reorder",
			cfg:  LinkConfig{ReorderProb: 0.3, ReorderDelay: 3 * time.Millisecond, QueuePackets: 1024},
			check: func(t *testing.T, seqs []uint64, st Stats) {
				multisetOfRange(t, seqs, count, 1, 1)
				if inversions(seqs) == 0 {
					t.Fatal("ReorderProb=0.3 produced an in-order stream")
				}
				if st.Reordered == 0 {
					t.Fatal("no packets counted as reordered")
				}
				if st.Reordered == uint64(count) {
					t.Fatalf("all %d packets reordered at prob 0.3", count)
				}
			},
		},
		{
			name: "reorder-default-delay",
			cfg:  LinkConfig{ReorderProb: 0.5, QueuePackets: 1024}, // zero delay selects DefaultReorderDelay
			check: func(t *testing.T, seqs []uint64, st Stats) {
				multisetOfRange(t, seqs, count, 1, 1)
				if inversions(seqs) == 0 {
					t.Fatal("default hold-back produced an in-order stream")
				}
			},
		},
		{
			name: "duplicate",
			cfg:  LinkConfig{DuplicateProb: 0.25},
			check: func(t *testing.T, seqs []uint64, st Stats) {
				multisetOfRange(t, seqs, count, 1, 2)
				if len(seqs) <= count {
					t.Fatalf("DuplicateProb=0.25 delivered no extra copies (%d)", len(seqs))
				}
				if len(seqs) >= 2*count {
					t.Fatalf("every packet duplicated at prob 0.25 (%d)", len(seqs))
				}
			},
		},
		{
			name: "jitter",
			cfg:  LinkConfig{Jitter: 4 * time.Millisecond, QueuePackets: 1024},
			check: func(t *testing.T, seqs []uint64, st Stats) {
				multisetOfRange(t, seqs, count, 1, 1)
				if inversions(seqs) == 0 {
					t.Fatal("4ms jitter on back-to-back sends produced an in-order stream")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNetwork()
			defer n.Close()
			src := n.Host("src")
			dst := n.Host("dst")
			n.SetLink("src", "dst", tc.cfg)
			sendSeq(t, src, "dst", count)
			want := count
			if tc.cfg.DuplicateProb > 0 {
				// Duplicate deliveries are inline on this zero-delay link, so
				// every copy is already queued once sendSeq returns.
				want = len(dst.inbox)
			}
			seqs := recvSeq(t, dst, want, 5*time.Second)
			st, _ := n.LinkStats("src", "dst")
			tc.check(t, seqs, st)
		})
	}
}

func TestPartitionLinkBlackholes(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	src := n.Host("a")
	dst := n.Host("b")

	// Healthy link first: packet flows.
	sendSeq(t, src, "b", 1)
	recvSeq(t, dst, 1, time.Second)

	n.PartitionLink("a", "b")
	if !n.Partitioned("a", "b") {
		t.Fatal("Partitioned(a,b) = false after PartitionLink")
	}
	before, _ := n.LinkStats("a", "b")
	if err := src.Send("b", []byte("lost")); err != nil {
		t.Fatalf("send into partition returned error %v, want silent drop", err)
	}
	after, _ := n.LinkStats("a", "b")
	if after.Dropped != before.Dropped+1 {
		t.Fatalf("partition drop not counted: %d -> %d", before.Dropped, after.Dropped)
	}
	select {
	case d := <-dst.inbox:
		t.Fatalf("partitioned link delivered %q", d.pkt)
	case <-time.After(20 * time.Millisecond):
	}

	// Reverse direction unaffected by a directed partition.
	sendSeq(t, dst, "a", 1)
	recvSeq(t, src, 1, time.Second)

	n.HealLink("a", "b")
	if n.Partitioned("a", "b") {
		t.Fatal("Partitioned(a,b) = true after HealLink")
	}
	sendSeq(t, src, "b", 1)
	recvSeq(t, dst, 1, time.Second)
}

func TestPartitionHostIsolatesBothDirections(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	c := n.Host("c")

	n.PartitionHost("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("send to isolated host errored: %v", err)
	}
	if err := b.Send("a", []byte("y")); err != nil {
		t.Fatalf("send from isolated host errored: %v", err)
	}
	select {
	case <-a.inbox:
		t.Fatal("isolated host's packet delivered")
	case <-b.inbox:
		t.Fatal("packet delivered to isolated host")
	case <-time.After(20 * time.Millisecond):
	}

	// Unrelated pairs still communicate.
	sendSeq(t, a, "c", 1)
	recvSeq(t, c, 1, time.Second)

	n.HealHost("b")
	sendSeq(t, a, "b", 1)
	recvSeq(t, b, 1, time.Second)
}

func TestPartitionBothAndHealAll(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	n.Host("a")
	n.Host("b")
	n.PartitionBoth("a", "b")
	if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
		t.Fatal("PartitionBoth left a direction open")
	}
	n.PartitionHost("c")
	n.HealAll()
	if n.Partitioned("a", "b") || n.Partitioned("b", "a") || n.Partitioned("c", "a") {
		t.Fatal("HealAll left a fault active")
	}
}

// TestBurstLossRecurrence is the regression for the paper's Fig. 9 process
// P_n = 25%·P_{n−1} + P with the realized-outcome reading: conditioned on
// the previous packet being lost the loss probability is P+0.25, conditioned
// on it being delivered it is P, and the stationary rate is P/(1−0.25).
func TestBurstLossRecurrence(t *testing.T) {
	const (
		p       = 0.05
		samples = 200_000
	)
	m := NewBurstLoss(p, 42)
	if m.Corr != 0.25 {
		t.Fatalf("Corr = %v, want the paper's 0.25", m.Corr)
	}
	var (
		lossAfterLoss, afterLoss int
		lossAfterOK, afterOK     int
		losses                   int
	)
	prev := false
	for i := 0; i < samples; i++ {
		lost := m.Drop()
		if lost {
			losses++
		}
		if i > 0 {
			if prev {
				afterLoss++
				if lost {
					lossAfterLoss++
				}
			} else {
				afterOK++
				if lost {
					lossAfterOK++
				}
			}
		}
		prev = lost
	}
	condLoss := float64(lossAfterLoss) / float64(afterLoss)
	condOK := float64(lossAfterOK) / float64(afterOK)
	stationary := float64(losses) / float64(samples)

	if want := p + 0.25; condLoss < want-0.02 || condLoss > want+0.02 {
		t.Errorf("P(loss|prev lost) = %.4f, want %.2f ± 0.02", condLoss, want)
	}
	if condOK < p-0.01 || condOK > p+0.01 {
		t.Errorf("P(loss|prev ok) = %.4f, want %.2f ± 0.01", condOK, p)
	}
	if want := p / 0.75; stationary < want-0.01 || stationary > want+0.01 {
		t.Errorf("stationary loss rate = %.4f, want %.4f ± 0.01", stationary, want)
	}
}

// TestFaultDecisionDeterminism re-runs seeded impairments and asserts the
// fault decisions (which packets are held back, which are dropped) repeat
// exactly — the property the chaos harness depends on for replay. Arrival
// ORDER of concurrently-due timers is scheduler territory and deliberately
// not asserted here.
func TestFaultDecisionDeterminism(t *testing.T) {
	run := func() Stats {
		n := NewNetwork()
		defer n.Close()
		src := n.Host("s")
		dst := n.Host("d")
		n.SetLink("s", "d", LinkConfig{ReorderProb: 0.4, ReorderDelay: 2 * time.Millisecond, QueuePackets: 1024})
		sendSeq(t, src, "d", 200)
		recvSeq(t, dst, 200, 5*time.Second)
		st, _ := n.LinkStats("s", "d")
		return st
	}
	a, b := run(), run()
	if a.Reordered == 0 {
		t.Fatal("no packets reordered at prob 0.4")
	}
	if a.Reordered != b.Reordered || a.Sent != b.Sent || a.Dropped != b.Dropped {
		t.Fatalf("identical seeded runs diverged: %+v vs %+v", a, b)
	}

	// Seeded loss models repeat their exact drop sequence.
	m1 := NewBurstLoss(0.1, 7)
	m2 := NewBurstLoss(0.1, 7)
	for i := 0; i < 10_000; i++ {
		if m1.Drop() != m2.Drop() {
			t.Fatalf("BurstLoss drop sequences diverged at packet %d", i)
		}
	}
	u1 := NewUniformLoss(0.1, 7)
	u2 := NewUniformLoss(0.1, 7)
	for i := 0; i < 10_000; i++ {
		if u1.Drop() != u2.Drop() {
			t.Fatalf("UniformLoss drop sequences diverged at packet %d", i)
		}
	}
}
