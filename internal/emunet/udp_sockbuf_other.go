//go:build !linux

package emunet

import "net"

// setSocketBuffers enlarges the kernel buffers, best effort: the portable
// setters apply, and the kernel caps at its configured maxima.
func setSocketBuffers(conn *net.UDPConn) {
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
}
