//go:build !linux || (!amd64 && !arm64)

package emunet

import "net"

// batchIOSupported: no syscall-batched receive loop on this platform; the
// portable one-datagram-per-syscall loop runs instead.
const batchIOSupported = false

// newBatchSender has no syscall-batched transmit here; SendBatch loops the
// single-packet path, byte-identical on the wire.
func newBatchSender(*net.UDPConn) batchSender { return nil }

// readLoopBatched never runs on this platform (rxBatch is only enabled
// when batchIOSupported); the stub satisfies the portable read loop's
// dispatch.
func (u *UDPConn) readLoopBatched(int) bool { return false }
