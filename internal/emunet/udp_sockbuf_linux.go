//go:build linux

package emunet

import (
	"net"
	"syscall"
)

// Socket buffer targets: the rx side must absorb a full coalesced burst
// per in-flight sender while the receiving process is descheduled (64KB
// max datagrams x depth x a few peers), the tx side one burst.
const (
	udpRcvBufBytes = 4 << 20
	udpSndBufBytes = 1 << 20
)

// setSocketBuffers enlarges the kernel buffers, best effort. A privileged
// process (CAP_NET_ADMIN) can exceed rmem_max/wmem_max via the *BUFFORCE
// options; otherwise the plain options apply and the kernel caps silently.
func setSocketBuffers(conn *net.UDPConn) {
	forced := false
	if rc, err := conn.SyscallConn(); err == nil {
		_ = rc.Control(func(fd uintptr) {
			errR := syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUFFORCE, udpRcvBufBytes)
			errS := syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUFFORCE, udpSndBufBytes)
			forced = errR == nil && errS == nil
		})
	}
	if !forced {
		_ = conn.SetReadBuffer(udpRcvBufBytes)
		_ = conn.SetWriteBuffer(udpSndBufBytes)
	}
}
