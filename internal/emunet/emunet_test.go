package emunet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestHostRoundTrip(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	pkt, src, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt) != "hi" || src != "a" {
		t.Fatalf("got %q from %q", pkt, src)
	}
}

func TestHostIdempotent(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if n.Host("x") != n.Host("x") {
		t.Fatal("Host not idempotent")
	}
}

func TestSendUnknownHost(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	if err := n.Host("a").Send("ghost", []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestSendNoLinkWithoutDefault(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	n.Host("a")
	n.Host("b")
	if err := n.Host("a").Send("b", []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	buf := []byte("abc")
	a.Send("b", buf)
	buf[0] = 'X'
	pkt, _, _ := b.Recv()
	if string(pkt) != "abc" {
		t.Fatal("Send did not copy the buffer")
	}
}

func TestLinkDelay(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{Delay: 50 * time.Millisecond})
	start := time.Now()
	a.Send("b", []byte("x"))
	_, _, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("packet arrived after %v, want >= ~50ms", elapsed)
	}
}

func TestLinkRateLimiting(t *testing.T) {
	// 100 packets of 1000 bytes over a 1 Mbps link need ~0.8s of
	// serialization; measure that delivery is spread out accordingly.
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{RateBps: 1e6, QueuePackets: 1000})
	pkt := make([]byte, 1000)
	start := time.Now()
	for i := 0; i < 100; i++ {
		a.Send("b", pkt)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 700*time.Millisecond {
		t.Fatalf("100x1000B over 1Mbps took %v, want >= ~0.8s", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("rate limiter too slow: %v", elapsed)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	n.Host("b")
	n.SetLink("a", "b", LinkConfig{RateBps: 1e3, QueuePackets: 4})
	pkt := make([]byte, 1000)
	for i := 0; i < 50; i++ {
		if err := a.Send("b", pkt); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := n.LinkStats("a", "b")
	if !ok {
		t.Fatal("no link stats")
	}
	if st.Dropped == 0 {
		t.Fatal("expected tail drops on overloaded link")
	}
}

func TestUniformLossDropsApproximately(t *testing.T) {
	m := NewUniformLoss(0.3, 1)
	drops := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.Drop() {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("uniform loss rate %.3f, want ~0.30", rate)
	}
}

func TestNoLossNeverDrops(t *testing.T) {
	var m NoLoss
	for i := 0; i < 100; i++ {
		if m.Drop() {
			t.Fatal("NoLoss dropped")
		}
	}
}

func TestBurstLossStationaryRate(t *testing.T) {
	// With feedback p_loss = P + 0.25*prev, stationary rate ~ P/(1-0.25).
	m := NewBurstLoss(0.03, 2)
	drops := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if m.Drop() {
			drops++
		}
	}
	rate := float64(drops) / trials
	want := 0.03 / 0.75
	if rate < want*0.8 || rate > want*1.2 {
		t.Fatalf("burst loss rate %.4f, want ~%.4f", rate, want)
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	// Conditional loss probability after a loss must exceed the marginal
	// rate (that is what makes it bursty).
	m := NewBurstLoss(0.02, 3)
	lossAfterLoss, losses, total := 0, 0, 200000
	prev := false
	for i := 0; i < total; i++ {
		lost := m.Drop()
		if lost {
			losses++
			if prev {
				lossAfterLoss++
			}
		}
		prev = lost
	}
	marginal := float64(losses) / float64(total)
	conditional := float64(lossAfterLoss) / float64(losses)
	if conditional <= marginal*2 {
		t.Fatalf("conditional %.4f not much larger than marginal %.4f", conditional, marginal)
	}
}

func TestBurstLossClampsProbability(t *testing.T) {
	m := NewBurstLoss(0.9, 4)
	for i := 0; i < 1000; i++ {
		m.Drop() // must not panic even when p would exceed 1
	}
}

func TestLinkLossIntegration(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{Loss: NewUniformLoss(0.5, 5), QueuePackets: 10000})
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send("b", []byte{1})
	}
	// Zero rate and delay: deliveries are synchronous, so the inbox holds
	// all survivors already.
	received := 0
	for {
		select {
		case <-b.inbox:
			received++
			continue
		default:
		}
		break
	}
	if received < sent*35/100 || received > sent*65/100 {
		t.Fatalf("received %d of %d with 50%% loss", received, sent)
	}
}

func TestSetLinkUpdatesExisting(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	n.Host("a")
	n.Host("b")
	n.SetLink("a", "b", LinkConfig{RateBps: 100})
	n.SetLink("a", "b", LinkConfig{RateBps: 200})
	cfg, ok := n.LinkConfigOf("a", "b")
	if !ok || cfg.RateBps != 200 {
		t.Fatalf("link config not updated: %+v %v", cfg, ok)
	}
}

func TestLinkConfigOfAbsent(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, ok := n.LinkConfigOf("x", "y"); ok {
		t.Fatal("absent link reported present")
	}
}

func TestDuplexLink(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetDuplexLink("a", "b", LinkConfig{})
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if pkt, _, _ := b.Recv(); string(pkt) != "x" {
		t.Fatal("b did not get x")
	}
	if pkt, _, _ := a.Recv(); string(pkt) != "y" {
		t.Fatal("a did not get y")
	}
}

func TestRecvAfterCloseDrainsThenErrors(t *testing.T) {
	n := NewNetwork(AllowDefault())
	a, b := n.Host("a"), n.Host("b")
	a.Send("b", []byte("x"))
	// Give the synchronous delivery a moment (no delay: synchronous).
	b.Close()
	pkt, _, err := b.Recv()
	if err != nil || string(pkt) != "x" {
		t.Fatalf("drain failed: %q %v", pkt, err)
	}
	if _, _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	n.Close()
}

func TestSendAfterNetworkClose(t *testing.T) {
	n := NewNetwork(AllowDefault())
	a := n.Host("a")
	n.Host("b")
	n.Close()
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := NewNetwork()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseCancelsInFlight(t *testing.T) {
	n := NewNetwork()
	a := n.Host("a")
	n.Host("b")
	n.SetLink("a", "b", LinkConfig{Delay: time.Hour})
	a.Send("b", []byte("x"))
	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on in-flight delivery")
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(AllowDefault())
	defer n.Close()
	dst := n.Host("sink")
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		src := n.Host(string(rune('a' + s)))
		go func(h *Host) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Send("sink", []byte{byte(i)})
			}
		}(src)
	}
	wg.Wait()
	got := 0
	timeout := time.After(5 * time.Second)
	for got < senders*per {
		select {
		case <-dst.inbox:
			got++
		case <-timeout:
			t.Fatalf("received %d of %d", got, senders*per)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	reg := NewRegistry()
	a, err := ListenUDP("alpha", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("beta", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send("beta", []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	pkt, src, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt) != "over udp" || src != "alpha" {
		t.Fatalf("got %q from %q", pkt, src)
	}
	if a.LocalAddr() != "alpha" {
		t.Fatal("LocalAddr wrong")
	}
	if a.UDPAddr() == nil {
		t.Fatal("UDPAddr nil")
	}
}

func TestUDPSendUnknown(t *testing.T) {
	reg := NewRegistry()
	a, err := ListenUDP("a", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("nobody", []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	reg := NewRegistry()
	a, err := ListenUDP("a", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, _, err := a.Recv()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	reg := NewRegistry()
	a, err := ListenUDP("a", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Lookup("x"); ok {
		t.Fatal("empty registry found name")
	}
}

func TestJitterReordersPackets(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{Delay: 5 * time.Millisecond, Jitter: 30 * time.Millisecond})
	const sent = 40
	for i := 0; i < sent; i++ {
		a.Send("b", []byte{byte(i)})
	}
	order := make([]byte, 0, sent)
	for i := 0; i < sent; i++ {
		pkt, _, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, pkt[0])
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("30ms jitter produced zero reordering across 40 packets (astronomically unlikely)")
	}
}

func TestJitterBoundsDelay(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{Delay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond})
	start := time.Now()
	a.Send("b", []byte{1})
	if _, _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 8*time.Millisecond {
		t.Fatalf("packet arrived before base delay: %v", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("packet delayed far past delay+jitter: %v", elapsed)
	}
}

func TestDuplicationDeliversExtraCopies(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	n.SetLink("a", "b", LinkConfig{DuplicateProb: 1.0})
	a.Send("b", []byte{7})
	for i := 0; i < 2; i++ {
		pkt, _, err := b.Recv()
		if err != nil || pkt[0] != 7 {
			t.Fatalf("copy %d: %v %v", i, pkt, err)
		}
	}
}
