package emunet

// Datagram pairs a packet with its peer: the destination for SendBatch,
// the source for RecvBatch. Buffer ownership follows the PacketConn
// contract — SendBatch payloads stay owned by the caller (the conn copies
// or finishes with them before returning); RecvBatch payloads transfer to
// the caller, who should PutPacket them once parsed.
type Datagram struct {
	Peer string
	Pkt  []byte
}

// BatchPacketConn is the optional batched extension of PacketConn. Conns
// that implement it can move many datagrams per syscall (sendmmsg/recvmmsg
// on linux); conns that don't are driven one packet at a time. Callers
// type-assert:
//
//	if bc, ok := conn.(BatchPacketConn); ok { bc.SendBatch(batch) }
//
// Batches preserve order: SendBatch transmits batch[0], batch[1], ... in
// sequence on the wire, and RecvBatch returns datagrams in arrival order.
// HasBatchIO reports whether this platform has the kernel batched-syscall
// path (sendmmsg/recvmmsg): true on linux/amd64 and linux/arm64, false
// where UDPConn falls back to the portable one-packet-per-syscall loop.
// Tests and experiments use it to gate quantitative syscall assertions.
func HasBatchIO() bool { return batchIOSupported }

type BatchPacketConn interface {
	PacketConn
	// SendBatch transmits the batch in order. It attempts every entry even
	// after a failure, skipping entries it cannot send, and returns the
	// number actually sent plus the first error encountered (nil when all
	// went out).
	SendBatch(batch []Datagram) (int, error)
	// RecvBatch blocks until at least one datagram is available, then
	// fills buf with as many as are immediately ready, up to len(buf), and
	// returns the count. It returns ErrClosed after Close.
	RecvBatch(buf []Datagram) (int, error)
}
