package emunet

// batchSender is the platform hook for syscall-batched transmit. The linux
// build (udp_mmsg_linux.go) implements it over sendmmsg; other platforms
// provide no implementation, and UDPConn.SendBatch loops the single-packet
// path instead. Implementations serialize internally: SendBatch may be
// called from multiple goroutines.
type batchSender interface {
	sendBatch(u *UDPConn, batch []Datagram) (int, error)
}
