//go:build linux && amd64

package emunet

// Syscall numbers for the batched datagram calls. The stdlib syscall
// package predates sendmmsg (it exports SYS_RECVMMSG but froze before
// number 307 landed), so both are pinned here per architecture.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
