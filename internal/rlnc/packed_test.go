package rlnc

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"ncfn/internal/gf"
)

// This file is the differential tier of the GF(2) packed fast path: every
// packed engine must be bit-identical to its byte-wise twin under loss,
// duplication, and reordering, at generation sizes deliberately straddling
// the 64-bit word boundary (k = 64 packs exactly one coefficient word;
// k = 65 spills into a second). The byte engines are reached by pre-seeding
// a Decoder's unexported engine field (tests share the package) or by
// hand-building a Recoder around a byte rawSpan — the public constructors
// auto-select the packed path for GF(2) params.

// packedDiffSizes straddle the coefficient-word boundary.
var packedDiffSizes = []int{1, 7, 64, 65}

func gf2Params(k, blockSize int) Params {
	return Params{GenerationBlocks: k, BlockSize: blockSize, Field: gf.GF2}
}

// byteDecoder returns a GF(2) decoder pinned to the byte-wise engine:
// incremental (basis) or deferred (rawSpan) depending on batched.
func byteDecoder(t *testing.T, p Params, batched bool) *Decoder {
	t.Helper()
	d, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if batched {
		d.def = newDeferred(p.GenerationBlocks, p.BlockSize)
	} else {
		d.b = newBasis(p.GenerationBlocks, p.BlockSize)
	}
	return d
}

// byteRecoder returns a GF(2) recoder pinned to the byte-wise span.
func byteRecoder(p Params, seed int64) *Recoder {
	return &Recoder{
		params:  p,
		span:    newRawSpan(p.GenerationBlocks, p.BlockSize),
		rng:     rand.New(rand.NewSource(seed)),
		weights: make([]byte, p.GenerationBlocks),
	}
}

// gf2Stream encodes a generation over GF(2) and returns a corrupted arrival
// sequence with enough redundancy to complete under the given loss.
func gf2Stream(t *testing.T, p Params, seed int64, lossPct, dupPct int) (src []byte, stream []CodedBlock) {
	t.Helper()
	src = randomData(seed, p.GenerationBytes())
	enc, err := NewEncoder(p, src, seed)
	if err != nil {
		t.Fatal(err)
	}
	coded := make([]CodedBlock, 4*p.GenerationBlocks+16)
	for i := range coded {
		coded[i] = enc.Coded()
	}
	rng := rand.New(rand.NewSource(seed + 7))
	return src, corruptStream(rng, coded, lossPct, dupPct)
}

// TestPackedDecoderMatchesByteReference drives the packed incremental and
// packed deferred engines in lockstep with their byte-wise references on the
// same corrupted GF(2) stream: every innovation verdict, every rank and
// useless step, and the final decoded bytes must agree across all four.
func TestPackedDecoderMatchesByteReference(t *testing.T) {
	for _, k := range packedDiffSizes {
		for _, tc := range []struct {
			name            string
			lossPct, dupPct int
			batch           int
		}{
			{"clean", 0, 0, 1},
			{"loss", 25, 0, 3},
			{"dup", 0, 35, 2},
			{"loss+dup", 20, 25, 5},
		} {
			t.Run("k="+strconv.Itoa(k)+"/"+tc.name, func(t *testing.T) {
				p := gf2Params(k, 96+k%8) // odd block sizes exercise word tails
				_, stream := gf2Stream(t, p, int64(1000+k), tc.lossPct, tc.dupPct)

				packedInc, _ := NewDecoder(p)
				packedDef, _ := NewDecoder(p)
				byteInc := byteDecoder(t, p, false)
				byteDef := byteDecoder(t, p, true)
				// Select the packed engines through the public API.
				if _, err := packedInc.Add(stream[0].Clone()); err != nil {
					t.Fatal(err)
				}
				if _, err := byteInc.Add(stream[0].Clone()); err != nil {
					t.Fatal(err)
				}
				if packedInc.pb == nil || byteInc.b == nil {
					t.Fatal("engine selection wrong: want packed basis vs byte basis")
				}
				for off := 1; off < len(stream); off++ {
					pi, err := packedInc.Add(stream[off].Clone())
					if err != nil {
						t.Fatal(err)
					}
					bi, err := byteInc.Add(stream[off].Clone())
					if err != nil {
						t.Fatal(err)
					}
					if pi != bi {
						t.Fatalf("packet %d: innovation verdict diverged (packed %v, byte %v)", off, pi, bi)
					}
				}
				for off := 0; off < len(stream); off += tc.batch {
					end := off + tc.batch
					if end > len(stream) {
						end = len(stream)
					}
					pn, err := packedDef.AddBatch(stream[off:end])
					if err != nil {
						t.Fatal(err)
					}
					bn, err := byteDef.AddBatch(stream[off:end])
					if err != nil {
						t.Fatal(err)
					}
					if pn != bn {
						t.Fatalf("batch at %d: innovative count diverged (packed %d, byte %d)", off, pn, bn)
					}
				}
				if packedDef.pdef == nil || byteDef.def == nil {
					t.Fatal("engine selection wrong: want packed deferred vs byte deferred")
				}
				decoders := []*Decoder{packedInc, byteInc, packedDef, byteDef}
				for i, d := range decoders[1:] {
					if d.Rank() != decoders[0].Rank() || d.Useless() != decoders[0].Useless() {
						t.Fatalf("decoder %d: rank/useless diverged: %d/%d vs %d/%d",
							i+1, d.Rank(), d.Useless(), decoders[0].Rank(), decoders[0].Useless())
					}
				}
				if !packedInc.Complete() {
					t.Fatalf("stream did not complete the generation (rank %d/%d)", packedInc.Rank(), k)
				}
				want, err := packedInc.Generation()
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range decoders[1:] {
					got, err := d.Generation()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("decoder %d: decoded bytes diverged", i+1)
					}
				}
			})
		}
	}
}

// TestPackedEncoderMatchesByteReference: with the same seed, the packed
// GF(2) encoder must emit bit-identical coefficient vectors and payloads to
// a byte-wise encoder over the same blocks.
func TestPackedEncoderMatchesByteReference(t *testing.T) {
	for _, k := range packedDiffSizes {
		p := gf2Params(k, 131)
		src := randomData(int64(2000+k), p.GenerationBytes())
		packed, err := NewEncoder(p, src, 42)
		if err != nil {
			t.Fatal(err)
		}
		if packed.pblocks == nil {
			t.Fatal("GF(2) encoder did not select the packed path")
		}
		ref, err := NewEncoder(p, src, 42)
		if err != nil {
			t.Fatal(err)
		}
		ref.pblocks, ref.pscratch = nil, nil // pin the byte path
		for i := 0; i < 3*k+8; i++ {
			pc := packed.Coded()
			bc := ref.Coded()
			if !bytes.Equal(pc.Coeffs, bc.Coeffs) {
				t.Fatalf("k=%d emission %d: coefficients diverged", k, i)
			}
			if !bytes.Equal(pc.Payload, bc.Payload) {
				t.Fatalf("k=%d emission %d: payloads diverged", k, i)
			}
		}
	}
}

// TestPackedRecoderMatchesByteReference: the packed recoder must store the
// same rows and, with the same seed, emit bit-identical recoded blocks to
// the byte-wise recoder — via both Add and the AddBatch path.
func TestPackedRecoderMatchesByteReference(t *testing.T) {
	for _, k := range packedDiffSizes {
		for _, useBatch := range []bool{false, true} {
			name := "k=" + strconv.Itoa(k)
			if useBatch {
				name += "/batch"
			}
			t.Run(name, func(t *testing.T) {
				p := gf2Params(k, 77)
				_, stream := gf2Stream(t, p, int64(3000+k), 15, 20)
				packed, err := NewRecoder(p, 99)
				if err != nil {
					t.Fatal(err)
				}
				if packed.pspan == nil {
					t.Fatal("GF(2) recoder did not select the packed span")
				}
				ref := byteRecoder(p, 99)
				if useBatch {
					pn, err := packed.AddBatch(stream)
					if err != nil {
						t.Fatal(err)
					}
					bn, err := ref.AddBatch(stream)
					if err != nil {
						t.Fatal(err)
					}
					if pn != bn {
						t.Fatalf("AddBatch innovative diverged: packed %d, byte %d", pn, bn)
					}
				} else {
					for _, cb := range stream {
						if err := packed.Add(cb); err != nil {
							t.Fatal(err)
						}
						if err := ref.Add(cb); err != nil {
							t.Fatal(err)
						}
					}
				}
				if packed.Stored() != ref.Stored() || packed.Useless() != ref.Useless() {
					t.Fatalf("span state diverged: packed %d/%d, byte %d/%d",
						packed.Stored(), packed.Useless(), ref.Stored(), ref.Useless())
				}
				var pc, bc CodedBlock
				for i := 0; i < 2*k+8; i++ {
					if !packed.RecodeInto(&pc) || !ref.RecodeInto(&bc) {
						t.Fatal("RecodeInto returned false with stored rows")
					}
					if !bytes.Equal(pc.Coeffs, bc.Coeffs) {
						t.Fatalf("emission %d: coefficients diverged", i)
					}
					if !bytes.Equal(pc.Payload, bc.Payload) {
						t.Fatalf("emission %d: payloads diverged", i)
					}
				}
			})
		}
	}
}

// TestGF2DrawsNeverAllZero is the satellite-1 regression: neither the
// encoder nor the recoder may emit an all-zero coefficient vector, even at
// k = 1 where GF(2) draws go all-zero with probability 1/2 per attempt.
func TestGF2DrawsNeverAllZero(t *testing.T) {
	p := gf2Params(1, 16)
	enc, err := NewEncoder(p, randomData(4, p.GenerationBytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	var cb CodedBlock
	for i := 0; i < 500; i++ {
		enc.CodedInto(&cb)
		if cb.Coeffs[0] == 0 {
			t.Fatalf("emission %d: encoder emitted a zero coefficient vector", i)
		}
	}
	rec, err := NewRecoder(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Add(cb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !rec.RecodeInto(&cb) {
			t.Fatal("RecodeInto returned false")
		}
		if cb.Coeffs[0] == 0 {
			t.Fatalf("emission %d: recoder emitted a zero coefficient vector", i)
		}
	}
}

// TestPackedDecoderDelegation: each packed engine accepts the other entry
// point once selected, mirroring TestDecoderModeDelegation.
func TestPackedDecoderDelegation(t *testing.T) {
	p := gf2Params(7, 64)
	src := randomData(6, p.GenerationBytes())
	enc, _ := NewEncoder(p, src, 6)
	coded := make([]CodedBlock, 4*p.GenerationBlocks)
	for i := range coded {
		coded[i] = enc.Coded()
	}
	// Packed basis selected by Add, then fed through AddBatch.
	d1, _ := NewDecoder(p)
	if _, err := d1.Add(coded[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.AddBatch(coded[1:]); err != nil {
		t.Fatal(err)
	}
	if d1.pb == nil || d1.pdef != nil {
		t.Fatal("AddBatch after Add must fold into the packed basis")
	}
	// Packed deferred selected by AddBatch, then fed through Add.
	d2, _ := NewDecoder(p)
	if _, err := d2.AddBatch(coded[:2]); err != nil {
		t.Fatal(err)
	}
	for _, cb := range coded[2:] {
		if _, err := d2.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
	if d2.pdef == nil || d2.pb != nil {
		t.Fatal("Add after AddBatch must fold into the packed deferred span")
	}
	for _, d := range []*Decoder{d1, d2} {
		if !d.Complete() {
			t.Fatalf("generation incomplete (rank %d/%d)", d.Rank(), p.GenerationBlocks)
		}
		got, err := d.Generation()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("decoded generation differs from source")
		}
	}
}

// TestPackedTakeWorkMetersGF2 asserts the packed engines bill work at the
// gf2WorkShift discount and that chargeable work flows through TakeWork.
func TestPackedTakeWorkMetersGF2(t *testing.T) {
	k, blockSize := 8, 1024
	p2 := gf2Params(k, blockSize)
	p256 := Params{GenerationBlocks: k, BlockSize: blockSize, Field: gf.GF256}
	src := randomData(12, p2.GenerationBytes())

	encGF2, _ := NewEncoder(p2, src, 12)
	encGF256, _ := NewEncoder(p256, src, 12)
	var cb CodedBlock
	encGF2.CodedInto(&cb)
	encGF256.CodedInto(&cb)
	w2, w256 := encGF2.TakeWork(), encGF256.TakeWork()
	if w2 == 0 {
		t.Fatal("GF(2) encoder must still bill nonzero work")
	}
	if want := w256 >> gf2WorkShift; w2 != want {
		t.Fatalf("GF(2) encode work = %d, want %d (GF(2^8) work %d >> %d)", w2, want, w256, gf2WorkShift)
	}
	if encGF2.TakeWork() != 0 {
		t.Fatal("TakeWork must reset")
	}

	dec, _ := NewDecoder(p2)
	for i := 0; i < 2*k && !dec.Complete(); i++ {
		encGF2.CodedInto(&cb)
		if _, err := dec.Add(cb.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if dec.TakeWork() == 0 {
		t.Fatal("packed incremental decode must bill work")
	}
}

func TestPackedDecoderAddZeroAlloc(t *testing.T) {
	p := gf2Params(65, 1460)
	enc, _ := NewEncoder(p, randomData(13, p.GenerationBytes()), 13)
	blocks := make([]CodedBlock, 130)
	for i := range blocks {
		blocks[i] = enc.Coded()
	}
	d, _ := NewDecoder(p)
	if _, err := d.Add(blocks[0]); err != nil { // create the packed basis
		t.Fatal(err)
	}
	i := 1
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.Add(blocks[i%len(blocks)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("packed Add allocated %.1f times per run, want 0", allocs)
	}
}

func TestPackedDecoderAddBatchZeroAlloc(t *testing.T) {
	p := gf2Params(65, 1460)
	enc, _ := NewEncoder(p, randomData(14, p.GenerationBytes()), 14)
	batch := make([]CodedBlock, 2)
	for i := range batch {
		batch[i] = enc.Coded()
	}
	d, _ := NewDecoder(p)
	if _, err := d.AddBatch(batch[:1]); err != nil { // create the packed deferred engine
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed AddBatch allocated %.1f times per run, want 0", allocs)
	}
}

func TestPackedEncoderCodedIntoZeroAlloc(t *testing.T) {
	p := gf2Params(65, 1460)
	enc, _ := NewEncoder(p, randomData(15, p.GenerationBytes()), 15)
	var cb CodedBlock
	enc.CodedInto(&cb) // size the buffers
	coeffsPtr, payloadPtr := &cb.Coeffs[0], &cb.Payload[0]
	allocs := testing.AllocsPerRun(100, func() {
		enc.CodedInto(&cb)
	})
	if allocs != 0 {
		t.Fatalf("packed CodedInto allocated %.1f times per run, want 0", allocs)
	}
	if &cb.Coeffs[0] != coeffsPtr || &cb.Payload[0] != payloadPtr {
		t.Fatal("packed CodedInto did not reuse the emission block's backing arrays")
	}
}

func TestPackedRecoderRecodeIntoZeroAlloc(t *testing.T) {
	p := gf2Params(65, 1460)
	enc, _ := NewEncoder(p, randomData(16, p.GenerationBytes()), 16)
	rec, _ := NewRecoder(p, 16)
	for i := 0; i < p.GenerationBlocks; i++ {
		if err := rec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	var cb CodedBlock
	rec.RecodeInto(&cb) // size the buffers
	allocs := testing.AllocsPerRun(100, func() {
		rec.RecodeInto(&cb)
	})
	if allocs != 0 {
		t.Fatalf("packed RecodeInto allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkDecoderBatchGF2 is the acceptance benchmark of the GF(2) fast
// path: a full generation decoded through AddBatch at the Fig 4 sweep
// sizes, packed engine vs the byte-wise GF(2) reference. Compare
// throughput against BenchmarkDecoderBatch/deferred (the GF(2^8) batched
// engine) at the same k. Guarded by a benchguard baseline at k=64.
func BenchmarkDecoderBatchGF2(b *testing.B) {
	for _, k := range []int{16, 64} {
		p := gf2Params(k, 1460)
		enc, err := NewEncoder(p, randomData(21, p.GenerationBytes()), 21)
		if err != nil {
			b.Fatal(err)
		}
		// Extra blocks absorb dependent GF(2) combinations.
		blocks := make([]CodedBlock, 2*k+16)
		for i := range blocks {
			blocks[i] = enc.Coded()
		}
		run := func(b *testing.B, packed bool) {
			b.SetBytes(int64(p.GenerationBytes()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := NewDecoder(p)
				if err != nil {
					b.Fatal(err)
				}
				if !packed {
					d.def = newDeferred(k, p.BlockSize)
				}
				for off := 0; off < len(blocks) && !d.Complete(); off += 8 {
					end := off + 8
					if end > len(blocks) {
						end = len(blocks)
					}
					if _, err := d.AddBatch(blocks[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				if !d.Complete() {
					b.Fatal("generation incomplete")
				}
				if _, err := d.Block(0); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run("packed/k="+strconv.Itoa(k), func(b *testing.B) { run(b, true) })
		b.Run("reference/k="+strconv.Itoa(k), func(b *testing.B) { run(b, false) })
	}
}

// BenchmarkEncodeCodedIntoGF2 mirrors BenchmarkEncodeCodedInto for the
// packed GF(2) emission path.
func BenchmarkEncodeCodedIntoGF2(b *testing.B) {
	for _, k := range []int{4, 64} {
		p := gf2Params(k, 1460)
		enc, err := NewEncoder(p, randomData(22, p.GenerationBytes()), 22)
		if err != nil {
			b.Fatal(err)
		}
		var cb CodedBlock
		enc.CodedInto(&cb)
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			b.SetBytes(int64(p.BlockSize))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc.CodedInto(&cb)
			}
		})
	}
}

// BenchmarkRecodeGF2 measures the packed recoder's absorb+emit cycle, the
// per-packet cost of a GF(2) relay VNF.
func BenchmarkRecodeGF2(b *testing.B) {
	for _, k := range []int{4, 64} {
		p := gf2Params(k, 1460)
		enc, err := NewEncoder(p, randomData(23, p.GenerationBytes()), 23)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := NewRecoder(p, 23)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := rec.Add(enc.Coded()); err != nil {
				b.Fatal(err)
			}
		}
		var cb CodedBlock
		rec.RecodeInto(&cb)
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			b.SetBytes(int64(p.BlockSize))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.RecodeInto(&cb)
			}
		})
	}
}
