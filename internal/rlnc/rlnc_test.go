package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ncfn/internal/gf"
)

func testParams() Params {
	return Params{GenerationBlocks: 4, BlockSize: 32}
}

func randomData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.GenerationBlocks != 4 || p.BlockSize != 1460 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// NC header (8 + 4 coeffs) + UDP (8) + IP (20) + block = 1500.
	if 12+8+20+p.BlockSize != 1500 {
		t.Fatal("default block size does not fill the MTU as in the paper")
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{GenerationBlocks: 0, BlockSize: 10},
		{GenerationBlocks: 256, BlockSize: 10},
		{GenerationBlocks: -1, BlockSize: 10},
		{GenerationBlocks: 4, BlockSize: 0},
		{GenerationBlocks: 4, BlockSize: -5},
		{GenerationBlocks: 4, BlockSize: 10, Field: gf.Field(99)},
	}
	for i, p := range cases {
		if err := p.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("case %d: err = %v, want ErrParams", i, err)
		}
	}
}

func TestGenerationBytes(t *testing.T) {
	if got := testParams().GenerationBytes(); got != 128 {
		t.Fatalf("GenerationBytes = %d, want 128", got)
	}
}

func TestEncodeDecodeCodedOnly(t *testing.T) {
	p := testParams()
	data := randomData(1, p.GenerationBytes())
	enc, err := NewEncoder(p, data, 42)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Complete() {
		if _, err := dec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decoded generation differs from source")
	}
}

func TestEncodeDecodeSystematic(t *testing.T) {
	p := testParams()
	data := randomData(2, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 1)
	dec, _ := NewDecoder(p)
	count := 0
	for {
		cb, ok := enc.Systematic()
		if !ok {
			break
		}
		count++
		innovative, err := dec.Add(cb)
		if err != nil {
			t.Fatal(err)
		}
		if !innovative {
			t.Fatal("systematic block not innovative")
		}
	}
	if count != p.GenerationBlocks {
		t.Fatalf("systematic emitted %d blocks, want %d", count, p.GenerationBlocks)
	}
	got, err := dec.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("systematic round-trip mismatch")
	}
}

func TestDecodeWithLoss(t *testing.T) {
	// Drop every other coded packet; decoding must still complete from the
	// survivors since every coded packet is (w.h.p.) innovative.
	p := testParams()
	data := randomData(3, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 7)
	dec, _ := NewDecoder(p)
	i := 0
	for !dec.Complete() {
		cb := enc.Coded()
		if i%2 == 0 { // drop
			i++
			continue
		}
		i++
		if _, err := dec.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := dec.Generation()
	if !bytes.Equal(got, data) {
		t.Fatal("decode-with-loss mismatch")
	}
}

func TestShortGenerationZeroPadded(t *testing.T) {
	p := testParams()
	data := randomData(4, 50) // less than 128
	enc, _ := NewEncoder(p, data, 3)
	dec, _ := NewDecoder(p)
	for !dec.Complete() {
		if _, err := dec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := dec.Generation()
	if !bytes.Equal(got[:50], data) {
		t.Fatal("short generation data mismatch")
	}
	for _, b := range got[50:] {
		if b != 0 {
			t.Fatal("padding not zero")
		}
	}
}

func TestEncoderRejectsOversizedData(t *testing.T) {
	p := testParams()
	if _, err := NewEncoder(p, make([]byte, p.GenerationBytes()+1), 0); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v, want ErrParams", err)
	}
}

func TestEncoderRejectsBadParams(t *testing.T) {
	if _, err := NewEncoder(Params{}, nil, 0); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v, want ErrParams", err)
	}
}

func TestDecoderRejectsBadParams(t *testing.T) {
	if _, err := NewDecoder(Params{GenerationBlocks: -1, BlockSize: 4}); !errors.Is(err, ErrParams) {
		t.Fatal("bad params accepted")
	}
}

func TestDecoderRejectsWrongLengths(t *testing.T) {
	p := testParams()
	dec, _ := NewDecoder(p)
	if _, err := dec.Add(CodedBlock{Coeffs: []byte{1}, Payload: make([]byte, p.BlockSize)}); !errors.Is(err, ErrParams) {
		t.Fatal("short coeffs accepted")
	}
	if _, err := dec.Add(CodedBlock{Coeffs: make([]byte, 4), Payload: make([]byte, 5)}); !errors.Is(err, ErrParams) {
		t.Fatal("short payload accepted")
	}
}

func TestDecoderDuplicateNotInnovative(t *testing.T) {
	p := testParams()
	data := randomData(5, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 9)
	dec, _ := NewDecoder(p)
	cb := enc.Coded()
	if ok, _ := dec.Add(cb); !ok {
		t.Fatal("first block should be innovative")
	}
	if ok, _ := dec.Add(cb.Clone()); ok {
		t.Fatal("duplicate block must not be innovative")
	}
	if dec.Useless() != 1 {
		t.Fatalf("Useless = %d, want 1", dec.Useless())
	}
}

func TestDecoderScaledDuplicateNotInnovative(t *testing.T) {
	p := testParams()
	enc, _ := NewEncoder(p, randomData(6, p.GenerationBytes()), 11)
	dec, _ := NewDecoder(p)
	cb := enc.Coded()
	dec.Add(cb)
	scaled := cb.Clone()
	gf.MulSlice(scaled.Coeffs, scaled.Coeffs, 17)
	gf.MulSlice(scaled.Payload, scaled.Payload, 17)
	if ok, _ := dec.Add(scaled); ok {
		t.Fatal("scaled duplicate must not be innovative")
	}
}

func TestDecoderIncompleteErrors(t *testing.T) {
	p := testParams()
	dec, _ := NewDecoder(p)
	if _, err := dec.Generation(); err == nil {
		t.Fatal("Generation on empty decoder must fail")
	}
	if _, err := dec.Block(0); err == nil {
		t.Fatal("Block on empty decoder must fail")
	}
}

func TestDecoderBlockIndexBounds(t *testing.T) {
	p := testParams()
	data := randomData(7, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 13)
	dec, _ := NewDecoder(p)
	for !dec.Complete() {
		dec.Add(enc.Coded())
	}
	if _, err := dec.Block(-1); !errors.Is(err, ErrParams) {
		t.Fatal("negative index accepted")
	}
	if _, err := dec.Block(p.GenerationBlocks); !errors.Is(err, ErrParams) {
		t.Fatal("out-of-range index accepted")
	}
	b0, err := dec.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b0, data[:p.BlockSize]) {
		t.Fatal("Block(0) mismatch")
	}
}

func TestRecoderPreservesDecodability(t *testing.T) {
	// source -> recoder -> decoder must still deliver the generation.
	p := testParams()
	data := randomData(8, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 17)
	rec, _ := NewRecoder(p, 19)
	dec, _ := NewDecoder(p)
	for i := 0; i < p.GenerationBlocks+2; i++ {
		if err := rec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	for guard := 0; !dec.Complete(); guard++ {
		if guard > 100 {
			t.Fatal("recoded stream did not decode within 100 packets")
		}
		cb, ok := rec.Recode()
		if !ok {
			t.Fatal("Recode returned nothing despite stored blocks")
		}
		dec.Add(cb)
	}
	got, _ := dec.Generation()
	if !bytes.Equal(got, data) {
		t.Fatal("recode path corrupted data")
	}
}

func TestRecoderEmptyReturnsFalse(t *testing.T) {
	rec, _ := NewRecoder(testParams(), 0)
	if _, ok := rec.Recode(); ok {
		t.Fatal("Recode on empty recoder returned a block")
	}
}

func TestRecoderRejectsWrongLengths(t *testing.T) {
	p := testParams()
	rec, _ := NewRecoder(p, 0)
	if err := rec.Add(CodedBlock{Coeffs: []byte{1}, Payload: make([]byte, p.BlockSize)}); !errors.Is(err, ErrParams) {
		t.Fatal("short coeffs accepted")
	}
	if err := rec.Add(CodedBlock{Coeffs: make([]byte, 4), Payload: []byte{1}}); !errors.Is(err, ErrParams) {
		t.Fatal("short payload accepted")
	}
}

func TestRecoderRankLimited(t *testing.T) {
	// If the recoder only ever saw 2 independent blocks, no amount of
	// recoding can raise the decoder past rank 2.
	p := testParams()
	enc, _ := NewEncoder(p, randomData(9, p.GenerationBytes()), 23)
	rec, _ := NewRecoder(p, 29)
	dec, _ := NewDecoder(p)
	rec.Add(enc.Coded())
	rec.Add(enc.Coded())
	for i := 0; i < 50; i++ {
		cb, _ := rec.Recode()
		dec.Add(cb)
	}
	if dec.Rank() > 2 {
		t.Fatalf("decoder rank %d exceeds information received (2)", dec.Rank())
	}
}

func TestMultiHopRecodeChain(t *testing.T) {
	// source -> recoder -> recoder -> decoder, exercising a relay chain.
	p := testParams()
	data := randomData(10, p.GenerationBytes())
	enc, _ := NewEncoder(p, data, 31)
	rec1, _ := NewRecoder(p, 37)
	rec2, _ := NewRecoder(p, 41)
	dec, _ := NewDecoder(p)
	for i := 0; i < p.GenerationBlocks+1; i++ {
		rec1.Add(enc.Coded())
	}
	for i := 0; i < p.GenerationBlocks+2; i++ {
		cb, _ := rec1.Recode()
		rec2.Add(cb)
	}
	for guard := 0; !dec.Complete(); guard++ {
		if guard > 200 {
			t.Fatal("two-hop recode chain did not decode")
		}
		cb, _ := rec2.Recode()
		dec.Add(cb)
	}
	got, _ := dec.Generation()
	if !bytes.Equal(got, data) {
		t.Fatal("two-hop recode mismatch")
	}
}

func TestGF2DecodingEventuallyCompletes(t *testing.T) {
	p := Params{GenerationBlocks: 4, BlockSize: 16, Field: gf.GF2}
	data := randomData(11, p.GenerationBytes())
	enc, err := NewEncoder(p, data, 43)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(p)
	sent := 0
	for !dec.Complete() {
		if sent > 1000 {
			t.Fatal("GF(2) decoding did not complete in 1000 packets")
		}
		dec.Add(enc.Coded())
		sent++
	}
	got, _ := dec.Generation()
	if !bytes.Equal(got, data) {
		t.Fatal("GF(2) round-trip mismatch")
	}
}

func TestGF2MoreUselessThanGF256(t *testing.T) {
	// Property from Sec. III-B: small fields suffer more linear dependency.
	packetsToComplete := func(field gf.Field, seed int64) int {
		p := Params{GenerationBlocks: 8, BlockSize: 8, Field: field}
		enc, _ := NewEncoder(p, randomData(seed, p.GenerationBytes()), seed)
		dec, _ := NewDecoder(p)
		n := 0
		for !dec.Complete() && n < 1000 {
			dec.Add(enc.Coded())
			n++
		}
		return n
	}
	totGF2, totGF256 := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		totGF2 += packetsToComplete(gf.GF2, seed)
		totGF256 += packetsToComplete(gf.GF256, seed)
	}
	if totGF2 <= totGF256 {
		t.Fatalf("GF(2) needed %d packets total, should exceed GF(2^8)'s %d", totGF2, totGF256)
	}
}

func TestSplitGenerations(t *testing.T) {
	p := testParams() // 128 bytes per generation
	data := randomData(12, 300)
	gens := SplitGenerations(p, data)
	if len(gens) != 3 {
		t.Fatalf("got %d generations, want 3", len(gens))
	}
	if len(gens[0]) != 128 || len(gens[1]) != 128 || len(gens[2]) != 44 {
		t.Fatalf("generation sizes %d,%d,%d", len(gens[0]), len(gens[1]), len(gens[2]))
	}
	var whole []byte
	for _, g := range gens {
		whole = append(whole, g...)
	}
	if !bytes.Equal(whole, data) {
		t.Fatal("SplitGenerations lost data")
	}
}

func TestSplitGenerationsEmpty(t *testing.T) {
	if gens := SplitGenerations(testParams(), nil); gens != nil {
		t.Fatal("empty input should produce no generations")
	}
}

func TestCodedBlockCloneIndependent(t *testing.T) {
	cb := CodedBlock{Coeffs: []byte{1, 2}, Payload: []byte{3, 4}}
	c := cb.Clone()
	c.Coeffs[0] = 99
	c.Payload[0] = 99
	if cb.Coeffs[0] != 1 || cb.Payload[0] != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	// For random generation shapes and data, coded-only transmission
	// recovers the source exactly.
	f := func(seed int64, kRaw, szRaw uint8) bool {
		k := int(kRaw)%12 + 1
		sz := int(szRaw)%64 + 1
		p := Params{GenerationBlocks: k, BlockSize: sz}
		data := randomData(seed, p.GenerationBytes())
		enc, err := NewEncoder(p, data, seed+1)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(p)
		if err != nil {
			return false
		}
		for i := 0; i < 50*k && !dec.Complete(); i++ {
			dec.Add(enc.Coded())
		}
		if !dec.Complete() {
			return false
		}
		got, err := dec.Generation()
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRankNeverExceedsK(t *testing.T) {
	f := func(seed int64) bool {
		p := testParams()
		enc, _ := NewEncoder(p, randomData(seed, p.GenerationBytes()), seed)
		dec, _ := NewDecoder(p)
		for i := 0; i < 20; i++ {
			dec.Add(enc.Coded())
			if dec.Rank() > p.GenerationBlocks {
				return false
			}
		}
		return dec.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeCoded(b *testing.B) {
	p := DefaultParams()
	enc, _ := NewEncoder(p, randomData(1, p.GenerationBytes()), 1)
	b.SetBytes(int64(p.BlockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Coded()
	}
}

func BenchmarkDecodeGeneration(b *testing.B) {
	p := DefaultParams()
	enc, _ := NewEncoder(p, randomData(2, p.GenerationBytes()), 2)
	blocks := make([]CodedBlock, p.GenerationBlocks+1)
	for i := range blocks {
		blocks[i] = enc.Coded()
	}
	b.SetBytes(int64(p.GenerationBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, _ := NewDecoder(p)
		for _, cb := range blocks {
			if dec.Complete() {
				break
			}
			dec.Add(cb)
		}
	}
}

func BenchmarkRecode(b *testing.B) {
	p := DefaultParams()
	enc, _ := NewEncoder(p, randomData(3, p.GenerationBytes()), 3)
	rec, _ := NewRecoder(p, 4)
	for i := 0; i < p.GenerationBlocks; i++ {
		rec.Add(enc.Coded())
	}
	b.SetBytes(int64(p.BlockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Recode()
	}
}

func TestRecodeIntoReusesBuffers(t *testing.T) {
	p := DefaultParams()
	data := randomData(11, p.GenerationBytes())
	enc, err := NewEncoder(p, data, 11)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecoder(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.GenerationBlocks; i++ {
		if err := rec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	var cb CodedBlock
	if !rec.RecodeInto(&cb) {
		t.Fatal("RecodeInto returned false with buffered blocks")
	}
	c0, p0 := &cb.Coeffs[0], &cb.Payload[0]
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Complete() {
		if !rec.RecodeInto(&cb) {
			t.Fatal("RecodeInto returned false")
		}
		if &cb.Coeffs[0] != c0 || &cb.Payload[0] != p0 {
			t.Fatal("RecodeInto reallocated caller buffers that had capacity")
		}
		if _, err := dec.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recoded-into stream did not decode to the source data")
	}
}

func TestRecodeIntoEmpty(t *testing.T) {
	rec, err := NewRecoder(DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var cb CodedBlock
	if rec.RecodeInto(&cb) {
		t.Fatal("RecodeInto reported success with nothing buffered")
	}
}

// TestRecoderHotPathZeroAlloc pins the recoder's steady-state behavior: once
// a generation's basis and the caller's emission block exist, neither
// absorbing a packet (Add) nor emitting one (RecodeInto) may allocate.
func TestRecoderHotPathZeroAlloc(t *testing.T) {
	p := DefaultParams()
	enc, err := NewEncoder(p, randomData(13, p.GenerationBytes()), 13)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecoder(p, 14)
	if err != nil {
		t.Fatal(err)
	}
	in := enc.Coded()
	var out CodedBlock
	if allocs := testing.AllocsPerRun(100, func() {
		if err := rec.Add(in); err != nil {
			t.Fatal(err)
		}
		if !rec.RecodeInto(&out) {
			t.Fatal("RecodeInto returned false")
		}
	}); allocs != 0 {
		t.Fatalf("recoder hot path allocated %.1f times per packet, want 0", allocs)
	}
}

// TestDecoderAddZeroAlloc pins the decoder's steady-state behavior: with the
// basis arena preallocated, absorbing a packet never allocates, innovative
// or not.
func TestDecoderAddZeroAlloc(t *testing.T) {
	p := DefaultParams()
	enc, err := NewEncoder(p, randomData(15, p.GenerationBytes()), 15)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	in := enc.Coded()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Add(in); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Decoder.Add allocated %.1f times per packet, want 0", allocs)
	}
}

// TestRecoderBoundedUnderSustainedTraffic pins the rank-limited property:
// feeding far more packets than the generation size must not grow state or
// degrade emissions (the seed stored every packet and mixed all of them).
func TestRecoderBoundedUnderSustainedTraffic(t *testing.T) {
	p := DefaultParams()
	data := randomData(17, p.GenerationBytes())
	enc, err := NewEncoder(p, data, 17)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecoder(p, 18)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100*p.GenerationBlocks; i++ {
		if err := rec.Add(enc.Coded()); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Stored(); got > p.GenerationBlocks {
		t.Fatalf("Stored() = %d after sustained traffic, want <= %d", got, p.GenerationBlocks)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*p.GenerationBlocks && !dec.Complete(); i++ {
		cb, ok := rec.Recode()
		if !ok {
			t.Fatal("Recode returned false")
		}
		if _, err := dec.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recoded stream did not decode to the source data")
	}
}

func BenchmarkRecodeInto(b *testing.B) {
	p := DefaultParams()
	enc, _ := NewEncoder(p, randomData(3, p.GenerationBytes()), 3)
	rec, _ := NewRecoder(p, 4)
	for i := 0; i < p.GenerationBlocks; i++ {
		rec.Add(enc.Coded())
	}
	var cb CodedBlock
	b.SetBytes(int64(p.BlockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.RecodeInto(&cb)
	}
}
