// Package rlnc implements randomized linear network coding (RLNC) over
// GF(2^8), mirroring the data-plane coding scheme of Sec. III-B:
//
//   - Source data is split into generations; each generation is split into
//     a fixed number of equal-size blocks (Fig. 3).
//   - An encoded block is a random linear combination of the blocks of one
//     generation; the random coefficients travel in the packet header.
//   - Intermediate nodes recode: any set of received coded blocks for a
//     generation can be combined again without decoding.
//   - A receiver decodes a generation once it has collected as many
//     linearly independent coded blocks as the generation has blocks.
//
// The default parameters are the paper's: 4 blocks per generation and
// 1460-byte blocks, chosen so that the NC header + UDP + IP headers exactly
// fill a 1500-byte MTU.
package rlnc

import (
	"errors"
	"fmt"
	"math/rand"

	"ncfn/internal/gf"
)

// DefaultGenerationBlocks is the paper's generation size in blocks (Fig. 4
// shows throughput peaking at 4 blocks per generation).
const DefaultGenerationBlocks = 4

// DefaultBlockSize is the paper's block size in bytes: 1460 bytes +
// 12-byte NC header + 8-byte UDP header + 20-byte IP header = 1500 (MTU).
const DefaultBlockSize = 1460

// ErrParams is returned for invalid coding parameters.
var ErrParams = errors.New("rlnc: invalid parameters")

// Params fixes the coding configuration for a session. The same generation
// and block sizes are used across all sessions of a deployment and are
// distributed to each VNF at initialization (Sec. III-B).
type Params struct {
	// GenerationBlocks is the number of blocks per generation.
	GenerationBlocks int
	// BlockSize is the number of bytes per block.
	BlockSize int
	// Field is the coefficient field; zero value means GF(2^8).
	Field gf.Field
}

// DefaultParams returns the paper's coding parameters.
func DefaultParams() Params {
	return Params{GenerationBlocks: DefaultGenerationBlocks, BlockSize: DefaultBlockSize, Field: gf.GF256}
}

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	if p.GenerationBlocks <= 0 || p.GenerationBlocks > 255 {
		return fmt.Errorf("%w: generation blocks %d out of range [1,255]", ErrParams, p.GenerationBlocks)
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("%w: block size %d must be positive", ErrParams, p.BlockSize)
	}
	if f := p.field(); f != gf.GF256 && f != gf.GF2 {
		return fmt.Errorf("%w: unsupported field %v", ErrParams, p.Field)
	}
	return nil
}

// GenerationBytes returns the payload bytes carried by one full generation.
func (p Params) GenerationBytes() int { return p.GenerationBlocks * p.BlockSize }

func (p Params) field() gf.Field {
	if p.Field == 0 {
		return gf.GF256
	}
	return p.Field
}

// checkBlock validates a coded block's dimensions against the parameters.
func (p Params) checkBlock(cb CodedBlock) error {
	if len(cb.Coeffs) != p.GenerationBlocks {
		return fmt.Errorf("%w: coefficient vector length %d, want %d", ErrParams, len(cb.Coeffs), p.GenerationBlocks)
	}
	if len(cb.Payload) != p.BlockSize {
		return fmt.Errorf("%w: payload length %d, want %d", ErrParams, len(cb.Payload), p.BlockSize)
	}
	return nil
}

// CodedBlock is one coded block together with its coefficient vector: the
// payload equals sum_i Coeffs[i] * block_i of the source generation.
type CodedBlock struct {
	// Coeffs has length Params.GenerationBlocks.
	Coeffs []byte
	// Payload has length Params.BlockSize.
	Payload []byte
}

// Clone returns a deep copy of the coded block.
func (c CodedBlock) Clone() CodedBlock {
	return CodedBlock{
		Coeffs:  append([]byte(nil), c.Coeffs...),
		Payload: append([]byte(nil), c.Payload...),
	}
}

// Encoder produces coded blocks for a single source generation.
// It is not safe for concurrent use.
type Encoder struct {
	params Params
	blocks [][]byte
	rng    *rand.Rand
	next   int    // next systematic block index
	work   uint64 // payload-equivalent kernel traffic, in bytes

	// GF(2) packed fast path: the source blocks packed into words once at
	// construction, plus the emission gather scratch. nil under GF(2^8).
	pblocks  [][]uint64
	pscratch []uint64
}

// NewEncoder builds an encoder for one generation of source data. data must
// be at most GenerationBytes long; a short final generation is zero-padded
// (the application layer records the true length). seed makes coefficient
// draws reproducible; use different seeds per node in deployments.
func NewEncoder(params Params, data []byte, seed int64) (*Encoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(data) > params.GenerationBytes() {
		return nil, fmt.Errorf("%w: %d bytes exceed generation capacity %d", ErrParams, len(data), params.GenerationBytes())
	}
	blocks := make([][]byte, params.GenerationBlocks)
	for i := range blocks {
		blocks[i] = make([]byte, params.BlockSize)
		lo := i * params.BlockSize
		if lo < len(data) {
			copy(blocks[i], data[lo:])
		}
	}
	e := &Encoder{
		params: params,
		blocks: blocks,
		rng:    rand.New(rand.NewSource(seed)),
	}
	if params.field() == gf.GF2 {
		pwords := gf.WordsForBytes(params.BlockSize)
		arena := make([]uint64, params.GenerationBlocks*pwords)
		e.pblocks = make([][]uint64, params.GenerationBlocks)
		for i := range e.pblocks {
			e.pblocks[i] = arena[i*pwords : (i+1)*pwords : (i+1)*pwords]
			gf.PackBytes(e.pblocks[i], blocks[i])
		}
		e.pscratch = make([]uint64, pwords)
	}
	return e, nil
}

// Params returns the coding parameters.
func (e *Encoder) Params() Params { return e.params }

// Systematic returns the next uncoded source block (identity coefficient
// vector) or false once all source blocks have been emitted once.
// Systematic transmission lets the first packet of a generation be forwarded
// without coding, as the data plane does for the first arrival (Sec. III-B).
func (e *Encoder) Systematic() (CodedBlock, bool) {
	if e.next >= e.params.GenerationBlocks {
		return CodedBlock{}, false
	}
	coeffs := make([]byte, e.params.GenerationBlocks)
	coeffs[e.next] = 1
	cb := CodedBlock{Coeffs: coeffs, Payload: append([]byte(nil), e.blocks[e.next]...)}
	e.next++
	e.work += uint64(e.params.BlockSize)
	return cb, true
}

// Coded returns a fresh random linear combination of the generation.
func (e *Encoder) Coded() CodedBlock {
	var cb CodedBlock
	e.CodedInto(&cb)
	return cb
}

// CodedInto writes a fresh random combination of the generation into cb,
// reusing cb's backing arrays when they have capacity — the data plane's
// allocation-free emission path. The payload is produced by one fused gather
// over the source blocks (gf.CombineSlices), so the destination strip stays
// cache-resident while every source row streams through it once.
//
//nc:hotpath
func (e *Encoder) CodedInto(cb *CodedBlock) {
	k := e.params.GenerationBlocks
	cb.Coeffs = resizeBuf(cb.Coeffs, k)
	cb.Payload = resizeBuf(cb.Payload, e.params.BlockSize)
	drawCoeffs(e.rng, e.params.field(), cb.Coeffs)
	if e.pblocks != nil {
		// GF(2) packed path: fused word gather, then unpack to the wire.
		gf.CombineWords(e.pscratch, e.pblocks, cb.Coeffs)
		gf.UnpackBytes(cb.Payload, e.pscratch)
		e.work += uint64(k+1) * uint64(e.params.BlockSize) / 2 >> gf2WorkShift
		return
	}
	gf.CombineSlices(cb.Payload, e.blocks, cb.Coeffs)
	// Fused gather traffic: (k+1)/2 rows of blockSize per emission.
	e.work += uint64(k+1) * uint64(e.params.BlockSize) / 2
}

// drawCoeffs fills coeffs with random field coefficients, redrawing the
// whole vector if every entry came up zero: an all-zero vector carries no
// information, and under GF(2) a single draw goes all-zero with probability
// 2^-k — at small generation sizes that is real transmission waste, not a
// corner case. The redraw loop is bounded by maxCoeffRedraws, after which
// one random entry is forced to 1.
//
//nc:hotpath
func drawCoeffs(rng *rand.Rand, field gf.Field, coeffs []byte) {
	for attempt := 0; ; attempt++ {
		allZero := true
		for i := range coeffs {
			coeffs[i] = field.ClampCoeff(byte(rng.Intn(256)))
			if coeffs[i] != 0 {
				allZero = false
			}
		}
		if !allZero {
			return
		}
		if attempt == maxCoeffRedraws {
			coeffs[rng.Intn(len(coeffs))] = 1
			return
		}
	}
}

// TakeWork returns the coding work performed since the last call, measured
// in bytes of equivalent single-row kernel traffic, and resets the counter.
// The data plane charges its simulated coding budget from these deltas.
func (e *Encoder) TakeWork() uint64 {
	w := e.work
	e.work = 0
	return w
}

// basis is the shared progressive-Gaussian-elimination core behind Decoder
// and Recoder: a reduced row-echelon system of at most k rows, stored in a
// preallocated arena so that inserting a block performs zero heap
// allocations. The arena holds k+1 rows: up to k pivot rows plus one
// scratch row the next arrival is reduced in; an innovative insert promotes
// the scratch row to a pivot and adopts the next free arena row as scratch.
type basis struct {
	k, blockSize int
	// rows[i] / payload[i], when pivots[i] is true, form a row with
	// leading 1 at column i, reduced against all other pivot rows.
	rows    [][]byte
	payload [][]byte
	pivots  []bool
	rank    int
	useless int    // inserted blocks that were not innovative
	work    uint64 // payload-equivalent kernel traffic, in bytes

	scratchC []byte // next incoming coefficient row (arena view)
	scratchP []byte // next incoming payload row (arena view)
	nextRow  int
	arenaC   []byte
	arenaP   []byte
}

func newBasis(k, blockSize int) *basis {
	b := &basis{
		k:         k,
		blockSize: blockSize,
		rows:      make([][]byte, k),
		payload:   make([][]byte, k),
		pivots:    make([]bool, k),
		arenaC:    make([]byte, (k+1)*k),
		arenaP:    make([]byte, (k+1)*blockSize),
	}
	b.scratchC, b.scratchP = b.arenaRow(0)
	b.nextRow = 1
	return b
}

func (b *basis) arenaRow(i int) (coeffs, payload []byte) {
	return b.arenaC[i*b.k : (i+1)*b.k : (i+1)*b.k],
		b.arenaP[i*b.blockSize : (i+1)*b.blockSize : (i+1)*b.blockSize]
}

// insert reduces one coded block against the stored pivot rows and, if it
// is innovative, stores it and back-substitutes to keep the system in
// reduced form. It reports whether the rank increased. insert performs no
// heap allocation.
func (b *basis) insert(coeffs, payload []byte) bool {
	cs, ps := b.scratchC, b.scratchP
	copy(cs, coeffs)
	copy(ps, payload)
	rowOps := 1 // the payload copy

	// Reduce the incoming vector against every existing pivot row. Each
	// stored pivot row is zero at all other pivot columns, so one pass
	// clears every pivot column of the incoming vector.
	for col := 0; col < b.k; col++ {
		if cs[col] == 0 || !b.pivots[col] {
			continue
		}
		c := cs[col]
		gf.AddMulSlice(cs, b.rows[col], c)
		gf.AddMulSlice(ps, b.payload[col], c)
		rowOps++
	}
	// The leading nonzero column (necessarily pivot-free now) becomes the
	// new pivot; a fully-reduced zero vector was not innovative.
	lead := -1
	for col := 0; col < b.k; col++ {
		if cs[col] != 0 {
			lead = col
			break
		}
	}
	if lead < 0 {
		b.useless++
		b.work += uint64(rowOps) * uint64(b.blockSize)
		return false
	}
	if c := cs[lead]; c != 1 {
		inv := gf.Inv(c)
		gf.MulSlice(cs, cs, inv)
		gf.MulSlice(ps, ps, inv)
		rowOps++
	}
	b.rows[lead] = cs
	b.payload[lead] = ps
	b.pivots[lead] = true
	b.rank++
	// Back-substitute: eliminate column lead from all other pivot rows.
	for r := 0; r < b.k; r++ {
		if r == lead || !b.pivots[r] {
			continue
		}
		if c := b.rows[r][lead]; c != 0 {
			gf.AddMulSlice(b.rows[r], b.rows[lead], c)
			gf.AddMulSlice(b.payload[r], b.payload[lead], c)
			rowOps++
		}
	}
	b.scratchC, b.scratchP = b.arenaRow(b.nextRow)
	b.nextRow++
	b.work += uint64(rowOps) * uint64(b.blockSize)
	return true
}

// Decoder recovers a generation from coded blocks. It runs one of two
// engines, selected lazily by the first call:
//
//   - Add (incremental): every arriving block is reduced against the rows
//     collected so far via progressive Gaussian elimination, spreading decode
//     cost across arrivals — lowest per-generation latency jitter.
//   - AddBatch (deferred): arriving rows are rank-gated on coefficients only
//     and stored raw; one blocked inverse + fused multiply recovers the
//     generation at full rank — far less total work for large generations.
//
// Either engine accepts both calls once selected (the other call delegates),
// and both decode to identical bytes. All row storage is preallocated when
// the engine is created; steady-state Add/AddBatch performs no heap
// allocations. It is not safe for concurrent use.
//
// Under Params.Field == gf.GF2 the decoder picks the bit-packed twins of
// both engines (packedBasis / packedDeferred): coefficients become bitmaps,
// payloads become []uint64, and every elimination row-op is a word-wide XOR.
// The byte engines remain reachable for GF(2) inputs (tests pre-seed them)
// and decode bit-identical output — they are the differential reference for
// the packed path.
type Decoder struct {
	params Params
	b      *basis          // incremental engine, created by a first Add
	def    *deferred       // batched engine, created by a first AddBatch
	pb     *packedBasis    // packed incremental engine (GF(2))
	pdef   *packedDeferred // packed batched engine (GF(2))
}

// NewDecoder builds a decoder for one generation.
func NewDecoder(params Params) (*Decoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{params: params}, nil
}

// Params returns the coding parameters.
func (d *Decoder) Params() Params { return d.params }

// Rank returns the number of linearly independent blocks received so far.
func (d *Decoder) Rank() int {
	switch {
	case d.b != nil:
		return d.b.rank
	case d.def != nil:
		return d.def.span.n
	case d.pb != nil:
		return d.pb.rank
	case d.pdef != nil:
		return d.pdef.span.n
	}
	return 0
}

// Useless returns the number of received blocks that were not innovative
// (linearly dependent on earlier ones). With GF(2^8) coefficients this stays
// near zero; it grows under GF(2), which the field-size ablation measures.
func (d *Decoder) Useless() int {
	switch {
	case d.b != nil:
		return d.b.useless
	case d.def != nil:
		return d.def.span.useless
	case d.pb != nil:
		return d.pb.useless
	case d.pdef != nil:
		return d.pdef.span.useless
	}
	return 0
}

// Complete reports whether the full generation can be recovered.
func (d *Decoder) Complete() bool { return d.Rank() == d.params.GenerationBlocks }

// TakeWork returns the coding work performed since the last call, measured
// in bytes of equivalent single-row kernel traffic, and resets the counter.
// For the deferred engine this includes the end-of-generation inverse and
// multiply once they have run.
func (d *Decoder) TakeWork() uint64 {
	var w uint64
	if d.b != nil {
		w += d.b.work
		d.b.work = 0
	}
	if d.def != nil {
		w += d.def.takeWork()
	}
	if d.pb != nil {
		w += d.pb.work
		d.pb.work = 0
	}
	if d.pdef != nil {
		w += d.pdef.takeWork()
	}
	return w
}

// Add consumes one coded block and reports whether it was innovative
// (increased the decoder's rank).
func (d *Decoder) Add(cb CodedBlock) (bool, error) {
	if err := d.params.checkBlock(cb); err != nil {
		return false, err
	}
	switch {
	case d.def != nil:
		return d.def.span.insert(cb.Coeffs, cb.Payload), nil
	case d.pdef != nil:
		return d.pdef.span.insert(cb.Coeffs, cb.Payload), nil
	case d.b != nil:
		return d.b.insert(cb.Coeffs, cb.Payload), nil
	case d.pb != nil:
		return d.pb.insert(cb.Coeffs, cb.Payload), nil
	}
	if d.params.field() == gf.GF2 {
		d.pb = newPackedBasis(d.params.GenerationBlocks, d.params.BlockSize)
		return d.pb.insert(cb.Coeffs, cb.Payload), nil
	}
	d.b = newBasis(d.params.GenerationBlocks, d.params.BlockSize)
	return d.b.insert(cb.Coeffs, cb.Payload), nil
}

// Block returns source block i once the generation is complete.
func (d *Decoder) Block(i int) ([]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("rlnc: generation incomplete (rank %d/%d)", d.Rank(), d.params.GenerationBlocks)
	}
	if i < 0 || i >= d.params.GenerationBlocks {
		return nil, fmt.Errorf("%w: block index %d", ErrParams, i)
	}
	switch {
	case d.def != nil:
		if err := d.def.finalize(); err != nil {
			return nil, err
		}
		return d.def.decoded[i], nil
	case d.pdef != nil:
		if err := d.pdef.finalize(); err != nil {
			return nil, err
		}
		return d.pdef.decoded[i], nil
	case d.pb != nil:
		return d.pb.block(i), nil
	}
	return d.b.payload[i], nil
}

// Generation returns the concatenated decoded generation payload.
func (d *Decoder) Generation() ([]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("rlnc: generation incomplete (rank %d/%d)", d.Rank(), d.params.GenerationBlocks)
	}
	out := make([]byte, 0, d.params.GenerationBytes())
	for i := 0; i < d.params.GenerationBlocks; i++ {
		row, err := d.Block(i)
		if err != nil {
			return nil, err
		}
		out = append(out, row...)
	}
	return out, nil
}

// Recoder combines coded blocks received so far into fresh coded blocks
// without decoding — the core capability that lets intermediate VNFs mix
// flows. It stores the raw innovative rows it receives, gated by a
// coefficient-only rank check: a recoder never needs payload elimination at
// all, because any random combination of the raw rows spans the same space
// as a reduced basis. Per-generation memory is bounded by k rows, absorbing
// a packet costs one payload copy, and an emission is a single fused gather
// over the stored span — O(rank) row reads, not O(packets received). Add
// and RecodeInto perform no heap allocation. It is not safe for concurrent
// use.
//
// Under Params.Field == gf.GF2 the recoder stores its span bit-packed
// (packedSpan) and emits through the fused word-gather kernel; the byte span
// remains the differential reference.
type Recoder struct {
	params  Params
	span    *rawSpan    // byte span (GF(2^8))
	pspan   *packedSpan // packed span (GF(2))
	rng     *rand.Rand
	weights []byte   // emission draw scratch
	emitC   []uint64 // packed coefficient gather scratch (GF(2))
	emitP   []uint64 // packed payload gather scratch (GF(2))
}

// NewRecoder builds a recoder for one generation.
func NewRecoder(params Params, seed int64) (*Recoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := &Recoder{
		params:  params,
		rng:     rand.New(rand.NewSource(seed)),
		weights: make([]byte, params.GenerationBlocks),
	}
	if params.field() == gf.GF2 {
		r.pspan = newPackedSpan(params.GenerationBlocks, params.BlockSize)
		r.emitC = make([]uint64, r.pspan.cwords)
		r.emitP = make([]uint64, r.pspan.pwords)
	} else {
		r.span = newRawSpan(params.GenerationBlocks, params.BlockSize)
	}
	return r, nil
}

// Params returns the coding parameters.
func (r *Recoder) Params() Params { return r.params }

// Stored returns the number of linearly independent blocks buffered for
// recoding (the recoder's rank; dependent arrivals add no information and
// are dropped by the coefficient gate).
func (r *Recoder) Stored() int {
	if r.pspan != nil {
		return r.pspan.n
	}
	return r.span.n
}

// Useless returns the number of received blocks the coefficient gate dropped
// as linearly dependent. The data plane surfaces this per field: dependent
// arrivals are the transmission overhead small fields trade for cheaper
// coding (Sec. III-B).
func (r *Recoder) Useless() int {
	if r.pspan != nil {
		return r.pspan.useless
	}
	return r.span.useless
}

// TakeWork returns the coding work performed since the last call, measured
// in bytes of equivalent single-row kernel traffic, and resets the counter.
func (r *Recoder) TakeWork() uint64 {
	if r.pspan != nil {
		w := r.pspan.work
		r.pspan.work = 0
		return w
	}
	w := r.span.work
	r.span.work = 0
	return w
}

// Add folds a received coded block into the recoding span.
func (r *Recoder) Add(cb CodedBlock) error {
	if err := r.params.checkBlock(cb); err != nil {
		return err
	}
	if r.pspan != nil {
		r.pspan.insert(cb.Coeffs, cb.Payload)
		return nil
	}
	r.span.insert(cb.Coeffs, cb.Payload)
	return nil
}

// Recode emits a random linear combination of the received span. It returns
// false if nothing has been buffered yet.
func (r *Recoder) Recode() (CodedBlock, bool) {
	var cb CodedBlock
	if !r.RecodeInto(&cb) {
		return CodedBlock{}, false
	}
	return cb, true
}

// RecodeInto writes a fresh random combination of the received span into
// cb, reusing cb's backing arrays when they have capacity — the data
// plane's allocation-free emission path. It returns false if nothing has
// been buffered yet.
//
//nc:hotpath
func (r *Recoder) RecodeInto(cb *CodedBlock) bool {
	n := r.Stored()
	if n == 0 {
		return false
	}
	cb.Coeffs = resizeBuf(cb.Coeffs, r.params.GenerationBlocks)
	cb.Payload = resizeBuf(cb.Payload, r.params.BlockSize)
	// All-zero weight vectors are redrawn at the source: emitting the fused
	// gather of an all-zero draw would be a zero packet, and the old
	// fallback (forward stored row 0) was a guaranteed duplicate — useless
	// to every downstream decoder that already has the row.
	w := r.weights[:n]
	drawCoeffs(r.rng, r.params.field(), w)
	if r.pspan != nil {
		// GF(2) packed path: word gathers over the packed span, unpacked to
		// the wire representation.
		gf.CombineWords(r.emitC, r.pspan.rawC[:n], w)
		gf.CombineWords(r.emitP, r.pspan.rawP[:n], w)
		gf.UnpackBits(cb.Coeffs, r.emitC)
		gf.UnpackBytes(cb.Payload, r.emitP)
		r.pspan.work += uint64(n+1) * uint64(r.params.BlockSize) / 2 >> gf2WorkShift
		return true
	}
	gf.CombineSlices(cb.Coeffs, r.span.rawC[:n], w)
	gf.CombineSlices(cb.Payload, r.span.rawP[:n], w)
	// Fused gather traffic: (n+1)/2 rows of blockSize per emission.
	r.span.work += uint64(n+1) * uint64(r.params.BlockSize) / 2
	return true
}

// resizeBuf returns b resized to n bytes, reusing its backing array when
// capacity allows. Contents are unspecified; callers overwrite fully.
func resizeBuf(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// SplitGenerations cuts data into generation-size chunks. The final chunk
// may be short; the encoder zero-pads it.
func SplitGenerations(params Params, data []byte) [][]byte {
	genBytes := params.GenerationBytes()
	if genBytes <= 0 {
		return nil
	}
	var out [][]byte
	for len(data) > 0 {
		n := genBytes
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}
