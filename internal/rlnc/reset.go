package rlnc

import "ncfn/internal/gf"

// This file implements generation-state reuse: Reset methods that return a
// Decoder or Recoder to its freshly-constructed state while keeping every
// arena allocation, plus the StateBytes footprint model the data plane's
// session store uses for memory accounting. Under massive multi-tenancy a
// VNF churns through far more generations than it holds concurrently, so
// recycling a finished generation's arenas instead of allocating new ones
// keeps the steady-state allocation rate independent of generation turnover.

// StateBytes estimates the bytes of coding state one generation retains at
// this VNF: the engine arenas a decoder (or recoder) of these parameters
// allocates — coefficient rows, reduction rows, payload rows, and the
// decoded-output arena. The estimate is deterministic (it depends only on
// the parameters, not on how many packets arrived), sized for the deferred
// engines the batched data plane selects, and field-aware: GF(2) packs
// coefficients 8 per byte and both coefficient and payload rows into
// uint64 words. The session store multiplies it by live generations to feed
// the dataplane_session_bytes gauge, so it intentionally over-counts a
// low-rank generation rather than under-counting a full one.
func (p Params) StateBytes() int {
	k, bs := p.GenerationBlocks, p.BlockSize
	if p.field() == gf.GF2 {
		cw := gf.WordsForBits(k)
		pw := gf.WordsForBytes(bs)
		// packedSpan arenas (k raw coeff + k raw payload + k+1 reduction
		// rows, 8 bytes per word) plus the decoded byte arena.
		return 8*((2*k+1)*cw+k*pw) + k*bs
	}
	// rawSpan arenas (k*k raw coeffs, (k+1)*k reduction rows, k payload
	// rows) plus the decoded byte arena.
	return (2*k+1)*k + 2*k*bs
}

// Reset returns the decoder to its freshly-constructed state for a new
// generation, reusing every engine arena already allocated. A reset decoder
// accepts the same call sequence as a new one and decodes identical bytes;
// the only difference from NewDecoder is that whichever engines the previous
// generation instantiated stay selected, so a decoder recycled across
// generations keeps its allocation-free steady state.
func (d *Decoder) Reset() {
	if d.b != nil {
		d.b.reset()
	}
	if d.def != nil {
		d.def.reset()
	}
	if d.pb != nil {
		d.pb.reset()
	}
	if d.pdef != nil {
		d.pdef.reset()
	}
}

// Reset returns the recoder to its freshly-constructed state for a new
// generation, reusing the span arenas and re-seeding the emission RNG. A
// recoder reset with seed s behaves bit-identically to NewRecoder(params, s):
// same innovation gating, same emitted combinations.
func (r *Recoder) Reset(seed int64) {
	r.rng.Seed(seed)
	if r.pspan != nil {
		r.pspan.reset()
	}
	if r.span != nil {
		r.span.reset()
	}
}

func (b *basis) reset() {
	for i := range b.pivots {
		b.pivots[i] = false
		b.rows[i] = nil
		b.payload[i] = nil
	}
	b.rank, b.useless, b.work = 0, 0, 0
	b.scratchC, b.scratchP = b.arenaRow(0)
	b.nextRow = 1
}

func (s *rawSpan) reset() {
	for i := range s.pivots {
		s.pivots[i] = false
		s.red[i] = nil
	}
	s.n, s.useless, s.work = 0, 0, 0
	s.scratch = s.arenaR[:s.k:s.k]
	s.nextRed = 1
}

func (d *deferred) reset() {
	d.span.reset()
	d.solved = false
	d.work = 0
}

func (pb *packedBasis) reset() {
	for i := range pb.pivots {
		pb.pivots[i] = false
		pb.rows[i] = nil
		pb.payload[i] = nil
		pb.unpacked[i] = false
	}
	pb.rank, pb.useless, pb.work = 0, 0, 0
	pb.scratchC, pb.scratchP = pb.arenaRow(0)
	pb.nextRow = 1
}

func (s *packedSpan) reset() {
	for i := range s.pivots {
		s.pivots[i] = false
		s.red[i] = nil
	}
	s.n, s.useless, s.work = 0, 0, 0
	s.scratch = s.arenaR[:s.cwords:s.cwords]
	s.nextRed = 1
}

func (d *packedDeferred) reset() {
	d.span.reset()
	d.solved = false
	d.work = 0
}
