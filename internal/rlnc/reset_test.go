package rlnc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ncfn/internal/gf"
)

func resetParamsSet() []Params {
	return []Params{
		{GenerationBlocks: 4, BlockSize: 64},
		{GenerationBlocks: 8, BlockSize: 32, Field: gf.GF2},
	}
}

func genData(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestDecoderResetEquivalence pins the arena-reuse contract: a Reset decoder
// must decode a generation to exactly the same bytes as a freshly
// constructed one, on both the incremental (Add) and deferred (AddBatch)
// engines, in both fields.
func TestDecoderResetEquivalence(t *testing.T) {
	for _, params := range resetParamsSet() {
		for _, batched := range []bool{false, true} {
			name := fmt.Sprintf("field=%v/batched=%v", params.field(), batched)
			t.Run(name, func(t *testing.T) {
				feed := func(d *Decoder, seed int64) []byte {
					enc, err := NewEncoder(params, genData(seed, params.GenerationBytes()), seed)
					if err != nil {
						t.Fatal(err)
					}
					for !d.Complete() {
						cb := enc.Coded()
						if batched {
							if _, err := d.AddBatch([]CodedBlock{cb}); err != nil {
								t.Fatal(err)
							}
						} else {
							if _, err := d.Add(cb); err != nil {
								t.Fatal(err)
							}
						}
					}
					data, err := d.Generation()
					if err != nil {
						t.Fatal(err)
					}
					return append([]byte(nil), data...)
				}

				reused, err := NewDecoder(params)
				if err != nil {
					t.Fatal(err)
				}
				// Warm the arenas with one full generation, then reset and
				// decode a second, different generation through the same
				// engine state.
				feed(reused, 11)
				reused.Reset()
				if reused.Rank() != 0 || reused.Complete() {
					t.Fatalf("reset decoder not empty: rank %d", reused.Rank())
				}
				got := feed(reused, 22)

				fresh, err := NewDecoder(params)
				if err != nil {
					t.Fatal(err)
				}
				want := feed(fresh, 22)
				if !bytes.Equal(got, want) {
					t.Fatal("recycled decoder decoded different bytes than a fresh one")
				}
			})
		}
	}
}

// TestRecoderResetEquivalence pins that Reset(seed) is bit-identical to
// constructing a new recoder with that seed: same stored state, same
// emission stream. This is what lets the dataplane free lists recycle
// recoder arenas without changing a single emitted packet.
func TestRecoderResetEquivalence(t *testing.T) {
	for _, params := range resetParamsSet() {
		t.Run(fmt.Sprintf("field=%v", params.field()), func(t *testing.T) {
			const seed = 17
			emit := func(r *Recoder, encSeed int64) [][]byte {
				enc, err := NewEncoder(params, genData(encSeed, params.GenerationBytes()), encSeed)
				if err != nil {
					t.Fatal(err)
				}
				var out [][]byte
				for i := 0; i < params.GenerationBlocks; i++ {
					if err := r.Add(enc.Coded()); err != nil {
						t.Fatal(err)
					}
					cb, ok := r.Recode()
					if !ok {
						t.Fatal("recoder refused to emit")
					}
					buf := append([]byte(nil), cb.Coeffs...)
					out = append(out, append(buf, cb.Payload...))
				}
				return out
			}

			reused, err := NewRecoder(params, 3)
			if err != nil {
				t.Fatal(err)
			}
			emit(reused, 31) // dirty the arenas and advance the RNG
			reused.Reset(seed)
			if reused.Stored() != 0 {
				t.Fatalf("reset recoder stores %d rows, want 0", reused.Stored())
			}
			got := emit(reused, 32)

			fresh, err := NewRecoder(params, seed)
			if err != nil {
				t.Fatal(err)
			}
			want := emit(fresh, 32)
			if len(got) != len(want) {
				t.Fatalf("emission counts differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("emission %d differs between reset and fresh recoders", i)
				}
			}
		})
	}
}

// TestStateBytesSanity pins the footprint estimator the session store bills
// by: positive, monotone in generation size, and reflecting GF(2)'s packed
// coefficient representation being smaller than GF(2^8)'s.
func TestStateBytesSanity(t *testing.T) {
	p4 := Params{GenerationBlocks: 4, BlockSize: 64}
	p16 := Params{GenerationBlocks: 16, BlockSize: 64}
	if got := p4.StateBytes(); got <= 0 {
		t.Fatalf("StateBytes = %d, want > 0", got)
	}
	if p16.StateBytes() <= p4.StateBytes() {
		t.Fatalf("StateBytes not monotone in k: k=16 %d <= k=4 %d", p16.StateBytes(), p4.StateBytes())
	}
	g2 := Params{GenerationBlocks: 16, BlockSize: 64, Field: gf.GF2}
	if g2.StateBytes() >= p16.StateBytes() {
		t.Fatalf("GF(2) state (%d) not smaller than GF(2^8) (%d)", g2.StateBytes(), p16.StateBytes())
	}
	// The estimate should at least cover the retained payload data.
	if p4.StateBytes() < p4.GenerationBytes() {
		t.Fatalf("StateBytes (%d) below one generation of payload (%d)", p4.StateBytes(), p4.GenerationBytes())
	}
}
