package rlnc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// corruptStream applies seeded loss, duplication, and reordering to a coded
// packet stream, returning the arrival sequence a decoder would see.
func corruptStream(rng *rand.Rand, blocks []CodedBlock, lossPct, dupPct int) []CodedBlock {
	var out []CodedBlock
	for _, cb := range blocks {
		if rng.Intn(100) < lossPct {
			continue
		}
		out = append(out, cb)
		for rng.Intn(100) < dupPct {
			out = append(out, cb.Clone())
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestAddBatchMatchesIncremental is the differential proof the batched
// decoder is drop-in: under random loss, duplication, and reordering, the
// deferred AddBatch engine must agree with the incremental Add engine on
// every rank step, the useless count, and the decoded bytes.
func TestAddBatchMatchesIncremental(t *testing.T) {
	cases := []struct {
		name         string
		k, blockSize int
		lossPct      int
		dupPct       int
		batch        int
		seed         int64
	}{
		{"clean/k=4", 4, 32, 0, 0, 1, 100},
		{"loss/k=4", 4, 32, 30, 0, 2, 101},
		{"dup/k=4", 4, 32, 0, 40, 3, 102},
		{"loss+dup/k=8", 8, 64, 20, 30, 4, 103},
		{"paper/k=4", 4, 1460, 10, 10, 8, 104},
		{"large/k=64", 64, 256, 15, 15, 16, 105},
		{"gf2/k=8", 8, 32, 10, 25, 4, 106},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Params{GenerationBlocks: tc.k, BlockSize: tc.blockSize}
			if tc.name == "gf2/k=8" {
				p.Field = 2 // gf.GF2
			}
			rng := rand.New(rand.NewSource(tc.seed))
			src := randomData(tc.seed, p.GenerationBytes())
			enc, err := NewEncoder(p, src, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			// Enough redundancy to survive the configured loss.
			coded := make([]CodedBlock, 4*tc.k+8)
			for i := range coded {
				coded[i] = enc.Coded()
			}
			stream := corruptStream(rng, coded, tc.lossPct, tc.dupPct)

			inc, _ := NewDecoder(p)
			def, _ := NewDecoder(p)
			for off := 0; off < len(stream); off += tc.batch {
				end := off + tc.batch
				if end > len(stream) {
					end = len(stream)
				}
				run := stream[off:end]
				wantInnov := 0
				for _, cb := range run {
					ok, err := inc.Add(cb)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						wantInnov++
					}
				}
				gotInnov, err := def.AddBatch(run)
				if err != nil {
					t.Fatal(err)
				}
				if gotInnov != wantInnov {
					t.Fatalf("batch at %d: AddBatch reported %d innovative, incremental %d", off, gotInnov, wantInnov)
				}
				if inc.Rank() != def.Rank() || inc.Useless() != def.Useless() {
					t.Fatalf("batch at %d: rank/useless diverged: inc %d/%d def %d/%d",
						off, inc.Rank(), inc.Useless(), def.Rank(), def.Useless())
				}
			}
			if !inc.Complete() {
				t.Fatalf("stream did not complete the generation (rank %d/%d); raise redundancy", inc.Rank(), tc.k)
			}
			wantGen, err := inc.Generation()
			if err != nil {
				t.Fatal(err)
			}
			gotGen, err := def.Generation()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotGen, wantGen) {
				t.Fatal("deferred decode differs from incremental decode")
			}
			if !bytes.Equal(gotGen, src) {
				t.Fatal("decoded generation differs from source")
			}
			for i := 0; i < tc.k; i++ {
				wb, _ := inc.Block(i)
				gb, err := def.Block(i)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gb, wb) {
					t.Fatalf("block %d differs between engines", i)
				}
			}
		})
	}
}

// TestDecoderModeDelegation checks that each engine accepts the other
// entry point once selected.
func TestDecoderModeDelegation(t *testing.T) {
	p := testParams()
	src := randomData(7, p.GenerationBytes())
	enc, _ := NewEncoder(p, src, 7)
	coded := make([]CodedBlock, p.GenerationBlocks)
	for i := range coded {
		coded[i] = enc.Coded()
	}

	// Add first -> incremental engine; AddBatch must fold into it.
	d1, _ := NewDecoder(p)
	if _, err := d1.Add(coded[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.AddBatch(coded[1:]); err != nil {
		t.Fatal(err)
	}
	if d1.def != nil {
		t.Fatal("AddBatch after Add must not create the deferred engine")
	}

	// AddBatch first -> deferred engine; Add must fold into it.
	d2, _ := NewDecoder(p)
	if _, err := d2.AddBatch(coded[:1]); err != nil {
		t.Fatal(err)
	}
	for _, cb := range coded[1:] {
		if _, err := d2.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
	if d2.b != nil {
		t.Fatal("Add after AddBatch must not create the incremental basis")
	}

	g1, err := d1.Generation()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := d2.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1, src) || !bytes.Equal(g2, src) {
		t.Fatal("mixed-call decoders did not recover the source")
	}
}

func TestAddBatchValidates(t *testing.T) {
	d, _ := NewDecoder(testParams())
	if _, err := d.AddBatch([]CodedBlock{{Coeffs: make([]byte, 3), Payload: make([]byte, 32)}}); err == nil {
		t.Fatal("bad coefficient length must fail")
	}
	if _, err := d.AddBatch([]CodedBlock{{Coeffs: make([]byte, 4), Payload: make([]byte, 31)}}); err == nil {
		t.Fatal("bad payload length must fail")
	}
	if d.Rank() != 0 {
		t.Fatal("failed batch must not change rank")
	}
}

// TestDecoderAddBatchZeroAlloc: once the deferred engine exists, absorbing
// batches allocates nothing.
func TestDecoderAddBatchZeroAlloc(t *testing.T) {
	p := testParams()
	enc, _ := NewEncoder(p, randomData(8, p.GenerationBytes()), 8)
	batch := make([]CodedBlock, 2)
	for i := range batch {
		batch[i] = enc.Coded()
	}
	d, _ := NewDecoder(p)
	if _, err := d.AddBatch(batch[:1]); err != nil { // create the engine
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AddBatch allocated %.1f times per run, want 0", allocs)
	}
}

// TestEncoderCodedIntoZeroAlloc: the send side reuses the emission block's
// backing arrays.
func TestEncoderCodedIntoZeroAlloc(t *testing.T) {
	p := testParams()
	enc, _ := NewEncoder(p, randomData(9, p.GenerationBytes()), 9)
	var cb CodedBlock
	enc.CodedInto(&cb) // size the buffers
	coeffsPtr, payloadPtr := &cb.Coeffs[0], &cb.Payload[0]
	allocs := testing.AllocsPerRun(100, func() {
		enc.CodedInto(&cb)
	})
	if allocs != 0 {
		t.Fatalf("CodedInto allocated %.1f times per run, want 0", allocs)
	}
	if &cb.Coeffs[0] != coeffsPtr || &cb.Payload[0] != payloadPtr {
		t.Fatal("CodedInto did not reuse the emission block's backing arrays")
	}
}

// TestCodedIntoMatchesDecoder: CodedInto emissions are decodable and carry
// coefficient vectors consistent with their payloads.
func TestCodedIntoMatchesDecoder(t *testing.T) {
	p := testParams()
	src := randomData(10, p.GenerationBytes())
	enc, _ := NewEncoder(p, src, 10)
	d, _ := NewDecoder(p)
	var cb CodedBlock
	for !d.Complete() {
		enc.CodedInto(&cb)
		if _, err := d.Add(cb.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("CodedInto stream did not decode to the source")
	}
}

func TestRecoderAddBatch(t *testing.T) {
	p := testParams()
	enc, _ := NewEncoder(p, randomData(11, p.GenerationBytes()), 11)
	blocks := make([]CodedBlock, p.GenerationBlocks+2)
	for i := range blocks {
		blocks[i] = enc.Coded()
	}
	r, _ := NewRecoder(p, 11)
	innov, err := r.AddBatch(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if innov != p.GenerationBlocks || r.Stored() != p.GenerationBlocks {
		t.Fatalf("AddBatch: %d innovative, stored %d; want %d", innov, r.Stored(), p.GenerationBlocks)
	}
	// Recoded output from the raw span must still decode to the source.
	d, _ := NewDecoder(p)
	for !d.Complete() {
		cb, ok := r.Recode()
		if !ok {
			t.Fatal("recoder has data but emitted nothing")
		}
		if _, err := d.Add(cb); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecoderTakeWork(t *testing.T) {
	p := testParams()
	enc, _ := NewEncoder(p, randomData(12, p.GenerationBytes()), 12)
	coded := make([]CodedBlock, p.GenerationBlocks)
	for i := range coded {
		coded[i] = enc.Coded()
	}
	if enc.TakeWork() == 0 {
		t.Fatal("encoder reported no work after coding")
	}
	if enc.TakeWork() != 0 {
		t.Fatal("TakeWork must reset the counter")
	}
	d, _ := NewDecoder(p)
	if _, err := d.AddBatch(coded); err != nil {
		t.Fatal(err)
	}
	ingest := d.TakeWork()
	if ingest == 0 {
		t.Fatal("deferred decoder reported no ingest work")
	}
	if _, err := d.Generation(); err != nil {
		t.Fatal(err)
	}
	if d.TakeWork() == 0 {
		t.Fatal("finalize work was not recorded")
	}
	if d.TakeWork() != 0 {
		t.Fatal("TakeWork must reset the counter")
	}
}

// BenchmarkDecoderBatch decodes one full generation through the deferred
// engine (AddBatch + one blocked inverse/multiply), the structure the Fig 4
// large-generation sweep exercises.
func BenchmarkDecoderBatch(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		p := Params{GenerationBlocks: k, BlockSize: DefaultBlockSize}
		enc, _ := NewEncoder(p, randomData(13, p.GenerationBytes()), 13)
		blocks := make([]CodedBlock, k+1)
		for i := range blocks {
			blocks[i] = enc.Coded()
		}
		b.Run(fmt.Sprintf("deferred/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(p.GenerationBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _ := NewDecoder(p)
				if _, err := d.AddBatch(blocks); err != nil {
					b.Fatal(err)
				}
				if _, err := d.Generation(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(p.GenerationBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _ := NewDecoder(p)
				for j := range blocks {
					if _, err := d.Add(blocks[j]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := d.Generation(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeCodedInto measures the allocation-free fused-gather
// emission path against the allocating Coded.
func BenchmarkEncodeCodedInto(b *testing.B) {
	p := DefaultParams()
	enc, _ := NewEncoder(p, randomData(14, p.GenerationBytes()), 14)
	var cb CodedBlock
	b.SetBytes(int64(p.BlockSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.CodedInto(&cb)
	}
}
