package rlnc

import (
	"fmt"

	"ncfn/internal/gf"
	"ncfn/internal/matrix"
)

// This file implements the deferred-elimination decode path. The incremental
// basis in rlnc.go pays O(rank) payload row-operations on every arriving
// packet (reduce + back-substitute), so a full generation costs
// O(k^2 * blockSize) of single-row kernel traffic. The deferred path splits
// that work differently:
//
//   - Per packet, only the k-byte coefficient vector is eliminated (a
//     rank-gate: is this row innovative?). Innovative rows are stored RAW —
//     one blockSize copy — and payloads are never touched again until the
//     generation completes. Per-packet back-substitution disappears.
//   - At full rank, the k x k raw coefficient matrix is inverted once with
//     the blocked Gauss-Jordan (matrix.InverseBlocked) and the source blocks
//     are recovered in one fused matrix-matrix multiply
//     (inverse x raw payloads, matrix.MulInto), whose strip-blocked kernels
//     stream (N+1)/2 rows of memory per combination instead of N.
//
// The same rawSpan core backs the Recoder: a recoder never needs reduced
// payload rows at all — any random combination of the RAW innovative rows
// spans the same space — so its insert cost drops from O(rank) payload
// row-operations to one copy, and emission becomes a single fused gather.

// rawSpan stores up to k raw innovative rows plus a coefficient-only RREF
// used to gate insertions. All row storage is arena-backed and preallocated;
// insert performs no heap allocation.
type rawSpan struct {
	k, blockSize int

	// Raw rows exactly as received, in arrival order; the first n are valid.
	rawC [][]byte
	rawP [][]byte
	n    int

	// Coefficient-only reduced system: red[col], when pivots[col] is true,
	// is a k-byte row with leading 1 at col, reduced against all other
	// pivot rows. scratch is the arena row the next arrival is reduced in.
	red     [][]byte
	pivots  []bool
	scratch []byte
	nextRed int
	useless int

	work uint64 // payload-equivalent kernel traffic, in bytes

	arenaC, arenaP, arenaR []byte
}

func newRawSpan(k, blockSize int) *rawSpan {
	s := &rawSpan{
		k:         k,
		blockSize: blockSize,
		rawC:      make([][]byte, k),
		rawP:      make([][]byte, k),
		red:       make([][]byte, k),
		pivots:    make([]bool, k),
		arenaC:    make([]byte, k*k),
		arenaP:    make([]byte, k*blockSize),
		arenaR:    make([]byte, (k+1)*k),
	}
	for i := 0; i < k; i++ {
		s.rawC[i] = s.arenaC[i*k : (i+1)*k : (i+1)*k]
		s.rawP[i] = s.arenaP[i*blockSize : (i+1)*blockSize : (i+1)*blockSize]
	}
	s.scratch = s.arenaR[:k:k]
	s.nextRed = 1
	return s
}

// insert rank-gates one coded block on its coefficients alone and, if
// innovative, stores the raw row. It reports whether the rank increased.
func (s *rawSpan) insert(coeffs, payload []byte) bool {
	if s.n == s.k {
		s.useless++
		return false
	}
	cs := s.scratch
	copy(cs, coeffs)
	for col := 0; col < s.k; col++ {
		if cs[col] == 0 || !s.pivots[col] {
			continue
		}
		gf.AddMulSlice(cs, s.red[col], cs[col])
	}
	lead := -1
	for col := 0; col < s.k; col++ {
		if cs[col] != 0 {
			lead = col
			break
		}
	}
	if lead < 0 {
		s.useless++
		return false
	}
	if c := cs[lead]; c != 1 {
		gf.MulSlice(cs, cs, gf.Inv(c))
	}
	s.red[lead] = cs
	s.pivots[lead] = true
	for r := 0; r < s.k; r++ {
		if r == lead || !s.pivots[r] {
			continue
		}
		if c := s.red[r][lead]; c != 0 {
			gf.AddMulSlice(s.red[r], cs, c)
		}
	}
	s.scratch = s.arenaR[s.nextRed*s.k : (s.nextRed+1)*s.k : (s.nextRed+1)*s.k]
	s.nextRed++
	copy(s.rawC[s.n], coeffs)
	copy(s.rawP[s.n], payload)
	s.n++
	s.work += uint64(s.blockSize) // the raw payload copy
	return true
}

// deferred is the Decoder's batched engine: a rawSpan plus the decoded-output
// arena filled by one blocked inverse + fused multiply at full rank.
type deferred struct {
	span    *rawSpan
	decoded [][]byte
	solved  bool
	work    uint64
}

func newDeferred(k, blockSize int) *deferred {
	d := &deferred{
		span:    newRawSpan(k, blockSize),
		decoded: make([][]byte, k),
	}
	arena := make([]byte, k*blockSize)
	for i := 0; i < k; i++ {
		d.decoded[i] = arena[i*blockSize : (i+1)*blockSize : (i+1)*blockSize]
	}
	return d
}

// finalize recovers the source blocks: decoded = C^-1 * P where C and P are
// the raw coefficient and payload matrices. Runs once; later calls are free.
func (d *deferred) finalize() error {
	if d.solved {
		return nil
	}
	s := d.span
	if s.n < s.k {
		return fmt.Errorf("rlnc: generation incomplete (rank %d/%d)", s.n, s.k)
	}
	C, err := matrix.FromRows(s.rawC)
	if err != nil {
		return err
	}
	inv, err := C.InverseBlocked()
	if err != nil {
		// Cannot happen: every stored row passed the innovation gate.
		return fmt.Errorf("rlnc: raw span not invertible: %w", err)
	}
	P, err := matrix.FromRows(s.rawP)
	if err != nil {
		return err
	}
	D, err := matrix.FromRows(d.decoded)
	if err != nil {
		return err
	}
	if err := inv.MulInto(D, P); err != nil {
		return err
	}
	k := uint64(s.k)
	// Work model: the blocked Gauss-Jordan on [C|I] streams about (k+1) rows
	// of 2k bytes per pivot; the fused multiply streams (k+1)/2 rows of
	// blockSize bytes per inner index.
	d.work += 2*k*k*k + k*(k+1)/2*uint64(s.blockSize)
	d.solved = true
	return nil
}

func (d *deferred) takeWork() uint64 {
	w := d.work + d.span.work
	d.work, d.span.work = 0, 0
	return w
}

// AddBatch consumes a run of coded blocks in deferred-elimination mode and
// returns how many were innovative. The first call on a fresh decoder
// selects the batched engine: per-packet work drops to a coefficient-only
// rank gate plus one raw-row copy, and all payload elimination is deferred
// to a single blocked inverse + fused multiply when the generation
// completes. On a decoder already fed through Add, the blocks fold into the
// incremental basis instead — both modes accept either call and decode to
// identical bytes.
func (d *Decoder) AddBatch(blocks []CodedBlock) (int, error) {
	for i := range blocks {
		if err := d.params.checkBlock(blocks[i]); err != nil {
			return 0, err
		}
	}
	innovative := 0
	if d.b != nil {
		for i := range blocks {
			if d.b.insert(blocks[i].Coeffs, blocks[i].Payload) {
				innovative++
			}
		}
		return innovative, nil
	}
	if d.pb != nil {
		for i := range blocks {
			if d.pb.insert(blocks[i].Coeffs, blocks[i].Payload) {
				innovative++
			}
		}
		return innovative, nil
	}
	if d.def == nil && d.pdef == nil {
		if d.params.field() == gf.GF2 {
			d.pdef = newPackedDeferred(d.params.GenerationBlocks, d.params.BlockSize)
		} else {
			d.def = newDeferred(d.params.GenerationBlocks, d.params.BlockSize)
		}
	}
	if d.pdef != nil {
		for i := range blocks {
			if d.pdef.span.insert(blocks[i].Coeffs, blocks[i].Payload) {
				innovative++
			}
		}
		return innovative, nil
	}
	for i := range blocks {
		if d.def.span.insert(blocks[i].Coeffs, blocks[i].Payload) {
			innovative++
		}
	}
	return innovative, nil
}

// AddBatch folds a run of received coded blocks into the recoding span and
// returns how many were innovative.
func (r *Recoder) AddBatch(blocks []CodedBlock) (int, error) {
	innovative := 0
	for i := range blocks {
		if err := r.params.checkBlock(blocks[i]); err != nil {
			return innovative, err
		}
		if r.pspan != nil {
			if r.pspan.insert(blocks[i].Coeffs, blocks[i].Payload) {
				innovative++
			}
			continue
		}
		if r.span.insert(blocks[i].Coeffs, blocks[i].Payload) {
			innovative++
		}
	}
	return innovative, nil
}
