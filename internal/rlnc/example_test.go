package rlnc_test

import (
	"bytes"
	"fmt"

	"ncfn/internal/rlnc"
)

// Example demonstrates the core coding loop: a source encodes a
// generation, a relay recodes without decoding, and a receiver recovers
// the original data.
func Example() {
	params := rlnc.Params{GenerationBlocks: 4, BlockSize: 8}
	data := []byte("network coding in 32 bytes here!") // exactly one generation

	enc, err := rlnc.NewEncoder(params, data, 1)
	if err != nil {
		panic(err)
	}
	relay, err := rlnc.NewRecoder(params, 2)
	if err != nil {
		panic(err)
	}
	dec, err := rlnc.NewDecoder(params)
	if err != nil {
		panic(err)
	}

	// The relay buffers coded packets from the source...
	for i := 0; i < params.GenerationBlocks+1; i++ {
		if err := relay.Add(enc.Coded()); err != nil {
			panic(err)
		}
	}
	// ...and the receiver decodes from the relay's recoded packets.
	for !dec.Complete() {
		cb, ok := relay.Recode()
		if !ok {
			panic("relay empty")
		}
		if _, err := dec.Add(cb); err != nil {
			panic(err)
		}
	}
	out, err := dec.Generation()
	if err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(out, data))
	// Output: true
}

// ExampleDecoder_systematic shows that systematic (uncoded) packets decode
// without any matrix work: each one is directly a source block.
func ExampleDecoder_systematic() {
	params := rlnc.Params{GenerationBlocks: 2, BlockSize: 4}
	enc, _ := rlnc.NewEncoder(params, []byte("abcdefgh"), 1)
	dec, _ := rlnc.NewDecoder(params)
	for {
		cb, ok := enc.Systematic()
		if !ok {
			break
		}
		dec.Add(cb)
	}
	out, _ := dec.Generation()
	fmt.Printf("%s\n", out)
	// Output: abcdefgh
}

// ExampleSplitGenerations shows how application data maps onto
// generations.
func ExampleSplitGenerations() {
	params := rlnc.Params{GenerationBlocks: 2, BlockSize: 4} // 8 bytes per generation
	gens := rlnc.SplitGenerations(params, []byte("0123456789"))
	fmt.Println(len(gens), string(gens[0]), string(gens[1]))
	// Output: 2 01234567 89
}
