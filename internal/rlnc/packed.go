package rlnc

import (
	"fmt"
	"math/bits"

	"ncfn/internal/bitmat"
	"ncfn/internal/gf"
)

// This file implements the word-wide GF(2) fast path of the codec. Over the
// binary field a coefficient is one bit and addmul is a conditional XOR, so
// the packed engines hold coefficient vectors as bitmaps (one uint64 = 64
// coefficients) and payloads as []uint64 words: every row operation of the
// elimination moves 64 coded bits per ALU op instead of 8 through a lookup
// table. Each engine here is the packed twin of a byte engine in rlnc.go /
// batch.go — packedBasis of basis, packedSpan of rawSpan, packedDeferred of
// deferred — with identical insert/accept semantics, so the byte-wise path
// stays available as the differential reference (the packed differential
// tier asserts bit-identical decode and recode output).
//
// Work metering: the byte engines count payload-equivalent kernel traffic in
// bytes, where one byte equals one table-lookup ALU op. A packed XOR moves 8
// payload bytes per ALU op, so the packed engines bill the same traffic
// formulas shifted down by gf2WorkShift — chargeCodingCost then prices GF(2)
// work at its true per-op cost.

// gf2WorkShift converts byte-denominated kernel traffic to the packed GF(2)
// cost model: one 64-bit XOR carries 8 payload bytes, versus one table
// lookup per byte on the GF(2^8) path.
const gf2WorkShift = 3

// maxCoeffRedraws bounds the all-zero redraw loop of coefficient and weight
// draws. Under GF(2) an all-zero draw has probability 2^-k, so the bound is
// effectively never hit; it exists to keep the loop provably finite, after
// which one random entry is forced to 1.
const maxCoeffRedraws = 8

// leadBit returns the column of the first set bit of a packed coefficient
// row, or -1 for a zero row.
//
//nc:hotpath
func leadBit(row []uint64) int {
	for w, v := range row {
		if v != 0 {
			return w*gf.WordBits + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// packedBasis is the bit-packed twin of basis: a reduced row-echelon system
// over GF(2) whose coefficient rows are bitmaps and whose payload rows are
// packed words. Reducing an arrival costs k/64 word ops per coefficient row
// and blockSize/8 word ops per payload row. All storage is arena-backed;
// insert performs no heap allocation.
type packedBasis struct {
	k, blockSize   int
	cwords, pwords int

	// rows[i] / payload[i], when pivots[i] is true, form a row with leading
	// 1 at column i, reduced against all other pivot rows.
	rows    [][]uint64
	payload [][]uint64
	pivots  []bool
	rank    int
	useless int
	work    uint64 // payload-equivalent kernel traffic, in bytes

	scratchC []uint64
	scratchP []uint64
	nextRow  int
	arenaC   []uint64
	arenaP   []uint64

	// Decoded blocks are unpacked to bytes lazily, once the generation is
	// complete and a block is requested.
	out      []byte
	outRows  [][]byte
	unpacked []bool
}

func newPackedBasis(k, blockSize int) *packedBasis {
	pb := &packedBasis{
		k:         k,
		blockSize: blockSize,
		cwords:    gf.WordsForBits(k),
		pwords:    gf.WordsForBytes(blockSize),
		rows:      make([][]uint64, k),
		payload:   make([][]uint64, k),
		pivots:    make([]bool, k),
		outRows:   make([][]byte, k),
		unpacked:  make([]bool, k),
	}
	pb.arenaC = make([]uint64, (k+1)*pb.cwords)
	pb.arenaP = make([]uint64, (k+1)*pb.pwords)
	pb.out = make([]byte, k*blockSize)
	for i := 0; i < k; i++ {
		pb.outRows[i] = pb.out[i*blockSize : (i+1)*blockSize : (i+1)*blockSize]
	}
	pb.scratchC, pb.scratchP = pb.arenaRow(0)
	pb.nextRow = 1
	return pb
}

func (pb *packedBasis) arenaRow(i int) (coeffs, payload []uint64) {
	return pb.arenaC[i*pb.cwords : (i+1)*pb.cwords : (i+1)*pb.cwords],
		pb.arenaP[i*pb.pwords : (i+1)*pb.pwords : (i+1)*pb.pwords]
}

// insert is the packed twin of basis.insert: pack, reduce, find the lead,
// adopt, back-substitute — all as word-wide XORs, with no normalization step
// because the only nonzero GF(2) coefficient is already 1.
//
//nc:hotpath
func (pb *packedBasis) insert(coeffs, payload []byte) bool {
	cs, ps := pb.scratchC, pb.scratchP
	gf.PackBits(cs, coeffs)
	gf.PackBytes(ps, payload)
	rowOps := 1 // the payload pack (the copy of the byte path)

	for col := 0; col < pb.k; col++ {
		if !pb.pivots[col] || gf.Bit(cs, col) == 0 {
			continue
		}
		gf.XorWords(cs, pb.rows[col])
		gf.XorWords(ps, pb.payload[col])
		rowOps++
	}
	lead := leadBit(cs)
	if lead < 0 {
		pb.useless++
		pb.work += uint64(rowOps) * uint64(pb.blockSize) >> gf2WorkShift
		return false
	}
	pb.rows[lead] = cs
	pb.payload[lead] = ps
	pb.pivots[lead] = true
	pb.rank++
	for r := 0; r < pb.k; r++ {
		if r == lead || !pb.pivots[r] {
			continue
		}
		if gf.Bit(pb.rows[r], lead) != 0 {
			gf.XorWords(pb.rows[r], cs)
			gf.XorWords(pb.payload[r], ps)
			rowOps++
		}
	}
	pb.scratchC, pb.scratchP = pb.arenaRow(pb.nextRow)
	pb.nextRow++
	pb.work += uint64(rowOps) * uint64(pb.blockSize) >> gf2WorkShift
	return true
}

// block returns decoded source block i as bytes, unpacking the packed
// payload row on first request. Callers guarantee the generation is
// complete, so pivot row i exists and is fully reduced.
func (pb *packedBasis) block(i int) []byte {
	if !pb.unpacked[i] {
		gf.UnpackBytes(pb.outRows[i], pb.payload[i])
		pb.unpacked[i] = true
	}
	return pb.outRows[i]
}

// packedSpan is the bit-packed twin of rawSpan: up to k raw rows stored as
// packed words, gated by a coefficient-only bitmap RREF. It backs both the
// packed deferred decoder and the packed recoder. insert performs no heap
// allocation.
type packedSpan struct {
	k, blockSize   int
	cwords, pwords int

	// Raw rows exactly as received, in arrival order; the first n are valid.
	rawC [][]uint64
	rawP [][]uint64
	n    int

	// Coefficient-only reduced bitmaps: red[col], when pivots[col] is true,
	// has leading bit col and is reduced against all other pivot rows.
	red     [][]uint64
	pivots  []bool
	scratch []uint64
	nextRed int
	useless int

	work uint64 // payload-equivalent kernel traffic, in bytes

	arenaC, arenaP, arenaR []uint64
}

func newPackedSpan(k, blockSize int) *packedSpan {
	s := &packedSpan{
		k:         k,
		blockSize: blockSize,
		cwords:    gf.WordsForBits(k),
		pwords:    gf.WordsForBytes(blockSize),
		rawC:      make([][]uint64, k),
		rawP:      make([][]uint64, k),
		red:       make([][]uint64, k),
		pivots:    make([]bool, k),
	}
	s.arenaC = make([]uint64, k*s.cwords)
	s.arenaP = make([]uint64, k*s.pwords)
	s.arenaR = make([]uint64, (k+1)*s.cwords)
	for i := 0; i < k; i++ {
		s.rawC[i] = s.arenaC[i*s.cwords : (i+1)*s.cwords : (i+1)*s.cwords]
		s.rawP[i] = s.arenaP[i*s.pwords : (i+1)*s.pwords : (i+1)*s.pwords]
	}
	s.scratch = s.arenaR[:s.cwords:s.cwords]
	s.nextRed = 1
	return s
}

// insert rank-gates one coded block on its packed coefficients alone and, if
// innovative, stores the raw row packed. It reports whether the rank
// increased.
//
//nc:hotpath
func (s *packedSpan) insert(coeffs, payload []byte) bool {
	if s.n == s.k {
		s.useless++
		return false
	}
	cs := s.scratch
	gf.PackBits(cs, coeffs)
	for col := 0; col < s.k; col++ {
		if !s.pivots[col] || gf.Bit(cs, col) == 0 {
			continue
		}
		gf.XorWords(cs, s.red[col])
	}
	lead := leadBit(cs)
	if lead < 0 {
		s.useless++
		return false
	}
	s.red[lead] = cs
	s.pivots[lead] = true
	for r := 0; r < s.k; r++ {
		if r == lead || !s.pivots[r] {
			continue
		}
		if gf.Bit(s.red[r], lead) != 0 {
			gf.XorWords(s.red[r], cs)
		}
	}
	s.scratch = s.arenaR[s.nextRed*s.cwords : (s.nextRed+1)*s.cwords : (s.nextRed+1)*s.cwords]
	s.nextRed++
	gf.PackBits(s.rawC[s.n], coeffs)
	gf.PackBytes(s.rawP[s.n], payload)
	s.n++
	s.work += uint64(s.blockSize) >> gf2WorkShift // the raw payload pack
	return true
}

// packedDeferred is the bit-packed twin of deferred: a packedSpan plus the
// end-of-generation solve — one bitwise inverse of the k x k coefficient
// bitmap (bitmat.Inverse) and one fused packed gather per source block
// (gf.CombineWords), unpacked straight into the decoded byte arena.
type packedDeferred struct {
	span    *packedSpan
	decoded [][]byte
	gatherW []uint64 // packed gather scratch, pwords long
	invRow  []byte   // unpacked inverse-row scratch, k long
	solved  bool
	work    uint64
}

func newPackedDeferred(k, blockSize int) *packedDeferred {
	d := &packedDeferred{
		span:    newPackedSpan(k, blockSize),
		decoded: make([][]byte, k),
		invRow:  make([]byte, k),
	}
	d.gatherW = make([]uint64, d.span.pwords)
	arena := make([]byte, k*blockSize)
	for i := 0; i < k; i++ {
		d.decoded[i] = arena[i*blockSize : (i+1)*blockSize : (i+1)*blockSize]
	}
	return d
}

// finalize recovers the source blocks: decoded = C^-1 * P over GF(2), where
// C is the raw coefficient bitmap and P the packed raw payloads. Runs once;
// later calls are free.
func (d *packedDeferred) finalize() error {
	if d.solved {
		return nil
	}
	s := d.span
	if s.n < s.k {
		return fmt.Errorf("rlnc: generation incomplete (rank %d/%d)", s.n, s.k)
	}
	C, err := bitmat.FromRows(s.rawC[:s.k], s.k)
	if err != nil {
		return err
	}
	inv, err := C.Inverse()
	if err != nil {
		// Cannot happen: every stored row passed the innovation gate.
		return fmt.Errorf("rlnc: packed raw span not invertible: %w", err)
	}
	for i := 0; i < s.k; i++ {
		gf.UnpackBits(d.invRow, inv.Row(i))
		gf.CombineWords(d.gatherW, s.rawP[:s.k], d.invRow)
		gf.UnpackBytes(d.decoded[i], d.gatherW)
	}
	k := uint64(s.k)
	// Same traffic model as the byte engine, shifted to the packed cost.
	d.work += (2*k*k*k + k*(k+1)/2*uint64(s.blockSize)) >> gf2WorkShift
	d.solved = true
	return nil
}

func (d *packedDeferred) takeWork() uint64 {
	w := d.work + d.span.work
	d.work, d.span.work = 0, 0
	return w
}
