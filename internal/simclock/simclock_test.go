package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Fatal("Real.Now out of range")
	}
}

func TestRealAfterFires(t *testing.T) {
	select {
	case <-Real{}.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(10 * time.Minute)
	if want := epoch.Add(10 * time.Minute); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(time.Hour)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	v.Advance(time.Hour)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(time.Hour)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire after Advance")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualAfterNotFiredEarly(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(2 * time.Hour)
	v.Advance(time.Hour)
	select {
	case <-ch:
		t.Fatal("timer fired an hour early")
	default:
	}
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", v.Pending())
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{3 * time.Minute, time.Minute, 2 * time.Minute}
	for i, d := range durations {
		wg.Add(1)
		ch := v.After(d)
		go func(i int) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Advance one timer at a time, waiting for the woken goroutine to
	// record itself before firing the next, so scheduling cannot reorder
	// observations.
	for fired := 1; fired <= len(durations); fired++ {
		if !v.AdvanceToNext() {
			t.Fatal("expected pending timer")
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n >= fired {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("timer goroutine %d did not run", fired)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	want := []int{1, 2, 0} // 1min, 2min, 3min
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper has registered.
	deadline := time.Now().Add(5 * time.Second)
	for v.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never registered")
		}
	}
	v.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestVirtualSleepNonPositiveReturns(t *testing.T) {
	v := NewVirtual(epoch)
	v.Sleep(0)
	v.Sleep(-time.Second)
}

func TestVirtualAdvanceToNextEmpty(t *testing.T) {
	v := NewVirtual(epoch)
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext true with no timers")
	}
}

func TestVirtualConcurrentAfter(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-v.After(time.Duration(i+1) * time.Second)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for v.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d timers registered", v.Pending())
		}
	}
	v.Advance(n * time.Second)
	wg.Wait()
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d after firing all", v.Pending())
	}
}
