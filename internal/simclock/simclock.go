// Package simclock abstracts time so the dynamic-scaling experiments —
// which span 70 to 120 minutes of wall time in the paper — can run under a
// virtual clock in milliseconds, while packet-level code paths use the real
// clock unchanged.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the repository. The real
// implementation delegates to package time; the virtual implementation
// advances only when told to.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced Clock. Sleepers and After timers fire when
// Advance moves the clock past their deadline. It is safe for concurrent
// use.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

var _ Clock = (*Virtual)(nil)

type waiter struct {
	at time.Time
	ch chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.waiters, &waiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for len(v.waiters) > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.at
		w.ch <- w.at
	}
	v.now = target
	v.mu.Unlock()
}

// AdvanceToNext jumps the clock to the next pending timer deadline and
// fires it. It reports whether a timer was pending.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	if len(v.waiters) == 0 {
		v.mu.Unlock()
		return false
	}
	w := heap.Pop(&v.waiters).(*waiter)
	v.now = w.at
	w.ch <- w.at
	v.mu.Unlock()
	return true
}

// Pending returns the number of unfired timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
