package telemetry

import "encoding/json"

// Snapshot is the aggregated, serializable view of a Registry — the payload
// of the ncd admin endpoint's /stats and of `ncctl stats`. Counter and gauge
// values are cell sums; events are the union of every recorder's retained
// ring, in sequence order.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     []Event                      `json:"events,omitempty"`
}

// MarshalIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
