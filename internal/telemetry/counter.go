package telemetry

import "sync/atomic"

// cell is one cache-line-sized counter slot. The padding keeps adjacent
// cells on distinct 64-byte lines so per-shard writers never invalidate each
// other's line (false sharing is the entire cost of a shared atomic counter
// under contention).
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// icell is the signed (gauge) variant of cell.
type icell struct {
	n atomic.Int64
	_ [56]byte
}

// ceilPow2 rounds n up to a power of two, minimum 1.
func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Counter is a monotonically increasing counter sharded over padded atomic
// cells. Writers add to the cell matching their shard index; Value sums the
// cells on read. The zero number of cells is never used — construct through
// NewCounter or Registry.Counter.
type Counter struct {
	cells []cell
	mask  uint64
}

// NewCounter builds a counter with at least cells padded cells (rounded up
// to a power of two, minimum 1).
func NewCounter(cells int) *Counter {
	n := ceilPow2(cells)
	return &Counter{cells: make([]cell, n), mask: uint64(n - 1)}
}

// Cells returns the number of independent cells.
func (c *Counter) Cells() int { return len(c.cells) }

// Add increments the counter by n on the given shard's cell. Out-of-range
// shard indices wrap, so callers can pass any stable small integer (worker
// index, goroutine ordinal) without bounds bookkeeping. One relaxed atomic
// add; no allocation.
//
//nc:hotpath
func (c *Counter) Add(shard int, n uint64) {
	c.cells[uint64(shard)&c.mask].n.Add(n)
}

// Inc is Add(shard, 1).
//
//nc:hotpath
func (c *Counter) Inc(shard int) {
	c.cells[uint64(shard)&c.mask].n.Add(1)
}

// Value aggregates the cells. The sum is not an atomic snapshot across
// cells — like any statistical counter it may miss adds racing with the
// read — but every add is eventually counted exactly once.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous signed value sharded over padded atomic cells:
// each shard owns its cell via Set/Add, and Value sums the cells. A
// per-shard queue depth summed across shards is the instrument's canonical
// use.
type Gauge struct {
	cells []icell
	mask  uint64
}

// NewGauge builds a gauge with at least cells padded cells (rounded up to a
// power of two, minimum 1).
func NewGauge(cells int) *Gauge {
	n := ceilPow2(cells)
	return &Gauge{cells: make([]icell, n), mask: uint64(n - 1)}
}

// Cells returns the number of independent cells.
func (g *Gauge) Cells() int { return len(g.cells) }

// Set stores v into the shard's cell. One relaxed atomic store.
//
//nc:hotpath
func (g *Gauge) Set(shard int, v int64) {
	g.cells[uint64(shard)&g.mask].n.Store(v)
}

// Add adjusts the shard's cell by delta (negative to decrement).
//
//nc:hotpath
func (g *Gauge) Add(shard int, delta int64) {
	g.cells[uint64(shard)&g.mask].n.Add(delta)
}

// Value sums the cells.
func (g *Gauge) Value() int64 {
	var total int64
	for i := range g.cells {
		total += g.cells[i].n.Load()
	}
	return total
}
