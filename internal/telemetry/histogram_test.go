package telemetry

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// refQuantile computes the exact order statistic the histogram estimates:
// the ceil(q*n)-th smallest observation.
func refQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileTable feeds reference distributions and checks every
// quantile estimate against the exact percentile: the estimate must land in
// the same power-of-two bucket as the true order statistic (the histogram's
// documented bound), and bucket-degenerate distributions must be exact.
func TestHistogramQuantileTable(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	cases := []struct {
		name   string
		values func() []int64
	}{
		{"uniform_1_1000", func() []int64 {
			vs := make([]int64, 1000)
			for i := range vs {
				vs[i] = int64(i + 1)
			}
			return vs
		}},
		{"powers_of_two", func() []int64 {
			var vs []int64
			for b := 0; b < 30; b++ {
				vs = append(vs, int64(1)<<b)
			}
			return vs
		}},
		{"latency_like_lognormal", func() []int64 {
			// Deterministic pseudo-lognormal: microsecond-to-second spread.
			vs := make([]int64, 500)
			x := uint64(12345)
			for i := range vs {
				x = x*6364136223846793005 + 1442695040888963407
				exp := 10 + (x>>59)%20 // 2^10 .. 2^29 ns
				vs[i] = int64(1)<<exp + int64(x%1024)
			}
			return vs
		}},
		{"heavy_tail", func() []int64 {
			vs := make([]int64, 0, 1000)
			for i := 0; i < 990; i++ {
				vs = append(vs, 100)
			}
			for i := 0; i < 10; i++ {
				vs = append(vs, 1_000_000)
			}
			return vs
		}},
		{"with_zero_and_negative", func() []int64 {
			return []int64{-5, 0, 0, 1, 2, 3, 1000}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			values := tc.values()
			h := NewHistogram()
			var sum int64
			for _, v := range values {
				h.Observe(v)
				sum += v
			}
			sorted := append([]int64(nil), values...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

			if h.Count() != uint64(len(values)) {
				t.Fatalf("Count = %d, want %d", h.Count(), len(values))
			}
			if h.Sum() != sum {
				t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
			}
			for _, q := range quantiles {
				exact := refQuantile(sorted, q)
				est := h.Quantile(q)
				if bucketOf(est) != bucketOf(exact) {
					t.Errorf("q=%v: estimate %d in bucket %d, exact %d in bucket %d",
						q, est, bucketOf(est), exact, bucketOf(exact))
				}
				lo, hi := bucketBounds(bucketOf(exact))
				if est < lo || est > hi {
					t.Errorf("q=%v: estimate %d outside exact value's bucket [%d, %d]", q, est, lo, hi)
				}
			}
		})
	}
}

// TestHistogramQuantileExactCases pins distributions where the power-of-two
// buckets carry no ambiguity, so the estimate must equal the exact
// percentile.
func TestHistogramQuantileExactCases(t *testing.T) {
	t.Run("constant_within_bucket", func(t *testing.T) {
		// Bucket counts cannot distinguish constant-64 from uniform 64..127,
		// so the guarantee for a constant stream is containment in the
		// value's own bucket at every quantile.
		h := NewHistogram()
		for i := 0; i < 100; i++ {
			h.Observe(64)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got < 64 || got > 127 {
				t.Fatalf("q=%v: got %d, want within [64, 127]", q, got)
			}
		}
	})
	t.Run("single_observation", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(8)
		if got := h.Quantile(0.5); got != 8 {
			t.Fatalf("got %d, want 8", got)
		}
	})
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		if got := h.Quantile(0.5); got != 0 {
			t.Fatalf("empty histogram quantile = %d, want 0", got)
		}
		if h.Mean() != 0 {
			t.Fatalf("empty histogram mean = %v, want 0", h.Mean())
		}
	})
	t.Run("two_point", func(t *testing.T) {
		// One value per bucket: the median of {4, 1024} is the 1st order
		// statistic at q=0.5 (rank ceil(0.5*2)=1) = 4.
		h := NewHistogram()
		h.Observe(4)
		h.Observe(1024)
		if got := h.Quantile(0.5); got != 4 {
			t.Fatalf("median = %d, want 4", got)
		}
		if got := h.Quantile(1); got != 1024 {
			t.Fatalf("max quantile = %d, want 1024", got)
		}
	})
}

func TestHistogramBucketBounds(t *testing.T) {
	for _, tc := range []struct {
		v      int64
		lo, hi int64
	}{
		{-1, 0, 0}, {0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 2, 3},
		{4, 4, 7}, {7, 4, 7}, {8, 8, 15}, {1023, 512, 1023}, {1024, 1024, 2047},
	} {
		lo, hi := bucketBounds(bucketOf(tc.v))
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("bounds(%d) = [%d, %d], want [%d, %d]", tc.v, lo, hi, tc.lo, tc.hi)
		}
		if tc.v > 0 && (tc.v < lo || tc.v > hi) {
			t.Errorf("value %d outside its own bucket [%d, %d]", tc.v, lo, hi)
		}
	}
	// The top bucket must cap at MaxInt64, not overflow.
	lo, hi := bucketBounds(bucketOf(math.MaxInt64))
	if hi != math.MaxInt64 || lo <= 0 {
		t.Fatalf("top bucket = [%d, %d]", lo, hi)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("snapshot count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if len(s.Buckets) == 0 || s.Max < 100 {
		t.Fatalf("buckets = %+v max = %d", s.Buckets, s.Max)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != 100 {
		t.Fatalf("bucket counts sum to %d", n)
	}
	if s.P50 == 0 || s.P90 < s.P50 || s.P99 < s.P90 {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50, s.P90, s.P99)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(int64(i % 1024))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", h.Count())
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %v/op", n)
	}
}
