package telemetry

import (
	"encoding/json"
	"expvar"
	"strings"
	"testing"
)

func TestRegistryIdempotentConstructors(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("rx", 4)
	c2 := r.Counter("rx", 16) // cells ignored on the second ask
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("depth", 2) != r.Gauge("depth", 2) {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("lat") != r.Histogram("lat") {
		t.Fatal("Histogram not idempotent")
	}
	if r.Recorder("flight", 64) != r.Recorder("flight", 128) {
		t.Fatal("Recorder not idempotent")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("rx_packets", 4).Add(0, 42)
	r.Counter("rx_packets", 4).Add(3, 8)
	r.Gauge("queue_depth", 2).Set(0, 7)
	r.GaugeFunc("goroutines", func() int64 { return 11 })
	h := r.Histogram("decode_ns")
	h.Observe(1000)
	h.Observe(2000)
	rec := r.Recorder("flight", 16)
	rec.Record(5, EventFailover, "T", 0, 0, 35_000_000_000)

	s := r.Snapshot()
	if s.Counters["rx_packets"] != 50 {
		t.Fatalf("counter = %d", s.Counters["rx_packets"])
	}
	if s.Gauges["queue_depth"] != 7 || s.Gauges["goroutines"] != 11 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if s.Histograms["decode_ns"].Count != 2 || s.Histograms["decode_ns"].Sum != 3000 {
		t.Fatalf("histogram = %+v", s.Histograms["decode_ns"])
	}
	if len(s.Events) != 1 || s.Events[0].Type != EventFailover || s.Events[0].Node != "T" {
		t.Fatalf("events = %+v", s.Events)
	}

	raw, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if !strings.Contains(string(raw), `"failover"`) {
		t.Fatalf("event type not rendered by name: %s", raw)
	}
}

func TestRegistryMultipleRecordersMergeOrdered(t *testing.T) {
	r := NewRegistry()
	a := r.Recorder("a", 8)
	b := r.Recorder("b", 8)
	a.Record(1, EventPause, "x", 0, 0, 0)
	b.Record(2, EventResume, "x", 0, 0, 0)
	a.Record(3, EventPause, "y", 0, 0, 0)
	evs := r.Snapshot().Events
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	// Sequences are per-recorder, so the merged view orders by Seq with
	// ties broken by recorder name order; what matters is determinism.
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq > evs[i].Seq {
			t.Fatalf("merged events unsorted: %+v", evs)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", 1).Add(0, 3)
	r.PublishExpvar("telemetry_test_registry")
	// Publishing the same name again must be a no-op, not a panic.
	r.PublishExpvar("telemetry_test_registry")
	v := expvar.Get("telemetry_test_registry")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar payload not a snapshot: %v", err)
	}
	if s.Counters["hits"] != 3 {
		t.Fatalf("expvar snapshot = %+v", s)
	}
}
