// Package telemetry is the repository's observability core: a registry of
// named instruments cheap enough for the //nc:hotpath data plane.
//
// The paper evaluates its coding VNFs entirely from the outside (iperf3
// throughput, ping RTT). Operating them — attributing a Fig. 4 regression to
// a shard backlog, or a slow failover to launch retries — needs a view from
// the inside that costs nothing when nobody is looking. Three instrument
// families provide it:
//
//   - Counter and Gauge: fixed arrays of cache-line-padded atomic cells.
//     A hot-path writer pays exactly one relaxed atomic add to its own
//     shard's cell; readers aggregate across cells on demand. No locks, no
//     allocation, no false sharing between shards.
//
//   - Histogram: power-of-two buckets indexed by bit length. Observe is a
//     handful of atomic adds; quantiles are estimated on read by linear
//     interpolation inside the containing bucket, so any estimate is within
//     the bucket's 2x bound of the true order statistic.
//
//   - Recorder: a fixed-capacity lock-free ring buffer of typed events
//     (packet drop, rank advance, generation decode, pause/resume, retry,
//     failover, fault injection). Slots are published with per-slot atomic
//     sequence numbers, so concurrent Record and Snapshot never take a lock
//     and stay clean under the race detector. Timestamps are supplied by
//     the caller, which makes the recorder simclock-compatible: under a
//     virtual clock the chaos harness asserts on event times tick-for-tick.
//
// A Registry names instruments and serializes the whole set as one JSON
// Snapshot (the ncd admin endpoint and `ncctl stats` payload); it can also
// publish itself through the standard expvar surface.
package telemetry

import (
	"expvar"
	"sort"
	"sync"
)

// Registry is a named collection of instruments. Instrument constructors are
// idempotent: asking for an existing name returns the existing instrument,
// so independent layers can share instruments by name.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]func() int64
	hists     map[string]*Histogram
	recorders map[string]*Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		gaugeFns:  make(map[string]func() int64),
		hists:     make(map[string]*Histogram),
		recorders: make(map[string]*Recorder),
	}
}

// Counter returns the named counter, creating it with at least cells padded
// cells (rounded up to a power of two; minimum 1). An existing counter is
// returned as-is regardless of cells.
func (r *Registry) Counter(name string, cells int) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := NewCounter(cells)
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it with at least cells padded
// cells.
func (r *Registry) Gauge(name string, cells int) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := NewGauge(cells)
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a read-side gauge: f is evaluated at snapshot time, so
// the instrumented code pays nothing at all. Re-registering a name replaces
// the function.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = f
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram()
	r.hists[name] = h
	return h
}

// Recorder returns the named flight recorder, creating it with the given
// capacity (rounded up to a power of two; DefaultRecorderCapacity when
// capacity <= 0). An existing recorder keeps its original capacity.
func (r *Registry) Recorder(name string, capacity int) *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := r.recorders[name]; ok {
		return rec
	}
	rec := NewRecorder(capacity)
	r.recorders[name] = rec
	return rec
}

// Snapshot aggregates every instrument into one serializable view. Counters
// and gauges are summed across their cells; histograms report count, sum,
// quantile estimates, and their non-empty buckets; recorders contribute
// their retained events in sequence order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.gaugeFns {
		s.Gauges[name] = f()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for _, name := range sortedKeys(r.recorders) {
		s.Events = append(s.Events, r.recorders[name].Snapshot()...)
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].Seq < s.Events[j].Seq })
	return s
}

// PublishExpvar exposes the registry under the given expvar name (the
// standard /debug/vars surface). Publishing an already-taken name is a
// no-op rather than the expvar panic, so repeated daemon construction in one
// process (tests) stays safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

func sortedKeys(m map[string]*Recorder) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
