package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers the full int64 range: bucket 0 holds non-positive
// observations, bucket b (1..64) holds values whose bit length is b, i.e.
// the half-open power-of-two range [2^(b-1), 2^b).
const numBuckets = 65

// Histogram is a fixed-size power-of-two-bucket histogram for latencies and
// sizes. Observe costs three relaxed atomic adds and never allocates;
// quantiles, mean, and bucket counts are derived on read. Because bucket b
// spans [2^(b-1), 2^b), any quantile estimate is within a factor of two of
// the true order statistic; linear interpolation inside the bucket does much
// better on smooth distributions.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Safe for any number of concurrent observers;
// zero allocation.
//
//nc:hotpath
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	lo = int64(1) << (b - 1)
	if b >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<b - 1
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// distribution. The estimate lies inside the bucket containing the true
// order statistic, hence within that bucket's power-of-two bounds; inside
// the bucket the estimate interpolates linearly by rank. Empty histograms
// report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// rank is the 1-based index of the order statistic: the smallest value
	// with at least ceil(q * total) observations at or below it.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < numBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		lo, hi := bucketBounds(b)
		if lo >= hi || n == 1 {
			return lo
		}
		// Interpolate by position within the bucket: the (rank-cum)-th of n
		// observations spread evenly over [lo, hi].
		pos := float64(rank-cum-1) / float64(n-1)
		return lo + int64(pos*float64(hi-lo))
	}
	// Unreachable: the cumulative count reaches total within the loop.
	return 0
}

// Buckets invokes f for every non-empty bucket in ascending value order with
// the bucket's inclusive bounds and count.
func (h *Histogram) Buckets(f func(lo, hi int64, count uint64)) {
	for b := 0; b < numBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			lo, hi := bucketBounds(b)
			f(lo, hi, n)
		}
	}
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's serializable read-side view.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     int64         `json:"p50"`
	P90     int64         `json:"p90"`
	P99     int64         `json:"p99"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Max reports the upper
// bound of the highest non-empty bucket (an overestimate by at most 2x, like
// every bucketed statistic here).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	h.Buckets(func(lo, hi int64, count uint64) {
		s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, Count: count})
		s.Max = hi
	})
	return s
}
