package telemetry

import (
	"sync"
	"testing"
)

func TestRecorderOrderAndFields(t *testing.T) {
	r := NewRecorder(8)
	r.Record(100, EventPacketDrop, "O1", 1, 7, 0)
	r.Record(200, EventRankAdvance, "O1", 1, 7, 3)
	r.Record(300, EventGenerationDecode, "C2", 1, 7, 12345)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[2].Type != EventGenerationDecode || evs[2].Node != "C2" ||
		evs[2].Session != 1 || evs[2].Gen != 7 || evs[2].Value != 12345 || evs[2].Time != 300 {
		t.Fatalf("decode event mangled: %+v", evs[2])
	}
}

func TestRecorderWraparoundKeepsNewest(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(int64(i), EventRetry, "node", 0, 0, int64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i)
		if ev.Seq != want || ev.Value != int64(want) {
			t.Fatalf("event %d = %+v, want seq %d", i, ev, want)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
}

func TestRecorderNodeTruncation(t *testing.T) {
	r := NewRecorder(4)
	r.Record(1, EventFault, "a-very-long-node-name-indeed", 0, 0, 0)
	r.Record(2, EventFault, "", 0, 0, 0)
	r.Record(3, EventFault, "exactly-16-bytes", 0, 0, 0)
	evs := r.Snapshot()
	if evs[0].Node != "a-very-long-node" {
		t.Fatalf("long name kept as %q", evs[0].Node)
	}
	if evs[1].Node != "" {
		t.Fatalf("empty name kept as %q", evs[1].Node)
	}
	if evs[2].Node != "exactly-16-bytes" {
		t.Fatalf("16-byte name kept as %q", evs[2].Node)
	}
}

// TestRecorderConcurrent hammers the ring from many writers while readers
// snapshot continuously. Under -race this proves the seqlock-free protocol
// synchronizes entirely through atomics; the assertions prove no snapshot
// ever surfaces a torn or out-of-order event.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Value encodes the writer so a torn event would surface as
				// an inconsistent (writer, value) pair.
				r.Record(int64(w*perWriter+i), EventRetry, "w", uint64(w), uint64(i), int64(w*perWriter+i))
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for g := 0; g < 2; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Snapshot()
				for i := 1; i < len(evs); i++ {
					if evs[i-1].Seq >= evs[i].Seq {
						t.Errorf("snapshot out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				for _, ev := range evs {
					if ev.Time != ev.Value || ev.Session*perWriter+ev.Gen != uint64(ev.Value) {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if r.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", r.Len(), writers*perWriter)
	}
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("retained %d, want full ring of 64", got)
	}
}

func TestRecorderEventsOf(t *testing.T) {
	r := NewRecorder(16)
	r.Record(1, EventPause, "n", 0, 0, 0)
	r.Record(2, EventFailover, "n", 0, 0, 99)
	r.Record(3, EventResume, "n", 0, 0, 5)
	r.Record(4, EventFailover, "m", 0, 0, 42)
	fos := r.EventsOf(EventFailover)
	if len(fos) != 2 || fos[0].Value != 99 || fos[1].Value != 42 {
		t.Fatalf("EventsOf(failover) = %+v", fos)
	}
}

func TestRecorderDefaultsAndCap(t *testing.T) {
	if got := NewRecorder(0).Cap(); got != DefaultRecorderCapacity {
		t.Fatalf("default cap = %d", got)
	}
	if got := NewRecorder(100).Cap(); got != 128 {
		t.Fatalf("cap rounding = %d, want 128", got)
	}
}

func TestEventTypeNames(t *testing.T) {
	names := map[EventType]string{
		EventPacketDrop: "packet_drop", EventRankAdvance: "rank_advance",
		EventGenerationDecode: "generation_decode", EventPause: "pause",
		EventResume: "resume", EventRetry: "retry", EventFailover: "failover",
		EventFault: "fault", EventNone: "none", EventType(200): "none",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	b, err := EventFailover.MarshalJSON()
	if err != nil || string(b) != `"failover"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}

func TestRecorderRecordAllocFree(t *testing.T) {
	r := NewRecorder(256)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(12345, EventGenerationDecode, "relay-with-name", 3, 99, 1<<20)
	}); n != 0 {
		t.Fatalf("Record allocates %v/op", n)
	}
}
