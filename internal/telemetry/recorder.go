package telemetry

import (
	"encoding/json"
	"runtime"
	"sort"
	"sync/atomic"
)

// EventType tags a flight-recorder event.
type EventType uint8

// Event types. The set covers the state transitions the chaos harness and
// the admin endpoint need to reconstruct a run: data-plane packet drops and
// decode progress, the pause/resume cycle of forwarding-table swaps,
// session-store evictions, and the control plane's retry/failover/
// fault-injection history.
const (
	EventNone EventType = iota
	// EventPacketDrop: a malformed, unknown-session, or undecodable packet
	// was dropped. Value is unused.
	EventPacketDrop
	// EventRankAdvance: a decoder gained innovative packets. Value is the
	// new rank.
	EventRankAdvance
	// EventGenerationDecode: a generation decoded and was delivered. Value
	// is the decode latency in nanoseconds (first packet to delivery).
	EventGenerationDecode
	// EventPause / EventResume: the data plane paused/resumed for a table
	// swap. Value on resume is the paused duration in nanoseconds.
	EventPause
	EventResume
	// EventRetry: a control-plane attempt failed and will be retried.
	// Value is the attempt number.
	EventRetry
	// EventFailover: a supervised VNF was recovered (or abandoned). Value
	// is the detection-to-recovery duration in nanoseconds.
	EventFailover
	// EventFault: a fault was injected (crash, partition, link fault).
	// Value is implementation-defined.
	EventFault
	// EventGenerationEvict: the session store evicted a stale generation's
	// coding state (LRU/TTL/byte-cap pressure). Value is the estimated bytes
	// released.
	EventGenerationEvict
	// EventDrainStart: the data plane entered drain — no new coding state
	// is admitted while in-flight generations flush. Value is unused.
	EventDrainStart
	// EventDrainQuiesced: a draining data plane observed empty shard queues
	// and flushed coalescer rings. Value is the drain duration in
	// nanoseconds (drain start to first quiescent observation).
	EventDrainQuiesced
	// EventReload: a deploy-config hot-reload was applied. Value packs the
	// reload's change count (sessions added + updated + removed + table
	// entries changed).
	EventReload
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventPacketDrop:
		return "packet_drop"
	case EventRankAdvance:
		return "rank_advance"
	case EventGenerationDecode:
		return "generation_decode"
	case EventPause:
		return "pause"
	case EventResume:
		return "resume"
	case EventRetry:
		return "retry"
	case EventFailover:
		return "failover"
	case EventFault:
		return "fault"
	case EventGenerationEvict:
		return "generation_evict"
	case EventDrainStart:
		return "drain_start"
	case EventDrainQuiesced:
		return "drain_quiesced"
	case EventReload:
		return "reload"
	default:
		return "none"
	}
}

// MarshalJSON renders the type as its name.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses the name form, so snapshots fetched from a remote
// admin endpoint (ncctl stats, the procnet harness) round-trip. Unknown
// names — a newer daemon talking to an older reader — decode as EventNone
// rather than failing the whole snapshot.
func (t *EventType) UnmarshalJSON(raw []byte) error {
	var name string
	if err := json.Unmarshal(raw, &name); err != nil {
		return err
	}
	for et := EventNone; et <= EventReload; et++ {
		if et.String() == name {
			*t = et
			return nil
		}
	}
	*t = EventNone
	return nil
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the global record sequence (1-based, dense). Gaps in a
	// snapshot mean older events were overwritten.
	Seq uint64 `json:"seq"`
	// Time is the caller-supplied timestamp in nanoseconds. Recorders never
	// read a clock themselves: under simclock.Virtual these are virtual
	// nanoseconds and replay identically.
	Time int64     `json:"time_ns"`
	Type EventType `json:"type"`
	// Node labels the emitting component (VNF name, link, region); at most
	// nodeBytes bytes are retained.
	Node string `json:"node,omitempty"`
	// Session and Gen locate data-plane events; zero elsewhere.
	Session uint64 `json:"session,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	// Value is the type-specific measurement (see the EventType docs).
	Value int64 `json:"value,omitempty"`
}

// nodeBytes is the retained length of an event's node label.
const nodeBytes = 16

// DefaultRecorderCapacity is the ring size used when none is given.
const DefaultRecorderCapacity = 1024

// busyBit marks a slot's sequence word while its writer is mid-publish.
const busyBit = uint64(1) << 63

// rslot is one ring slot. Every field is atomic: writers publish with a
// per-slot sequence protocol and readers validate it, so concurrent Record
// and Snapshot need no lock and are race-detector-clean. 64 bytes total —
// one cache line per slot.
type rslot struct {
	seq     atomic.Uint64 // 0 empty; busyBit|s while writing; s once published
	time    atomic.Int64
	typ     atomic.Uint64
	node0   atomic.Uint64 // node label bytes 0..7, little-endian packed
	node1   atomic.Uint64 // node label bytes 8..15
	session atomic.Uint64
	gen     atomic.Uint64
	value   atomic.Int64
}

// Recorder is a fixed-capacity lock-free flight recorder: the last cap
// events survive, older ones are overwritten in place. Record is wait-free
// in steady state (one fetch-add plus plain atomic stores); a writer only
// spins in the pathological case of a concurrent writer lapping the entire
// ring before an earlier claim finished publishing.
type Recorder struct {
	slots []rslot
	mask  uint64
	head  atomic.Uint64 // total events ever recorded
}

// NewRecorder builds a recorder holding the last capacity events (rounded
// up to a power of two; DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	n := ceilPow2(capacity)
	return &Recorder{slots: make([]rslot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Len returns how many events have ever been recorded (retained: min(Len,
// Cap)).
func (r *Recorder) Len() uint64 { return r.head.Load() }

// Record appends one event. now is the caller's clock reading in
// nanoseconds; node is truncated to 16 bytes. Zero allocation, no locks.
//
//nc:hotpath
func (r *Recorder) Record(now int64, typ EventType, node string, session, gen uint64, value int64) {
	s := r.head.Add(1)
	sl := &r.slots[(s-1)&r.mask]
	// The slot last published sequence s-cap (or 0 on the first lap). Claim
	// it; a failed CAS means that lap's writer is still publishing — yield
	// until it finishes (in practice never: it would need cap concurrent
	// in-flight Records).
	prev := uint64(0)
	if s > uint64(len(r.slots)) {
		prev = s - uint64(len(r.slots))
	}
	for !sl.seq.CompareAndSwap(prev, busyBit|s) {
		runtime.Gosched()
	}
	var n0, n1 uint64
	for i := 0; i < len(node) && i < nodeBytes; i++ {
		b := uint64(node[i])
		if i < 8 {
			n0 |= b << (8 * i)
		} else {
			n1 |= b << (8 * (i - 8))
		}
	}
	sl.time.Store(now)
	sl.typ.Store(uint64(typ))
	sl.node0.Store(n0)
	sl.node1.Store(n1)
	sl.session.Store(session)
	sl.gen.Store(gen)
	sl.value.Store(value)
	sl.seq.Store(s)
}

// Snapshot returns the retained events in sequence order. Slots being
// rewritten during the scan are skipped (their previous content is about to
// be obsolete anyway); everything returned is internally consistent.
func (r *Recorder) Snapshot() []Event {
	events := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		s1 := sl.seq.Load()
		if s1 == 0 || s1&busyBit != 0 {
			continue
		}
		ev := Event{
			Seq:     s1,
			Time:    sl.time.Load(),
			Type:    EventType(sl.typ.Load()),
			Node:    unpackNode(sl.node0.Load(), sl.node1.Load()),
			Session: sl.session.Load(),
			Gen:     sl.gen.Load(),
			Value:   sl.value.Load(),
		}
		if sl.seq.Load() != s1 {
			continue // overwritten mid-read; drop the torn copy
		}
		events = append(events, ev)
	}
	// Slots are scanned in ring order, which is sequence order rotated by
	// head mod cap; sort restores global order.
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events
}

// EventsOf returns the retained events of one type, in sequence order.
func (r *Recorder) EventsOf(typ EventType) []Event {
	all := r.Snapshot()
	out := all[:0]
	for _, ev := range all {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

// unpackNode reverses Record's label packing.
func unpackNode(n0, n1 uint64) string {
	var buf [nodeBytes]byte
	n := 0
	for i := 0; i < nodeBytes; i++ {
		var b byte
		if i < 8 {
			b = byte(n0 >> (8 * i))
		} else {
			b = byte(n1 >> (8 * (i - 8)))
		}
		if b == 0 {
			break
		}
		buf[i] = b
		n++
	}
	return string(buf[:n])
}

