package telemetry

import (
	"sync"
	"testing"
)

// TestCounterShardedVsSerialDifferential pins the aggregation contract: the
// sum over per-shard cells after a concurrent run equals a serial
// single-cell run over the same add sequence. Run under -race this also
// proves the cells are properly independent.
func TestCounterShardedVsSerialDifferential(t *testing.T) {
	const (
		shards  = 8
		perShrd = 10000
	)
	sharded := NewCounter(shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShrd; i++ {
				sharded.Add(s, uint64(s+1))
			}
		}(s)
	}
	wg.Wait()

	serial := NewCounter(1)
	for s := 0; s < shards; s++ {
		for i := 0; i < perShrd; i++ {
			serial.Add(0, uint64(s+1))
		}
	}
	if got, want := sharded.Value(), serial.Value(); got != want {
		t.Fatalf("sharded sum %d != serial sum %d", got, want)
	}
}

func TestCounterShardWraps(t *testing.T) {
	c := NewCounter(4)
	c.Add(0, 1)
	c.Add(4, 1)  // wraps onto cell 0
	c.Add(-1, 1) // negative indices wrap too (uint conversion)
	if c.Value() != 3 {
		t.Fatalf("Value = %d, want 3", c.Value())
	}
	if c.Cells() != 4 {
		t.Fatalf("Cells = %d, want 4", c.Cells())
	}
}

func TestCounterCellRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewCounter(tc.in).Cells(); got != tc.want {
			t.Errorf("NewCounter(%d).Cells() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	g := NewGauge(4)
	g.Set(0, 10)
	g.Set(1, -3)
	g.Add(2, 5)
	g.Add(2, -2)
	if got := g.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
	g.Set(0, 0)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value = %d, want 0", got)
	}
}

func TestGaugeConcurrentShards(t *testing.T) {
	const shards = 8
	g := NewGauge(shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set(s, int64(i))
			}
			g.Set(s, int64(s))
		}(s)
	}
	wg.Wait()
	// 0+1+...+7
	if got := g.Value(); got != 28 {
		t.Fatalf("Value = %d, want 28", got)
	}
}

// The hot-path contract: one relaxed atomic op, zero allocation.
func TestCounterGaugeAllocFree(t *testing.T) {
	c := NewCounter(8)
	if n := testing.AllocsPerRun(1000, func() { c.Add(3, 7) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc(1) }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	g := NewGauge(8)
	if n := testing.AllocsPerRun(1000, func() { g.Set(2, 42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(2, -1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op", n)
	}
}
