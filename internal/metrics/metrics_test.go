package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"ncfn/internal/telemetry"
)

var t0 = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

func TestMeterMbps(t *testing.T) {
	m := NewMeter(t0)
	m.Add(1_000_000, t0.Add(time.Second)) // 1 MB over 1 s = 8 Mbps
	if got := m.Mbps(); got < 7.9 || got > 8.1 {
		t.Fatalf("Mbps = %v, want ~8", got)
	}
	if m.Bytes() != 1_000_000 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	if m.Elapsed() != time.Second {
		t.Fatalf("Elapsed = %v", m.Elapsed())
	}
}

func TestMeterZeroWindow(t *testing.T) {
	m := NewMeter(t0)
	m.Add(100, t0)
	if m.Mbps() != 0 {
		t.Fatal("zero window should yield 0 rate")
	}
}

// TestMeterSingleBurstFinite pins the last == start fix: a meter whose only
// samples land at the start instant must report a finite (zero) rate, never
// +Inf or NaN.
func TestMeterSingleBurstFinite(t *testing.T) {
	m := NewMeter(t0)
	for i := 0; i < 5; i++ {
		m.Add(1 << 20, t0)
	}
	got := m.Mbps()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("single-burst rate = %v, want finite", got)
	}
	if got != 0 {
		t.Fatalf("single-burst rate = %v, want 0", got)
	}
	// Samples past the start instant must still rate normally.
	m.Add(0, t0.Add(time.Second))
	if r := m.Mbps(); r <= 0 || math.IsInf(r, 0) {
		t.Fatalf("rate after window opened = %v", r)
	}
}

// TestMeterDelegatesToHistogram pins the shared-storage contract: a meter
// built over a registry histogram and the registry's snapshot must report
// the same bytes — the two measurement paths cannot drift.
func TestMeterDelegatesToHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_chunk_bytes")
	m := NewMeterHistogram(t0, h)
	m.Add(1000, t0.Add(time.Second))
	m.Add(500, t0.Add(2*time.Second))

	if m.Bytes() != 1500 {
		t.Fatalf("Bytes = %d, want 1500", m.Bytes())
	}
	snap := reg.Snapshot().Histograms["bench_chunk_bytes"]
	if uint64(snap.Sum) != m.Bytes() {
		t.Fatalf("snapshot sum %d != meter bytes %d", snap.Sum, m.Bytes())
	}
	if snap.Count != 2 {
		t.Fatalf("snapshot count = %d, want 2", snap.Count)
	}
	if m.Histogram() != h {
		t.Fatal("Histogram() must expose the delegated storage")
	}
	// A nil histogram gets private storage rather than a panic.
	if p := NewMeterHistogram(t0, nil); p.Histogram() == nil {
		t.Fatal("nil histogram not defaulted")
	}
}

func TestMeterMonotonicLast(t *testing.T) {
	m := NewMeter(t0)
	m.Add(100, t0.Add(2*time.Second))
	m.Add(100, t0.Add(time.Second)) // out-of-order sample
	if m.Elapsed() != 2*time.Second {
		t.Fatalf("Elapsed = %v, want 2s", m.Elapsed())
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(t0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(1, t0.Add(time.Second))
			}
		}()
	}
	wg.Wait()
	if m.Bytes() != 8000 {
		t.Fatalf("Bytes = %d, want 8000", m.Bytes())
	}
}

func TestSeriesTable(t *testing.T) {
	s := NewSeries("Fig X", "loss%", "NC0", "NC1")
	s.Add(10, map[string]float64{"NC0": 50.5, "NC1": 60})
	s.Add(0, map[string]float64{"NC0": 70, "NC1": 65.25})
	var sb strings.Builder
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Fig X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "loss%\tNC0\tNC1") {
		t.Fatalf("missing header: %q", out)
	}
	// Sorted by X: the 0 row must come before the 10 row.
	i0 := strings.Index(out, "\n0\t")
	i10 := strings.Index(out, "\n10\t")
	if i0 < 0 || i10 < 0 || i0 > i10 {
		t.Fatalf("rows not sorted: %q", out)
	}
	if !strings.Contains(out, "65.25") {
		t.Fatal("value formatting lost precision")
	}
	if !strings.Contains(out, "50.5") || strings.Contains(out, "50.50") {
		t.Fatal("trailing zeros not trimmed")
	}
}

func TestSeriesMissingColumn(t *testing.T) {
	s := NewSeries("t", "x", "a", "b")
	s.Add(1, map[string]float64{"a": 5})
	var sb strings.Builder
	s.WriteTable(&sb)
	if !strings.Contains(sb.String(), "\t-") {
		t.Fatalf("missing column not dashed: %q", sb.String())
	}
}

func TestSeriesLearnsNewColumns(t *testing.T) {
	s := NewSeries("t", "x")
	s.Add(1, map[string]float64{"later": 3})
	if cols := s.Columns(); len(cols) != 1 || cols[0] != "later" {
		t.Fatalf("Columns = %v", cols)
	}
}

func TestSeriesPointsCopied(t *testing.T) {
	s := NewSeries("t", "x", "a")
	s.Add(1, map[string]float64{"a": 1})
	pts := s.Points()
	pts[0].X = 99
	if s.Points()[0].X != 1 {
		t.Fatal("Points exposed internal storage")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1.5:    "1.5",
		2.25:   "2.25",
		70:     "70",
		69.90:  "69.9",
		0.004:  "0",
		-3.100: "-3.1",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("t", "x", "a", "b")
	s.Add(1, map[string]float64{"a": 1.5})
	s.Add(2, map[string]float64{"a": 2, "b": 3})
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,1.5,\n2,2,3\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
