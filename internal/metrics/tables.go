package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// Table is a parsed experiment table — the inverse of Series.WriteTable.
// ncbench uses it to re-emit the text output of an experiment as structured
// JSON without every experiment runner needing a second output path.
type Table struct {
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
	// Notes carries the trailing "# ..." annotation lines (paper reference
	// values, warnings) attached to the table they follow.
	Notes []string `json:"notes,omitempty"`
}

// Cell is one table value: numeric when the text parses as a float, raw
// text otherwise (e.g. the scheme names in the Fig 7 table).
type Cell struct {
	Text   string
	Number float64
	IsNum  bool
}

// MarshalJSON renders numeric cells as JSON numbers and everything else as
// strings, so plotting scripts get usable values without re-parsing.
func (c Cell) MarshalJSON() ([]byte, error) {
	if c.IsNum {
		return json.Marshal(c.Number)
	}
	return json.Marshal(c.Text)
}

// UnmarshalJSON accepts either form, mirroring MarshalJSON.
func (c *Cell) UnmarshalJSON(data []byte) error {
	var f float64
	if err := json.Unmarshal(data, &f); err == nil {
		*c = Cell{Number: f, IsNum: true, Text: strconv.FormatFloat(f, 'g', -1, 64)}
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*c = parseCell(s)
	return nil
}

func parseCell(s string) Cell {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Cell{Text: s, Number: f, IsNum: true}
	}
	return Cell{Text: s}
}

// ParseTables scans experiment output in the WriteTable format and returns
// every table found. A table starts at a "# <title>" line whose next line
// is a tab-separated header; subsequent tab-separated lines are rows, and
// later "# ..." lines (until the next table) become the table's notes.
// Text outside any table is ignored, so it is safe to run over the whole
// output of an experiment.
func ParseTables(r io.Reader) ([]Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var tables []Table
	var cur *Table
	var pendingTitle string
	havePending := false
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		switch {
		case strings.HasPrefix(line, "# "):
			note := strings.TrimPrefix(line, "# ")
			if havePending && cur != nil {
				// Two consecutive "# " lines: the first was a note, not a
				// title.
				cur.Notes = append(cur.Notes, pendingTitle)
			}
			pendingTitle = note
			havePending = true
		case strings.Contains(line, "\t"):
			fields := strings.Split(line, "\t")
			if havePending {
				tables = append(tables, Table{Title: pendingTitle, Columns: fields})
				cur = &tables[len(tables)-1]
				havePending = false
				continue
			}
			if cur == nil || len(fields) != len(cur.Columns) {
				continue // stray tabbed prose, or a row with no table
			}
			row := make([]Cell, len(fields))
			for i, f := range fields {
				row[i] = parseCell(f)
			}
			cur.Rows = append(cur.Rows, row)
		default:
			if havePending {
				// A "# " line not followed by a header is an annotation.
				if cur != nil {
					cur.Notes = append(cur.Notes, pendingTitle)
				}
				havePending = false
			}
		}
	}
	if havePending && cur != nil {
		cur.Notes = append(cur.Notes, pendingTitle)
	}
	return tables, sc.Err()
}
