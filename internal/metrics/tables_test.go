package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestParseTablesRoundTrip renders a Series with WriteTable and checks the
// parser recovers the same title, columns, and values.
func TestParseTablesRoundTrip(t *testing.T) {
	s := NewSeries("Fig X: demo", "blocks", "nc_mbps", "tcp_mbps")
	s.Add(4, map[string]float64{"nc_mbps": 69.21, "tcp_mbps": 15.5})
	s.Add(64, map[string]float64{"nc_mbps": 40.1})
	var buf bytes.Buffer
	if err := s.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("# paper: peak ~68 Mbps at 4 blocks\n")

	tables, err := ParseTables(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tb := tables[0]
	if tb.Title != "Fig X: demo" {
		t.Fatalf("title = %q", tb.Title)
	}
	wantCols := []string{"blocks", "nc_mbps", "tcp_mbps"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", tb.Columns)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tb.Columns, wantCols)
		}
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tb.Rows))
	}
	if !tb.Rows[0][1].IsNum || tb.Rows[0][1].Number != 69.21 {
		t.Fatalf("row 0 nc_mbps = %+v, want 69.21", tb.Rows[0][1])
	}
	// The missing tcp_mbps sample prints as "-", which must stay textual.
	if tb.Rows[1][2].IsNum || tb.Rows[1][2].Text != "-" {
		t.Fatalf("row 1 tcp_mbps = %+v, want text \"-\"", tb.Rows[1][2])
	}
	if len(tb.Notes) != 1 || !strings.HasPrefix(tb.Notes[0], "paper:") {
		t.Fatalf("notes = %v", tb.Notes)
	}
}

// TestParseTablesMultiple covers back-to-back tables with interleaved notes
// and text cells, like ncbench "all" output.
func TestParseTablesMultiple(t *testing.T) {
	input := strings.Join([]string{
		"prose that is ignored",
		"# Fig 7: butterfly throughput by scheme",
		"scheme\tthroughput_mbps",
		"NC\t68.02",
		"DirectTCP\t15.11",
		"# WARNING: ordering not reproduced",
		"# paper: NC ~68",
		"# Table II: delay comparison",
		"path\treceiver\tavg",
		"direct\tr1\t77.0",
		"",
	}, "\n")
	tables, err := ParseTables(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	if got := tables[0].Rows[0][0]; got.IsNum || got.Text != "NC" {
		t.Fatalf("scheme cell = %+v", got)
	}
	if len(tables[0].Notes) != 2 {
		t.Fatalf("fig7 notes = %v", tables[0].Notes)
	}
	if tables[1].Title != "Table II: delay comparison" {
		t.Fatalf("second title = %q", tables[1].Title)
	}
	if v := tables[1].Rows[0][2]; !v.IsNum || v.Number != 77.0 {
		t.Fatalf("avg cell = %+v", v)
	}
}

// TestCellJSON checks cells marshal as numbers or strings and round-trip.
func TestCellJSON(t *testing.T) {
	tb := Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]Cell{{parseCell("1.5"), parseCell("x")}},
	}
	out, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"t","columns":["a","b"],"rows":[[1.5,"x"]]}`
	if string(out) != want {
		t.Fatalf("json = %s, want %s", out, want)
	}
	var back Table
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Rows[0][0].IsNum || back.Rows[0][0].Number != 1.5 || back.Rows[0][1].Text != "x" {
		t.Fatalf("round-trip = %+v", back.Rows[0])
	}
}
