// Package metrics provides the small measurement utilities the experiment
// harness shares: windowed throughput meters and labeled time series that
// print in the row/series format of the paper's figures.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ncfn/internal/telemetry"
)

// Meter measures throughput over its lifetime: bytes accumulated between
// Start and the last Add. Sample storage delegates to a telemetry histogram
// — the same structure the data plane exports — so the meter's byte count
// and a registry snapshot of the histogram can never disagree, and the
// chunk-size distribution comes for free.
type Meter struct {
	mu    sync.Mutex
	start time.Time
	last  time.Time
	hist  *telemetry.Histogram
}

// NewMeter returns a meter starting now (per the supplied timestamp),
// backed by a private histogram.
func NewMeter(now time.Time) *Meter {
	return NewMeterHistogram(now, telemetry.NewHistogram())
}

// NewMeterHistogram returns a meter recording its samples into h, which may
// be registered in a telemetry registry so snapshots see the same bytes the
// meter reports. A nil h gets a private histogram.
func NewMeterHistogram(now time.Time, h *telemetry.Histogram) *Meter {
	if h == nil {
		h = telemetry.NewHistogram()
	}
	return &Meter{start: now, last: now, hist: h}
}

// Add records n bytes observed at time now.
func (m *Meter) Add(n int, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist.Observe(int64(n))
	if now.After(m.last) {
		m.last = now
	}
}

// Bytes returns the accumulated byte count.
func (m *Meter) Bytes() uint64 {
	return uint64(m.hist.Sum())
}

// Histogram exposes the meter's sample storage (per-Add chunk sizes).
func (m *Meter) Histogram() *telemetry.Histogram {
	return m.hist
}

// Mbps returns the average rate between the start and the last sample. A
// meter whose samples all landed at the start instant (last == start) has a
// zero-length window and reports 0, never +Inf.
func (m *Meter) Mbps() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	dt := m.last.Sub(m.start).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(m.hist.Sum()) * 8 / dt / 1e6
}

// Elapsed returns the measurement window length.
func (m *Meter) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last.Sub(m.start)
}

// Point is one (x, value-per-series) sample of a figure.
type Point struct {
	X      float64
	Values map[string]float64
}

// Series is a labeled collection of points, i.e. one figure's data.
type Series struct {
	mu     sync.Mutex
	Title  string
	XLabel string
	names  []string
	points []Point
}

// NewSeries builds a named series with the given column order.
func NewSeries(title, xlabel string, columns ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, names: columns}
}

// Add appends a sample; missing columns print as blanks.
func (s *Series) Add(x float64, values map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make(map[string]float64, len(values))
	for k, v := range values {
		cp[k] = v
		found := false
		for _, n := range s.names {
			if n == k {
				found = true
				break
			}
		}
		if !found {
			s.names = append(s.names, k)
		}
	}
	s.points = append(s.points, Point{X: x, Values: cp})
}

// Points returns a copy of the samples, sorted by X.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Columns returns the series names in print order.
func (s *Series) Columns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// WriteTable renders the series as an aligned text table, the form the
// experiment harness prints for each figure.
func (s *Series) WriteTable(w io.Writer) error {
	pts := s.Points()
	cols := s.Columns()
	if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
		return err
	}
	header := append([]string{s.XLabel}, cols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, p := range pts {
		row := make([]string, 0, len(cols)+1)
		row = append(row, trimFloat(p.X))
		for _, c := range cols {
			v, ok := p.Values[c]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, trimFloat(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat renders a float compactly (2 decimal places, trailing zeros
// removed).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// WriteCSV renders the series as a CSV file (header row, one row per
// sample), for plotting the regenerated figures with external tools.
func (s *Series) WriteCSV(w io.Writer) error {
	pts := s.Points()
	cols := s.Columns()
	header := append([]string{s.XLabel}, cols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, p := range pts {
		row := make([]string, 0, len(cols)+1)
		row = append(row, strconv.FormatFloat(p.X, 'g', -1, 64))
		for _, c := range cols {
			v, ok := p.Values[c]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
