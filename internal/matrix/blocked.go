package matrix

import (
	"fmt"

	"ncfn/internal/gf"
)

// This file holds the blocked variants of the elimination and multiply
// routines. "Blocked" here means built on the strip-blocked fused kernels in
// internal/gf: each pivot (or product) row is applied to every affected row
// in one AddMulSlices pass, so the hot row is read once per L1-resident strip
// instead of once per destination row. For the k x (k + blockSize) systems
// the batched decoder solves, this roughly halves memory traffic versus the
// row-at-a-time RREF/Mul above.

// RREFBlocked reduces the matrix to reduced row-echelon form in place using
// the fused multi-row elimination kernel and returns its rank. It computes
// exactly the same result as RREF.
func (m *Matrix) RREFBlocked() int {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	dsts := make([][]byte, 0, m.rows)
	cs := make([]byte, 0, m.rows)
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.data[rank], m.data[pivot] = m.data[pivot], m.data[rank]
		if p := m.data[rank][col]; p != 1 {
			gf.MulSlice(m.data[rank], m.data[rank], gf.Inv(p))
		}
		// One fused pass eliminates the pivot column from every other row.
		dsts, cs = dsts[:0], cs[:0]
		for r := 0; r < m.rows; r++ {
			if r == rank || m.data[r][col] == 0 {
				continue
			}
			dsts = append(dsts, m.data[r])
			cs = append(cs, m.data[r][col])
		}
		if len(dsts) > 0 {
			gf.AddMulSlices(dsts, m.data[rank], cs)
		}
		rank++
	}
	return rank
}

// InverseBlocked returns the inverse of a square matrix computed with a
// single blocked Gauss-Jordan pass over the augmented [m | I], or
// ErrSingular. Unlike Inverse it does not run a separate rank pre-check, so
// it performs one elimination instead of two.
func (m *Matrix) InverseBlocked() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d: %w", m.rows, m.cols, ErrSingular)
	}
	n := m.rows
	aug := New(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.data[i][:n], m.data[i])
		aug.data[i][n+i] = 1
	}
	aug.RREFBlocked()
	// The augmented rows [m_i | e_i] always have full rank, so the rank of
	// aug says nothing about m. m is invertible iff every pivot landed in the
	// left half, i.e. the left half reduced to the identity.
	for i := 0; i < n; i++ {
		if aug.data[i][i] != 1 {
			return nil, ErrSingular
		}
	}
	inv := New(n, n)
	for i := 0; i < n; i++ {
		copy(inv.data[i], aug.data[i][n:])
	}
	return inv, nil
}

// MulInto computes out = m * o into a caller-provided matrix using the fused
// one-row-to-N-rows kernel: for every inner index k, source row o[k] is
// applied to all output rows in one strip-blocked pass. out must be
// m.Rows() x o.Cols() and must not share storage with m or o; its previous
// contents are overwritten.
func (m *Matrix) MulInto(out, o *Matrix) error {
	if m.cols != o.rows {
		return fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	if out.rows != m.rows || out.cols != o.cols {
		return fmt.Errorf("matrix: MulInto output is %dx%d, want %dx%d", out.rows, out.cols, m.rows, o.cols)
	}
	for i := range out.data {
		row := out.data[i]
		for j := range row {
			row[j] = 0
		}
	}
	cs := make([]byte, m.rows)
	for k := 0; k < m.cols; k++ {
		for i := 0; i < m.rows; i++ {
			cs[i] = m.data[i][k]
		}
		gf.AddMulSlices(out.data, o.data[k], cs)
	}
	return nil
}
