package matrix

import (
	"fmt"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.data[i][j] = byte(rng.Intn(256))
		}
	}
	return m
}

func TestRREFBlockedMatchesRREF(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct{ rows, cols int }{
		{0, 0}, {1, 1}, {3, 3}, {4, 7}, {7, 4}, {16, 16}, {64, 80},
	}
	for _, tc := range cases {
		m := randMatrix(rng, tc.rows, tc.cols)
		if tc.rows > 2 {
			// Inject a dependent row and a zero column so rank < rows.
			copy(m.data[tc.rows-1], m.data[0])
			for i := 0; i < tc.rows; i++ {
				m.data[i][tc.cols/2] = 0
			}
		}
		a, b := m.Clone(), m.Clone()
		ra, rb := a.RREF(), b.RREFBlocked()
		if ra != rb {
			t.Fatalf("%dx%d: RREF rank %d, RREFBlocked rank %d", tc.rows, tc.cols, ra, rb)
		}
		if !a.Equal(b) {
			t.Fatalf("%dx%d: RREFBlocked result differs from RREF", tc.rows, tc.cols)
		}
	}
}

func TestInverseBlockedMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 16, 64} {
		var m *Matrix
		for {
			m = randMatrix(rng, n, n)
			if m.Rank() == n {
				break
			}
		}
		want, err := m.Inverse()
		if err != nil {
			t.Fatalf("n=%d: Inverse: %v", n, err)
		}
		got, err := m.InverseBlocked()
		if err != nil {
			t.Fatalf("n=%d: InverseBlocked: %v", n, err)
		}
		if !got.Equal(want) {
			t.Fatalf("n=%d: InverseBlocked differs from Inverse", n)
		}
		// And it really is an inverse.
		prod, err := m.Mul(got)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(n)) {
			t.Fatalf("n=%d: m * InverseBlocked(m) != I", n)
		}
	}
}

func TestInverseBlockedSingular(t *testing.T) {
	m := New(3, 3)
	m.Set(0, 0, 5)
	m.Set(1, 1, 7)
	// Row 2 is zero: singular.
	if _, err := m.InverseBlocked(); err != ErrSingular {
		t.Fatalf("singular inverse: got err %v, want ErrSingular", err)
	}
	if _, err := New(2, 3).InverseBlocked(); err == nil {
		t.Fatal("non-square inverse must fail")
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {16, 16, 16}, {64, 64, 100}, {8, 64, 1460},
	}
	for _, tc := range cases {
		a := randMatrix(rng, tc.m, tc.k)
		b := randMatrix(rng, tc.k, tc.n)
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		got := randMatrix(rng, tc.m, tc.n) // garbage: MulInto overwrites
		if err := a.MulInto(got, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%dx%dx%d: MulInto differs from Mul", tc.m, tc.k, tc.n)
		}
	}
	if err := randMatrix(rng, 2, 3).MulInto(New(2, 2), randMatrix(rng, 4, 2)); err == nil {
		t.Fatal("inner-dimension mismatch must fail")
	}
	if err := randMatrix(rng, 2, 3).MulInto(New(3, 2), randMatrix(rng, 3, 2)); err == nil {
		t.Fatal("output-dimension mismatch must fail")
	}
}

// BenchmarkInverse compares the row-at-a-time and blocked Gauss-Jordan paths
// on the dense square systems the batched decoder inverts.
func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{16, 64, 128} {
		var m *Matrix
		for {
			m = randMatrix(rng, n, n)
			if m.Rank() == n {
				break
			}
		}
		b.Run(fmt.Sprintf("rowwise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Inverse(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.InverseBlocked(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMulInto measures the fused matrix-matrix multiply on the
// inverse x payload shape the batched decoder computes (k x k by k x 1460).
func BenchmarkMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	for _, k := range []int{16, 64} {
		a := randMatrix(rng, k, k)
		p := randMatrix(rng, k, 1460)
		out := New(k, 1460)
		b.Run(fmt.Sprintf("mul/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * 1460))
			for i := 0; i < b.N; i++ {
				if _, err := a.Mul(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mulinto/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * 1460))
			for i := 0; i < b.N; i++ {
				if err := a.MulInto(out, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
