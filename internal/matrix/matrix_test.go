package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ncfn/internal/gf"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		rng.Read(m.Row(i))
	}
	return m
}

func TestNewDimensions(t *testing.T) {
	m := New(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("got %dx%d, want 3x5", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("new matrix not zero-filled")
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dimensions did not panic")
		}
	}()
	New(-1, 2)
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatal("Set/At mismatch")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 1) != 4 {
		t.Fatal("FromRows contents wrong")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Fatal("empty FromRows should have 0 rows")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]byte{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestIdentityRank(t *testing.T) {
	for n := 1; n <= 8; n++ {
		if got := Identity(n).Rank(); got != n {
			t.Fatalf("Identity(%d).Rank() = %d", n, got)
		}
	}
}

func TestRankZeroMatrix(t *testing.T) {
	if got := New(4, 4).Rank(); got != 0 {
		t.Fatalf("zero matrix rank = %d, want 0", got)
	}
}

func TestRankDuplicateRows(t *testing.T) {
	m, _ := FromRows([][]byte{{1, 2, 3}, {1, 2, 3}, {0, 1, 0}})
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
}

func TestRankScaledRow(t *testing.T) {
	// Row 2 = 5 * row 1 in GF arithmetic => dependent.
	row := []byte{7, 11, 13}
	scaled := make([]byte, 3)
	gf.MulSlice(scaled, row, 5)
	m, _ := FromRows([][]byte{row, scaled})
	if got := m.Rank(); got != 1 {
		t.Fatalf("rank = %d, want 1", got)
	}
}

func TestRankDoesNotModify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 4, 4)
	c := m.Clone()
	m.Rank()
	if !m.Equal(c) {
		t.Fatal("Rank modified the matrix")
	}
}

func TestRREFIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, 5, 7)
		m.RREF()
		c := m.Clone()
		m.RREF()
		if !m.Equal(c) {
			t.Fatal("RREF not idempotent")
		}
	}
}

func TestRREFPivotsAreOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 4, 6)
	m.RREF()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != 0 {
				if m.At(i, j) != 1 {
					t.Fatalf("leading entry of row %d is %d, want 1", i, m.At(i, j))
				}
				// The pivot column must be zero elsewhere.
				for r := 0; r < m.Rows(); r++ {
					if r != i && m.At(r, j) != 0 {
						t.Fatalf("pivot column %d not cleared at row %d", j, r)
					}
				}
				break
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	found := 0
	for trial := 0; trial < 50 && found < 20; trial++ {
		m := randomMatrix(rng, 5, 5)
		inv, err := m.Inverse()
		if errors.Is(err, ErrSingular) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		found++
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(5)) {
			t.Fatalf("m * m^-1 != I:\n%v", prod)
		}
	}
	if found == 0 {
		t.Fatal("no invertible random matrices found (suspicious)")
	}
}

func TestInverseSingular(t *testing.T) {
	m, _ := FromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(rng, 4, 4)
		if m.Rank() < 4 {
			continue
		}
		want := make([]byte, 4)
		rng.Read(want)
		b, err := m.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Solve mismatch at %d: got %v want %v", i, got, want)
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	m, _ := FromRows([][]byte{{1, 1}, {1, 1}})
	if _, err := m.Solve([]byte{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveBadRHS(t *testing.T) {
	if _, err := Identity(3).Solve([]byte{1}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	if _, err := New(2, 3).Mul(New(2, 3)); err == nil {
		t.Fatal("mismatched multiply accepted")
	}
}

func TestMulVecDimensionMismatch(t *testing.T) {
	if _, err := New(2, 3).MulVec([]byte{1}); err == nil {
		t.Fatal("mismatched MulVec accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, 4, 4)
	p, err := m.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(m) {
		t.Fatal("m * I != m")
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 2)
		c := randomMatrix(rng, 2, 5)
		ab, _ := a.Mul(b)
		left, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		right, _ := a.Mul(bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomMatrixFullRankProbability(t *testing.T) {
	// Over GF(2^8) a random k x k matrix is invertible with probability
	// prod_{i=1..k} (1 - 256^-i) > 0.99. With 200 trials we should see at
	// most a few singular ones; assert a loose bound to catch regressions
	// in rank computation.
	rng := rand.New(rand.NewSource(9))
	singular := 0
	for trial := 0; trial < 200; trial++ {
		if randomMatrix(rng, 4, 4).Rank() < 4 {
			singular++
		}
	}
	if singular > 10 {
		t.Fatalf("%d/200 random 4x4 matrices singular; expected ~1%%", singular)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestStringRenders(t *testing.T) {
	if s := Identity(2).String(); s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkRREF8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randomMatrix(rng, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Clone().RREF()
	}
}
