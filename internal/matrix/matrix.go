// Package matrix provides dense matrices over GF(2^8) and the linear-algebra
// routines the RLNC decoder relies on: rank computation, reduced row-echelon
// form, inversion, and linear solves.
//
// All operations work in place on row slices so the decoder can run its
// progressive Gaussian elimination without copying payloads.
package matrix

import (
	"errors"
	"fmt"

	"ncfn/internal/gf"
)

// ErrSingular is returned when a matrix has no inverse or a linear system
// has no unique solution.
var ErrSingular = errors.New("matrix: singular")

// Matrix is a dense rows x cols matrix over GF(2^8). The zero value is an
// empty matrix; use New to allocate one with dimensions.
type Matrix struct {
	rows, cols int
	data       [][]byte
}

// New returns a zero-filled rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	data := make([][]byte, rows)
	backing := make([]byte, rows*cols)
	for i := range data {
		data[i], backing = backing[:cols:cols], backing[cols:]
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix that shares storage with the given row slices.
// All rows must have equal length.
func FromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has length %d, want %d", i, len(r), cols)
		}
	}
	return &Matrix{rows: len(rows), cols: cols, data: rows}, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i][i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) byte { return m.data[i][j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v byte) { m.data[i][j] = v }

// Row returns row i. The returned slice shares storage with the matrix.
func (m *Matrix) Row(i int) []byte { return m.data[i] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	for i := range m.data {
		copy(c.data[i], m.data[i])
	}
	return c
}

// Equal reports whether m and o have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		for j := range m.data[i] {
			if m.data[i][j] != o.data[i][j] {
				return false
			}
		}
	}
	return true
}

// Mul returns the matrix product m * o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			c := m.data[i][k]
			if c == 0 {
				continue
			}
			gf.AddMulSlice(out.data[i], o.data[k], c)
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []byte) ([]byte, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(v))
	}
	out := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = gf.DotProduct(m.data[i], v)
	}
	return out, nil
}

// Rank returns the rank of the matrix. m is not modified.
func (m *Matrix) Rank() int {
	return m.Clone().rankInPlace()
}

func (m *Matrix) rankInPlace() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot at or below row `rank`.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.data[rank], m.data[pivot] = m.data[pivot], m.data[rank]
		// Eliminate below.
		p := m.data[rank][col]
		for r := rank + 1; r < m.rows; r++ {
			if m.data[r][col] == 0 {
				continue
			}
			factor := gf.Div(m.data[r][col], p)
			gf.AddMulSlice(m.data[r], m.data[rank], factor)
		}
		rank++
	}
	return rank
}

// RREF reduces the matrix to reduced row-echelon form in place and returns
// its rank.
func (m *Matrix) RREF() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.data[rank], m.data[pivot] = m.data[pivot], m.data[rank]
		// Normalize the pivot row.
		if p := m.data[rank][col]; p != 1 {
			gf.MulSlice(m.data[rank], m.data[rank], gf.Inv(p))
		}
		// Eliminate everywhere else.
		for r := 0; r < m.rows; r++ {
			if r == rank || m.data[r][col] == 0 {
				continue
			}
			gf.AddMulSlice(m.data[r], m.data[rank], m.data[r][col])
		}
		rank++
	}
	return rank
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d: %w", m.rows, m.cols, ErrSingular)
	}
	n := m.rows
	if m.Rank() < n {
		return nil, ErrSingular
	}
	// Build the augmented matrix [m | I] and reduce.
	aug := New(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.data[i][:n], m.data[i])
		aug.data[i][n+i] = 1
	}
	aug.RREF()
	// Left half must now be the identity; the right half is the inverse.
	inv := New(n, n)
	for i := 0; i < n; i++ {
		copy(inv.data[i], aug.data[i][n:])
	}
	return inv, nil
}

// Solve returns x such that m * x = b for a square nonsingular m.
func (m *Matrix) Solve(b []byte) ([]byte, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot solve %dx%d system: %w", m.rows, m.cols, ErrSingular)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), m.rows)
	}
	n := m.rows
	aug := New(n, n+1)
	for i := 0; i < n; i++ {
		copy(aug.data[i][:n], m.data[i])
		aug.data[i][n] = b[i]
	}
	left, err := FromRows(func() [][]byte {
		rows := make([][]byte, n)
		for i := range rows {
			rows[i] = aug.data[i][:n]
		}
		return rows
	}())
	if err != nil {
		return nil, err
	}
	if left.Clone().rankInPlace() < n {
		return nil, ErrSingular
	}
	aug.RREF()
	x := make([]byte, n)
	for i := 0; i < n; i++ {
		x[i] = aug.data[i][n]
	}
	return x, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.data[i])
	}
	return s
}
