package buffer

import "sync"

// Packet buffer pool. The emulated network and the VNF data plane move one
// []byte per datagram; without pooling every receive and every send copy
// allocates, and at Fig. 4 packet rates the garbage collector becomes part
// of the data path. The pool hands out buffers in two size classes — one
// for MTU-sized datagrams, one for jumbo/UDP-max reads — and recycles only
// exact-capacity buffers so a foreign slice can never poison a class.
//
// Ownership contract: a buffer obtained from GetPacket (directly, or as a
// datagram delivered by emunet) is owned by whoever holds it; the consumer
// of a received datagram should PutPacket it once the payload has been
// parsed or copied out. Consumers that do not return buffers merely fall
// back to GC — correctness never depends on a Put.

const (
	// mtuClass covers standard NC datagrams: 12-byte header + 1460-byte
	// block fits with room for larger coefficient vectors.
	mtuClass = 2048
	// maxClass covers the largest UDP datagram the emulated sockets read.
	maxClass = 65536
)

// The pools hold *[N]byte rather than *[]byte: converting between a slice
// and an array pointer is free in both directions, so neither GetPacket nor
// PutPacket allocates a slice header on the way through the pool.
var (
	mtuPool = sync.Pool{New: func() any { return new([mtuClass]byte) }}
	maxPool = sync.Pool{New: func() any { return new([maxClass]byte) }}
)

// GetPacket returns a packet buffer of length n from the pool. The contents
// are unspecified; callers overwrite the buffer before use.
func GetPacket(n int) []byte {
	switch {
	case n <= mtuClass:
		return mtuPool.Get().(*[mtuClass]byte)[:n]
	case n <= maxClass:
		return maxPool.Get().(*[maxClass]byte)[:n]
	default:
		return make([]byte, n)
	}
}

// PutPacket returns a buffer to the pool. Buffers whose capacity does not
// match a pool class (including nil) are dropped for the GC to reclaim, so
// it is always safe to Put a slice regardless of provenance — as long as no
// other goroutine still reads or writes it.
func PutPacket(b []byte) {
	switch cap(b) {
	case mtuClass:
		mtuPool.Put((*[mtuClass]byte)(b[:mtuClass]))
	case maxClass:
		maxPool.Put((*[maxClass]byte)(b[:maxClass]))
	}
}
