package buffer

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Packet buffer pool. The emulated network and the VNF data plane move one
// []byte per datagram; without pooling every receive and every send copy
// allocates, and at Fig. 4 packet rates the garbage collector becomes part
// of the data path. The pool hands out buffers in two size classes — one
// for MTU-sized datagrams, one for jumbo/UDP-max reads — and recycles only
// exact-capacity buffers so a foreign slice can never poison a class.
//
// Ownership contract: a buffer obtained from GetPacket (directly, or as a
// datagram delivered by emunet) is owned by whoever holds it; the consumer
// of a received datagram should PutPacket it once the payload has been
// parsed or copied out. Consumers that do not return buffers merely fall
// back to GC — correctness never depends on a Put.

const (
	// mtuClass covers standard NC datagrams: 12-byte header + 1460-byte
	// block fits with room for larger coefficient vectors.
	mtuClass = 2048
	// maxClass covers the largest UDP datagram the emulated sockets read.
	maxClass = 65536
)

// The pools hold *[N]byte rather than *[]byte: converting between a slice
// and an array pointer is free in both directions, so neither GetPacket nor
// PutPacket allocates a slice header on the way through the pool.
var (
	mtuPool = sync.Pool{New: func() any { return new([mtuClass]byte) }}
	maxPool = sync.Pool{New: func() any { return new([maxClass]byte) }}
)

// Double-put accounting. A buffer Put twice ends up handed to two owners at
// once and corrupts packets in ways that surface far from the bug, so the
// fuzz and chaos suites run with accounting on and assert DoublePuts() == 0.
// Off by default: the tracking map serializes Get/Put and belongs in tests
// only.
var (
	accounting atomic.Bool
	doublePuts atomic.Uint64

	acctMu sync.Mutex
	// pooled marks backing arrays (by first-byte pointer) currently resident
	// in a pool. Only arrays seen by GetPacket/PutPacket while accounting is
	// on are tracked; foreign buffers are ignored.
	pooled map[unsafe.Pointer]bool
)

// SetAccounting toggles double-put tracking and resets the counter and the
// tracked set. Intended for tests; not for production data paths.
func SetAccounting(on bool) {
	acctMu.Lock()
	defer acctMu.Unlock()
	doublePuts.Store(0)
	if on {
		pooled = make(map[unsafe.Pointer]bool)
	} else {
		pooled = nil
	}
	accounting.Store(on)
}

// DoublePuts returns how many PutPacket calls returned a buffer that was
// already resident in a pool since accounting was last enabled.
func DoublePuts() uint64 { return doublePuts.Load() }

// trackGet marks a buffer as checked out. b always has pool-class capacity.
func trackGet(b []byte) {
	p := unsafe.Pointer(unsafe.SliceData(b))
	acctMu.Lock()
	if pooled != nil {
		pooled[p] = false
	}
	acctMu.Unlock()
}

// trackPut marks a buffer as returned, reporting whether this Put is a
// double put (already resident) that must not reach the pool.
func trackPut(b []byte) (double bool) {
	p := unsafe.Pointer(unsafe.SliceData(b))
	acctMu.Lock()
	defer acctMu.Unlock()
	if pooled == nil {
		return false
	}
	if in, seen := pooled[p]; seen && in {
		doublePuts.Add(1)
		return true
	}
	pooled[p] = true
	return false
}

// GetPacket returns a packet buffer of length n from the pool. The contents
// are unspecified; callers overwrite the buffer before use.
func GetPacket(n int) []byte {
	var b []byte
	switch {
	case n <= mtuClass:
		b = mtuPool.Get().(*[mtuClass]byte)[:n]
	case n <= maxClass:
		b = maxPool.Get().(*[maxClass]byte)[:n]
	default:
		return make([]byte, n)
	}
	if accounting.Load() {
		trackGet(b)
	}
	return b
}

// PutPacket returns a buffer to the pool. Buffers whose capacity does not
// match a pool class (including nil) are dropped for the GC to reclaim, so
// it is always safe to Put a slice regardless of provenance — as long as no
// other goroutine still reads or writes it.
func PutPacket(b []byte) {
	switch cap(b) {
	case mtuClass:
		if accounting.Load() && trackPut(b) {
			return
		}
		mtuPool.Put((*[mtuClass]byte)(b[:mtuClass]))
	case maxClass:
		if accounting.Load() && trackPut(b) {
			return
		}
		maxPool.Put((*[maxClass]byte)(b[:maxClass]))
	}
}
