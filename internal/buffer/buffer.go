// Package buffer implements the VNF packet buffer of Sec. III-B: arriving
// coded blocks are stored by (session ID, generation ID) so the coding
// function "can quickly encode the newly received packets with existing
// packets from the same session and same generation". Eviction is FIFO over
// generations — when the buffer is full, the oldest generation's packets are
// discarded. The paper measures (Fig. 5) that 1024 generations per session
// is sufficient; that is the default capacity.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// DefaultCapacity is the per-session buffer capacity in generations
// (Fig. 5 shows gains flatten at 1024).
const DefaultCapacity = 1024

// GenKey identifies one generation of one session.
type GenKey struct {
	Session    ncproto.SessionID
	Generation ncproto.GenerationID
}

// String renders the key for logs.
func (k GenKey) String() string {
	return fmt.Sprintf("s%d/g%d", k.Session, k.Generation)
}

// Entry holds the buffered coded blocks of one generation.
type Entry struct {
	Key    GenKey
	Blocks []rlnc.CodedBlock
	// n counts the blocks recorded for the generation, including those
	// tracked without payload retention (see Track).
	n int
	// elem is the entry's position in the FIFO list.
	elem *list.Element
}

// Buffer is a FIFO generation buffer. It is safe for concurrent use; the
// data plane's receive goroutine writes while the recode path reads.
type Buffer struct {
	mu       sync.Mutex
	capacity int
	entries  map[GenKey]*Entry
	fifo     *list.List // of GenKey, front = oldest
	evicted  uint64
	stored   uint64
}

// New returns a buffer holding at most capacity generations. A
// non-positive capacity selects DefaultCapacity.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Buffer{
		capacity: capacity,
		entries:  make(map[GenKey]*Entry, capacity),
		fifo:     list.New(),
	}
}

// Capacity returns the maximum number of generations held.
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the number of generations currently buffered.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Evicted returns the cumulative number of generations discarded by FIFO
// eviction.
func (b *Buffer) Evicted() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evicted
}

// Stored returns the cumulative number of blocks added.
func (b *Buffer) Stored() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stored
}

// Add appends a coded block to its generation's entry, creating the entry
// (and evicting the oldest generation if at capacity) as needed. It returns
// the number of blocks now held for the generation.
func (b *Buffer) Add(key GenKey, cb rlnc.CodedBlock) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		if len(b.entries) >= b.capacity {
			b.evictOldestLocked()
		}
		e = &Entry{Key: key}
		e.elem = b.fifo.PushBack(key)
		b.entries[key] = e
	}
	e.Blocks = append(e.Blocks, cb.Clone())
	e.n++
	b.stored++
	return e.n
}

// Track records a block arrival for its generation without retaining the
// payload — the allocation-free variant of Add for data planes that keep
// coded state elsewhere (e.g. in a rank-limited recoder basis) but still
// need the buffer's per-generation counting and FIFO eviction semantics.
// It returns the number of blocks now recorded for the generation.
func (b *Buffer) Track(key GenKey) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		if len(b.entries) >= b.capacity {
			b.evictOldestLocked()
		}
		e = &Entry{Key: key}
		e.elem = b.fifo.PushBack(key)
		b.entries[key] = e
	}
	e.n++
	b.stored++
	return e.n
}

// Blocks returns copies of the coded blocks buffered for a generation; the
// second result reports whether the generation is present.
func (b *Buffer) Blocks(key GenKey) ([]rlnc.CodedBlock, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		return nil, false
	}
	out := make([]rlnc.CodedBlock, len(e.Blocks))
	for i, cb := range e.Blocks {
		out[i] = cb.Clone()
	}
	return out, true
}

// Count returns the number of blocks held for a generation (0 if absent).
func (b *Buffer) Count(key GenKey) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[key]; ok {
		return e.n
	}
	return 0
}

// Contains reports whether the generation is buffered.
func (b *Buffer) Contains(key GenKey) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.entries[key]
	return ok
}

// Drop removes a generation (e.g. after it has been fully delivered) and
// reports whether it was present. Dropped generations do not count as
// evictions.
func (b *Buffer) Drop(key GenKey) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		return false
	}
	b.fifo.Remove(e.elem)
	delete(b.entries, key)
	return true
}

// DropSession removes every generation of a session, returning how many
// were removed. Used when a session ends (NC_VNF_END / forwarding-table
// removal).
func (b *Buffer) DropSession(s ncproto.SessionID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for el := b.fifo.Front(); el != nil; {
		next := el.Next()
		key := el.Value.(GenKey)
		if key.Session == s {
			b.fifo.Remove(el)
			delete(b.entries, key)
			n++
		}
		el = next
	}
	return n
}

// Oldest returns the key of the generation next in line for eviction.
func (b *Buffer) Oldest() (GenKey, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	front := b.fifo.Front()
	if front == nil {
		return GenKey{}, false
	}
	return front.Value.(GenKey), true
}

func (b *Buffer) evictOldestLocked() {
	front := b.fifo.Front()
	if front == nil {
		return
	}
	key := front.Value.(GenKey)
	b.fifo.Remove(front)
	delete(b.entries, key)
	b.evicted++
}
