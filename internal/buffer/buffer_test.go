package buffer

import (
	"sync"
	"testing"

	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

func cb(v byte) rlnc.CodedBlock {
	return rlnc.CodedBlock{Coeffs: []byte{v, 0, 0, 0}, Payload: []byte{v}}
}

func key(s, g int) GenKey {
	return GenKey{Session: ncproto.SessionID(s), Generation: ncproto.GenerationID(g)}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity {
		t.Fatal("zero capacity should select default")
	}
	if New(-5).Capacity() != DefaultCapacity {
		t.Fatal("negative capacity should select default")
	}
	if New(7).Capacity() != 7 {
		t.Fatal("explicit capacity ignored")
	}
}

func TestAddAndBlocks(t *testing.T) {
	b := New(4)
	if n := b.Add(key(1, 1), cb(1)); n != 1 {
		t.Fatalf("first add count = %d", n)
	}
	if n := b.Add(key(1, 1), cb(2)); n != 2 {
		t.Fatalf("second add count = %d", n)
	}
	blocks, ok := b.Blocks(key(1, 1))
	if !ok || len(blocks) != 2 {
		t.Fatalf("Blocks = %d,%v", len(blocks), ok)
	}
	if blocks[0].Payload[0] != 1 || blocks[1].Payload[0] != 2 {
		t.Fatal("block order wrong")
	}
}

func TestBlocksAbsent(t *testing.T) {
	b := New(4)
	if _, ok := b.Blocks(key(9, 9)); ok {
		t.Fatal("absent generation reported present")
	}
}

func TestBlocksAreCopies(t *testing.T) {
	b := New(4)
	b.Add(key(1, 1), cb(5))
	blocks, _ := b.Blocks(key(1, 1))
	blocks[0].Payload[0] = 99
	again, _ := b.Blocks(key(1, 1))
	if again[0].Payload[0] != 5 {
		t.Fatal("Blocks exposed internal storage")
	}
}

func TestAddClonesInput(t *testing.T) {
	b := New(4)
	block := cb(5)
	b.Add(key(1, 1), block)
	block.Payload[0] = 99
	got, _ := b.Blocks(key(1, 1))
	if got[0].Payload[0] != 5 {
		t.Fatal("Add retained caller's slice")
	}
}

func TestFIFOEviction(t *testing.T) {
	b := New(2)
	b.Add(key(1, 1), cb(1))
	b.Add(key(1, 2), cb(2))
	b.Add(key(1, 3), cb(3)) // evicts generation 1
	if b.Contains(key(1, 1)) {
		t.Fatal("oldest generation not evicted")
	}
	if !b.Contains(key(1, 2)) || !b.Contains(key(1, 3)) {
		t.Fatal("newer generations evicted")
	}
	if b.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", b.Evicted())
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

func TestEvictionOrderIsInsertion(t *testing.T) {
	b := New(3)
	b.Add(key(1, 10), cb(1))
	b.Add(key(1, 20), cb(2))
	b.Add(key(1, 30), cb(3))
	// Touching generation 10 again must NOT refresh its position (FIFO,
	// not LRU — the paper discards the oldest packets).
	b.Add(key(1, 10), cb(4))
	b.Add(key(1, 40), cb(5))
	if b.Contains(key(1, 10)) {
		t.Fatal("FIFO should have evicted generation 10 despite recent add")
	}
}

func TestOldest(t *testing.T) {
	b := New(4)
	if _, ok := b.Oldest(); ok {
		t.Fatal("Oldest on empty buffer")
	}
	b.Add(key(1, 5), cb(1))
	b.Add(key(1, 6), cb(2))
	k, ok := b.Oldest()
	if !ok || k != key(1, 5) {
		t.Fatalf("Oldest = %v,%v", k, ok)
	}
}

func TestDrop(t *testing.T) {
	b := New(4)
	b.Add(key(1, 1), cb(1))
	if !b.Drop(key(1, 1)) {
		t.Fatal("Drop returned false for present key")
	}
	if b.Drop(key(1, 1)) {
		t.Fatal("Drop returned true for absent key")
	}
	if b.Evicted() != 0 {
		t.Fatal("Drop must not count as eviction")
	}
	if b.Len() != 0 {
		t.Fatal("Len after drop")
	}
}

func TestDropFreesCapacity(t *testing.T) {
	b := New(2)
	b.Add(key(1, 1), cb(1))
	b.Add(key(1, 2), cb(2))
	b.Drop(key(1, 1))
	b.Add(key(1, 3), cb(3))
	if b.Evicted() != 0 {
		t.Fatal("eviction occurred despite free slot")
	}
	if !b.Contains(key(1, 2)) || !b.Contains(key(1, 3)) {
		t.Fatal("wrong contents after drop+add")
	}
}

func TestDropSession(t *testing.T) {
	b := New(8)
	b.Add(key(1, 1), cb(1))
	b.Add(key(1, 2), cb(2))
	b.Add(key(2, 1), cb(3))
	if n := b.DropSession(1); n != 2 {
		t.Fatalf("DropSession removed %d, want 2", n)
	}
	if b.Contains(key(1, 1)) || b.Contains(key(1, 2)) {
		t.Fatal("session 1 generations remain")
	}
	if !b.Contains(key(2, 1)) {
		t.Fatal("session 2 generation removed")
	}
}

func TestCount(t *testing.T) {
	b := New(4)
	if b.Count(key(1, 1)) != 0 {
		t.Fatal("Count of absent key")
	}
	b.Add(key(1, 1), cb(1))
	b.Add(key(1, 1), cb(2))
	if b.Count(key(1, 1)) != 2 {
		t.Fatal("Count wrong")
	}
}

func TestStoredCounter(t *testing.T) {
	b := New(4)
	b.Add(key(1, 1), cb(1))
	b.Add(key(1, 1), cb(2))
	b.Add(key(2, 1), cb(3))
	if b.Stored() != 3 {
		t.Fatalf("Stored = %d, want 3", b.Stored())
	}
}

func TestKeyString(t *testing.T) {
	if key(3, 9).String() != "s3/g9" {
		t.Fatalf("String = %s", key(3, 9))
	}
}

func TestConcurrentAccess(t *testing.T) {
	b := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(key(g%2, i%32), cb(byte(i)))
				b.Blocks(key(g%2, i%32))
				b.Count(key(g%2, i%32))
				if i%10 == 0 {
					b.Drop(key(g%2, i%32))
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkAdd(b *testing.B) {
	buf := New(1024)
	block := rlnc.CodedBlock{Coeffs: make([]byte, 4), Payload: make([]byte, 1460)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(key(1, i%2048), block)
	}
}

func TestTrackCountsWithoutStoring(t *testing.T) {
	b := New(2)
	key := GenKey{Session: 1, Generation: 1}
	if got := b.Track(key); got != 1 {
		t.Fatalf("first Track = %d, want 1", got)
	}
	if got := b.Track(key); got != 2 {
		t.Fatalf("second Track = %d, want 2", got)
	}
	if got := b.Count(key); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if blocks, ok := b.Blocks(key); !ok || len(blocks) != 0 {
		t.Fatalf("Blocks = %d entries, ok=%v; want 0 entries, present", len(blocks), ok)
	}
	if got := b.Stored(); got != 2 {
		t.Fatalf("Stored = %d, want 2", got)
	}
	// Tracked generations participate in FIFO eviction like stored ones.
	b.Track(GenKey{Session: 1, Generation: 2})
	b.Track(GenKey{Session: 1, Generation: 3})
	if b.Contains(key) {
		t.Fatal("oldest tracked generation survived eviction at capacity")
	}
	if got := b.Evicted(); got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
}

func TestPacketPoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 12, 1472, 2048, 2049, 65536, 70000} {
		b := GetPacket(n)
		if len(b) != n {
			t.Fatalf("GetPacket(%d) returned len %d", n, len(b))
		}
		for i := range b {
			b[i] = byte(i)
		}
		PutPacket(b)
	}
	// Foreign and nil slices must be safe to Put.
	PutPacket(nil)
	PutPacket(make([]byte, 100))
}

func TestPacketPoolDoublePutAccounting(t *testing.T) {
	SetAccounting(true)
	defer SetAccounting(false)

	b := GetPacket(1472)
	PutPacket(b)
	if got := DoublePuts(); got != 0 {
		t.Fatalf("DoublePuts after single put = %d, want 0", got)
	}
	PutPacket(b) //nolint:nc deliberate double put: this test exercises the pool's double-put counter
	if got := DoublePuts(); got != 1 {
		t.Fatalf("DoublePuts after double put = %d, want 1", got)
	}
	// The double put must not have re-inserted the buffer: a get/put cycle
	// keeps working and counts no further doubles.
	c := GetPacket(64)
	PutPacket(c)
	if got := DoublePuts(); got != 1 {
		t.Fatalf("DoublePuts after clean cycle = %d, want 1", got)
	}
	// Foreign buffers are ignored by accounting.
	PutPacket(make([]byte, 100))
	PutPacket(nil)
	if got := DoublePuts(); got != 1 {
		t.Fatalf("DoublePuts after foreign puts = %d, want 1", got)
	}

	SetAccounting(false)
	if got := DoublePuts(); got != 0 {
		t.Fatalf("DoublePuts after reset = %d, want 0", got)
	}
}

func TestPacketPoolSteadyStateZeroAlloc(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		b := GetPacket(1472)
		PutPacket(b)
	}); allocs != 0 {
		t.Fatalf("pooled get/put allocated %.1f times, want 0", allocs)
	}
}
