package chaostest

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/leakcheck"
	"ncfn/internal/telemetry"
)

// TestRollingRestartUnderTraffic is the in-process simclock twin of the
// multi-process rolling-restart tier: with generations in flight, every
// relay of the butterfly is drained to quiescence, closed, and redeployed in
// turn — with a network partition injected and healed mid-walk — and both
// sinks must still decode every generation byte-identically. Runs under
// -race with leak checking and pool double-put accounting.
func TestRollingRestartUnderTraffic(t *testing.T) {
	defer leakcheck.Check(t)
	buffer.SetAccounting(true)
	defer buffer.SetAccounting(false)

	c, err := NewButterfly(41)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var want []byte
	sent, err := c.SendGenerations(4)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, sent...)

	relays := RelayNodes()
	for i, node := range relays {
		// Fault injection mid-walk: while one relay restarts, another is
		// partitioned and healed — the walker must not depend on a quiet
		// network.
		victim := relays[(i+1)%len(relays)]
		if i == 1 {
			c.PartitionNode(victim)
		}
		if err := c.RollingRestart(node, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			c.HealNode(victim)
		}
		sent, err := c.SendGenerations(2)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sent...)
	}

	if err := c.WaitAllDecoded(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, sink := range sinkNodes {
		got, ok := c.SinkData(sink)
		if !ok {
			t.Fatalf("%s missing generations after rolling restart", sink)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s delivered bytes differ after rolling restart", sink)
		}
	}

	// Every restart really drained: one drain-start and one drain-quiesced
	// flight event per relay walked (none timed out to a forced close).
	rec := c.Reg.Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if evs := rec.EventsOf(telemetry.EventDrainStart); len(evs) != len(relays) {
		t.Fatalf("drain-start events = %d, want %d", len(evs), len(relays))
	}
	if evs := rec.EventsOf(telemetry.EventDrainQuiesced); len(evs) != len(relays) {
		t.Fatalf("drain-quiesced events = %d, want %d", len(evs), len(relays))
	}
}

// TestReloadChurnSoak hot-reloads every relay over and over while traffic
// flows: no-op reloads leave live state untouched, alternating versions add
// and remove an inert extra session (settings churn), stale versions are
// refused, and the whole soak never pauses a shard — every table diff rides
// one RCU swap. Both sinks must decode everything sent across the churn.
func TestReloadChurnSoak(t *testing.T) {
	defer leakcheck.Check(t)
	buffer.SetAccounting(true)
	defer buffer.SetAccounting(false)

	rounds := 6
	if testing.Short() {
		rounds = 3
	}

	c, err := NewButterfly(43)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var want []byte
	sent, err := c.SendGenerations(3)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, sent...)

	relays := RelayNodes()
	reloads := 0
	for r := 0; r < rounds; r++ {
		extra := r%2 == 1
		for _, node := range relays {
			f := c.DeployFileFor(node, r+1, extra)
			sum, err := c.Daemon(node).Reload(f, node)
			if err != nil {
				t.Fatalf("round %d reload %s: %v", r, node, err)
			}
			reloads++
			if sum.SessionsUpdated != 0 {
				t.Fatalf("round %d reload %s rewrote the live session: %+v", r, node, sum)
			}
			switch {
			case r == 0:
				// First reload describes exactly the live state: a no-op.
				if sum != (controller.ReloadSummary{Version: 1}) {
					t.Fatalf("round 0 reload %s not a no-op: %+v", node, sum)
				}
			case extra:
				if sum.SessionsAdded != 1 || sum.SessionsRemoved != 0 {
					t.Fatalf("round %d reload %s: extra session not added: %+v", r, node, sum)
				}
			default:
				if sum.SessionsRemoved != 1 || sum.SessionsAdded != 0 {
					t.Fatalf("round %d reload %s: extra session not removed: %+v", r, node, sum)
				}
			}
			// Replaying the same version must be refused, and must not
			// disturb the applied version.
			if _, err := c.Daemon(node).Reload(f, node); !errors.Is(err, controller.ErrStaleVersion) {
				t.Fatalf("round %d stale reload %s = %v, want ErrStaleVersion", r, node, err)
			}
			if got := c.Daemon(node).DeployVersion(); got != r+1 {
				t.Fatalf("round %d %s deploy version = %d, want %d", r, node, got, r+1)
			}
		}
		sent, err := c.SendGenerations(1)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sent...)
	}

	if err := c.WaitAllDecoded(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, sink := range sinkNodes {
		got, ok := c.SinkData(sink)
		if !ok {
			t.Fatalf("%s missing generations after reload churn", sink)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s delivered bytes differ after reload churn", sink)
		}
	}

	// The soak's entire table churn rode the RCU path: zero pauses, and one
	// reload flight event per applied reload.
	snap := c.Reg.Snapshot()
	if got := snap.Histograms[dataplane.MetricTableSwapNs].Count; got != 0 {
		t.Fatalf("reload churn recorded %d shard pauses, want 0", got)
	}
	rec := c.Reg.Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if evs := rec.EventsOf(telemetry.EventPause); len(evs) != 0 {
		t.Fatalf("reload churn recorded %d pause events, want 0", len(evs))
	}
	if evs := rec.EventsOf(telemetry.EventReload); len(evs) != reloads {
		t.Fatalf("reload flight events = %d, want %d", len(evs), reloads)
	}
}
