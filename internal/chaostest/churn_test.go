package chaostest

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/leakcheck"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
)

// churnParams keeps per-generation state small so thousands of sessions fit
// a -race run comfortably.
func churnParams() rlnc.Params {
	return rlnc.Params{GenerationBlocks: 4, BlockSize: 64}
}

// churnWire pre-encodes n coded packets for one (session, generation).
func churnWire(t testing.TB, params rlnc.Params, sess ncproto.SessionID, gen ncproto.GenerationID, seed int64, n int) [][]byte {
	t.Helper()
	data := make([]byte, params.GenerationBytes())
	rand.New(rand.NewSource(seed)).Read(data)
	enc, err := rlnc.NewEncoder(params, data, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i := range out {
		cb := enc.Coded()
		out[i] = (&ncproto.Packet{
			Session: sess, Generation: gen, Coeffs: cb.Coeffs, Payload: cb.Payload,
		}).Encode(nil)
	}
	return out
}

// TestSessionChurnSoak is the deterministic multi-tenancy soak: thousands of
// decoder sessions cycle through create → traffic → evict → revive on one
// VNF under a virtual clock, with concurrent injectors (disjoint session
// ranges) and a concurrent stream of RCU table pushes. The harness asserts
// the bounded-state contract end to end: the store's generation count stays
// at its cap (modulo in-flight injectors), TTL sweeps reclaim idle state,
// late packets for evicted generations are dropped and counted — never
// resurrected — revived sessions decode cleanly, table pushes record zero
// pauses, and teardown returns every accounted byte.
func TestSessionChurnSoak(t *testing.T) {
	defer leakcheck.Check(t)
	buffer.SetAccounting(true)
	defer buffer.SetAccounting(false)

	sessions := 2048
	if testing.Short() {
		sessions = 256
	}
	const injectors = 8
	params := churnParams()
	stateBytes := int64(params.StateBytes())
	ttl := 30 * time.Second
	maxGens := sessions / 2

	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	reg := telemetry.NewRegistry()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	v := dataplane.NewVNF(n.Host("churn"),
		dataplane.WithSeed(99),
		dataplane.WithTelemetry(reg),
		dataplane.WithClock(clk),
		dataplane.WithSessionStore(dataplane.SessionStoreConfig{
			MaxGenerations: maxGens,
			TTLNanos:       ttl.Nanoseconds(),
		}))
	defer v.Close()

	params0 := params
	configure := func(id ncproto.SessionID) {
		if err := v.Configure(dataplane.SessionConfig{ID: id, Params: params0, Role: dataplane.RoleDecoder}); err != nil {
			t.Error(err)
		}
	}
	for s := 1; s <= sessions; s++ {
		configure(ncproto.SessionID(s))
	}

	// Concurrent RCU table pushes for the whole soak: forwarding state churns
	// while packets flow, and (asserted below) not one shard ever pauses.
	stopPush := make(chan struct{})
	var pushWG sync.WaitGroup
	pushWG.Add(1)
	go func() {
		defer pushWG.Done()
		rng := rand.New(rand.NewSource(424242))
		for i := 0; ; i++ {
			select {
			case <-stopPush:
				return
			default:
			}
			entries := map[ncproto.SessionID][]dataplane.HopGroup{}
			for j := 0; j < 16; j++ {
				id := ncproto.SessionID(rng.Intn(sessions) + 1)
				entries[id] = []dataplane.HopGroup{{Addrs: []string{"sink"}}}
			}
			v.UpdateTable(entries)
		}
	}()

	// Phase 1 — create + traffic: each injector owns a disjoint session range
	// and leaves every generation one packet short of decoding, so live
	// coding state piles up against the store's cap.
	k := params.GenerationBlocks
	perInjector := sessions / injectors
	var wg sync.WaitGroup
	for w := 0; w < injectors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lo := w*perInjector + 1
			for s := lo; s < lo+perInjector; s++ {
				gens := 1 + rng.Intn(3) // heavy-ish tail: 1–3 live generations
				for g := 0; g < gens; g++ {
					wires := churnWire(t, params, ncproto.SessionID(s), ncproto.GenerationID(g), int64(s*8+g), k-1)
					for _, pkt := range wires {
						v.InjectPacket(pkt)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	gens, bytes := v.SessionStoreStats()
	if gens > maxGens+injectors {
		t.Fatalf("phase 1: %d live generations, want <= cap %d (+%d in-flight slack)", gens, maxGens, injectors)
	}
	if bytes < int64(gens)*stateBytes {
		t.Fatalf("phase 1: %d bytes accounted for %d generations (state is %d each)", bytes, gens, stateBytes)
	}
	snap := reg.Snapshot()
	if snap.Counters[dataplane.MetricGenerationsEvicted] == 0 {
		t.Fatal("phase 1: cap pressure evicted nothing")
	}

	// Phase 2 — idle expiry: advance virtual time past the TTL and sweep.
	// Every remaining live generation is stale and must go.
	clk.Advance(2 * ttl)
	v.SweepSessions()
	if gens, _ := v.SessionStoreStats(); gens != 0 {
		t.Fatalf("phase 2: %d generations survived a full TTL sweep", gens)
	}
	// Check the recorder now, before later phases overwrite the ring.
	rec := reg.Recorder(dataplane.FlightRecorderName, telemetry.DefaultRecorderCapacity)
	if evs := rec.EventsOf(telemetry.EventGenerationEvict); len(evs) == 0 {
		t.Fatal("no eviction events in the flight recorder")
	}

	// Phase 3 — late packets: traffic for evicted generations must be
	// counted and dropped, never resurrect state.
	dropsBefore := reg.Snapshot().Counters[dataplane.MetricEvictedDrops]
	for w := 0; w < injectors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w*perInjector + 1
			for s := lo; s < lo+perInjector; s += 7 {
				pkt := churnWire(t, params, ncproto.SessionID(s), 0, int64(s*8), 1)[0]
				v.InjectPacket(pkt)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Snapshot().Counters[dataplane.MetricEvictedDrops]; got == dropsBefore {
		t.Fatal("phase 3: late packets for evicted generations were not counted")
	}
	if gens, _ := v.SessionStoreStats(); gens != 0 {
		t.Fatalf("phase 3: late packets resurrected %d generations", gens)
	}

	// Phase 4 — revive: reconfigure every session and run fresh generations
	// to completion; recycled arenas must decode correctly at scale.
	decodedBefore := reg.Snapshot().Counters[dataplane.MetricGenerationsDone]
	for w := 0; w < injectors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w*perInjector + 1
			for s := lo; s < lo+perInjector; s++ {
				id := ncproto.SessionID(s)
				configure(id) // revive: wholesale state replacement
				for _, pkt := range churnWire(t, params, id, 9, int64(s*8+7), k+1) {
					v.InjectPacket(pkt)
				}
			}
		}(w)
	}
	wg.Wait()
	decoded := reg.Snapshot().Counters[dataplane.MetricGenerationsDone] - decodedBefore
	if decoded != uint64(sessions) {
		t.Fatalf("phase 4: revived sessions decoded %d generations, want %d", decoded, sessions)
	}

	// Teardown — every accounted byte comes back.
	close(stopPush)
	pushWG.Wait()
	for s := 1; s <= sessions; s++ {
		v.EndSession(ncproto.SessionID(s))
	}
	if gens, bytes := v.SessionStoreStats(); gens != 0 || bytes != 0 {
		t.Fatalf("teardown: %d generations / %d bytes still accounted, want 0 / 0", gens, bytes)
	}
	final := reg.Snapshot()
	if got := final.Gauges[dataplane.MetricSessionBytes]; got != 0 {
		t.Fatalf("teardown: session-bytes gauge = %d, want 0", got)
	}
	if got := final.Gauges[dataplane.MetricLiveGenerations]; got != 0 {
		t.Fatalf("teardown: live-generations gauge = %d, want 0", got)
	}

	// The soak ran its entire table-push stream through the RCU path: the
	// pause histogram must be empty while the swap counter advanced.
	if got := final.Histograms[dataplane.MetricTableSwapNs].Count; got != 0 {
		t.Fatalf("soak recorded %d shard pauses, want 0 (RCU mode)", got)
	}
	if final.Counters[dataplane.MetricTableSwaps] == 0 {
		t.Fatal("table-push goroutine never pushed")
	}
	if evs := rec.EventsOf(telemetry.EventPause); len(evs) != 0 {
		t.Fatalf("soak recorded %d pause events, want 0", len(evs))
	}
}
