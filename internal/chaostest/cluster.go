package chaostest

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ncfn/internal/cloud"
	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
	"ncfn/internal/simclock"
	"ncfn/internal/telemetry"
	"ncfn/internal/topology"
)

// Session is the single multicast session the harness runs.
const Session = ncproto.SessionID(1)

// Tick is the virtual-time supervision interval: the cadence at which the
// harness advances the clock and ticks the failover supervisor.
const Tick = time.Second

// hopSpec is one logical next hop in the butterfly plan.
type hopSpec struct {
	to     string
	perGen int
}

// nodeSpec describes one coding VNF of the butterfly.
type nodeSpec struct {
	role     dataplane.Role
	inPerGen int
	hops     []hopSpec
}

// The paper's butterfly (Fig. 2): source V1 splits each k=4 generation into
// two conceptual flows of 2 packets through O1 and C1; each relay recodes 2
// packets down to its own sink and 2 toward the merge node T; T compresses
// its 4 inbound packets to 2 for V2, which replicates them to both sinks.
// Every sink thus receives exactly k = 4 packets per generation — the
// multicast rate no routing-only scheme achieves on these link budgets.
var butterflyPlan = map[string]nodeSpec{
	"O1": {role: dataplane.RoleRecoder, inPerGen: 2, hops: []hopSpec{{to: "O2", perGen: 2}, {to: "T", perGen: 2}}},
	"C1": {role: dataplane.RoleRecoder, inPerGen: 2, hops: []hopSpec{{to: "C2", perGen: 2}, {to: "T", perGen: 2}}},
	"T":  {role: dataplane.RoleRecoder, inPerGen: 4, hops: []hopSpec{{to: "V2", perGen: 2}}},
	"V2": {role: dataplane.RoleForwarder, hops: []hopSpec{{to: "O2"}, {to: "C2"}}},
}

// sourceHops is V1's conceptual-flow split.
var sourceHops = []hopSpec{{to: "O1", perGen: 2}, {to: "C1", perGen: 2}}

// sinkNodes are the decoding endpoints (fixed addresses; sinks don't fail
// over in this harness — the paper's failover concerns coding VNFs).
var sinkNodes = []string{"O2", "C2"}

// RelayNodes lists the supervised coding VNFs in deterministic order.
func RelayNodes() []string {
	nodes := make([]string, 0, len(butterflyPlan))
	for n := range butterflyPlan {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Cluster is a running butterfly deployment under chaos supervision.
type Cluster struct {
	Net   *emunet.Network
	Clock *simclock.Virtual
	Cloud *cloud.Cloud
	Sup   *controller.Supervisor
	// Reg is the cluster-wide telemetry registry: every layer (emunet
	// links, cloud faults, daemons' VNFs, the failover supervisor) shares
	// it, so one snapshot covers the whole deployment and chaos tests can
	// assert on flight-recorder events deterministically.
	Reg *telemetry.Registry

	params rlnc.Params
	seed   int64

	mu        sync.Mutex
	epoch     map[string]int                // logical node -> deployment count
	addr      map[string]string             // logical node -> current address
	daemons   map[string]*controller.Daemon // live daemons by logical node
	instances map[string]string             // logical node -> cloud instance ID

	src   *dataplane.Source
	sinks map[string]*dataplane.Receiver
	gens  [][]byte // payload of each generation sent (for resends)
}

// NewButterfly deploys the butterfly on a fresh virtual-clock stack. All
// relay VMs are launched, brought to Running (advancing virtual time by the
// launch latency), configured, and placed under supervision.
func NewButterfly(seed int64) (*Cluster, error) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	relays := RelayNodes()
	regions := make([]cloud.Region, 0, len(relays))
	for _, n := range relays {
		regions = append(regions, cloud.Region{ID: topologyID(n), BaseInMbps: 900, BaseOutMbps: 900})
	}
	reg := telemetry.NewRegistry()
	cl := cloud.New(clk, seed, regions...)
	cl.AttachTelemetry(reg)
	c := &Cluster{
		Net:       emunet.NewNetwork(emunet.AllowDefault(), emunet.WithTelemetry(reg)),
		Clock:     clk,
		Cloud:     cl,
		Reg:       reg,
		// Field is spelled explicitly (the zero value means GF256 anyway) so
		// the session configs compare equal to what a deploy file yields —
		// the reload soak relies on unchanged sessions being left untouched.
		params:    rlnc.Params{GenerationBlocks: 4, BlockSize: 32, Field: gf.GF256},
		seed:      seed,
		epoch:     make(map[string]int),
		addr:      make(map[string]string),
		daemons:   make(map[string]*controller.Daemon),
		instances: make(map[string]string),
		sinks:     make(map[string]*dataplane.Receiver),
	}

	// Launch one VM per relay and wait out the launch latency in virtual
	// time, as the controller's initial deployment does.
	for _, n := range relays {
		inst, err := cl.LaunchInstance(topologyID(n))
		if err != nil {
			return nil, err
		}
		c.instances[n] = inst.ID
	}
	clk.Advance(cloud.DefaultLaunchDelay)

	// Assign every relay its first address before any table is built, then
	// configure and start the daemons.
	c.mu.Lock()
	for _, n := range relays {
		c.epoch[n] = 1
		c.addr[n] = fmt.Sprintf("%s#1", n)
	}
	for _, n := range relays {
		if err := c.deployLocked(n); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	c.mu.Unlock()

	// Source and sinks.
	src, err := dataplane.NewSource(c.Net.Host("V1"), dataplane.SourceConfig{
		Session: Session,
		Params:  c.params,
		Seed:    seed,
		Clock:   clk,
	})
	if err != nil {
		return nil, err
	}
	c.src = src
	src.SetHops(c.sourceGroups())
	for _, s := range sinkNodes {
		r, err := dataplane.NewReceiver(c.Net.Host(s), Session, c.params, "V1", clk, dataplane.WithSeed(seed))
		if err != nil {
			return nil, err
		}
		c.sinks[s] = r
	}

	// Supervision: cloud-level health checks, redeploy re-pushes tables.
	c.Sup = controller.NewSupervisor(controller.SupervisorConfig{
		Cloud:         cl,
		Clock:         clk,
		FailThreshold: 2,
		Telemetry:     reg,
	})
	for _, n := range relays {
		node := n
		c.Sup.Manage(topologyID(node), topologyID(node), c.instances[node],
			controller.InstanceCheck(cl),
			func(ctx context.Context, newInstance string) error {
				return c.redeploy(node, newInstance)
			})
	}
	return c, nil
}

// topologyID converts a logical node name to the topology.NodeID used by the
// cloud and supervisor layers.
func topologyID(n string) topology.NodeID { return topology.NodeID(n) }

// Params returns the session's coding parameters.
func (c *Cluster) Params() rlnc.Params { return c.params }

// Addr returns a logical node's current data-plane address.
func (c *Cluster) Addr(node string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrLocked(node)
}

func (c *Cluster) addrLocked(node string) string {
	for _, s := range sinkNodes {
		if node == s {
			return s
		}
	}
	if node == "V1" {
		return "V1"
	}
	return c.addr[node]
}

// sourceGroups builds V1's hop groups against current addresses.
func (c *Cluster) sourceGroups() []dataplane.HopGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	groups := make([]dataplane.HopGroup, 0, len(sourceHops))
	for _, h := range sourceHops {
		groups = append(groups, dataplane.HopGroup{Addrs: []string{c.addrLocked(h.to)}, PerGen: h.perGen})
	}
	return groups
}

// tableLocked builds a node's forwarding table against current addresses.
func (c *Cluster) tableLocked(node string) map[ncproto.SessionID][]dataplane.HopGroup {
	spec := butterflyPlan[node]
	hops := make([]dataplane.HopGroup, 0, len(spec.hops))
	for _, h := range spec.hops {
		hops = append(hops, dataplane.HopGroup{Addrs: []string{c.addrLocked(h.to)}, PerGen: h.perGen})
	}
	return map[ncproto.SessionID][]dataplane.HopGroup{Session: hops}
}

// deployLocked starts a daemon+VNF for the node at its current address and
// pushes settings, table, and start — the controller's deployment sequence.
func (c *Cluster) deployLocked(node string) error {
	spec := butterflyPlan[node]
	d := controller.NewDaemon(c.Net.Host(c.addr[node]), c.Clock,
		dataplane.WithSeed(c.seed+int64(c.epoch[node])),
		dataplane.WithTelemetry(c.Reg),
		dataplane.WithClock(c.Clock))
	msgs := []*controller.Message{
		{Signal: controller.NCSettings, Settings: &dataplane.SessionConfig{
			ID:       Session,
			Params:   c.params,
			Role:     spec.role,
			InPerGen: spec.inPerGen,
		}},
		{Signal: controller.NCForwardTab, Table: c.tableLocked(node)},
		{Signal: controller.NCStart},
	}
	for _, m := range msgs {
		if err := d.Apply(m); err != nil {
			return fmt.Errorf("chaostest: deploy %s: %w", node, err)
		}
	}
	c.daemons[node] = d
	return nil
}

// redeploy is the supervisor's recovery callback: bring the replacement
// instance into service at a fresh address (a new VM gets a new IP) and
// re-push every forwarding table that referenced the dead one.
func (c *Cluster) redeploy(node, newInstance string) error {
	c.mu.Lock()
	c.instances[node] = newInstance
	c.epoch[node]++
	c.addr[node] = fmt.Sprintf("%s#%d", node, c.epoch[node])
	if err := c.deployLocked(node); err != nil {
		c.mu.Unlock()
		return err
	}
	// Re-push tables of upstream relays that point at this node.
	for _, m := range RelayNodes() {
		if m == node {
			continue
		}
		for _, h := range butterflyPlan[m].hops {
			if h.to != node {
				continue
			}
			if d := c.daemons[m]; d != nil {
				if err := d.Apply(&controller.Message{Signal: controller.NCForwardTab, Table: c.tableLocked(m)}); err != nil {
					c.mu.Unlock()
					return err
				}
			}
			break
		}
	}
	refreshSource := false
	for _, h := range sourceHops {
		if h.to == node {
			refreshSource = true
		}
	}
	c.mu.Unlock()
	if refreshSource {
		c.src.SetHops(c.sourceGroups())
	}
	return nil
}

// Daemon returns a relay's live control daemon (nil while it is down).
func (c *Cluster) Daemon(node string) *controller.Daemon {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.daemons[node]
}

// roleName maps a dataplane role back to its deploy-file spelling.
func roleName(r dataplane.Role) string {
	switch r {
	case dataplane.RoleRecoder:
		return "recoder"
	case dataplane.RoleDecoder:
		return "decoder"
	default:
		return "forwarder"
	}
}

// DeployFileFor renders one relay's current butterfly role and forwarding
// table as a versioned deploy file — the document an operator would POST to
// /reload. With extraSession set, the file also names an inert second
// session (a forwarder entry pointing nowhere useful), so reload soaks can
// churn session adds and removes around the live traffic.
func (c *Cluster) DeployFileFor(node string, version int, extraSession bool) *controller.DeployFile {
	c.mu.Lock()
	defer c.mu.Unlock()
	spec := butterflyPlan[node]
	groups := make([]controller.DeployHopGroup, 0, len(spec.hops))
	for _, h := range spec.hops {
		groups = append(groups, controller.DeployHopGroup{Addrs: []string{c.addrLocked(h.to)}, PerGen: h.perGen})
	}
	f := &controller.DeployFile{
		Version: version,
		Sessions: []controller.DeploySession{{
			ID:        int(Session),
			Blocks:    c.params.GenerationBlocks,
			BlockSize: c.params.BlockSize,
			Roles:     map[string]string{node: roleName(spec.role)},
			InPerGen:  map[string]int{node: spec.inPerGen},
			Tables:    map[string][]controller.DeployHopGroup{node: groups},
		}},
		Daemons: map[string]string{node: c.addrLocked(node)},
	}
	if extraSession {
		f.Sessions = append(f.Sessions, controller.DeploySession{
			ID:        200,
			Blocks:    c.params.GenerationBlocks,
			BlockSize: c.params.BlockSize,
			Roles:     map[string]string{node: "forwarder"},
			Tables:    map[string][]controller.DeployHopGroup{node: {{Addrs: []string{"spare"}}}},
		})
	}
	return f
}

// RollingRestart drains one relay to quiescence, closes it, and brings a
// replacement into service at a fresh address with upstream tables re-pushed
// — the in-process twin of one step of `ncctl rolling-restart`. The drain
// waiter runs on the cluster's virtual clock; realTimeout bounds, in real
// time, how long the harness keeps advancing the clock toward quiescence.
func (c *Cluster) RollingRestart(node string, realTimeout time.Duration) error {
	c.mu.Lock()
	d := c.daemons[node]
	inst := c.instances[node]
	c.mu.Unlock()
	if d == nil {
		return fmt.Errorf("chaostest: rolling restart %s: no live daemon", node)
	}
	if err := d.StartDrain(time.Minute); err != nil {
		return fmt.Errorf("chaostest: rolling restart %s: %w", node, err)
	}
	deadline := time.Now().Add(realTimeout) //nolint:nc real-time bound on the in-process drain goroutine, not simulated time
	for !d.Closed() {
		if time.Now().After(deadline) { //nolint:nc same real-time bound
			return fmt.Errorf("chaostest: rolling restart %s: drain never completed", node)
		}
		// The drain waiter polls quiescence sweeps on the virtual clock;
		// advance it and yield so the waiter gets scheduled between steps.
		c.Clock.Advance(time.Millisecond)
		time.Sleep(100 * time.Microsecond) //nolint:nc real-time yield to the drain goroutine
	}
	return c.redeploy(node, inst)
}

// CrashVNF kills a relay the hard way: the VM crashes at the cloud layer and
// the VNF process dies with it (all its coding state is lost). Detection and
// recovery are the supervisor's job.
func (c *Cluster) CrashVNF(node string) error {
	c.mu.Lock()
	inst := c.instances[node]
	d := c.daemons[node]
	c.daemons[node] = nil
	c.mu.Unlock()
	if err := c.Cloud.CrashInstance(inst); err != nil {
		return err
	}
	if d != nil {
		return d.Close()
	}
	return nil
}

// PartitionNode blackholes a relay's current address; the VM stays Running.
func (c *Cluster) PartitionNode(node string) {
	c.Net.PartitionHost(c.Addr(node))
}

// HealNode reconnects a partitioned relay. Partitions never trigger
// redeploys (the VM stays Running), so the address is the one PartitionNode
// isolated.
func (c *Cluster) HealNode(node string) {
	c.Net.HealHost(c.Addr(node))
}

// RunTicks advances virtual time by n supervision intervals, ticking the
// failover supervisor at each step — the deterministic stand-in for
// Supervisor.Run.
func (c *Cluster) RunTicks(n int) {
	for i := 0; i < n; i++ {
		c.Clock.Advance(Tick)
		c.Sup.Tick()
	}
}

// RunTicksUntilRecovered ticks until the supervisor has logged at least
// events failover events, up to max ticks. It returns the ticks consumed, or
// -1 if recovery did not complete.
func (c *Cluster) RunTicksUntilRecovered(events, max int) int {
	for i := 0; i < max; i++ {
		c.Clock.Advance(Tick)
		c.Sup.Tick()
		if len(c.Sup.Events()) >= events {
			return i + 1
		}
	}
	return -1
}

// SendGenerations encodes and sends n fresh generations of deterministic
// payload, remembering each for later resends. It returns the payload sent.
func (c *Cluster) SendGenerations(n int) ([]byte, error) {
	genBytes := c.params.GenerationBytes()
	var all []byte
	for i := 0; i < n; i++ {
		c.mu.Lock()
		idx := len(c.gens)
		c.mu.Unlock()
		data := make([]byte, genBytes)
		for j := range data {
			data[j] = byte(idx*31 + j)
		}
		gid, err := c.src.SendGeneration(data, false)
		if err != nil {
			return nil, err
		}
		if int(gid) != idx {
			return nil, fmt.Errorf("chaostest: generation id %d, expected %d", gid, idx)
		}
		c.mu.Lock()
		c.gens = append(c.gens, data)
		c.mu.Unlock()
		all = append(all, data...)
	}
	return all, nil
}

// Sent returns how many generations have been sent.
func (c *Cluster) Sent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.gens)
}

// SinkGenerations returns a sink's decoded-generation count.
func (c *Cluster) SinkGenerations(sink string) int {
	return c.sinks[sink].Generations()
}

// SinkData reassembles a sink's decoded stream over all sent generations.
func (c *Cluster) SinkData(sink string) ([]byte, bool) {
	return c.sinks[sink].Data(c.Sent())
}

// WaitAllDecoded blocks until every sink has decoded every sent generation,
// driving the source's reliability path (resend missing generations) while
// it waits. The timeout is real time — it only bounds how long the harness
// waits for in-process goroutines, not simulated time.
func (c *Cluster) WaitAllDecoded(timeout time.Duration) error {
	deadline := time.NewTimer(timeout) //nolint:nc real-time bound on in-process goroutines, not simulated time
	defer deadline.Stop()
	resend := time.NewTicker(25 * time.Millisecond) //nolint:nc real-time resend pacing while the harness waits
	defer resend.Stop()
	for {
		if c.allDecoded() {
			return nil
		}
		select {
		case <-c.src.Acks():
			// Progress: a sink decoded something; loop re-checks.
		case <-resend.C:
			c.resendMissing()
		case <-deadline.C:
			return fmt.Errorf("chaostest: decode incomplete after %v: %s", timeout, c.describeProgress())
		}
	}
}

func (c *Cluster) allDecoded() bool {
	total := c.Sent()
	for _, s := range sinkNodes {
		if c.sinks[s].Generations() < total {
			return false
		}
	}
	return true
}

func (c *Cluster) describeProgress() string {
	total := c.Sent()
	var b bytes.Buffer
	for _, s := range sinkNodes {
		fmt.Fprintf(&b, "%s=%d/%d ", s, c.sinks[s].Generations(), total)
	}
	return b.String()
}

// resendMissing re-encodes every generation some sink is still missing —
// the source-side reliability loop (ACK-timeout resend).
func (c *Cluster) resendMissing() {
	total := c.Sent()
	missing := make(map[int]bool)
	for _, s := range sinkNodes {
		for _, g := range c.sinks[s].MissingBelow(total) {
			missing[int(g)] = true
		}
	}
	gids := make([]int, 0, len(missing))
	for g := range missing {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	c.mu.Lock()
	gens := c.gens
	c.mu.Unlock()
	for _, g := range gids {
		// Two extra packets per hop group per round: enough to regrow full
		// rank at the relays within a few rounds without flooding.
		_ = c.src.ResendGeneration(ncproto.GenerationID(g), gens[g], 2)
	}
}

// Close tears the whole deployment down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	daemons := make([]*controller.Daemon, 0, len(c.daemons))
	for _, d := range c.daemons {
		if d != nil {
			daemons = append(daemons, d)
		}
	}
	c.mu.Unlock()
	if c.src != nil {
		c.src.Close()
	}
	for _, s := range c.sinks {
		s.Close()
	}
	for _, d := range daemons {
		d.Close()
	}
	return c.Net.Close()
}
