package chaostest

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ncfn/internal/buffer"
	"ncfn/internal/leakcheck"
	"ncfn/internal/cloud"
	"ncfn/internal/controller"
)

// decodeTimeout bounds how long a test waits (in real time) for the
// in-process data plane to finish decoding; it does not affect any measured
// simulated latency.
const decodeTimeout = 30 * time.Second

func TestGenerateScheduleDeterministic(t *testing.T) {
	nodes := RelayNodes()
	a := GenerateSchedule(7, nodes, 5, 90*time.Second)
	b := GenerateSchedule(7, nodes, 5, 90*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	other := GenerateSchedule(8, nodes, 5, 90*time.Second)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, e := range a {
		if e.At <= 0 || e.Node == "" {
			t.Fatalf("event %d malformed: %v", i, e)
		}
		if i > 0 && e.At <= a[i-1].At {
			t.Fatalf("events not strictly ordered: %v then %v", a[i-1], e)
		}
		if e.Kind == KindPartition && e.Dur <= 0 {
			t.Fatalf("partition without duration: %v", e)
		}
	}
}

// TestButterflyBaseline proves the harness itself: with no faults, every
// generation decodes at both sinks byte-for-byte, no packet buffer is
// double-freed, and teardown leaks no goroutines.
func TestButterflyBaseline(t *testing.T) {
	leakcheck.Check(t)
	buffer.SetAccounting(true)
	defer buffer.SetAccounting(false)

	c, err := NewButterfly(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sent, err := c.SendGenerations(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAllDecoded(decodeTimeout); err != nil {
		t.Fatal(err)
	}
	for _, sink := range sinkNodes {
		got, ok := c.SinkData(sink)
		if !ok {
			t.Fatalf("sink %s missing generations", sink)
		}
		if !bytes.Equal(got, sent) {
			t.Fatalf("sink %s decoded %d bytes that do not match the sent payload", sink, len(got))
		}
	}
	if len(c.Sup.Events()) != 0 {
		t.Fatal("failover events without faults")
	}
	if n := buffer.DoublePuts(); n != 0 {
		t.Fatalf("packet pool saw %d double puts", n)
	}
}

// TestButterflyRecoderFailover is the headline scenario: the sole merge
// recoder T crashes mid-session. The supervisor must detect the crash,
// relaunch within the paper's 35 s VM launch latency (simulated), re-push
// the forwarding tables that referenced the dead instance, and the session
// must still decode every generation at both sinks.
func TestButterflyRecoderFailover(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewButterfly(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sent []byte
	pre, err := c.SendGenerations(3)
	if err != nil {
		t.Fatal(err)
	}
	sent = append(sent, pre...)
	if err := c.WaitAllDecoded(decodeTimeout); err != nil {
		t.Fatalf("pre-fault traffic: %v", err)
	}

	oldAddr := c.Addr("T")
	if err := c.CrashVNF("T"); err != nil {
		t.Fatal(err)
	}
	// Traffic keeps flowing into the outage: these generations lose their
	// T-path packets and cannot fully decode until recovery.
	mid, err := c.SendGenerations(3)
	if err != nil {
		t.Fatal(err)
	}
	sent = append(sent, mid...)

	ticks := c.RunTicksUntilRecovered(1, 120)
	if ticks < 0 {
		t.Fatal("supervisor never recovered T")
	}
	events := c.Sup.Events()
	if len(events) != 1 {
		t.Fatalf("failover events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Err != nil {
		t.Fatalf("failover failed: %v", ev.Err)
	}
	if string(ev.Node) != "T" {
		t.Fatalf("failover node = %s, want T", ev.Node)
	}
	// Recovery bound: detection to tables-repushed must fit in the simulated
	// 35 s relaunch latency plus a few supervision ticks of slack.
	rec := ev.RecoveredAt.Sub(ev.DetectedAt)
	if rec < cloud.DefaultLaunchDelay {
		t.Fatalf("recovery in %v — faster than the VM launch latency, the simulation is broken", rec)
	}
	if limit := cloud.DefaultLaunchDelay + 5*Tick; rec > limit {
		t.Fatalf("recovery took %v of simulated time, want ≤ %v", rec, limit)
	}
	if newAddr := c.Addr("T"); newAddr == oldAddr {
		t.Fatal("replacement VNF reused the dead instance's address")
	}

	// Post-recovery traffic plus resends repair the outage generations.
	post, err := c.SendGenerations(2)
	if err != nil {
		t.Fatal(err)
	}
	sent = append(sent, post...)
	if err := c.WaitAllDecoded(decodeTimeout); err != nil {
		t.Fatalf("post-recovery decode: %v", err)
	}
	for _, sink := range sinkNodes {
		got, ok := c.SinkData(sink)
		if !ok || !bytes.Equal(got, sent) {
			t.Fatalf("sink %s stream corrupt after failover", sink)
		}
	}
}

// TestButterflyAnySingleCrash asserts the ISSUE's invariant: killing any
// single coding VNF must never prevent eventual full-rank decoding at every
// sink once the supervisor heals the deployment.
func TestButterflyAnySingleCrash(t *testing.T) {
	for _, victim := range RelayNodes() {
		t.Run(victim, func(t *testing.T) {
			leakcheck.Check(t)
			c, err := NewButterfly(3)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var sent []byte
			pre, err := c.SendGenerations(2)
			if err != nil {
				t.Fatal(err)
			}
			sent = append(sent, pre...)

			if err := c.CrashVNF(victim); err != nil {
				t.Fatal(err)
			}
			mid, err := c.SendGenerations(2)
			if err != nil {
				t.Fatal(err)
			}
			sent = append(sent, mid...)

			if c.RunTicksUntilRecovered(1, 120) < 0 {
				t.Fatalf("supervisor never recovered %s", victim)
			}
			if ev := c.Sup.Events()[0]; ev.Err != nil || string(ev.Node) != victim {
				t.Fatalf("unexpected failover event %+v", ev)
			}
			if err := c.WaitAllDecoded(decodeTimeout); err != nil {
				t.Fatalf("decode after crashing %s: %v", victim, err)
			}
			for _, sink := range sinkNodes {
				got, ok := c.SinkData(sink)
				if !ok || !bytes.Equal(got, sent) {
					t.Fatalf("sink %s stream corrupt after crashing %s", sink, victim)
				}
			}
		})
	}
}

// runSeededChaos runs a full seeded scenario: generate a schedule, drive the
// timeline tick by tick injecting faults and fresh traffic, heal, wait for
// total recovery and decode, and return the supervisor's event log.
func runSeededChaos(t *testing.T, seed int64) ([]controller.FailoverEvent, []byte) {
	t.Helper()
	c, err := NewButterfly(seed)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sched := GenerateSchedule(seed, RelayNodes(), 3, 90*time.Second)
	crashes := 0
	for _, e := range sched {
		if e.Kind == KindCrash {
			crashes++
		}
	}

	var sent []byte
	initial, err := c.SendGenerations(2)
	if err != nil {
		t.Fatal(err)
	}
	sent = append(sent, initial...)

	horizon := sched[len(sched)-1].At + 60*time.Second
	var virtual time.Duration
	next := 0
	heals := make(map[time.Duration]string)
	for virtual < horizon {
		virtual += Tick
		c.RunTicks(1)
		for next < len(sched) && sched[next].At <= virtual {
			e := sched[next]
			next++
			switch e.Kind {
			case KindCrash:
				if err := c.CrashVNF(e.Node); err != nil {
					t.Fatalf("apply %v: %v", e, err)
				}
			case KindPartition:
				c.PartitionNode(e.Node)
				heals[virtual+e.Dur] = e.Node
			}
		}
		if n, ok := heals[virtual]; ok {
			c.HealNode(n)
			delete(heals, virtual)
		}
		// Keep traffic flowing through the chaos: one generation every 30
		// virtual seconds.
		if virtual%(30*time.Second) == 0 {
			g, err := c.SendGenerations(1)
			if err != nil {
				t.Fatal(err)
			}
			sent = append(sent, g...)
		}
	}
	c.Net.HealAll()
	if crashes > 0 && c.RunTicksUntilRecovered(crashes, 200) < 0 {
		t.Fatalf("only %d/%d failovers completed", len(c.Sup.Events()), crashes)
	}
	if err := c.WaitAllDecoded(decodeTimeout); err != nil {
		t.Fatal(err)
	}
	for _, sink := range sinkNodes {
		got, ok := c.SinkData(sink)
		if !ok || !bytes.Equal(got, sent) {
			t.Fatalf("sink %s stream corrupt after seeded chaos", sink)
		}
	}
	events := c.Sup.Events()
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("failover failed mid-schedule: %+v", ev)
		}
	}
	return events, sent
}

// TestSeededChaosReplay runs the same seeded chaos scenario twice and
// requires identical supervisor event logs — fault injection, detection,
// relaunch, and recovery all replay deterministically under the virtual
// clock.
func TestSeededChaosReplay(t *testing.T) {
	leakcheck.Check(t)
	ev1, sent1 := runSeededChaos(t, 5)
	ev2, sent2 := runSeededChaos(t, 5)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed, different failover logs:\n%+v\n%+v", ev1, ev2)
	}
	if !bytes.Equal(sent1, sent2) {
		t.Fatal("same seed, different payload streams")
	}
	if len(ev1) == 0 {
		t.Fatal("seed 5's schedule injected no crashes — pick a seed that does")
	}
}
