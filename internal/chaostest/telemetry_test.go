package chaostest

import (
	"testing"

	"ncfn/internal/leakcheck"
	"ncfn/internal/cloud"
	"ncfn/internal/controller"
	"ncfn/internal/telemetry"
)

// TestFlightRecorderMatchesFailoverLog is the determinism pin of the
// observability tier: the failover durations captured in the supervisor's
// flight recorder must equal the Supervisor's own FailoverEvent log
// tick-for-tick — same nodes, in the same order, with nanosecond-identical
// durations and recovery timestamps under the virtual clock.
func TestFlightRecorderMatchesFailoverLog(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.SendGenerations(2); err != nil {
		t.Fatal(err)
	}

	// Two sequential crashes, each fully recovered before the next.
	for i, node := range []string{"T", "C1"} {
		if err := c.CrashVNF(node); err != nil {
			t.Fatal(err)
		}
		if c.RunTicksUntilRecovered(i+1, 200) < 0 {
			t.Fatalf("supervisor never recovered %s", node)
		}
	}

	logEvents := c.Sup.Events()
	if len(logEvents) != 2 {
		t.Fatalf("failover log has %d events, want 2", len(logEvents))
	}

	rec := c.Reg.Recorder(controller.SupervisorFlightName, telemetry.DefaultRecorderCapacity)
	var completed []telemetry.Event
	for _, e := range rec.EventsOf(telemetry.EventFailover) {
		// Abandoned failovers are traced with a negative value; completed
		// recoveries carry the duration in nanoseconds.
		if e.Value >= 0 {
			completed = append(completed, e)
		}
	}
	if len(completed) != len(logEvents) {
		t.Fatalf("recorder has %d completed failovers, log has %d", len(completed), len(logEvents))
	}

	for i, ev := range logEvents {
		re := completed[i]
		if re.Node != string(ev.Node) {
			t.Fatalf("event %d: recorder node %q, log node %q", i, re.Node, ev.Node)
		}
		wantDur := ev.RecoveredAt.Sub(ev.DetectedAt).Nanoseconds()
		if re.Value != wantDur {
			t.Fatalf("event %d: recorder duration %d ns, log duration %d ns", i, re.Value, wantDur)
		}
		if re.Time != ev.RecoveredAt.UnixNano() {
			t.Fatalf("event %d: recorder stamp %d, log RecoveredAt %d", i, re.Time, ev.RecoveredAt.UnixNano())
		}
		if wantDur < cloud.DefaultLaunchDelay.Nanoseconds() {
			t.Fatalf("event %d: duration %d ns shorter than the launch latency — clock wiring broken", i, wantDur)
		}
	}

	// The snapshot view agrees: two completed failovers counted, both
	// durations observed by the histogram.
	snap := c.Reg.Snapshot()
	if got := snap.Counters[controller.MetricFailoversDone]; got != 2 {
		t.Fatalf("failovers-done counter = %d, want 2", got)
	}
	if got := snap.Histograms[controller.MetricFailoverNs].Count; got != 2 {
		t.Fatalf("failover histogram count = %d, want 2", got)
	}
}

// TestClusterTelemetrySeesEveryLayer pins the shared-registry architecture:
// one butterfly registry carries dataplane counters, cloud launch/crash
// accounting, and emunet fault traces after a crash-and-recover cycle.
func TestClusterTelemetrySeesEveryLayer(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewButterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.SendGenerations(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAllDecoded(decodeTimeout); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashVNF("T"); err != nil {
		t.Fatal(err)
	}
	c.PartitionNode("O1")
	c.HealNode("O1")
	if c.RunTicksUntilRecovered(1, 200) < 0 {
		t.Fatal("supervisor never recovered T")
	}

	snap := c.Reg.Snapshot()
	// Dataplane: relays moved packets through the shared registry.
	if snap.Counters["dataplane_rx_packets"] == 0 || snap.Counters["dataplane_tx_packets"] == 0 {
		t.Fatalf("dataplane counters empty: %v", snap.Counters)
	}
	// Cloud: the initial fleet plus the replacement launched, one crash.
	if got := snap.Counters[cloud.MetricLaunches]; got < uint64(len(RelayNodes())+1) {
		t.Fatalf("cloud launches = %d, want >= %d", got, len(RelayNodes())+1)
	}
	if snap.Counters[cloud.MetricCrashes] != 1 {
		t.Fatalf("cloud crashes = %d, want 1", snap.Counters[cloud.MetricCrashes])
	}
	// Emunet: traffic flowed and the partition round-trip left fault traces.
	if snap.Counters["emunet_tx_packets"] == 0 {
		t.Fatal("emunet tx counter empty")
	}
	if snap.Counters["emunet_fault_injections"] == 0 {
		t.Fatal("emunet fault counter empty")
	}
	// Cloud flight recorder saw the injected crash.
	crashRec := c.Reg.Recorder(cloud.CloudFlightName, telemetry.DefaultRecorderCapacity)
	if len(crashRec.EventsOf(telemetry.EventFault)) == 0 {
		t.Fatal("cloud flight recorder has no fault events")
	}
}
