// Package chaostest is the deterministic end-to-end chaos harness: it wires
// the full stack — emunet substrate, cloud simulator, controller failover
// supervisor, and the coding data plane — into the paper's butterfly
// topology, injects scripted faults (VM crashes, network partitions), and
// asserts the sessions still decode and the control plane recovers within
// the simulated relaunch latency (Sec. V-C5's 35 s).
//
// Every schedule is derived from a seed, all control-plane timing runs on a
// simclock.Virtual, and supervisor ticks are driven explicitly, so the same
// seed replays the same fault timeline and the same failover event log.
package chaostest

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind is a fault type in a chaos schedule.
type Kind int

// Fault kinds.
const (
	// KindCrash kills the node's VM (cloud crash + VNF process death); the
	// supervisor must detect it and fail over to a fresh instance.
	KindCrash Kind = iota + 1
	// KindPartition isolates the node's host at the network layer for Dur —
	// the VM stays up (the cloud API still reports Running), traffic is
	// blackholed, and the fault heals on its own.
	KindPartition
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindPartition:
		return "partition"
	default:
		return "unknown"
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the injection time, in virtual time since schedule start.
	At   time.Duration
	Kind Kind
	// Node is the logical node the fault targets.
	Node string
	// Dur is how long a partition lasts before healing (KindPartition only).
	Dur time.Duration
}

// String renders the event for logs and failure messages.
func (e Event) String() string {
	if e.Kind == KindPartition {
		return fmt.Sprintf("%v %s %s for %v", e.At, e.Kind, e.Node, e.Dur)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Node)
}

// GenerateSchedule derives a fault schedule from a seed: count faults against
// the given nodes, spaced gap apart (plus up to gap/2 of seeded jitter) so
// each fault's recovery completes before the next one hits. The same
// (seed, nodes, count, gap) always yields the identical schedule.
func GenerateSchedule(seed int64, nodes []string, count int, gap time.Duration) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		ev := Event{
			At:   time.Duration(i+1)*gap + time.Duration(rng.Int63n(int64(gap/2))),
			Node: nodes[rng.Intn(len(nodes))],
		}
		if rng.Float64() < 0.6 {
			ev.Kind = KindCrash
		} else {
			ev.Kind = KindPartition
			ev.Dur = 5*time.Second + time.Duration(rng.Int63n(int64(10*time.Second)))
		}
		events = append(events, ev)
	}
	return events
}
