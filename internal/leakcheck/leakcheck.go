// Package leakcheck verifies that a test leaves no goroutines behind — the
// chaos suite's guard against control-plane loops, daemon accept loops, or
// VNF shard workers surviving a scenario. It is dependency-free on purpose:
// controller and dataplane tests import it, and chaostest itself imports
// controller and dataplane, so the checker must sit below all of them.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredPrefixes match goroutine stacks that are part of the runtime or
// test harness rather than code under test.
var ignoredPrefixes = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner",
	"testing.runFuzzing",
	"testing.(*F).",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime/pprof",
	"signal.signal_recv",
	"sigterm.handler",
	"os/signal.loop",
	"os/signal.signal_recv",
	"runtime.ensureSigM",
	"interestingGoroutines",
	"leakcheck.",
}

// interestingGoroutines returns stacks of goroutines that are neither the
// caller's nor known harness background goroutines.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var gs []string
outer:
	for _, g := range strings.Split(string(buf), "\n\n") {
		sl := strings.SplitN(g, "\n", 2)
		if len(sl) != 2 {
			continue
		}
		stack := strings.TrimSpace(sl[1])
		if stack == "" {
			continue
		}
		for _, p := range ignoredPrefixes {
			if strings.Contains(stack, p) {
				continue outer
			}
		}
		gs = append(gs, g)
	}
	sort.Strings(gs)
	return gs
}

// Check registers a cleanup that fails the test if goroutines created during
// it are still running when it ends. Shutdown is asynchronous (closed
// connections unwind, shard workers drain), so the check retries for a grace
// period before declaring a leak. Call it first in the test body:
//
//	func TestX(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
func Check(t testing.TB) {
	before := make(map[string]bool)
	for _, g := range interestingGoroutines() {
		before[g] = true
	}
	t.Cleanup(func() {
		var leaked []string
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked = leaked[:0]
			for _, g := range interestingGoroutines() {
				if !before[g] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%v", g)
		}
	})
}

// Snapshot captures the current interesting goroutines for use with Diff —
// for callers that want an explicit region check instead of a t.Cleanup.
func Snapshot() map[string]bool {
	s := make(map[string]bool)
	for _, g := range interestingGoroutines() {
		s[g] = true
	}
	return s
}

// Diff reports goroutines running now that were not in the snapshot,
// retrying until the grace period expires.
func Diff(snap map[string]bool, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	for {
		var leaked []string
		for _, g := range interestingGoroutines() {
			if !snap[g] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d leaked goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
