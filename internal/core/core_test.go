package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
	"ncfn/internal/topology"
)

func butterflyService(t *testing.T, redundancy int) *Service {
	t.Helper()
	g, src, dsts := topology.Butterfly()
	svc, err := NewService(Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:      0.1,
		Params:     rlnc.Params{GenerationBlocks: 4, BlockSize: 256},
		Redundancy: redundancy,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	if err := svc.AddSession(optimize.Session{
		ID:        1,
		Source:    src,
		Receivers: dsts,
		MaxDelay:  150 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _, _ := topology.Butterfly()
	if _, err := NewService(Config{Graph: g, Params: rlnc.Params{GenerationBlocks: -1, BlockSize: 1}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestServiceDefaultParams(t *testing.T) {
	g, _, _ := topology.Butterfly()
	svc, err := NewService(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if svc.cfg.Params.BlockSize != rlnc.DefaultBlockSize {
		t.Fatal("default params not applied")
	}
}

func TestServiceLifecycleErrors(t *testing.T) {
	svc := butterflyService(t, 0)
	if err := svc.AddSession(optimize.Session{ID: 1}); err == nil {
		t.Fatal("duplicate session accepted")
	}
	if _, err := svc.Source(1); err == nil {
		t.Fatal("source before deploy")
	}
	if _, err := svc.Receiver(1, "O2"); err == nil {
		t.Fatal("receiver before deploy")
	}
	if _, err := svc.Send(1, []byte{1}, 0); err == nil {
		t.Fatal("send before deploy")
	}
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deploy(); err == nil {
		t.Fatal("double deploy accepted")
	}
	if err := svc.AddSession(optimize.Session{ID: 2}); err == nil {
		t.Fatal("session added after deploy")
	}
}

// TestServiceDrain drives the deployment-wide graceful drain: after real
// traffic, Drain must quiesce every VNF (observable through the drain-state
// gauge), gate AddSession, refuse a second Drain, and leave the service
// closable.
func TestServiceDrain(t *testing.T) {
	svc := butterflyService(t, 1)
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16*1024)
	rand.New(rand.NewSource(11)).Read(data)
	if _, err := svc.Send(1, data, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if svc.Draining() {
		t.Fatal("draining before Drain")
	}
	if err := svc.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !svc.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	for node, v := range svc.vnfs {
		if v.DrainState() != dataplane.DrainStateQuiesced {
			t.Fatalf("VNF %s drain state = %d, want quiesced", node, v.DrainState())
		}
	}
	if err := svc.Drain(time.Second); !errors.Is(err, ErrDraining) {
		t.Fatalf("second Drain = %v, want ErrDraining", err)
	}
	if err := svc.AddSession(optimize.Session{ID: 9}); !errors.Is(err, ErrDraining) {
		t.Fatalf("AddSession while draining = %v, want ErrDraining", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(time.Second); !errors.Is(err, ErrAlreadyClosed) {
		t.Fatalf("Drain after Close = %v, want ErrAlreadyClosed", err)
	}
}

// TestServiceDrainUndeployed pins the admission gate on a service that was
// never deployed: Drain succeeds immediately (nothing to flush) and both
// AddSession and Deploy are refused afterwards.
func TestServiceDrainUndeployed(t *testing.T) {
	svc := butterflyService(t, 0)
	if err := svc.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deploy(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Deploy while draining = %v, want ErrDraining", err)
	}
	if err := svc.AddSession(optimize.Session{ID: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("AddSession while draining = %v, want ErrDraining", err)
	}
}

func TestServiceDeployNoSessions(t *testing.T) {
	g, _, _ := topology.Butterfly()
	svc, _ := NewService(Config{Graph: g})
	if err := svc.Deploy(); err == nil {
		t.Fatal("deploy with no sessions accepted")
	}
}

func TestServiceButterflyDelivery(t *testing.T) {
	svc := butterflyService(t, 1)
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	plan := svc.Plan()
	if plan == nil || plan.Rates[1] < 69 {
		t.Fatalf("plan rate = %v", plan.Rates)
	}
	data := make([]byte, 40*1024)
	rand.New(rand.NewSource(9)).Read(data)
	stats, err := svc.Send(1, data, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generations == 0 {
		t.Fatal("nothing sent")
	}
	for _, dst := range []topology.NodeID{"O2", "C2"} {
		recv, err := svc.Receiver(1, dst)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := recv.Data(stats.Generations)
		if !ok {
			t.Fatalf("%s missing generations", dst)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("%s data mismatch", dst)
		}
	}
	if len(svc.Receivers(1)) != 2 {
		t.Fatal("Receivers() wrong")
	}
}

// TestServiceSessionStoreKnob pins the Config plumbing for the bounded
// session store: a deployment with SessionStore set still delivers
// correctly, its VNFs track generation state in their stores, and the
// shared registry exposes the accounting gauges.
func TestServiceSessionStoreKnob(t *testing.T) {
	g, src, dsts := topology.Butterfly()
	reg := telemetry.NewRegistry()
	svc, err := NewService(Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:      0.1,
		Params:     rlnc.Params{GenerationBlocks: 4, BlockSize: 256},
		Redundancy: 1,
		Telemetry:  reg,
		SessionStore: dataplane.SessionStoreConfig{
			MaxGenerations: 256,
			TTLNanos:       (time.Minute).Nanoseconds(),
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.AddSession(optimize.Session{
		ID: 1, Source: src, Receivers: dsts, MaxDelay: 150 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 20*1024)
	rand.New(rand.NewSource(3)).Read(data)
	stats, err := svc.Send(1, data, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := svc.Receiver(1, "O2")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := recv.Data(stats.Generations)
	if !ok || !bytes.Equal(got[:len(data)], data) {
		t.Fatal("delivery broken with session store enabled")
	}

	// Trailing redundancy packets may still be draining through relay
	// shards; wait until the store accounting is quiescent before comparing
	// it against the shared gauge.
	var tracked int
	var bytesHeld int64
	deadline := time.Now().Add(3 * time.Second)
	for {
		tracked, bytesHeld = 0, 0
		for _, vnf := range svc.vnfs {
			n, b := vnf.SessionStoreStats()
			tracked += n
			bytesHeld += b
		}
		if reg.Gauge(dataplane.MetricSessionBytes, 1).Value() == bytesHeld || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tracked == 0 && bytesHeld == 0 {
		t.Fatal("no VNF tracked any session state — store option not plumbed through")
	}
	if got := reg.Gauge(dataplane.MetricSessionBytes, 1).Value(); got != bytesHeld {
		t.Fatalf("shared registry gauge = %d, VNF stores account %d", got, bytesHeld)
	}
}

func TestServiceSendAfterClose(t *testing.T) {
	svc := butterflyService(t, 0)
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestServiceCloseBeforeDeploy(t *testing.T) {
	svc := butterflyService(t, 0)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deploy(); err == nil {
		t.Fatal("deploy after close accepted")
	}
}

func TestServiceUnknownReceiver(t *testing.T) {
	svc := butterflyService(t, 0)
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Receiver(1, "nope"); err == nil {
		t.Fatal("unknown receiver returned")
	}
}

func TestSharedReceiverNodeAcrossSessions(t *testing.T) {
	// Two sessions terminate at the SAME receiver node; the service must
	// share one receiving endpoint rather than racing two VNFs over one
	// socket (regression: packets were being stolen across sessions).
	g := topology.New()
	g.AddNode("s1", topology.Source)
	g.AddNode("s2", topology.Source)
	g.AddNode("dc", topology.DataCenter)
	g.AddNode("sink", topology.Destination)
	for _, l := range []topology.Link{
		{From: "s1", To: "dc", CapacityMbps: 100, Delay: time.Millisecond},
		{From: "s2", To: "dc", CapacityMbps: 100, Delay: time.Millisecond},
		{From: "dc", To: "sink", CapacityMbps: 100, Delay: time.Millisecond},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := NewService(Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "dc", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:  1,
		Params: rlnc.Params{GenerationBlocks: 4, BlockSize: 128},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i, src := range []topology.NodeID{"s1", "s2"} {
		if err := svc.AddSession(optimize.Session{
			ID:        ncproto.SessionID(i + 1),
			Source:    src,
			Receivers: []topology.NodeID{"sink"},
			MaxDelay:  100 * time.Millisecond,
			RateCap:   30, // both sessions must get a share of the 100 Mbps sink link
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		id := ncproto.SessionID(i)
		data := make([]byte, 8*1024)
		rand.New(rand.NewSource(int64(i))).Read(data)
		stats, err := svc.Send(id, data, 200*time.Millisecond)
		if err != nil {
			t.Fatalf("session %d: %v", id, err)
		}
		if stats.Rounds > 1 {
			t.Fatalf("session %d needed %d resend rounds on a perfect network (packet stealing?)", id, stats.Rounds)
		}
		recv, err := svc.Receiver(id, "sink")
		if err != nil {
			t.Fatal(err)
		}
		got, ok := recv.Data(stats.Generations)
		if !ok || !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("session %d data mismatch at shared receiver", id)
		}
	}
}

// TestServiceMixedFieldSessions deploys one GF(2) and one GF(2^8) session
// side by side: the same service (and the shared dc VNF) must run both
// codecs concurrently and deliver both payloads intact. The field is
// per-session codec state threaded through Config.SessionFields.
func TestServiceMixedFieldSessions(t *testing.T) {
	g := topology.New()
	g.AddNode("s1", topology.Source)
	g.AddNode("s2", topology.Source)
	g.AddNode("dc", topology.DataCenter)
	g.AddNode("sink", topology.Destination)
	for _, l := range []topology.Link{
		{From: "s1", To: "dc", CapacityMbps: 100, Delay: time.Millisecond},
		{From: "s2", To: "dc", CapacityMbps: 100, Delay: time.Millisecond},
		{From: "dc", To: "sink", CapacityMbps: 100, Delay: time.Millisecond},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := NewService(Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "dc", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:         1,
		Params:        rlnc.Params{GenerationBlocks: 4, BlockSize: 128, Field: gf.GF256},
		SessionFields: map[ncproto.SessionID]gf.Field{1: gf.GF2},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.paramsFor(1).Field; got != gf.GF2 {
		t.Fatalf("session 1 field = %v, want GF2", got)
	}
	if got := svc.paramsFor(2).Field; got != gf.GF256 {
		t.Fatalf("session 2 field = %v, want GF256", got)
	}
	for i, src := range []topology.NodeID{"s1", "s2"} {
		if err := svc.AddSession(optimize.Session{
			ID:        ncproto.SessionID(i + 1),
			Source:    src,
			Receivers: []topology.NodeID{"sink"},
			MaxDelay:  100 * time.Millisecond,
			RateCap:   30,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		id := ncproto.SessionID(i)
		data := make([]byte, 8*1024)
		rand.New(rand.NewSource(int64(10 + i))).Read(data)
		stats, err := svc.Send(id, data, 200*time.Millisecond)
		if err != nil {
			t.Fatalf("session %d: %v", id, err)
		}
		recv, err := svc.Receiver(id, "sink")
		if err != nil {
			t.Fatal(err)
		}
		got, ok := recv.Data(stats.Generations)
		if !ok || !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("session %d (field %v) data mismatch", id, svc.paramsFor(id).Field)
		}
	}
}

// TestServiceSessionFieldValidation rejects unsupported field overrides up
// front, before Deploy can bake them into VNF configs.
func TestServiceSessionFieldValidation(t *testing.T) {
	g, _, _ := topology.Butterfly()
	_, err := NewService(Config{
		Graph:         g,
		Params:        rlnc.Params{GenerationBlocks: 4, BlockSize: 64},
		SessionFields: map[ncproto.SessionID]gf.Field{1: gf.Field(7)},
	})
	if err == nil {
		t.Fatal("unsupported session field accepted")
	}
}

// TestServiceTelemetrySharedRegistry pins the deployment-wide registry: one
// snapshot after a transfer must carry both dataplane counters (from every
// VNF and endpoint) and emunet counters (from the owned network), and a
// caller-supplied registry must be the one the service reports into.
func TestServiceTelemetrySharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	g, src, dsts := topology.Butterfly()
	svc, err := NewService(Config{
		Graph: g,
		DataCenters: []optimize.DataCenter{
			{ID: "O1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "C1", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "T", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
			{ID: "V2", BinMbps: 1000, BoutMbps: 1000, CodeMbps: 500},
		},
		Alpha:     0.1,
		Params:    rlnc.Params{GenerationBlocks: 4, BlockSize: 256},
		Telemetry: reg,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Telemetry() != reg {
		t.Fatal("Telemetry() must return the supplied registry")
	}
	if err := svc.AddSession(optimize.Session{ID: 1, Source: src, Receivers: dsts, MaxDelay: 150 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Send(1, make([]byte, 16*1024), 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters[dataplane.MetricRxPackets] == 0 || snap.Counters[dataplane.MetricTxPackets] == 0 {
		t.Fatalf("dataplane counters empty: %v", snap.Counters)
	}
	if snap.Counters[dataplane.MetricGenerationsDone] == 0 {
		t.Fatal("no generations counted at the receivers")
	}
	if snap.Counters[emunet.MetricNetTxPackets] == 0 {
		t.Fatal("owned network not instrumented")
	}
	// The legacy Stats() report and the snapshot read the same storage:
	// under a shared registry every VNF resolves the same named counters,
	// so each relay reports the deployment-wide totals.
	for _, r := range svc.Stats().Relays {
		if r.Stats.PacketsIn != snap.Counters[dataplane.MetricRxPackets] {
			t.Fatalf("relay %s PacketsIn %d != snapshot rx %d (paths drifted)",
				r.Node, r.Stats.PacketsIn, snap.Counters[dataplane.MetricRxPackets])
		}
	}
}

func TestServiceStatsReport(t *testing.T) {
	svc := butterflyService(t, 1)
	if err := svc.Deploy(); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16*1024)
	stats, err := svc.Send(1, data, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rep := svc.Stats()
	if len(rep.Relays) != 4 {
		t.Fatalf("relays = %d, want 4", len(rep.Relays))
	}
	for _, r := range rep.Relays {
		if r.Stats.PacketsIn == 0 {
			t.Fatalf("relay %s saw no packets", r.Node)
		}
	}
	sr := rep.Sessions[1]
	if sr.Receivers != 2 || sr.Generations != stats.Generations {
		t.Fatalf("session report = %+v (sent %d generations)", sr, stats.Generations)
	}
	if sr.RateMbps < 69 {
		t.Fatalf("rate = %v", sr.RateMbps)
	}
}
