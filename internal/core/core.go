// Package core is the top-level orchestration API — the paper's primary
// contribution assembled into one deployable service. A Service takes an
// overlay graph of sources, candidate data centers, and receivers, solves
// the coding-function deployment and routing program (Sec. IV), deploys
// live coding VNFs onto a packet network (the in-process emulated network,
// or real UDP sockets), wires up sources and receivers, and moves data with
// randomized network coding.
//
// The examples/ directory shows the intended usage: build a Service,
// register sessions, Deploy, then Send.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ncfn/internal/controller"
	"ncfn/internal/dataplane"
	"ncfn/internal/emunet"
	"ncfn/internal/gf"
	"ncfn/internal/ncproto"
	"ncfn/internal/optimize"
	"ncfn/internal/rlnc"
	"ncfn/internal/telemetry"
	"ncfn/internal/topology"
	"ncfn/internal/transfer"
)

// Errors.
var (
	ErrNotDeployed   = errors.New("core: service not deployed")
	ErrAlreadyClosed = errors.New("core: service closed")
	ErrDraining      = errors.New("core: service draining")
)

// Config describes a Service deployment.
type Config struct {
	// Graph is the overlay: sources, data centers, receivers, and links
	// with capacity (Mbps) and delay. Links with zero capacity are
	// treated as unconstrained.
	Graph *topology.Graph
	// DataCenters lists candidate VNF sites and their per-VNF resources.
	DataCenters []optimize.DataCenter
	// Alpha is the throughput/cost tradeoff factor of program (2).
	Alpha float64
	// Params are the coding parameters (defaults to the paper's 4x1460).
	Params rlnc.Params
	// SessionFields overrides the coefficient field per session: a session
	// listed here codes over the given field; absent sessions use
	// Params.Field. One deployment can thereby carry GF(2) and GF(2^8)
	// sessions side by side on the same VNFs (the field is per-session
	// codec state, not a VNF property).
	SessionFields map[ncproto.SessionID]gf.Field
	// Redundancy is extra coded packets per generation (NC0/NC1/NC2).
	Redundancy int
	// MaxPathHops bounds feasible paths (default 4: up to 3 relays, which
	// covers the butterfly's long branch).
	MaxPathHops int
	// BufferGenerations overrides each VNF's generation buffer capacity
	// (Fig. 5's sweep parameter); zero selects the 1024 default.
	BufferGenerations int
	// ForceForwarding turns every relay into a plain forwarder — the
	// routing-only ("Non-NC") baseline of Fig. 7, which moves packets
	// through the same relays but never mixes them.
	ForceForwarding bool
	// CodingCostBytesPerSec models VNF coding CPU throughput (see
	// dataplane.WithCodingCost); zero disables the model.
	CodingCostBytesPerSec float64
	// SessionStore bounds each VNF's per-session coding state
	// (dataplane.WithSessionStore): LRU/TTL/byte-cap eviction with memory
	// accounting, for deployments carrying many concurrent sessions. The
	// zero value keeps the unbounded historical behavior.
	SessionStore dataplane.SessionStoreConfig
	// Network optionally supplies an existing emulated network whose host
	// names match the graph's node IDs. When nil, Deploy builds one from
	// the graph (links inherit capacity and delay).
	Network *emunet.Network
	// Telemetry optionally shares a registry across the deployment: every
	// VNF, receiver endpoint, and (when owned) the network mirror their
	// counters into it. Nil creates a private registry, readable via
	// Service.Telemetry.
	Telemetry *telemetry.Registry
	// Seed fixes coding randomness.
	Seed int64
}

// Service orchestrates sessions over deployed coding functions.
type Service struct {
	cfg Config

	reg *telemetry.Registry

	mu        sync.Mutex
	draining  bool
	sessions  []optimize.Session
	plan      *optimize.Plan
	net       *emunet.Network
	ownsNet   bool
	vnfs      map[topology.NodeID]*dataplane.VNF
	sources   map[ncproto.SessionID]*dataplane.Source
	endpoints map[topology.NodeID]*dataplane.MultiReceiver
	receivers map[ncproto.SessionID]map[topology.NodeID]*dataplane.Receiver
	closed    bool
}

// NewService builds an (undeployed) service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Graph == nil {
		return nil, errors.New("core: nil graph")
	}
	if cfg.Params.GenerationBlocks == 0 && cfg.Params.BlockSize == 0 {
		cfg.Params = rlnc.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for id, f := range cfg.SessionFields {
		p := cfg.Params
		p.Field = f
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: session %d field override: %w", id, err)
		}
	}
	if cfg.MaxPathHops <= 0 {
		cfg.MaxPathHops = 4
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Service{
		cfg:       cfg,
		reg:       reg,
		vnfs:      make(map[topology.NodeID]*dataplane.VNF),
		sources:   make(map[ncproto.SessionID]*dataplane.Source),
		endpoints: make(map[topology.NodeID]*dataplane.MultiReceiver),
		receivers: make(map[ncproto.SessionID]map[topology.NodeID]*dataplane.Receiver),
	}, nil
}

// AddSession registers a session before deployment.
func (s *Service) AddSession(sess optimize.Session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.plan != nil {
		return errors.New("core: cannot add sessions after Deploy")
	}
	for _, have := range s.sessions {
		if have.ID == sess.ID {
			return fmt.Errorf("core: duplicate session %d", sess.ID)
		}
	}
	s.sessions = append(s.sessions, sess)
	return nil
}

// paramsFor returns the coding parameters for one session, applying any
// per-session field override from Config.SessionFields.
func (s *Service) paramsFor(id ncproto.SessionID) rlnc.Params {
	p := s.cfg.Params
	if f, ok := s.cfg.SessionFields[id]; ok {
		p.Field = f
	}
	return p
}

// Plan returns the solved deployment plan (after Deploy).
func (s *Service) Plan() *optimize.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Deploy solves program (2) for the registered sessions and instantiates
// the data plane: one coding VNF per data center the plan uses, configured
// tables with conceptual-flow packet quotas, a Source per session, and a
// Receiver per destination.
func (s *Service) Deploy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrAlreadyClosed
	}
	if s.draining {
		return ErrDraining
	}
	if s.plan != nil {
		return errors.New("core: already deployed")
	}
	if len(s.sessions) == 0 {
		return errors.New("core: no sessions registered")
	}
	ocfg := optimize.Config{
		Graph:       s.cfg.Graph,
		DataCenters: s.cfg.DataCenters,
		Alpha:       s.cfg.Alpha,
		MaxPathHops: s.cfg.MaxPathHops,
	}
	plan, err := optimize.Solve(ocfg, s.sessions)
	if err != nil {
		return fmt.Errorf("core: solve deployment: %w", err)
	}
	plans, err := controller.BuildNodePlans(s.cfg.Params, s.cfg.Redundancy, s.sessions, plan, func(dc topology.NodeID) []string {
		// Live mode runs one VNF instance per data center; generation
		// dispatch across multiple instances is exercised by the
		// dataplane unit tests.
		return []string{string(dc)}
	})
	if err != nil {
		return fmt.Errorf("core: build node plans: %w", err)
	}

	if s.cfg.Network != nil {
		s.net = s.cfg.Network
	} else {
		s.net = buildNetwork(s.cfg.Graph, s.reg)
		s.ownsNet = true
	}

	// Reverse paths for generation ACKs: receiver → source.
	for _, sess := range s.sessions {
		for _, r := range sess.Receivers {
			s.net.SetLink(string(r), string(sess.Source), emunet.LinkConfig{})
		}
	}

	// Instantiate VNFs at data centers that appear in the node plans.
	dcSet := make(map[topology.NodeID]bool, len(s.cfg.DataCenters))
	for _, dc := range s.cfg.DataCenters {
		dcSet[dc.ID] = true
	}
	for node, np := range plans {
		if !dcSet[node] {
			continue
		}
		opts := []dataplane.VNFOption{
			dataplane.WithSeed(s.cfg.Seed + int64(len(s.vnfs)) + 100),
			dataplane.WithTelemetry(s.reg),
		}
		if s.cfg.BufferGenerations > 0 {
			opts = append(opts, dataplane.WithBufferCapacity(s.cfg.BufferGenerations))
		}
		if s.cfg.CodingCostBytesPerSec > 0 {
			opts = append(opts, dataplane.WithCodingCost(s.cfg.CodingCostBytesPerSec))
		}
		if s.cfg.SessionStore != (dataplane.SessionStoreConfig{}) {
			opts = append(opts, dataplane.WithSessionStore(s.cfg.SessionStore))
		}
		vnf := dataplane.NewVNF(s.net.Host(string(node)), opts...)
		for _, sc := range np.Sessions {
			if s.cfg.ForceForwarding && sc.Role == dataplane.RoleRecoder {
				sc.Role = dataplane.RoleForwarder
			}
			sc.Params = s.paramsFor(sc.ID)
			if err := vnf.Configure(sc); err != nil {
				vnf.Close()
				return fmt.Errorf("core: configure VNF at %s: %w", node, err)
			}
		}
		for sid, hops := range np.Table {
			vnf.Table().Set(sid, hops)
		}
		vnf.Start()
		s.vnfs[node] = vnf
	}

	// Sources and receivers.
	for _, sess := range s.sessions {
		rate := plan.Rates[sess.ID]
		src, err := dataplane.NewSource(s.net.Host(string(sess.Source)), dataplane.SourceConfig{
			Session:    sess.ID,
			Params:     s.paramsFor(sess.ID),
			RateMbps:   rate,
			Redundancy: s.cfg.Redundancy,
			Systematic: true,
			Seed:       s.cfg.Seed + int64(sess.ID),
		})
		if err != nil {
			return fmt.Errorf("core: source for session %d: %w", sess.ID, err)
		}
		src.SetHops(controller.SourceHops(plans, sess.Source, sess.ID))
		s.sources[sess.ID] = src

		// One receiving endpoint per node, shared by every session that
		// terminates there (a node may subscribe to several sessions).
		s.receivers[sess.ID] = make(map[topology.NodeID]*dataplane.Receiver, len(sess.Receivers))
		for _, r := range sess.Receivers {
			ep, ok := s.endpoints[r]
			if !ok {
				ropts := []dataplane.VNFOption{dataplane.WithTelemetry(s.reg)}
				if s.cfg.CodingCostBytesPerSec > 0 {
					ropts = append(ropts, dataplane.WithCodingCost(s.cfg.CodingCostBytesPerSec))
				}
				ep = dataplane.NewMultiReceiver(s.net.Host(string(r)), nil, ropts...)
				s.endpoints[r] = ep
			}
			if err := ep.AddSession(sess.ID, s.paramsFor(sess.ID), string(sess.Source)); err != nil {
				return fmt.Errorf("core: receiver %s for session %d: %w", r, sess.ID, err)
			}
			view, err := ep.View(sess.ID)
			if err != nil {
				return fmt.Errorf("core: receiver %s for session %d: %w", r, sess.ID, err)
			}
			s.receivers[sess.ID][r] = view
		}
	}
	s.plan = plan
	return nil
}

// buildNetwork materializes the overlay graph as an emulated network.
func buildNetwork(g *topology.Graph, reg *telemetry.Registry) *emunet.Network {
	n := emunet.NewNetwork(emunet.WithTelemetry(reg))
	for _, node := range g.Nodes() {
		n.Host(string(node.ID))
	}
	for _, l := range g.Links() {
		cfg := emunet.LinkConfig{Delay: l.Delay, QueuePackets: 512}
		if l.CapacityMbps > 0 {
			cfg.RateBps = l.CapacityMbps * 1e6
		}
		n.SetLink(string(l.From), string(l.To), cfg)
	}
	return n
}

// Telemetry returns the deployment-wide registry: every VNF, receiver
// endpoint, and owned network reports into it, so one Snapshot covers the
// whole data plane.
func (s *Service) Telemetry() *telemetry.Registry {
	return s.reg
}

// Network exposes the underlying packet network (for tests that add
// impairments after deployment).
func (s *Service) Network() *emunet.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net
}

// Source returns the sender handle of a session.
func (s *Service) Source(id ncproto.SessionID) (*dataplane.Source, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.sources[id]
	if !ok {
		return nil, fmt.Errorf("%w: session %d", ErrNotDeployed, id)
	}
	return src, nil
}

// Receiver returns the receiver handle of a session at a node.
func (s *Service) Receiver(id ncproto.SessionID, node topology.NodeID) (*dataplane.Receiver, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recv, ok := s.receivers[id][node]
	if !ok {
		return nil, fmt.Errorf("%w: session %d receiver %s", ErrNotDeployed, id, node)
	}
	return recv, nil
}

// Receivers returns all receiver handles of a session.
func (s *Service) Receivers(id ncproto.SessionID) []*dataplane.Receiver {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*dataplane.Receiver
	for _, r := range s.receivers[id] {
		out = append(out, r)
	}
	return out
}

// Send reliably multicasts data on a session, blocking until every
// receiver has acknowledged every generation (or reliability gives up).
func (s *Service) Send(id ncproto.SessionID, data []byte, timeout time.Duration) (transfer.MulticastStats, error) {
	s.mu.Lock()
	src, ok := s.sources[id]
	var receiverAddrs []string
	var sess *optimize.Session
	for i := range s.sessions {
		if s.sessions[i].ID == id {
			sess = &s.sessions[i]
		}
	}
	if sess != nil {
		for _, r := range sess.Receivers {
			receiverAddrs = append(receiverAddrs, string(r))
		}
	}
	s.mu.Unlock()
	if !ok || sess == nil {
		return transfer.MulticastStats{}, fmt.Errorf("%w: session %d", ErrNotDeployed, id)
	}
	cfg := transfer.MulticastConfig{Receivers: receiverAddrs}
	if timeout > 0 {
		cfg.AckTimeout = timeout
	}
	return transfer.Multicast(src, data, cfg)
}

// NodeStats pairs a data-center node with its VNF's counters. Because the
// whole deployment shares one telemetry registry, every relay resolves the
// same named instruments: each row reports deployment-wide totals, and
// per-node attribution comes from the flight recorder's node labels in
// Telemetry().Snapshot().Events.
type NodeStats struct {
	Node  topology.NodeID
	Stats dataplane.Stats
}

// Report summarizes the deployment's data-plane activity: packet counters
// plus per-session delivered generations, for operational visibility after
// (or during) a run.
type Report struct {
	Relays   []NodeStats
	Sessions map[ncproto.SessionID]SessionReport
}

// SessionReport aggregates one session's receiver-side progress.
type SessionReport struct {
	RateMbps    float64
	Receivers   int
	Generations int // minimum across receivers (the multicast's progress)
	Bytes       int // minimum across receivers
}

// Stats returns the deployment report.
func (s *Service) Stats() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := Report{Sessions: make(map[ncproto.SessionID]SessionReport, len(s.sessions))}
	for node, v := range s.vnfs {
		rep.Relays = append(rep.Relays, NodeStats{Node: node, Stats: v.Stats()})
	}
	sort.Slice(rep.Relays, func(i, j int) bool { return rep.Relays[i].Node < rep.Relays[j].Node })
	for _, sess := range s.sessions {
		sr := SessionReport{Receivers: len(s.receivers[sess.ID])}
		if s.plan != nil {
			sr.RateMbps = s.plan.Rates[sess.ID]
		}
		first := true
		for _, r := range s.receivers[sess.ID] {
			g, b := r.Generations(), r.Bytes()
			if first || g < sr.Generations {
				sr.Generations = g
			}
			if first || b < sr.Bytes {
				sr.Bytes = b
			}
			first = false
		}
		rep.Sessions[sess.ID] = sr
	}
	return rep
}

// Drain moves the whole deployment into the draining state: AddSession and
// Deploy refuse new work, and every deployed VNF stops admitting new coding
// state while its in-flight generations keep flushing. Drain blocks until
// all VNFs quiesce (empty shard queues, flushed tx rings) or the shared
// timeout expires, returning an error naming the nodes still busy. The
// service stays readable (Stats, Receivers) and closable afterwards; on an
// undeployed service Drain just gates admission.
func (s *Service) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrAlreadyClosed
	}
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.draining = true
	nodes := make([]topology.NodeID, 0, len(s.vnfs))
	vnfs := make(map[topology.NodeID]*dataplane.VNF, len(s.vnfs))
	for node, v := range s.vnfs {
		nodes = append(nodes, node)
		vnfs[node] = v
	}
	s.mu.Unlock()

	// Fan the drain out first so every relay refuses new coding state at
	// once, then wait each out against the shared deadline.
	for _, v := range vnfs {
		v.Drain()
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	deadline := time.Now().Add(timeout)
	var stuck []topology.NodeID
	for _, node := range nodes {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if !vnfs[node].WaitQuiesced(remaining) {
			stuck = append(stuck, node)
		}
	}
	if len(stuck) > 0 {
		return fmt.Errorf("core: drain timeout after %v: %v not quiesced", timeout, stuck)
	}
	return nil
}

// Draining reports whether Drain has been called on this service.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close tears the deployment down: sources, receivers, VNFs, and (when
// owned) the network.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, src := range s.sources {
		src.Close()
	}
	for _, ep := range s.endpoints {
		ep.Close()
	}
	for _, v := range s.vnfs {
		v.Close()
	}
	if s.ownsNet && s.net != nil {
		return s.net.Close()
	}
	return nil
}
