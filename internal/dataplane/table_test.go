package dataplane

import (
	"path/filepath"
	"testing"

	"ncfn/internal/ncproto"
)

func TestHopGroupPickSingle(t *testing.T) {
	h := HopGroup{Addrs: []string{"only"}}
	if h.Pick(1, 2) != "only" {
		t.Fatal("single-addr pick wrong")
	}
}

func TestHopGroupPickEmpty(t *testing.T) {
	if (HopGroup{}).Pick(1, 2) != "" {
		t.Fatal("empty group should pick nothing")
	}
}

func TestHopGroupPickConsistentPerGeneration(t *testing.T) {
	h := HopGroup{Addrs: []string{"a", "b", "c"}}
	for g := 0; g < 100; g++ {
		first := h.Pick(7, ncproto.GenerationID(g))
		for i := 0; i < 5; i++ {
			if h.Pick(7, ncproto.GenerationID(g)) != first {
				t.Fatal("Pick not deterministic for same (session, generation)")
			}
		}
	}
}

func TestHopGroupPickSpreads(t *testing.T) {
	h := HopGroup{Addrs: []string{"a", "b", "c"}}
	seen := map[string]int{}
	for g := 0; g < 300; g++ {
		seen[h.Pick(3, ncproto.GenerationID(g))]++
	}
	for _, addr := range h.Addrs {
		if seen[addr] < 50 {
			t.Fatalf("instance %s underused: %v", addr, seen)
		}
	}
}

func TestHopGroupQuota(t *testing.T) {
	if (HopGroup{PerGen: 3}).quota(6) != 3 {
		t.Fatal("explicit quota ignored")
	}
	if (HopGroup{}).quota(6) != 6 {
		t.Fatal("default quota wrong")
	}
}

func TestForwardingTableSetGet(t *testing.T) {
	ft := NewForwardingTable()
	ft.Set(1, []HopGroup{{Addrs: []string{"x"}}, {Addrs: []string{"y", "z"}}})
	hops := ft.NextHops(1, 5)
	if len(hops) != 2 || hops[0] != "x" {
		t.Fatalf("NextHops = %v", hops)
	}
	if ft.Len() != 1 {
		t.Fatal("Len wrong")
	}
	if got := ft.Sessions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Sessions = %v", got)
	}
}

func TestForwardingTableUnknownSession(t *testing.T) {
	ft := NewForwardingTable()
	if hops := ft.NextHops(9, 0); hops != nil {
		t.Fatalf("unknown session hops = %v", hops)
	}
}

func TestForwardingTableDelete(t *testing.T) {
	ft := NewForwardingTable()
	ft.Set(1, []HopGroup{{Addrs: []string{"x"}}})
	ft.Delete(1)
	if ft.Len() != 0 {
		t.Fatal("Delete failed")
	}
}

func TestForwardingTableSetCopies(t *testing.T) {
	ft := NewForwardingTable()
	hops := []HopGroup{{Addrs: []string{"x"}}}
	ft.Set(1, hops)
	hops[0].Addrs[0] = "mutated"
	if ft.NextHops(1, 0)[0] != "x" {
		t.Fatal("Set did not copy")
	}
}

func TestForwardingTableGroupsCopies(t *testing.T) {
	ft := NewForwardingTable()
	ft.Set(1, []HopGroup{{Addrs: []string{"x"}, PerGen: 2}})
	g := ft.Groups(1)
	if len(g) != 1 || g[0].PerGen != 2 {
		t.Fatalf("Groups = %+v", g)
	}
	g[0].Addrs[0] = "mutated"
	if ft.NextHops(1, 0)[0] != "x" {
		t.Fatal("Groups did not copy")
	}
}

func TestForwardingTableSnapshotReplaceAll(t *testing.T) {
	ft := NewForwardingTable()
	ft.Set(1, []HopGroup{{Addrs: []string{"x"}, PerGen: 3}})
	snap := ft.Snapshot()
	other := NewForwardingTable()
	other.ReplaceAll(snap)
	if other.Len() != 1 || other.Groups(1)[0].PerGen != 3 {
		t.Fatal("ReplaceAll lost data")
	}
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	ft := NewForwardingTable()
	ft.Set(1, []HopGroup{{Addrs: []string{"a", "b"}, PerGen: 2}, {Addrs: []string{"c"}}})
	ft.Set(12, []HopGroup{{Addrs: []string{"dc-oregon/vnf0"}}})
	path := filepath.Join(t.TempDir(), "fwd.tab")
	if err := ft.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d sessions", got.Len())
	}
	g1 := got.Groups(1)
	if len(g1) != 2 || g1[0].PerGen != 2 || len(g1[0].Addrs) != 2 || g1[0].Addrs[1] != "b" {
		t.Fatalf("session 1 groups = %+v", g1)
	}
	if got.Groups(12)[0].Addrs[0] != "dc-oregon/vnf0" {
		t.Fatal("session 12 address lost")
	}
}

func TestLoadTableMissingFile(t *testing.T) {
	if _, err := LoadTable(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadTableBadLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.tab")
	if err := writeFile(path, "this is not a table\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadTableSkipsCommentsAndBlank(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.tab")
	if err := writeFile(path, "# comment\n\nsession 4: a\n"); err != nil {
		t.Fatal(err)
	}
	ft, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 1 || ft.NextHops(4, 0)[0] != "a" {
		t.Fatal("comment handling wrong")
	}
}

func TestLoadTableBadQuota(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.tab")
	if err := writeFile(path, "session 4: a@x\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(path); err == nil {
		t.Fatal("bad quota accepted")
	}
}
