package dataplane

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

// nullConn is a PacketConn whose Send discards packets without copying, so
// allocation measurements see only the sender's own work.
type nullConn struct {
	done chan struct{}
}

func newNullConn() *nullConn { return &nullConn{done: make(chan struct{})} }

func (c *nullConn) Send(string, []byte) error { return nil }

func (c *nullConn) Recv() ([]byte, string, error) {
	<-c.done
	return nil, "", emunet.ErrClosed
}

func (c *nullConn) LocalAddr() string { return "null" }

func (c *nullConn) Close() error {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return nil
}

// TestSourceEmissionAllocsConstant is the send-side alloc regression test:
// with CodedInto and the reusable wire buffer, per-generation allocations
// must not scale with the number of packets emitted (only the
// per-generation encoder allocates).
func TestSourceEmissionAllocsConstant(t *testing.T) {
	measure := func(redundancy int) float64 {
		src, err := NewSource(newNullConn(), SourceConfig{
			Session: 1, Params: smallParams(), Seed: 3, Redundancy: redundancy,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		src.SetHops([]HopGroup{{Addrs: []string{"sink"}}})
		data := randomBytes(4, smallParams().GenerationBytes())
		if _, err := src.SendGeneration(data, false); err != nil { // size the scratch
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := src.SendGeneration(data, false); err != nil {
				t.Fatal(err)
			}
		})
	}
	lean := measure(0)   // 4 packets per generation
	heavy := measure(16) // 20 packets per generation
	if heavy > lean+1 {
		t.Fatalf("emission allocations scale with packet count: %.1f allocs at redundancy 16 vs %.1f at 0", heavy, lean)
	}
}

// TestBatchedDecoderPipeline drives several sessions through a started
// (worker-sharded) decoder VNF at full rate, so shard queues run deep and
// the run-drain + AddBatch path is exercised, and verifies every generation
// decodes to the source bytes. Run under -race this is the batched data
// path's race coverage.
func TestBatchedDecoderPipeline(t *testing.T) {
	const (
		sessions    = 4
		generations = 24
	)
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()

	dec := NewVNF(n.Host("dec"), WithSeed(9), WithWorkers(4))
	for s := 1; s <= sessions; s++ {
		if err := dec.Configure(SessionConfig{ID: ncproto.SessionID(s), Params: params, Role: RoleDecoder}); err != nil {
			t.Fatal(err)
		}
	}
	dec.Start()
	defer dec.Close()

	var mu sync.Mutex
	got := make(map[ncproto.SessionID]map[ncproto.GenerationID][]byte)
	go func() {
		for d := range dec.Deliveries() {
			mu.Lock()
			if got[d.Session] == nil {
				got[d.Session] = make(map[ncproto.GenerationID][]byte)
			}
			got[d.Session][d.Generation] = append([]byte(nil), d.Data...)
			mu.Unlock()
		}
	}()

	want := make(map[ncproto.SessionID][]byte)
	var wg sync.WaitGroup
	for s := 1; s <= sessions; s++ {
		sid := ncproto.SessionID(s)
		data := randomBytes(int64(100+s), generations*params.GenerationBytes())
		want[sid] = data
		src, err := NewSource(n.Host(fmt.Sprintf("src%d", s)), SourceConfig{
			Session: sid, Params: params, Seed: int64(s), Redundancy: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		src.SetHops([]HopGroup{{Addrs: []string{"dec"}}})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := src.SendData(data); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := 0
		for s := 1; s <= sessions; s++ {
			done += len(got[ncproto.SessionID(s)])
		}
		mu.Unlock()
		if done == sessions*generations {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for s := 1; s <= sessions; s++ {
		sid := ncproto.SessionID(s)
		if len(got[sid]) != generations {
			t.Fatalf("session %d: decoded %d of %d generations", s, len(got[sid]), generations)
		}
		genBytes := params.GenerationBytes()
		for g := 0; g < generations; g++ {
			wantGen := want[sid][g*genBytes : (g+1)*genBytes]
			gotGen, ok := got[sid][ncproto.GenerationID(g)]
			if !ok || !bytes.Equal(gotGen, wantGen) {
				t.Fatalf("session %d generation %d: decoded bytes differ", s, g)
			}
		}
	}
	if st := dec.Stats(); st.GenerationsDone != sessions*generations {
		t.Fatalf("decoder stats report %d generations, want %d", st.GenerationsDone, sessions*generations)
	}
}

// TestDecoderSerialBatchEquivalence feeds the same packet sequence through
// the serial per-packet path (handlePacket) and through a run processed by
// processRun, and checks both deliver identical generations — the dataplane
// analogue of the rlnc differential test.
func TestDecoderSerialBatchEquivalence(t *testing.T) {
	params := smallParams()
	data := randomBytes(42, params.GenerationBytes())
	enc, err := rlnc.NewEncoder(params, data, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wires [][]byte
	for i := 0; i < params.GenerationBlocks+2; i++ {
		cb := enc.Coded()
		wires = append(wires, (&ncproto.Packet{
			Session: 1, Generation: 3, Coeffs: cb.Coeffs, Payload: cb.Payload,
		}).Encode(nil))
	}

	build := func(name string) *VNF {
		n := emunet.NewNetwork(emunet.AllowDefault())
		t.Cleanup(func() { n.Close() })
		v := NewVNF(n.Host(name), WithWorkers(1))
		if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleDecoder}); err != nil {
			t.Fatal(err)
		}
		return v
	}

	serial := build("serial")
	for _, w := range wires {
		serial.handlePacket(w, "peer")
	}

	batched := build("batched")
	sh := batched.shards[0]
	jobs := make([]pktJob, len(wires))
	for i, w := range wires {
		hdr, err := ncproto.PeekHeader(w)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = pktJob{pkt: w, hdr: hdr}
	}
	batched.processRun(sh, jobs)

	var sDel, bDel Delivery
	select {
	case sDel = <-serial.Deliveries():
	default:
		t.Fatal("serial path delivered nothing")
	}
	select {
	case bDel = <-batched.Deliveries():
	default:
		t.Fatal("batched path delivered nothing")
	}
	if !bytes.Equal(sDel.Data, bDel.Data) || !bytes.Equal(sDel.Data, data) {
		t.Fatal("batched delivery differs from serial delivery or source")
	}
	ss := serial.Stats()
	bs := batched.Stats()
	if ss.GenerationsDone != bs.GenerationsDone || ss.PacketsDropped != bs.PacketsDropped {
		t.Fatalf("stats diverge: serial %+v batched %+v", ss, bs)
	}
}
