package dataplane

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"time"

	"ncfn/internal/emunet"
	"ncfn/internal/ncproto"
	"ncfn/internal/rlnc"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func smallParams() rlnc.Params {
	return rlnc.Params{GenerationBlocks: 4, BlockSize: 64}
}

func randomBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestRoleString(t *testing.T) {
	if RoleRecoder.String() != "recoder" || RoleDecoder.String() != "decoder" ||
		RoleForwarder.String() != "forwarder" || Role(0).String() != "unknown" {
		t.Fatal("role names wrong")
	}
}

func TestConfigureValidation(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	if err := v.Configure(SessionConfig{ID: 1, Params: rlnc.Params{}, Role: RoleRecoder}); err == nil {
		t.Fatal("bad params accepted")
	}
	if err := v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: Role(99)}); err == nil {
		t.Fatal("bad role accepted")
	}
	if err := v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: RoleRecoder}); err != nil {
		t.Fatal(err)
	}
}

// pipeline builds src -> [relays...] -> receiver over a perfect network and
// transfers data, returning the receiver.
func runPipeline(t *testing.T, relayRole Role, nGenerations int, redundancy int) (*Receiver, []byte, int) {
	t.Helper()
	n := emunet.NewNetwork(emunet.AllowDefault())
	t.Cleanup(func() { n.Close() })
	params := smallParams()

	relay := NewVNF(n.Host("relay"), WithSeed(5))
	if err := relay.Configure(SessionConfig{ID: 1, Params: params, Role: relayRole, Redundancy: redundancy}); err != nil {
		t.Fatal(err)
	}
	relay.Start()
	t.Cleanup(func() { relay.Close() })

	src, err := NewSource(n.Host("src"), SourceConfig{
		Session: 1, Params: params, Systematic: true, Seed: 3, Redundancy: redundancy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })

	recv, err := NewReceiver(n.Host("recv"), 1, params, "src", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"recv"}}})

	data := randomBytes(11, nGenerations*params.GenerationBytes())
	if _, ngen, err := src.SendData(data); err != nil {
		t.Fatal(err)
	} else if ngen != nGenerations {
		t.Fatalf("sent %d generations, want %d", ngen, nGenerations)
	}
	return recv, data, nGenerations
}

func TestForwarderPipeline(t *testing.T) {
	recv, data, ngen := runPipeline(t, RoleForwarder, 5, 0)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("receiver decoded %d of %d generations", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("forwarded data mismatch")
	}
}

func TestRecoderPipeline(t *testing.T) {
	recv, data, ngen := runPipeline(t, RoleRecoder, 5, 1)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("receiver decoded %d of %d generations", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("recoded data mismatch")
	}
}

func TestRecoderEmitsRedundancy(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	relay := NewVNF(n.Host("relay"))
	relay.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 2})
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
	relay.Start()
	defer relay.Close()
	sink := n.Host("sink")

	src, _ := NewSource(n.Host("src"), SourceConfig{Session: 1, Params: params, Systematic: true})
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})
	src.SendGeneration(randomBytes(1, params.GenerationBytes()), false)

	// NC2: 4 arrivals must produce 6 emissions.
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 6 {
		select {
		case <-deadline:
			t.Fatalf("only %d packets emitted, want 6 (NC2)", got)
		default:
		}
		done := make(chan struct{})
		go func() {
			sink.Recv()
			close(done)
		}()
		select {
		case <-done:
			got++
		case <-time.After(500 * time.Millisecond):
			if got < 6 {
				t.Fatalf("stalled at %d packets, want 6 (NC2)", got)
			}
		}
	}
	st := relay.Stats()
	if st.PacketsOut != 6 {
		t.Fatalf("PacketsOut = %d, want 6", st.PacketsOut)
	}
}

func TestVNFDropsUnknownSession(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Start()
	defer v.Close()
	src := n.Host("src")
	p := &ncproto.Packet{Session: 42, Coeffs: make([]byte, 4), Payload: make([]byte, 64)}
	src.Send("v", p.Encode(nil))
	if !waitFor(t, 2*time.Second, func() bool { return v.Stats().PacketsDropped == 1 }) {
		t.Fatalf("drop not counted: %+v", v.Stats())
	}
}

func TestVNFDropsGarbage(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Start()
	defer v.Close()
	n.Host("src").Send("v", []byte{1, 2, 3})
	if !waitFor(t, 2*time.Second, func() bool { return v.Stats().PacketsDropped == 1 }) {
		t.Fatalf("garbage not dropped: %+v", v.Stats())
	}
}

func TestVNFDropsWrongPayloadSize(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: RoleRecoder})
	v.Start()
	defer v.Close()
	p := &ncproto.Packet{Session: 1, Coeffs: make([]byte, 4), Payload: make([]byte, 10)}
	n.Host("src").Send("v", p.Encode(nil))
	if !waitFor(t, 2*time.Second, func() bool { return v.Stats().PacketsDropped == 1 }) {
		t.Fatalf("wrong-size payload not dropped: %+v", v.Stats())
	}
}

func TestEndSessionStopsProcessing(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	v := NewVNF(n.Host("v"))
	v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleForwarder})
	v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
	v.Start()
	defer v.Close()
	v.EndSession(1)
	p := &ncproto.Packet{Session: 1, Coeffs: make([]byte, 4), Payload: make([]byte, 64)}
	n.Host("src").Send("v", p.Encode(nil))
	if !waitFor(t, 2*time.Second, func() bool { return v.Stats().PacketsDropped == 1 }) {
		t.Fatalf("packet for ended session not dropped: %+v", v.Stats())
	}
	if v.Table().Len() != 0 {
		t.Fatal("EndSession left forwarding entries")
	}
}

func TestAcksSurfaceAtSource(t *testing.T) {
	recv, _, ngen := runPipeline(t, RoleForwarder, 3, 0)
	_ = recv
	// runPipeline's source is closed via cleanup; build a dedicated check:
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	src, _ := NewSource(n.Host("src2"), SourceConfig{Session: 9, Params: params, Systematic: true})
	defer src.Close()
	r2, _ := NewReceiver(n.Host("recv2"), 9, params, "src2", nil)
	defer r2.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"recv2"}}})
	src.SendGeneration(randomBytes(2, params.GenerationBytes()), false)
	select {
	case ack := <-src.Acks():
		if ack.Session != 9 || ack.Generation != 0 {
			t.Fatalf("ack = %+v", ack)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack received")
	}
	_ = ngen
}

func TestUpdateTableSwapsAtomically(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Configure(SessionConfig{ID: 1, Params: smallParams(), Role: RoleForwarder})
	v.Table().Set(1, []HopGroup{{Addrs: []string{"old"}}})
	v.Start()
	defer v.Close()
	v.UpdateTable(map[ncproto.SessionID][]HopGroup{
		1: {{Addrs: []string{"new"}}},
		2: {{Addrs: []string{"extra"}}},
	})
	if v.Table().NextHops(1, 0)[0] != "new" {
		t.Fatal("entry not replaced")
	}
	if v.Table().NextHops(2, 0)[0] != "extra" {
		t.Fatal("entry not added")
	}
	// nil hops delete.
	v.UpdateTable(map[ncproto.SessionID][]HopGroup{2: nil})
	if v.Table().Len() != 1 {
		t.Fatal("nil update did not delete")
	}
}

func TestReloadTableFile(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Start()
	defer v.Close()
	path := t.TempDir() + "/t.tab"
	ft := NewForwardingTable()
	ft.Set(3, []HopGroup{{Addrs: []string{"next"}, PerGen: 2}})
	if err := ft.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := v.ReloadTableFile(path); err != nil {
		t.Fatal(err)
	}
	if v.Table().Groups(3)[0].PerGen != 2 {
		t.Fatal("reload lost contents")
	}
	if err := v.ReloadTableFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSourceRequiresHops(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	src, _ := NewSource(n.Host("s"), SourceConfig{Session: 1, Params: smallParams()})
	defer src.Close()
	if _, err := src.SendGeneration(make([]byte, 10), false); err == nil {
		t.Fatal("send with no hops succeeded")
	}
}

func TestSourceRejectsBadParams(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	if _, err := NewSource(n.Host("s"), SourceConfig{Session: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSourceSendDataEmpty(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	src, _ := NewSource(n.Host("s"), SourceConfig{Session: 1, Params: smallParams()})
	defer src.Close()
	if _, ngen, err := src.SendData(nil); err != nil || ngen != 0 {
		t.Fatalf("empty send: %d, %v", ngen, err)
	}
}

func TestSourceSplitsAcrossHopGroups(t *testing.T) {
	// Two hop groups with quota 2 each: each must receive exactly 2
	// distinct packets per generation.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	a, b := n.Host("a"), n.Host("b")
	params := smallParams()
	src, _ := NewSource(n.Host("s"), SourceConfig{Session: 1, Params: params, Systematic: true})
	defer src.Close()
	src.SetHops([]HopGroup{
		{Addrs: []string{"a"}, PerGen: 2},
		{Addrs: []string{"b"}, PerGen: 2},
	})
	src.SendGeneration(randomBytes(3, params.GenerationBytes()), false)

	collect := func(h *emunet.Host) []*ncproto.Packet {
		var out []*ncproto.Packet
		for len(out) < 2 {
			pkt, _, err := h.Recv()
			if err != nil {
				t.Fatal(err)
			}
			p, err := ncproto.Decode(pkt, params.GenerationBlocks)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p.Clone())
		}
		return out
	}
	pa := collect(a)
	pb := collect(b)
	// Systematic split: a gets blocks 0,1; b gets blocks 2,3.
	if pa[0].Coeffs[0] != 1 || pa[1].Coeffs[1] != 1 {
		t.Fatalf("group a packets not b0,b1: %v %v", pa[0].Coeffs, pa[1].Coeffs)
	}
	if pb[0].Coeffs[2] != 1 || pb[1].Coeffs[3] != 1 {
		t.Fatalf("group b packets not b2,b3: %v %v", pb[0].Coeffs, pb[1].Coeffs)
	}
}

func TestSourcePacing(t *testing.T) {
	// 10 generations of 256 bytes at 1 Mbps payload rate should take
	// about 10*256*8/1e6 = ~20ms total (9 inter-generation gaps).
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	n.Host("sink")
	params := smallParams() // 256 bytes per generation
	src, _ := NewSource(n.Host("s"), SourceConfig{Session: 1, Params: params, RateMbps: 1, Systematic: true})
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"sink"}}})
	start := time.Now()
	if _, _, err := src.SendData(randomBytes(4, 10*params.GenerationBytes())); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Fatalf("pacing too fast: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("pacing too slow: %v", elapsed)
	}
}

func TestResendGeneration(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	src, _ := NewSource(n.Host("s"), SourceConfig{Session: 1, Params: params, Systematic: true})
	defer src.Close()
	recv, _ := NewReceiver(n.Host("r"), 1, params, "", nil)
	defer recv.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"r"}}})
	data := randomBytes(5, params.GenerationBytes())
	gid, err := src.SendGeneration(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ResendGeneration(gid, data, 4); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == 1 }) {
		t.Fatal("generation not decoded after resend")
	}
}

func TestReceiverReassemblesInOrder(t *testing.T) {
	recv, data, ngen := runPipeline(t, RoleRecoder, 8, 0)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("decoded %d of %d", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok {
		t.Fatal("missing generations in Data")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if _, ok := recv.Data(ngen + 1); ok {
		t.Fatal("Data claimed a generation that was never sent")
	}
	if recv.Bytes() != len(data) {
		t.Fatalf("Bytes = %d, want %d", recv.Bytes(), len(data))
	}
}

func TestButterflyEndToEnd(t *testing.T) {
	// The full Fig. 6 butterfly on the emulated network with per-hop
	// quotas from the conceptual-flow solution: 2 packets per generation
	// per branch; both receivers must decode everything.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	mkRelay := func(name string, inPerGen int, hops []HopGroup, seed int64) *VNF {
		v := NewVNF(n.Host(name), WithSeed(seed))
		if err := v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, InPerGen: inPerGen}); err != nil {
			t.Fatal(err)
		}
		v.Table().Set(1, hops)
		v.Start()
		t.Cleanup(func() { v.Close() })
		return v
	}
	// Topology: V1 -> {O1, C1}; O1 -> {O2, T}; C1 -> {C2, T};
	// T -> V2; V2 -> {O2, C2}.
	mkRelay("O1", 2, []HopGroup{
		{Addrs: []string{"O2"}, PerGen: 2},
		{Addrs: []string{"T"}, PerGen: 2},
	}, 101)
	mkRelay("C1", 2, []HopGroup{
		{Addrs: []string{"C2"}, PerGen: 2},
		{Addrs: []string{"T"}, PerGen: 2},
	}, 102)
	mkRelay("T", 4, []HopGroup{
		{Addrs: []string{"V2"}, PerGen: 2},
	}, 103)
	mkRelay("V2", 2, []HopGroup{
		{Addrs: []string{"O2"}, PerGen: 2},
		{Addrs: []string{"C2"}, PerGen: 2},
	}, 104)

	src, err := NewSource(n.Host("V1"), SourceConfig{Session: 1, Params: params, Systematic: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{
		{Addrs: []string{"O1"}, PerGen: 2},
		{Addrs: []string{"C1"}, PerGen: 2},
	})
	recvO, err := NewReceiver(n.Host("O2"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recvO.Close()
	recvC, err := NewReceiver(n.Host("C2"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recvC.Close()

	const ngen = 20
	data := randomBytes(21, ngen*params.GenerationBytes())
	if _, sent, err := src.SendData(data); err != nil || sent != ngen {
		t.Fatalf("send: %d, %v", sent, err)
	}
	// With NC0 (no redundancy) each receiver gets exactly 4 packets per
	// generation, so an occasional random linear dependency (~1/256 per
	// packet) can leave a generation undecoded — the same effect that
	// keeps the paper's measured 68 Mbps below the 69.9 theoretical
	// maximum. Require ≥ 90% decoded, and bytewise-correct content for
	// every decoded generation.
	ok := waitFor(t, 10*time.Second, func() bool {
		return recvO.Generations() >= ngen-2 && recvC.Generations() >= ngen-2
	})
	if !ok {
		t.Fatalf("decoded O2=%d C2=%d of %d", recvO.Generations(), recvC.Generations(), ngen)
	}
	genBytes := params.GenerationBytes()
	for _, recv := range []*Receiver{recvO, recvC} {
		for g := 0; g < ngen; g++ {
			got, ok := recv.GenerationData(ncproto.GenerationID(g))
			if !ok {
				continue
			}
			if !bytes.Equal(got, data[g*genBytes:(g+1)*genBytes]) {
				t.Fatalf("generation %d content mismatch", g)
			}
		}
	}
}

func TestButterflyBeatsSingleBranchUnderQuota(t *testing.T) {
	// Sanity check of the coding gain argument: each receiver gets only
	// 2 of 4 packets from its side branch, so without the coded V2 feed
	// it could never decode. Kill V2 and confirm decode fails.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	o1 := NewVNF(n.Host("O1"), WithSeed(31))
	o1.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, InPerGen: 2})
	o1.Table().Set(1, []HopGroup{{Addrs: []string{"O2"}, PerGen: 2}})
	o1.Start()
	defer o1.Close()

	src, _ := NewSource(n.Host("V1"), SourceConfig{Session: 1, Params: params, Systematic: true, Seed: 7})
	defer src.Close()
	src.SetHops([]HopGroup{
		{Addrs: []string{"O1"}, PerGen: 2},
		{Addrs: []string{"void"}, PerGen: 2},
	})
	n.Host("void")
	recvO, _ := NewReceiver(n.Host("O2"), 1, params, "", nil)
	defer recvO.Close()

	src.SendGeneration(randomBytes(9, params.GenerationBytes()), false)
	time.Sleep(100 * time.Millisecond)
	if recvO.Generations() != 0 {
		t.Fatal("receiver decoded with only half the information — quota split broken")
	}
	if recvO.VNF().Stats().PacketsIn != 2 {
		t.Fatalf("O2 received %d packets, want 2", recvO.VNF().Stats().PacketsIn)
	}
}

func TestRecoderFirstPacketForwardedVerbatim(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	relay := NewVNF(n.Host("relay"))
	relay.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder})
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
	relay.Start()
	defer relay.Close()
	sink := n.Host("sink")

	// Send one systematic packet b0 directly.
	enc, _ := rlnc.NewEncoder(params, randomBytes(6, params.GenerationBytes()), 1)
	cb, _ := enc.Systematic()
	wire := (&ncproto.Packet{
		Flags: ncproto.FlagSystematic, Session: 1, Generation: 0,
		Coeffs: cb.Coeffs, Payload: cb.Payload,
	}).Encode(nil)
	n.Host("src").Send("relay", wire)

	pkt, _, err := sink.Recv()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ncproto.Decode(pkt, params.GenerationBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Coeffs, cb.Coeffs) || !bytes.Equal(p.Payload, cb.Payload) {
		t.Fatal("first packet of generation was not forwarded verbatim")
	}
}

func TestStatsAccumulate(t *testing.T) {
	recv, _, ngen := runPipeline(t, RoleRecoder, 4, 0)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatal("pipeline incomplete")
	}
	st := recv.VNF().Stats()
	if st.PacketsIn == 0 || st.GenerationsDone != uint64(ngen) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGoodputPositive(t *testing.T) {
	recv, _, ngen := runPipeline(t, RoleForwarder, 10, 0)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatal("pipeline incomplete")
	}
	if recv.GoodputMbps() <= 0 {
		t.Fatalf("goodput = %v", recv.GoodputMbps())
	}
}

func TestVNFCloseIdempotent(t *testing.T) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	v := NewVNF(n.Host("v"))
	v.Start()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecoderPacketProcessing(b *testing.B) {
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := rlnc.DefaultParams()
	v := NewVNF(n.Host("v"))
	v.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder})
	v.Table().Set(1, []HopGroup{{Addrs: []string{"sink"}}})
	n.Host("sink")
	enc, _ := rlnc.NewEncoder(params, randomBytes(1, params.GenerationBytes()), 1)
	packets := make([][]byte, 64)
	for i := range packets {
		cb := enc.Coded()
		packets[i] = (&ncproto.Packet{
			Session: 1, Generation: ncproto.GenerationID(i / 4),
			Coeffs: cb.Coeffs, Payload: cb.Payload,
		}).Encode(nil)
	}
	b.SetBytes(int64(params.BlockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.handlePacket(packets[i%len(packets)], "src")
	}
}

func TestPipelineRobustToReordering(t *testing.T) {
	// Heavy jitter on the relay->receiver link reorders packets across
	// generations; RLNC decoding is order-insensitive ("our system is not
	// concerned with out-of-order packets", Sec. III-B), so everything
	// must still decode.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	n.SetLink("relay", "recv", emunet.LinkConfig{
		Delay:  2 * time.Millisecond,
		Jitter: 40 * time.Millisecond,
	})
	relay := NewVNF(n.Host("relay"), WithSeed(5))
	if err := relay.Configure(SessionConfig{ID: 1, Params: params, Role: RoleRecoder, Redundancy: 1}); err != nil {
		t.Fatal(err)
	}
	relay.Table().Set(1, []HopGroup{{Addrs: []string{"recv"}}})
	relay.Start()
	defer relay.Close()

	src, err := NewSource(n.Host("src"), SourceConfig{
		Session: 1, Params: params, Systematic: true, Redundancy: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})

	recv, err := NewReceiver(n.Host("recv"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const ngen = 15
	data := randomBytes(33, ngen*params.GenerationBytes())
	if _, sent, err := src.SendData(data); err != nil || sent != ngen {
		t.Fatalf("send: %d %v", sent, err)
	}
	if !waitFor(t, 10*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("decoded %d of %d under heavy reordering", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reordered delivery corrupted data")
	}
}

func TestVNFMultipleConcurrentSessions(t *testing.T) {
	// One VNF relays three sessions at once (Sec. IV-A allows each VNF to
	// encode for multiple sessions); streams must not interfere.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	relay := NewVNF(n.Host("relay"), WithSeed(5))
	relay.Start()
	defer relay.Close()

	type sessEnd struct {
		src  *Source
		recv *Receiver
		data []byte
	}
	var ends []sessEnd
	const ngen = 6
	for i := 1; i <= 3; i++ {
		id := ncproto.SessionID(i)
		if err := relay.Configure(SessionConfig{ID: id, Params: params, Role: RoleRecoder}); err != nil {
			t.Fatal(err)
		}
		recvName := "recv" + string(rune('0'+i))
		relay.Table().Set(id, []HopGroup{{Addrs: []string{recvName}}})
		src, err := NewSource(n.Host("s"+string(rune('0'+i))), SourceConfig{
			Session: id, Params: params, Systematic: true, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		src.SetHops([]HopGroup{{Addrs: []string{"relay"}}})
		recv, err := NewReceiver(n.Host(recvName), id, params, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		ends = append(ends, sessEnd{src: src, recv: recv, data: randomBytes(int64(100+i), ngen*params.GenerationBytes())})
	}
	for _, e := range ends {
		if _, _, err := e.src.SendData(e.data); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range ends {
		if !waitFor(t, 10*time.Second, func() bool { return e.recv.Generations() == ngen }) {
			t.Fatalf("session %d decoded %d of %d", i+1, e.recv.Generations(), ngen)
		}
		got, ok := e.recv.Data(ngen)
		if !ok || !bytes.Equal(got, e.data) {
			t.Fatalf("session %d data mismatch (cross-session interference?)", i+1)
		}
	}
}

func TestSessionStatsFor(t *testing.T) {
	recv, _, ngen := runPipeline(t, RoleRecoder, 4, 0)
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatal("pipeline incomplete")
	}
	st, ok := recv.VNF().SessionStatsFor(1)
	if !ok {
		t.Fatal("session stats missing")
	}
	if st.Role != RoleDecoder {
		t.Fatalf("role = %v", st.Role)
	}
	if st.GenerationsDone != uint64(ngen) || st.PacketsIn == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := recv.VNF().SessionStatsFor(99); ok {
		t.Fatal("unknown session has stats")
	}
}

func TestDecoderAbsorbsDuplicates(t *testing.T) {
	// Full duplication on the last hop: every packet arrives twice; the
	// decoder must treat copies as non-innovative and deliver correctly.
	n := emunet.NewNetwork(emunet.AllowDefault())
	defer n.Close()
	params := smallParams()
	n.SetLink("src", "recv", emunet.LinkConfig{DuplicateProb: 1.0})
	src, err := NewSource(n.Host("src"), SourceConfig{Session: 1, Params: params, Systematic: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.SetHops([]HopGroup{{Addrs: []string{"recv"}}})
	recv, err := NewReceiver(n.Host("recv"), 1, params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const ngen = 8
	data := randomBytes(44, ngen*params.GenerationBytes())
	if _, _, err := src.SendData(data); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return recv.Generations() == ngen }) {
		t.Fatalf("decoded %d of %d under duplication", recv.Generations(), ngen)
	}
	got, ok := recv.Data(ngen)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("duplication corrupted delivery")
	}
}
